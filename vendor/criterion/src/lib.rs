//! Vendored, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships the thin slice of criterion's API that the `micro`
//! bench target actually uses: [`Criterion`] with the builder knobs,
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Timing methodology is deliberately simple — warm-up, then
//! `sample_size` samples of auto-scaled iteration batches, reporting the
//! median with min/max bounds in criterion's familiar output format.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Benchmark driver: holds the measurement configuration and runs
/// individual benchmark functions.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Real criterion reads CLI filters itself; cargo passes the
        // remaining args after `--bench` through to the harness binary.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of measurement samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time before measurement begins.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark, printing a criterion-style result line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            config: self.clone(),
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }
}

/// Per-benchmark timing context passed to the benchmark closure.
pub struct Bencher {
    config: Criterion,
    samples: Vec<f64>, // seconds per iteration
}

impl Bencher {
    /// Times `routine`, storing per-iteration durations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up, and estimate the per-iteration cost.
        let warm_up = self.config.warm_up_time;
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_up.as_secs_f64() / warm_iters.max(1) as f64;

        // Split the measurement budget into `sample_size` samples, each
        // batching enough iterations to dominate timer overhead.
        let samples = self.config.sample_size;
        let budget = self.config.measurement_time.as_secs_f64();
        let iters_per_sample =
            ((budget / samples as f64 / per_iter.max(1e-9)).ceil() as u64).max(1);
        self.samples.clear();
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} no samples recorded");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = sorted[sorted.len() / 2];
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        println!(
            "{id:<40} time: [{} {} {}]",
            format_time(lo),
            format_time(median),
            format_time(hi)
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.3} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a benchmark group — both the `name/config/targets` form and
/// the positional form of upstream criterion are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` that runs each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
