//! Vendored, API-compatible subset of the `proptest` property-testing
//! crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships the slice of proptest's surface its test suites use:
//! the [`proptest!`] macro with `#![proptest_config(...)]`, numeric range
//! strategies, [`collection::vec`], and the `prop_assert*` macros.
//!
//! Differences from upstream: values are drawn from a deterministic
//! SplitMix64 stream seeded by the test's module path and name (every run
//! explores the same cases), and failing cases are reported without
//! shrinking. That trade keeps the shim tiny while preserving the
//! regression-catching value of the properties.

use std::ops::Range;

/// Runner configuration — only the `cases` knob is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic SplitMix64 stream used to drive value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a hash of a string — a `const fn` so test seeds derive from
/// `module_path!()` at compile time.
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    hash
}

/// Anything that can generate values for a property parameter.
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let span = (self.end - self.start).max(1) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        })+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty),+) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let span = (self.end as i128 - self.start as i128).max(1) as u128;
                self.start + (rng.next_u64() as u128 % span) as $ty
            }
        })+
    };
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of values from an element strategy, with
    /// lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return Err(format!(
                "assertion failed: {} == {} ({lhs:?} vs {rhs:?})",
                stringify!($lhs),
                stringify!($rhs)
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return Err(format!($($fmt)*));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (Upstream proptest rejects and redraws; the shim simply passes the
/// case, which preserves soundness at a small coverage cost.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return Err(format!(
                "assertion failed: {} != {} (both {lhs:?})",
                stringify!($lhs),
                stringify!($rhs)
            ));
        }
    }};
}

/// Declares property tests: each `fn name(param in strategy, ...)` becomes
/// a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($param:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::fnv1a(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for case in 0..config.cases {
                $(let $param = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let inputs = format!("{:?}", ($(&$param,)+));
                let outcome = (|| -> ::std::result::Result<(), String> {
                    $body
                    Ok(())
                })();
                if let Err(message) = outcome {
                    panic!(
                        "property `{}` failed at case {case}/{}:\n  {message}\n  inputs: {inputs}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}
