//! Quickstart: the full four-phase framework on LeNet / MNIST-like data.
//!
//! Runs Specification → SPOS supernet training → evolutionary search →
//! accelerator generation, then prints the winning dropout configuration,
//! its metrics, and the csynth-style hardware report. Every MC-dropout
//! evaluation inside the search serves through the supernet's
//! `UncertaintyEngine` (see `uncertainty_demo` for driving it directly).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use neural_dropout_search::core::{run, LatencySource, Specification};
use neural_dropout_search::search::SearchAim;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A demo-scale specification: LeNet (the paper pairs it with MNIST),
    // three dropout slots, the paper's default per-slot candidates, and
    // the GP latency surrogate in the search loop.
    let spec = Specification::lenet_demo(42)
        .with_aim(SearchAim::accuracy_optimal())
        .with_latency_source(LatencySource::Gp { train_points: 24 });

    println!("== Phase 1: Specification ==");
    let supernet_spec = spec.supernet_spec()?;
    println!("architecture : {}", spec.arch.name);
    println!("dropout slots: {}", supernet_spec.slot_count());
    println!(
        "search space : {} configurations",
        supernet_spec.space_size()
    );

    let outcome = run(&spec)?;

    println!("\n== Phase 2: SPOS supernet training ==");
    for epoch in &outcome.training {
        println!(
            "epoch {}: loss {:.4}, accuracy {:.1}%, {} distinct paths sampled",
            epoch.epoch,
            epoch.loss,
            100.0 * epoch.accuracy,
            epoch.distinct_paths
        );
    }

    println!("\n== Phase 3: evolutionary search ({}) ==", spec.aim.name);
    if let Some(rmse) = outcome.gp_rmse_ms {
        println!("GP latency surrogate RMSE: {:.4} ms", rmse);
    }
    for generation in &outcome.search.history {
        println!(
            "generation {}: best score {:.4} (config {})",
            generation.generation, generation.best_score, generation.best_config
        );
    }
    let best = &outcome.best;
    println!(
        "\nwinner: {}  (accuracy {:.1}%, ECE {:.1}%, aPE {:.3} nats, latency {:.3} ms)",
        best.config,
        100.0 * best.metrics.accuracy,
        100.0 * best.metrics.ece,
        best.metrics.ape,
        best.latency_ms
    );

    println!("\n== Phase 4: accelerator generation ==");
    println!("{}", outcome.report);
    println!(
        "HLS project: {} files, {} bytes (write with HlsProject::write_to)",
        outcome.hls.files().len(),
        outcome.hls.total_bytes()
    );
    println!(
        "\nphase timings: spec {:.2}s | train {:.2}s | search {:.2}s | generate {:.2}s",
        outcome.timings.specification_s,
        outcome.timings.training_s,
        outcome.timings.search_s,
        outcome.timings.generation_s
    );
    Ok(())
}
