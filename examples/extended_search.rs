//! Extended search space + calibration baseline.
//!
//! Two extensions beyond the paper, composed into one experiment:
//!
//! 1. the **extended dropout space** (the paper's four designs plus
//!    Gaussian dropout — its stated future-work direction), searched
//!    exhaustively on LeNet (75 configurations), and
//! 2. **temperature scaling**, the standard post-hoc calibration method,
//!    as a baseline for the ECE improvements the dropout search buys.
//!
//! The question answered at the end: does searching dropout designs still
//! help once the baseline model is temperature-calibrated?
//!
//! ```sh
//! cargo run --release --example extended_search
//! ```

use neural_dropout_search::data::{mnist_like, DatasetConfig};
use neural_dropout_search::dropout::DropoutKind;
use neural_dropout_search::engine::PredictRequest;
use neural_dropout_search::metrics::{
    accuracy, apply_temperature, ece, fit_temperature, EceConfig,
};
use neural_dropout_search::nn::train::TrainConfig;
use neural_dropout_search::nn::zoo;
use neural_dropout_search::nn::{Layer, Mode};
use neural_dropout_search::search::{SearchAim, SearchBuilder, Strategy};
use neural_dropout_search::supernet::{DropoutConfig, Supernet, SupernetSpec};
use neural_dropout_search::tensor::rng::Rng64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let splits = mnist_like(&DatasetConfig::experiment(77));
    let mut rng = Rng64::new(77);

    // Extended space: 5 choices on the two conv slots, 3 on the FC slot.
    let spec = SupernetSpec::extended_default(zoo::lenet(), 77)?;
    println!(
        "extended LeNet space: {} configurations (paper space: 32)",
        spec.space_size()
    );
    let mut supernet = Supernet::build(&spec)?;
    let train_config = TrainConfig {
        epochs: 4,
        ..TrainConfig::default()
    };
    println!(
        "training the extended supernet (SPOS, {} epochs)…",
        train_config.epochs
    );
    supernet.train_spos(&splits.train, &train_config, &mut rng)?;

    // Exhaustive evaluation on the validation set, through one
    // ECE-optimal search session — the session's memoised cache and
    // Pareto archive replace the hand-rolled evaluation loop, and every
    // candidate scoring routes through the supernet's engine.
    let val_subset: Vec<usize> = (0..128.min(splits.val.len())).collect();
    let val = splits.val.subset(&val_subset);
    let ood = splits.train.ood_noise(128, &mut rng);
    println!("evaluating all {} configurations…", spec.space_size());
    let mut session = SearchBuilder::new(&mut supernet)
        .strategy(Strategy::Exhaustive)
        .aim(SearchAim::ece_optimal())
        .validation(&val)
        .ood(ood)
        .batch_size(64)
        .build()?;
    let outcome = session.run()?;
    drop(session);
    // The ECE-optimal aim maximises -ECE, so the session's winner is the
    // minimum-ECE configuration of the whole space.
    let winner = outcome.best.config.clone();
    let mut gaussian_in_top5 = 0usize;
    let mut scored: Vec<(DropoutConfig, f64, f64)> = outcome
        .archive
        .candidates()
        .iter()
        .map(|c| (c.config.clone(), c.metrics.ece, c.metrics.accuracy))
        .collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!("\nbest five configs by validation ECE:");
    for (config, ece_val, acc) in scored.iter().take(5) {
        let has_gaussian = config.kinds().contains(&DropoutKind::Gaussian);
        if has_gaussian {
            gaussian_in_top5 += 1;
        }
        println!(
            "  {:<12} ECE {:5.2}%  acc {:5.2}%{}",
            config.to_string(),
            100.0 * ece_val,
            100.0 * acc,
            if has_gaussian {
                "   <- uses Gaussian (extension)"
            } else {
                ""
            }
        );
    }
    println!("({gaussian_in_top5}/5 of the top-ECE configs use the new Gaussian design)");

    // --- Baseline: uniform Bernoulli + temperature scaling. ---
    let baseline: DropoutConfig = "BBB".parse()?;
    supernet.set_config(&baseline)?;
    let (val_images, val_labels) = val.full_batch();
    let (test_images, test_labels) = splits.test.full_batch();
    // Fit T on single-pass validation logits, evaluate on test logits.
    let val_logits = supernet.net_mut().forward(&val_images, Mode::Standard)?;
    let t = fit_temperature(&val_logits, &val_labels, 40)?;
    let test_logits = supernet.net_mut().forward(&test_images, Mode::Standard)?;
    let raw_probs = apply_temperature(&test_logits, 1.0)?;
    let cooled_probs = apply_temperature(&test_logits, t)?;
    let raw_ece = ece(&raw_probs, &test_labels, EceConfig::default())?;
    let cooled_ece = ece(&cooled_probs, &test_labels, EceConfig::default())?;

    // --- Searched ECE-optimal config, measured on the same test set
    //     through the serving engine (slot switches propagate to the
    //     engine's network; no rebuild needed). ---
    supernet.set_config(&winner)?;
    let engine = supernet.engine_mut();
    engine.set_samples(3);
    let pred = engine.predict(&PredictRequest::new(&test_images))?;
    let searched_ece = ece(&pred.probs, &test_labels, EceConfig::default())?;
    let searched_acc = accuracy(&pred.probs, &test_labels)?;

    println!("\n-- test-set ECE comparison --");
    println!(
        "uniform Bernoulli, single pass        : {:.2}%",
        100.0 * raw_ece
    );
    println!(
        "uniform Bernoulli + temperature (T={t:.2}): {:.2}%",
        100.0 * cooled_ece
    );
    println!(
        "searched {} (MC-3)            : {:.2}%  (accuracy {:.2}%)",
        winner,
        100.0 * searched_ece,
        100.0 * searched_acc
    );
    println!("\n(temperature scaling recalibrates confidences post hoc but cannot change");
    println!(" accuracy or provide OOD entropy; the searched dropout design competes on");
    println!(" calibration while keeping the MC-dropout uncertainty machinery)");
    Ok(())
}
