//! Pareto exploration: exhaustively evaluate a dropout search space and
//! report the (ECE, aPE, accuracy) Pareto frontier — the experiment behind
//! the paper's Figure 4, run here on the LeNet space (32 configurations)
//! so it finishes in about a minute on one core.
//!
//! The sweep runs through the unified `SearchSession` API
//! (`Strategy::Exhaustive`): every candidate evaluation routes through
//! the supernet's `UncertaintyEngine` (one per worker fork) — warm
//! workspaces, persistent MC clone cache, serial-vs-parallel byte
//! identity — and the session's first-class `ParetoArchive` delivers the
//! frontier and hypervolume directly.
//!
//! ```sh
//! cargo run --release --example pareto_exploration
//! ```

use neural_dropout_search::core::Specification;
use neural_dropout_search::data::generate;
use neural_dropout_search::hw::accel::{AcceleratorConfig, AcceleratorModel};
use neural_dropout_search::search::{LatencyProvider, SearchBuilder, Strategy};
use neural_dropout_search::supernet::Supernet;
use neural_dropout_search::tensor::rng::Rng64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = Specification::lenet_demo(7);
    spec.train.epochs = 2;

    // Phases 1-2: build and train the supernet once; all 32 candidate
    // networks share its weights.
    let supernet_spec = spec.supernet_spec()?;
    let splits = generate(spec.dataset, &spec.dataset_config);
    let mut supernet = Supernet::build(&supernet_spec)?;
    let mut rng = Rng64::new(spec.seed);
    supernet.train_spos(&splits.train, &spec.train, &mut rng)?;
    let ood = splits.train.ood_noise(spec.ood_samples, &mut rng);

    // Exhaustive evaluation (the paper's reference for Figure 4) through
    // one search session.
    let model = AcceleratorModel::new(AcceleratorConfig::lenet_paper());
    let latency = LatencyProvider::Exact {
        model,
        arch: spec.arch.clone(),
    };
    let mut session = SearchBuilder::new(&mut supernet)
        .strategy(Strategy::Exhaustive)
        .validation(&splits.val)
        .ood(ood)
        .latency(latency)
        .batch_size(spec.batch_size)
        .build()?;
    let outcome = session.run()?;
    drop(session);
    let archive = outcome.archive;

    println!("config      acc%    ECE%   aPE(nats)  latency(ms)  uniform");
    for candidate in archive.candidates() {
        println!(
            "{:<10} {:6.2}  {:6.2}   {:8.3}   {:10.3}  {}",
            candidate.config.to_string(),
            100.0 * candidate.metrics.accuracy,
            100.0 * candidate.metrics.ece,
            candidate.metrics.ape,
            candidate.latency_ms,
            if candidate.config.is_uniform() {
                "*"
            } else {
                ""
            }
        );
    }

    let frontier = archive.front();
    println!(
        "\nPareto frontier (max accuracy, min ECE, max aPE): {} points, hypervolume {:.4}",
        frontier.len(),
        archive.hypervolume()
    );
    for point in &frontier {
        println!("  {}", point.config);
    }

    // The paper's Figure-4 claim: the per-aim optima all lie on the
    // exhaustive frontier. Check it for the four single-metric optima.
    let best_by = |f: &dyn Fn(&neural_dropout_search::search::Candidate) -> f64, maximise: bool| {
        archive
            .candidates()
            .iter()
            .max_by(|a, b| {
                let (va, vb) = if maximise {
                    (f(a), f(b))
                } else {
                    (-f(a), -f(b))
                };
                va.partial_cmp(&vb).unwrap()
            })
            .expect("non-empty archive")
    };
    let optima = [
        ("Accuracy", best_by(&|c| c.metrics.accuracy, true)),
        ("ECE", best_by(&|c| c.metrics.ece, false)),
        ("aPE", best_by(&|c| c.metrics.ape, true)),
    ];
    println!();
    for (name, candidate) in optima {
        let on = archive.on_frontier(candidate);
        println!(
            "{name}-optimal {} is {} the reference Pareto frontier",
            candidate.config,
            if on { "ON" } else { "OFF" }
        );
    }
    Ok(())
}
