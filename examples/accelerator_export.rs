//! Accelerator export: analyze a chosen dropout design on the modelled
//! XCKU115, compare float vs Q7.8 fixed-point accuracy through the
//! functional simulator, and write the generated hls4ml-style project to
//! `target/hls_export/`.
//!
//! ```sh
//! cargo run --release --example accelerator_export
//! ```

use neural_dropout_search::core::Specification;
use neural_dropout_search::data::generate;
use neural_dropout_search::engine::{Backend, PredictRequest};
use neural_dropout_search::hls::generate_project;
use neural_dropout_search::hw::accel::{AcceleratorConfig, AcceleratorModel};
use neural_dropout_search::hw::simulator::quantize_network;
use neural_dropout_search::metrics::accuracy;
use neural_dropout_search::quant::Q7_8;
use neural_dropout_search::supernet::{DropoutConfig, Supernet};
use neural_dropout_search::tensor::rng::Rng64;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = Specification::lenet_demo(11);
    spec.train.epochs = 2;
    let config: DropoutConfig = "RRB".parse()?; // the paper's aPE-optimal LeNet

    // Train the supernet and activate the chosen configuration.
    let supernet_spec = spec.supernet_spec()?;
    let splits = generate(spec.dataset, &spec.dataset_config);
    let mut supernet = Supernet::build(&supernet_spec)?;
    let mut rng = Rng64::new(spec.seed);
    supernet.train_spos(&splits.train, &spec.train, &mut rng)?;
    supernet.set_config(&config)?;

    // Float vs fixed-point accuracy through one serving engine: same
    // network, same request shape — only the backend switches.
    let (images, labels) = splits.test.full_batch();
    let engine = supernet.engine_mut();
    engine.set_samples(3);
    let float_pred = engine.predict(&PredictRequest::new(&images))?;
    let float_acc = accuracy(&float_pred.probs, &labels)?;
    let changed = quantize_network(engine.net_mut(), Q7_8);
    engine.set_backend(Backend::quantized_q78());
    let q_pred = engine.predict(&PredictRequest::new(&images))?;
    let q_acc = accuracy(&q_pred.probs, &labels)?;
    println!(
        "design {config}: float accuracy {:.2}%, Q7.8 accuracy {:.2}%",
        100.0 * float_acc,
        100.0 * q_acc
    );
    println!("({changed} weight scalars moved when snapping to the Q7.8 grid)");

    // Hardware analysis on the paper-scale design point.
    let accel = AcceleratorConfig::lenet_paper();
    let model = AcceleratorModel::new(accel.clone());
    let report = model.analyze(&spec.arch, &config)?;
    println!("\n{report}");

    // Hw-sim backend: the same quantised datapath, now reporting the
    // modelled FPGA latency alongside the computed probabilities — the
    // engine as software twin of the accelerator.
    let platform = model.sim_platform(&spec.arch, &config)?;
    let engine = supernet.engine_mut();
    engine.set_backend(Backend::HwSim(platform));
    let sim = engine.predict(&PredictRequest::new(&images))?;
    println!(
        "hw-sim: {} images served; modelled accelerator latency {:.3} ms (wall {:.1} ms)",
        sim.probs.shape().dim(0),
        sim.timing.modelled_latency_ms.unwrap_or(0.0),
        1e3 * sim.timing.elapsed_s
    );

    // Emit the HLS project (with quantised weights) to disk.
    let out_dir = Path::new("target/hls_export");
    let project = generate_project(&spec.arch, &config, &accel, Some(supernet.net_mut()))?;
    project.write_to(out_dir)?;
    println!(
        "wrote {} files ({} bytes) to {}",
        project.files().len(),
        project.total_bytes(),
        out_dir.display()
    );
    for (path, _) in project.files().iter().take(8) {
        println!("  {path}");
    }
    if project.files().len() > 8 {
        println!("  … and {} more", project.files().len() - 8);
    }
    Ok(())
}
