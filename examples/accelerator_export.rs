//! Accelerator export: analyze a chosen dropout design on the modelled
//! XCKU115, compare float vs Q7.8 fixed-point accuracy through the
//! functional simulator, and write the generated hls4ml-style project to
//! `target/hls_export/`.
//!
//! ```sh
//! cargo run --release --example accelerator_export
//! ```

use neural_dropout_search::core::Specification;
use neural_dropout_search::data::generate;
use neural_dropout_search::dropout::mc::mc_predict;
use neural_dropout_search::hls::generate_project;
use neural_dropout_search::hw::accel::{AcceleratorConfig, AcceleratorModel};
use neural_dropout_search::hw::simulator::{quantize_network, quantized_mc_predict};
use neural_dropout_search::metrics::accuracy;
use neural_dropout_search::quant::Q7_8;
use neural_dropout_search::supernet::{DropoutConfig, Supernet};
use neural_dropout_search::tensor::rng::Rng64;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = Specification::lenet_demo(11);
    spec.train.epochs = 2;
    let config: DropoutConfig = "RRB".parse()?; // the paper's aPE-optimal LeNet

    // Train the supernet and activate the chosen configuration.
    let supernet_spec = spec.supernet_spec()?;
    let splits = generate(spec.dataset, &spec.dataset_config);
    let mut supernet = Supernet::build(&supernet_spec)?;
    let mut rng = Rng64::new(spec.seed);
    supernet.train_spos(&splits.train, &spec.train, &mut rng)?;
    supernet.set_config(&config)?;

    // Float vs fixed-point accuracy through the functional simulator.
    let (images, labels) = splits.test.full_batch();
    let float_pred = mc_predict(supernet.net_mut(), &images, 3, 64)?;
    let float_acc = accuracy(&float_pred.mean_probs, &labels)?;
    let changed = quantize_network(supernet.net_mut(), Q7_8);
    let q_probs = quantized_mc_predict(supernet.net_mut(), &images, Q7_8, 3)?;
    let q_acc = accuracy(&q_probs, &labels)?;
    println!(
        "design {config}: float accuracy {:.2}%, Q7.8 accuracy {:.2}%",
        100.0 * float_acc,
        100.0 * q_acc
    );
    println!("({changed} weight scalars moved when snapping to the Q7.8 grid)");

    // Hardware analysis on the paper-scale design point.
    let accel = AcceleratorConfig::lenet_paper();
    let model = AcceleratorModel::new(accel.clone());
    let report = model.analyze(&spec.arch, &config)?;
    println!("\n{report}");

    // Emit the HLS project (with quantised weights) to disk.
    let out_dir = Path::new("target/hls_export");
    let project = generate_project(&spec.arch, &config, &accel, Some(supernet.net_mut()))?;
    project.write_to(out_dir)?;
    println!(
        "wrote {} files ({} bytes) to {}",
        project.files().len(),
        project.total_bytes(),
        out_dir.display()
    );
    for (path, _) in project.files().iter().take(8) {
        println!("  {path}");
    }
    if project.files().len() > 8 {
        println!("  … and {} more", project.files().len() - 8);
    }
    Ok(())
}
