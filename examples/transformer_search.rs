//! Dropout search over a vision transformer — the paper's future-work
//! direction ("extending the proposed framework to cover other kinds of
//! neural networks such as Transformer") running through the *same*
//! four-phase pipeline as the CNN experiments.
//!
//! Token sequences make the four dropout designs take on new meanings:
//! Bernoulli/Random drop token activations pointwise, Block drops
//! contiguous spans of embedding dimensions, and Masksembles drops whole
//! tokens with its precomputed mask set.
//!
//! The four-phase pipeline (and therefore this example) serves every MC
//! evaluation through the supernet's `UncertaintyEngine` — the same
//! request/response path the CNN experiments and `nds eval` use.
//!
//! ```sh
//! cargo run --release --example transformer_search
//! ```

use neural_dropout_search::core::{run_with_observer, Specification};
use neural_dropout_search::data::DatasetConfig;
use neural_dropout_search::nn::zoo;
use neural_dropout_search::search::{EvolutionConfig, SearchAim, SearchEvent};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Same entry point as the paper's CNN experiments; only the
    // architecture changes. 7px patches -> 16 tokens of width 16; two
    // encoder stages, each followed by a dropout slot with all four
    // candidate designs (4^2 = 16 configurations).
    let mut spec = Specification::lenet_demo(33);
    spec.arch = zoo::tiny_vit(16, 4, 2);
    spec.dataset_config = DatasetConfig {
        train: 768,
        val: 128,
        test: 128,
        seed: 33,
        noise: 0.06,
    };
    spec.train.epochs = 3;
    spec.evolution = EvolutionConfig {
        population: 8,
        generations: 4,
        parents: 3,
        ..Default::default()
    };
    spec.aim = SearchAim::weighted("balanced", 1.0, 1.0, 0.25, 0.0);

    println!("searching {} ({} configurations)...\n", spec.arch.name, {
        let s = spec.supernet_spec()?;
        s.space_size()
    });
    // The four-phase pipeline streams its Phase-3 SearchSession events
    // as the evolutionary loop steps through generations.
    let outcome = run_with_observer(&spec, |event| {
        if let SearchEvent::Step(step) = event {
            println!(
                "  gen {}: best aim {:.4}, archive {} configs (front {}, hv {:.4}), {} evals",
                step.stats.generation,
                step.stats.best_score,
                step.archive_len,
                step.front_len,
                step.hypervolume,
                step.budget_spent
            );
        }
    })?;

    println!("SPOS training:");
    for epoch in &outcome.training {
        println!(
            "  epoch {}: loss {:.4}, accuracy {:.1}%, {} distinct paths",
            epoch.epoch,
            epoch.loss,
            100.0 * epoch.accuracy,
            epoch.distinct_paths
        );
    }

    println!(
        "\nsearch archive ({} distinct configs):",
        outcome.search.archive.len()
    );
    let mut by_score: Vec<_> = outcome.search.archive.iter().collect();
    by_score.sort_by(|a, b| spec.aim.score(b).total_cmp(&spec.aim.score(a)));
    for candidate in by_score.iter().take(5) {
        println!(
            "  {}  acc {:.1}%  ECE {:.1}%  aPE {:.3}  {:.3} ms  (aim {:.4})",
            candidate.config,
            100.0 * candidate.metrics.accuracy,
            100.0 * candidate.metrics.ece,
            candidate.metrics.ape,
            candidate.latency_ms,
            spec.aim.score(candidate)
        );
    }

    println!("\nwinner: {}", outcome.best.config);
    println!("{}", outcome.report);
    println!(
        "(the HLS project sketches the transformer engines: {} firmware files)",
        outcome.hls.files().len()
    );
    Ok(())
}
