//! Sparsity co-design walkthrough — the paper's future-work item
//! ("providing sparsity support for hardware design") implemented end to
//! end: train a dropout-based BayesNN, prune its weights, keep the zeros
//! fixed through a fine-tuning epoch, and read the resulting latency and
//! memory off the sparse accelerator model.
//!
//! ```sh
//! cargo run --release --example sparsity_pruning
//! ```

use neural_dropout_search::data::{mnist_like, DatasetConfig};
use neural_dropout_search::dropout::DropoutSettings;
use neural_dropout_search::engine::{EngineBuilder, PredictRequest};
use neural_dropout_search::hw::accel::{AcceleratorConfig, AcceleratorModel, SparsitySupport};
use neural_dropout_search::metrics::accuracy;
use neural_dropout_search::nn::optim::LrSchedule;
use neural_dropout_search::nn::prune::{measured_sparsity, prune_magnitude, PruneMask};
use neural_dropout_search::nn::train::TrainConfig;
use neural_dropout_search::nn::zoo;
use neural_dropout_search::supernet::{train_standalone, DropoutConfig};
use neural_dropout_search::tensor::rng::Rng64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let splits = mnist_like(&DatasetConfig {
        train: 768,
        val: 96,
        test: 192,
        seed: 7,
        noise: 0.06,
    });
    let mut rng = Rng64::new(7);
    let ood = splits.train.ood_noise(64, &mut rng);
    let config: DropoutConfig = "BBB".parse()?;

    // 1. Train the dense all-Bernoulli LeNet.
    println!("training dense LeNet ({} images)...", splits.train.len());
    let result = train_standalone(
        &zoo::lenet(),
        &config,
        &DropoutSettings::default(),
        &splits.train,
        &splits.val,
        &ood,
        &TrainConfig {
            epochs: 3,
            batch_size: 32,
            schedule: LrSchedule::Cosine {
                base: 0.05,
                floor: 0.005,
                total: 3,
            },
            ..TrainConfig::default()
        },
        3,
        64,
        7,
    )?;
    let (test_images, test_labels) = splits.test.full_batch();
    // One engine serves every checkpoint of this walkthrough; its clone
    // cache re-fingerprints automatically when pruning/fine-tuning
    // detach the weights.
    let mut engine = EngineBuilder::new(result.net).samples(3).build();
    let request = PredictRequest::new(&test_images);
    let dense = engine.predict(&request)?;
    let dense_acc = accuracy(&dense.probs, &test_labels)?;
    engine.recycle(dense);
    println!("dense test accuracy: {:.2}%\n", 100.0 * dense_acc);

    // 2. Prune 60% of the weights by magnitude.
    let stats = prune_magnitude(engine.net_mut(), 0.6);
    println!(
        "pruned {} of {} weights ({:.1}% sparsity)",
        stats.pruned,
        stats.total,
        100.0 * stats.sparsity()
    );
    let pruned = engine.predict(&request)?;
    let pruned_acc = accuracy(&pruned.probs, &test_labels)?;
    engine.recycle(pruned);
    println!(
        "pruned test accuracy (no fine-tuning): {:.2}%",
        100.0 * pruned_acc
    );

    // 3. Fine-tune for one epoch with the zero pattern pinned.
    let mask = PruneMask::capture(engine.net());
    {
        use neural_dropout_search::nn::loss::softmax_cross_entropy;
        use neural_dropout_search::nn::optim::Sgd;
        use neural_dropout_search::nn::Layer as _;
        let sgd = Sgd::with_momentum(0.01, 0.9, 5e-4);
        let net = engine.net_mut();
        for (images, labels) in splits.train.iter_batches(32, &mut rng) {
            let logits = net.forward(&images, neural_dropout_search::nn::Mode::Train)?;
            let (_, dlogits) = softmax_cross_entropy(&logits, &labels)?;
            net.backward(&dlogits)?;
            let mut params = net.params_mut();
            sgd.step(&mut params);
            sgd.zero_grad(&mut params);
            mask.reapply(net);
        }
    }
    let tuned = engine.predict(&request)?;
    let tuned_acc = accuracy(&tuned.probs, &test_labels)?;
    engine.recycle(tuned);
    println!(
        "pruned test accuracy (1 fine-tuning epoch): {:.2}% (sparsity held at {:.1}%)\n",
        100.0 * tuned_acc,
        100.0 * measured_sparsity(engine.net())
    );

    // 4. What the sparsity buys in hardware.
    println!(
        "{:<22} {:>13} {:>8} {:>10}",
        "design", "latency (ms)", "BRAM %", "energy (mJ)"
    );
    for (name, support) in [
        ("dense", SparsitySupport::dense()),
        ("unstructured 60%", SparsitySupport::unstructured(0.6)),
        ("structured 60%", SparsitySupport::structured(0.6)),
    ] {
        let mut accel = AcceleratorConfig::lenet_paper();
        accel.sparsity = support;
        let report = AcceleratorModel::new(accel).analyze(&zoo::lenet(), &config)?;
        println!(
            "{name:<22} {:>13.3} {:>7.1}% {:>10.3}",
            report.latency_ms,
            report.bram.percent(),
            1000.0 * report.energy_per_image_j()
        );
    }
    println!("\n(structured sparsity converts directly into latency; unstructured zero-skipping");
    println!(" realises only part of the ideal speedup and pays an index-storage overhead)");
    Ok(())
}
