//! Uncertainty demo: why dropout-based BayesNNs matter.
//!
//! Trains the same LeNet twice — once as a plain deterministic network and
//! once with MC-dropout (Bernoulli) — and compares how clearly each flags
//! out-of-distribution inputs (Gaussian noise with the training set's
//! statistics, exactly the paper's aPE probe). The MC-dropout network
//! should assign markedly higher predictive entropy to OOD inputs, which
//! is the trustworthiness property motivating the whole framework.
//!
//! ```sh
//! cargo run --release --example uncertainty_demo
//! ```

use neural_dropout_search::data::{mnist_like, DatasetConfig};
use neural_dropout_search::dropout::DropoutKind;
use neural_dropout_search::engine::{PredictRequest, UncertaintyFlags};
use neural_dropout_search::metrics::{accuracy, average_predictive_entropy, ece, EceConfig};
use neural_dropout_search::nn::train::{predict_probs_ws, TrainConfig};
use neural_dropout_search::nn::zoo;
use neural_dropout_search::supernet::{DropoutConfig, Supernet, SupernetSpec};
use neural_dropout_search::tensor::rng::Rng64;
use neural_dropout_search::tensor::Workspace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let splits = mnist_like(&DatasetConfig::experiment(99));
    let mut rng = Rng64::new(99);

    // One supernet gives us both networks: all-Bernoulli and, for the
    // deterministic baseline, Standard-mode inference (dropout off, one
    // pass).
    let spec = SupernetSpec::paper_default(zoo::lenet(), 99)?;
    let mut supernet = Supernet::build(&spec)?;
    let train_config = TrainConfig {
        epochs: 3,
        ..TrainConfig::default()
    };
    println!(
        "training LeNet supernet (SPOS, {} epochs)…",
        train_config.epochs
    );
    for epoch in supernet.train_spos(&splits.train, &train_config, &mut rng)? {
        println!(
            "  epoch {}: loss {:.4}, accuracy {:.1}%",
            epoch.epoch,
            epoch.loss,
            100.0 * epoch.accuracy
        );
    }

    let config = DropoutConfig::uniform(DropoutKind::Bernoulli, 3);
    supernet.set_config(&config)?;
    let (test_images, test_labels) = splits.test.full_batch();
    let ood = splits.train.ood_noise(512, &mut rng);

    // Deterministic single-pass baseline: dropout disabled.
    let mut ws = Workspace::new();
    let det_probs = predict_probs_ws(
        supernet.net_mut(),
        &test_images,
        neural_dropout_search::nn::Mode::Standard,
        64,
        &mut ws,
    )?;
    let det_ood = predict_probs_ws(
        supernet.net_mut(),
        &ood,
        neural_dropout_search::nn::Mode::Standard,
        64,
        &mut ws,
    )?;

    // MC-dropout BayesNN: S = 3 stochastic passes through the serving
    // engine, with the epistemic diagnostics requested as typed outputs.
    let engine = supernet.engine_mut();
    engine.set_samples(3);
    let outputs = UncertaintyFlags::ENTROPY | UncertaintyFlags::MUTUAL_INFORMATION;
    let mc_test = engine.predict(&PredictRequest::new(&test_images).with_outputs(outputs))?;
    let mc_ood = engine.predict(&PredictRequest::new(&ood).with_outputs(outputs))?;

    let det_acc = accuracy(&det_probs, &test_labels)?;
    let mc_acc = accuracy(&mc_test.probs, &test_labels)?;
    let det_ece = ece(&det_probs, &test_labels, EceConfig::default())?;
    let mc_ece = ece(&mc_test.probs, &test_labels, EceConfig::default())?;
    let det_id_entropy = average_predictive_entropy(&det_probs)?;
    let det_ood_entropy = average_predictive_entropy(&det_ood)?;
    let mc_id_entropy = average_predictive_entropy(&mc_test.probs)?;
    let mc_ood_entropy = average_predictive_entropy(&mc_ood.probs)?;

    println!("\n                      deterministic   MC-dropout (S=3)");
    println!(
        "test accuracy         {:>10.2}%   {:>10.2}%",
        100.0 * det_acc,
        100.0 * mc_acc
    );
    println!(
        "test ECE              {:>10.2}%   {:>10.2}%",
        100.0 * det_ece,
        100.0 * mc_ece
    );
    println!(
        "entropy in-dist       {:>10.3}    {:>10.3}  (nats)",
        det_id_entropy, mc_id_entropy
    );
    println!(
        "entropy OOD (aPE)     {:>10.3}    {:>10.3}  (nats)",
        det_ood_entropy, mc_ood_entropy
    );
    println!(
        "OOD/in-dist entropy gap {:>8.3}    {:>10.3}",
        det_ood_entropy - det_id_entropy,
        mc_ood_entropy - mc_id_entropy
    );

    // Epistemic/aleatoric decomposition: mutual information between the
    // prediction and the (dropout-sampled) weights is the *epistemic*
    // share of the predictive entropy; the remainder is aleatoric. The
    // engine computed it alongside the prediction (one request, typed
    // outputs) instead of a second pass over stored sample tensors.
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let mi_id = mean(mc_test.mutual_information.as_deref().unwrap_or(&[]));
    let mi_ood = mean(mc_ood.mutual_information.as_deref().unwrap_or(&[]));
    println!("\nMC-dropout uncertainty decomposition (nats):");
    println!("                      in-dist      OOD");
    println!("epistemic (MI)        {:>7.4}  {:>7.4}", mi_id, mi_ood);
    println!(
        "aleatoric (H - MI)    {:>7.4}  {:>7.4}",
        mc_id_entropy - mi_id,
        mc_ood_entropy - mi_ood
    );
    println!("(the epistemic share grows off-distribution — the model knows what it");
    println!(" does not know; a deterministic network cannot produce this signal)");
    Ok(())
}
