//! # neural-dropout-search
//!
//! A from-scratch Rust reproduction of *"Hardware-Aware Neural Dropout
//! Search for Reliable Uncertainty Prediction on FPGA"* (DAC 2024): a
//! framework that jointly optimises dropout-based Bayesian neural networks
//! and their FPGA accelerators.
//!
//! The facade re-exports every workspace crate under one roof:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`tensor`] | `nds-tensor` | dense tensors, deterministic RNG, conv kernels |
//! | [`quant`] | `nds-quant` | Q7.8 fixed point, MAC unit, SQNR |
//! | [`metrics`] | `nds-metrics` | accuracy, ECE, aPE, NLL, Brier |
//! | [`data`] | `nds-data` | synthetic MNIST/SVHN/CIFAR-like datasets + OOD |
//! | [`nn`] | `nds-nn` | layers, backprop, SGD, LeNet/VGG11/ResNet18 zoo |
//! | [`dropout`] | `nds-dropout` | the four dropout designs + MC inference |
//! | [`engine`] | `nds-engine` | the unified `UncertaintyEngine` serving facade |
//! | [`gp`] | `nds-gp` | Gaussian-process regression (Matérn kernels) |
//! | [`hw`] | `nds-hw` | FPGA accelerator model, power, CPU/GPU platforms |
//! | [`hls`] | `nds-hls` | hls4ml-style project generation |
//! | [`supernet`] | `nds-supernet` | SPOS supernet with dropout slots |
//! | [`search`] | `nds-search` | evolutionary search, aims, Pareto tools |
//! | [`campaign`] | `nds-campaign` | island-model search campaigns, archive merging |
//! | [`serve`] | `nds-serve` | dynamic-batching, multi-tenant serving front-end |
//! | [`core`] | `nds-core` | the four-phase framework entry point |
//! | [`fault`] | `nds-fault` | deterministic fault-injection harness |
//!
//! # Quickstart
//!
//! ```no_run
//! use neural_dropout_search::core::{run, Specification};
//!
//! let spec = Specification::lenet_demo(42);
//! let outcome = run(&spec)?;
//! println!("best dropout configuration: {}", outcome.best.config);
//! println!("modelled FPGA latency: {:.3} ms", outcome.best.latency_ms);
//! # Ok::<(), neural_dropout_search::core::FrameworkError>(())
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the harnesses that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nds_adaptive as adaptive;
pub use nds_campaign as campaign;
pub use nds_core as core;
pub use nds_data as data;
pub use nds_dropout as dropout;
pub use nds_engine as engine;
pub use nds_fault as fault;
pub use nds_gp as gp;
pub use nds_hls as hls;
pub use nds_hw as hw;
pub use nds_metrics as metrics;
pub use nds_nn as nn;
pub use nds_quant as quant;
pub use nds_search as search;
pub use nds_serve as serve;
pub use nds_supernet as supernet;
pub use nds_tensor as tensor;
