//! `nds` — command-line front end to the neural dropout search framework.
//!
//! ```text
//! nds run     --arch lenet|vgg|resnet|vit [--aim accuracy|ece|ape|latency]
//!             [--seed N] [--gp N] [--extended]
//! nds search  --arch lenet|vgg|resnet|vit [--aim ...] [--strategy evolution|random|exhaustive]
//!             [--generations N] [--population N] [--budget N] [--epochs N]
//!             [--checkpoint FILE] [--resume] [--stop-after K] [--checkpoint-every K]
//!             [--islands N] [--migrate-every K] [--seed N] [--gp N]
//! nds eval    --arch lenet|vgg|resnet|vit --config BKM [--seed N]
//!             [--samples S] [--val N] [--execution round-major|sample-major]
//! nds analyze --arch lenet|vgg|resnet|vit --config BKM [--spatial] [--samples S]
//! nds hls     --arch lenet|vgg|resnet|vit --config BKM --out DIR
//! nds space   --arch lenet|vgg|resnet|vit [--extended]
//! nds serve-bench [--arch ...] [--samples S] [--tenants T] [--max-batch M]
//!             [--wait-ms W] [--serial N] [--requests N] [--seed N]
//!             [--execution round-major|sample-major]
//! ```
//!
//! `run` executes the full four-phase framework; `search` trains the
//! supernet and drives the Phase-3 `SearchSession` directly — streaming
//! per-generation progress, and writing/resuming versioned JSON
//! checkpoints (a resumed run reproduces the uninterrupted one byte for
//! byte); with `--islands N` it instead runs an island-model campaign:
//! N sessions with derived seeds over copy-on-write forks of the one
//! trained supernet, exchanging Pareto elites every `--migrate-every`
//! steps through the deterministic archive merge, and checkpointing the
//! whole campaign into a directory; `eval` runs one fast, fully
//! deterministic MC-dropout
//! evaluation of a single configuration (the golden-file determinism
//! suite diffs its bytes across `NDS_THREADS` settings); `analyze`
//! prints the csynth-style report for one design point; `hls` writes
//! the generated project to disk; `space` lists the search space;
//! `serve-bench` drives the dynamic-batching serving front-end and
//! reports batch-1 p50/p99 latency against saturation throughput.

use neural_dropout_search::core::{LatencySource, Specification};
use neural_dropout_search::hls::generate_project;
use neural_dropout_search::hw::accel::{AcceleratorConfig, AcceleratorModel, McMapping};
use neural_dropout_search::nn::zoo;
use neural_dropout_search::search::SearchAim;
use neural_dropout_search::supernet::{DropoutConfig, SupernetSpec};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
nds — hardware-aware neural dropout search (DAC'24 reproduction)

USAGE:
    nds run     --arch <lenet|vgg|resnet|vit> [--aim <accuracy|ece|ape|latency>]
                [--seed <N>] [--gp <train-points>] [--extended]
    nds search  --arch <lenet|vgg|resnet|vit> [--aim <accuracy|ece|ape|latency>]
                [--strategy <evolution|random|exhaustive>] [--generations <N>]
                [--population <N>] [--parents <N>] [--budget <N>] [--epochs <N>]
                [--train <N>] [--val <N>] [--checkpoint <FILE|DIR>] [--resume]
                [--stop-after <K>] [--checkpoint-every <K>]
                [--islands <N>] [--migrate-every <K>]
                [--seed <N>] [--gp <train-points>] [--extended]
    nds eval    --arch <lenet|vgg|resnet|vit> --config <CODES> [--seed <N>]
                [--samples <S>] [--val <N>]
                [--execution <round-major|sample-major>]
                [--adaptive <off|THRESHOLD>] [--gate <entropy|top-var>]
                [--pilot <N>]
    nds analyze --arch <lenet|vgg|resnet|vit> --config <CODES> [--spatial] [--samples <S>]
    nds hls     --arch <lenet|vgg|resnet|vit> --config <CODES> --out <DIR>
    nds space   --arch <lenet|vgg|resnet|vit> [--extended]
    nds serve-bench [--arch <lenet|vgg|resnet|vit>] [--samples <S>] [--tenants <T>]
                [--max-batch <M>] [--wait-ms <W>] [--serial <N>] [--requests <N>]
                [--seed <N>] [--execution <round-major|sample-major>]
                [--adaptive <off|THRESHOLD>] [--gate <entropy|top-var>]
                [--pilot <N>]

EXECUTION: `round-major` (default) runs the S MC samples as S
    sequential passes; `sample-major` fuses them into one (S·B)-row
    pass per layer with a precomputed mask bank. The bytes are
    identical either way; sample-major trades memory for throughput.

ADAPTIVE: `--adaptive <THRESHOLD>` spends `--pilot` (default 1) MC
    samples on every row, scores each row with `--gate` (default
    `entropy`), and escalates only rows at or above the threshold to
    the full `--samples` budget; escalated rows are byte-identical
    to the unbudgeted run. `--adaptive off` (or omitting the flag)
    disables gating and reproduces the standard engine bytes.

CONFIG CODES: one letter per dropout slot —
    B Bernoulli, R Random, K Block, M Masksembles, G Gaussian (extension)

CHECKPOINTS: saves are atomic (tmp + fsync + rename) and rotate the
    previous save to <FILE>.bak; --resume falls back to the backup
    (with a warning) when the primary is corrupted.
    --checkpoint-every K saves after every K completed steps so a
    killed run resumes from the last completed step.

CAMPAIGNS: `--islands N` runs N independent search sessions with
    derived seeds over one trained supernet, merging their Pareto
    archives (deterministically — any merge order yields identical
    bytes) and adopting the merged front back into every island
    every `--migrate-every` K steps (default 1). With --islands,
    --checkpoint names a DIRECTORY (per-island snapshots + a
    campaign manifest), and --stop-after / --checkpoint-every count
    migration epochs instead of steps. The final campaign summary is
    byte-identical across repeated runs, NDS_THREADS settings and
    stop/resume cycles.

EXIT CODES: 0 success, 1 runtime failure, 2 usage error

EXAMPLES:
    nds run --arch lenet --aim ece --seed 7
    nds search --arch lenet --aim ece --generations 6 --checkpoint search.json
    nds search --arch lenet --aim ece --checkpoint search.json --resume
    nds search --arch lenet --islands 4 --migrate-every 2 --checkpoint camp_dir
    nds analyze --arch resnet --config KMBM
    nds hls --arch lenet --config RRB --out ./hls_out
    nds serve-bench --tenants 2 --max-batch 16 --requests 128
";

/// Typed CLI failure, split by whose fault it is: usage errors (the
/// invocation was malformed — exit code 2, usage text printed) versus
/// runtime errors (the invocation was fine but the work failed — exit
/// code 1, no usage dump drowning the actual message).
#[derive(Debug)]
enum CliError {
    Usage(String),
    Runtime(String),
}

/// The invocation itself was wrong (unknown flag, missing value, flag
/// combination that can never work).
fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

// Library errors bubbled up with `map_err(|e| e.to_string())?` are
// runtime failures: the command was well-formed, the work failed.
impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Runtime(msg)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(usage("missing command"));
    };
    let flags = parse_flags(&args[1..])?;
    match command.as_str() {
        "run" => cmd_run(&flags),
        "search" => cmd_search(&flags),
        "eval" => cmd_eval(&flags),
        "analyze" => cmd_analyze(&flags),
        "hls" => cmd_hls(&flags),
        "space" => cmd_space(&flags),
        "serve-bench" => cmd_serve_bench(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(usage(format!("unknown command `{other}`"))),
    }
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, CliError> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| usage(format!("expected a --flag, got `{}`", args[i])))?;
        // Boolean flags take no value.
        if matches!(key, "extended" | "spatial" | "resume") {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| usage(format!("--{key} needs a value")))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn spec_for(flags: &HashMap<String, String>) -> Result<Specification, CliError> {
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| usage(format!("bad seed `{s}`"))))
        .transpose()?
        .unwrap_or(42);
    let arch = flags.get("arch").map(String::as_str).unwrap_or("lenet");
    let mut spec = match arch {
        "lenet" => Specification::lenet_demo(seed),
        "vgg" | "vgg11" => Specification::vgg_demo(seed),
        "resnet" | "resnet18" => Specification::resnet_demo(seed),
        "vit" | "transformer" => {
            let mut spec = Specification::lenet_demo(seed);
            spec.arch = zoo::tiny_vit(16, 4, 2);
            spec
        }
        other => {
            return Err(usage(format!(
                "unknown arch `{other}` (lenet | vgg | resnet | vit)"
            )))
        }
    };
    if let Some(aim) = flags.get("aim") {
        spec.aim = match aim.as_str() {
            "accuracy" | "acc" => SearchAim::accuracy_optimal(),
            "ece" => SearchAim::ece_optimal(),
            "ape" => SearchAim::ape_optimal(),
            "latency" | "lat" => SearchAim::latency_optimal(),
            other => return Err(usage(format!("unknown aim `{other}`"))),
        };
    }
    if let Some(points) = flags.get("gp") {
        let train_points = points
            .parse()
            .map_err(|_| usage(format!("bad --gp value `{points}`")))?;
        spec.latency_source = LatencySource::Gp { train_points };
    }
    if flags.contains_key("extended") {
        let supernet_spec =
            SupernetSpec::extended_default(spec.arch.clone(), seed).map_err(|e| e.to_string())?;
        spec.choices = Some(supernet_spec.choices);
    }
    Ok(spec)
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use neural_dropout_search::core::run_with_observer;
    use neural_dropout_search::search::SearchEvent;
    let spec = spec_for(flags)?;
    println!(
        "running 4-phase search: arch={} dataset={} aim={}",
        spec.arch.name, spec.dataset, spec.aim.name
    );
    // Stream Phase-3 progress as the session steps through generations.
    let outcome = run_with_observer(&spec, |event| {
        if let SearchEvent::Step(step) = event {
            println!(
                "  search gen {}: best {:.4}, mean {:.4}, archive {} (front {})",
                step.stats.generation,
                step.stats.best_score,
                step.stats.mean_score,
                step.archive_len,
                step.front_len
            );
        }
    })
    .map_err(|e| e.to_string())?;
    for epoch in &outcome.training {
        println!(
            "  train epoch {}: loss {:.4}, accuracy {:.1}%",
            epoch.epoch,
            epoch.loss,
            100.0 * epoch.accuracy
        );
    }
    let best = &outcome.best;
    println!(
        "\nwinner {}  acc {:.1}%  ECE {:.1}%  aPE {:.3}  latency {:.3} ms",
        best.config,
        100.0 * best.metrics.accuracy,
        100.0 * best.metrics.ece,
        best.metrics.ape,
        best.latency_ms
    );
    println!("\n{}", outcome.report);
    println!(
        "timings: train {:.1}s, search {:.1}s",
        outcome.timings.training_s, outcome.timings.search_s
    );
    Ok(())
}

/// Phase-3 search through the unified `SearchSession` API: trains the
/// supernet (SPOS), then drives the chosen strategy with streaming
/// per-step progress. `--checkpoint FILE` writes a versioned JSON
/// snapshot (after `--stop-after K` steps, or at the end);
/// `--resume` restores it and continues — the resumed run reproduces
/// the uninterrupted one byte for byte, so the final summary lines are
/// identical either way (the CI resume smoke diffs exactly that).
fn cmd_search(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use neural_dropout_search::data::generate;
    use neural_dropout_search::hw::accel::AcceleratorModel;
    use neural_dropout_search::search::{
        CheckpointSource, LatencyProvider, SearchBuilder, SearchCheckpoint, SearchEvent, Strategy,
    };
    use neural_dropout_search::supernet::Supernet;
    use neural_dropout_search::tensor::rng::Rng64;

    let mut spec = spec_for(flags)?;
    if let Some(train) = flags.get("train") {
        spec.dataset_config.train = train
            .parse()
            .map_err(|_| usage(format!("bad --train `{train}`")))?;
    }
    if let Some(val) = flags.get("val") {
        spec.dataset_config.val = val
            .parse()
            .map_err(|_| usage(format!("bad --val `{val}`")))?;
    }
    spec.train.epochs = parse_flag(flags, "epochs", spec.train.epochs)?;
    spec.evolution.population = parse_flag(flags, "population", spec.evolution.population)?;
    spec.evolution.generations = parse_flag(flags, "generations", spec.evolution.generations)?;
    spec.evolution.parents = parse_flag(flags, "parents", spec.evolution.parents)?;
    let strategy = match flags
        .get("strategy")
        .map(String::as_str)
        .unwrap_or("evolution")
    {
        "evolution" | "ea" => Strategy::Evolution(spec.evolution),
        "random" | "rs" => Strategy::Random(neural_dropout_search::search::RandomSearchConfig {
            budget: parse_flag(flags, "budget", 16usize)?,
            seed: spec.evolution.seed,
        }),
        "exhaustive" | "all" => Strategy::Exhaustive,
        other => return Err(usage(format!("unknown strategy `{other}`"))),
    };
    // Validate the whole checkpoint flag cluster up front, into one
    // struct the step loop consumes — failing after training and K
    // search steps would throw the whole run away, and the plan's
    // invariants (a path exists whenever anything needs one) are
    // enforced here once instead of re-checked with `expect` later.
    struct CheckpointPlan {
        path: std::path::PathBuf,
        /// Save every K completed steps (0 = only at stop/end).
        every: usize,
    }
    let stop_after: usize = parse_flag(flags, "stop-after", 0usize)?;
    let every: usize = parse_flag(flags, "checkpoint-every", 0usize)?;
    let resume = flags.contains_key("resume");
    let plan = match flags.get("checkpoint").map(std::path::PathBuf::from) {
        Some(path) => Some(CheckpointPlan { path, every }),
        None => {
            if resume {
                return Err(usage("--resume needs --checkpoint <FILE>"));
            }
            if stop_after > 0 {
                return Err(usage("--stop-after needs --checkpoint <FILE>"));
            }
            if every > 0 {
                return Err(usage("--checkpoint-every needs --checkpoint <FILE>"));
            }
            None
        }
    };

    // Island-model campaign topology. `--islands 0` (the default) is
    // the classic single-session path; any N >= 1 routes through the
    // campaign subsystem (N == 1 is a degenerate campaign, useful for
    // comparing the two paths at fixed budget).
    let islands: usize = parse_flag(flags, "islands", 0usize)?;
    let migrate_every: usize = parse_flag(flags, "migrate-every", 1usize)?;
    if migrate_every == 0 {
        return Err(usage("--migrate-every must be at least 1"));
    }
    if islands == 0 && flags.contains_key("migrate-every") {
        return Err(usage("--migrate-every needs --islands"));
    }

    // Load resume state *before* the (potentially long) training
    // phase: an unrecoverable checkpoint should fail in milliseconds,
    // not after minutes of SPOS training. A campaign resumes from a
    // directory (per-island snapshots + manifest), a single session
    // from one file.
    let campaign_resume = match (resume, plan.as_ref()) {
        (true, Some(plan)) if islands > 0 => {
            let resumed = neural_dropout_search::campaign::load_campaign(&plan.path)
                .map_err(|e| e.to_string())?;
            for warning in &resumed.warnings {
                eprintln!("warning: {warning}");
            }
            if resumed.manifest.islands != islands {
                return Err(CliError::Runtime(format!(
                    "checkpoint {} holds a {}-island campaign but --islands is {islands}",
                    plan.path.display(),
                    resumed.manifest.islands
                )));
            }
            if resumed.manifest.migrate_every != migrate_every {
                return Err(CliError::Runtime(format!(
                    "checkpoint {} migrates every {} steps but --migrate-every is {migrate_every}",
                    plan.path.display(),
                    resumed.manifest.migrate_every
                )));
            }
            Some(resumed)
        }
        _ => None,
    };
    let resume_state = match (resume, plan.as_ref()) {
        (true, Some(plan)) if islands == 0 => {
            let (checkpoint, source) =
                SearchCheckpoint::load_with_fallback(&plan.path).map_err(|e| e.to_string())?;
            if let CheckpointSource::Backup { primary_error } = &source {
                eprintln!(
                    "warning: checkpoint {} unusable ({primary_error}); resumed from last-good backup {}",
                    plan.path.display(),
                    SearchCheckpoint::backup_path(&plan.path).display()
                );
            }
            Some(checkpoint)
        }
        _ => None,
    };

    // Phases 1-2: data + SPOS supernet training (deterministic from the
    // seed, so a resumed process reconstructs identical weights).
    let supernet_spec = spec.supernet_spec().map_err(|e| e.to_string())?;
    let splits = generate(spec.dataset, &spec.dataset_config);
    let mut supernet = Supernet::build(&supernet_spec).map_err(|e| e.to_string())?;
    let mut rng = Rng64::new(spec.seed ^ 0x7EA1);
    println!(
        "training supernet: arch={} dataset={} epochs={}",
        spec.arch.name, spec.dataset, spec.train.epochs
    );
    supernet
        .train_spos(&splits.train, &spec.train, &mut rng)
        .map_err(|e| e.to_string())?;
    if spec.calibration_batches > 0 {
        supernet.set_calibration_from(
            &splits.train,
            spec.calibration_batches,
            spec.batch_size,
            &mut rng.fork(0xCA11B),
        );
    }
    let ood = splits
        .train
        .ood_noise(spec.ood_samples, &mut rng.fork(0x00D));
    let hw_arch = spec.hardware_arch().clone();
    let model = AcceleratorModel::new(spec.accel.clone());
    let latency = match spec.latency_source {
        LatencySource::Exact => LatencyProvider::Exact {
            model,
            arch: hw_arch,
        },
        LatencySource::Gp { train_points } => {
            let (provider, rmse) = LatencyProvider::fit_gp(
                &model,
                &hw_arch,
                &supernet_spec,
                train_points,
                (train_points / 4).max(4),
                spec.seed ^ 0x69,
            )
            .map_err(|e| e.to_string())?;
            println!("gp surrogate fitted: rmse {rmse:.4} ms over {train_points} points");
            provider
        }
    };

    // Phase 3, campaign topology: N islands over copy-on-write forks
    // of the one trained supernet, each with its own derived seed
    // stream; elite exchange and whole-campaign checkpointing happen
    // at the epoch barrier.
    if islands > 0 {
        use neural_dropout_search::campaign::{island_seed, Campaign, CampaignEvent};
        let mut forks = Vec::with_capacity(islands);
        for _ in 0..islands {
            forks.push(supernet.fork().map_err(|e| e.to_string())?);
        }
        let mut sessions = Vec::with_capacity(islands);
        for (index, fork) in forks.iter_mut().enumerate() {
            let mut builder = SearchBuilder::new(fork)
                .strategy(strategy.clone())
                .aim(spec.aim.clone())
                .validation(&splits.val)
                .ood(ood.clone())
                .latency(latency.clone())
                .batch_size(spec.batch_size)
                .seed(island_seed(spec.seed, index));
            if let Some(resumed) = campaign_resume.as_ref() {
                builder = builder.resume(resumed.islands[index].clone());
            }
            sessions.push(builder.build().map_err(|e| e.to_string())?);
        }
        let start_epoch = campaign_resume
            .as_ref()
            .map(|r| r.manifest.epoch)
            .unwrap_or(0);
        if let Some(resumed) = campaign_resume.as_ref() {
            println!(
                "resuming campaign from {} (epoch {}, budget {} evals)",
                plan.as_ref()
                    .expect("campaign resume implies a plan")
                    .path
                    .display(),
                resumed.manifest.epoch,
                resumed
                    .islands
                    .iter()
                    .map(|c| c.budget_spent)
                    .sum::<usize>()
            );
        }
        let mut campaign = Campaign::resumed(&mut sessions, migrate_every, start_epoch)
            .map_err(|e| e.to_string())?;

        let print_event = |event: &CampaignEvent| match event {
            CampaignEvent::IslandStep { island, stats } => {
                println!(
                    "isl {island} gen {:>3}  best {:.6}  mean {:.6}  config {:<12}  archive {:>3}  front {:>2}  evals {}",
                    stats.stats.generation,
                    stats.stats.best_score,
                    stats.stats.mean_score,
                    stats.stats.best_config.to_string(),
                    stats.archive_len,
                    stats.front_len,
                    stats.budget_spent
                );
            }
            CampaignEvent::Migration {
                epoch,
                merged_len,
                elites,
                adopted,
            } => {
                println!(
                    "epoch {epoch}: merged archive {merged_len}, elites {elites}, adopted {adopted}"
                );
            }
        };

        // The epoch loop mirrors the single-session step loop below:
        // streams progress, honours --stop-after (epochs here), and
        // checkpoints the whole campaign every --checkpoint-every
        // epochs through the crash-safe directory protocol.
        let mut epochs_run = 0usize;
        while !campaign.is_finished() {
            if stop_after > 0 && epochs_run >= stop_after {
                break;
            }
            campaign.run_epoch(print_event).map_err(|e| e.to_string())?;
            epochs_run += 1;
            if let Some(plan) = plan.as_ref() {
                if plan.every > 0 && epochs_run.is_multiple_of(plan.every) {
                    campaign.save(&plan.path).map_err(|e| e.to_string())?;
                }
            }
        }
        if let Some(plan) = plan.as_ref() {
            campaign.save(&plan.path).map_err(|e| e.to_string())?;
            if stop_after > 0 {
                println!(
                    "campaign checkpoint written to {} after {epochs_run} epoch(s); \
                     continue with --resume",
                    plan.path.display()
                );
                if !campaign.is_finished() {
                    return Ok(());
                }
            } else {
                println!(
                    "final campaign checkpoint written to {}",
                    plan.path.display()
                );
            }
        }

        let outcome = campaign.outcome().map_err(|e| e.to_string())?;
        // Full-precision summary: byte-identical across repeated runs,
        // worker counts and stop/resume cycles (the CI campaign smoke
        // diffs these lines).
        println!("\n-- campaign result --");
        println!(
            "winner {}  acc {:.12e}  ece {:.12e}  ape {:.12e}  latency {:.12e} ms",
            outcome.best.config,
            outcome.best.metrics.accuracy,
            outcome.best.metrics.ece,
            outcome.best.metrics.ape,
            outcome.best.latency_ms
        );
        println!("aim score {:.12e}", spec.aim.score(&outcome.best));
        println!(
            "merged archive {} configs, front {}, hypervolume {:.12e}",
            outcome.archive.len(),
            outcome.archive.front_len(),
            outcome.archive.hypervolume()
        );
        println!(
            "budget {} fresh evaluations across {islands} island(s), {} epoch(s)",
            outcome.budget_spent, outcome.epochs
        );
        return Ok(());
    }

    // Phase 3: the session.
    let mut builder = SearchBuilder::new(&mut supernet)
        .strategy(strategy)
        .aim(spec.aim.clone())
        .validation(&splits.val)
        .ood(ood)
        .latency(latency)
        .batch_size(spec.batch_size);
    if let (Some(checkpoint), Some(plan)) = (resume_state, plan.as_ref()) {
        println!(
            "resuming from {} (archive {}, budget {} evals)",
            plan.path.display(),
            checkpoint.archive.len(),
            checkpoint.budget_spent
        );
        builder = builder.resume(checkpoint);
    }
    let mut session = builder.build().map_err(|e| e.to_string())?;

    let print_step = |event: &SearchEvent| {
        if let SearchEvent::Step(step) = event {
            println!(
                "gen {:>3}  best {:.6}  mean {:.6}  config {:<12}  archive {:>3}  front {:>2}  hv {:.6}  evals {}",
                step.stats.generation,
                step.stats.best_score,
                step.stats.mean_score,
                step.stats.best_config.to_string(),
                step.archive_len,
                step.front_len,
                step.hypervolume,
                step.budget_spent
            );
        }
    };

    // One unified step loop: streams progress, honours --stop-after,
    // and (with --checkpoint-every K) saves a crash-safe checkpoint
    // every K steps so a killed process resumes from the last completed
    // step instead of from scratch.
    let mut steps = 0usize;
    loop {
        if stop_after > 0 && steps >= stop_after {
            break;
        }
        let event = session.step().map_err(|e| e.to_string())?;
        if matches!(event, SearchEvent::Finished) {
            break;
        }
        print_step(&event);
        steps += 1;
        if let Some(plan) = plan.as_ref() {
            if plan.every > 0 && steps.is_multiple_of(plan.every) {
                session
                    .snapshot()
                    .save(&plan.path)
                    .map_err(|e| e.to_string())?;
            }
        }
    }
    if let Some(plan) = plan.as_ref() {
        session
            .snapshot()
            .save(&plan.path)
            .map_err(|e| e.to_string())?;
        if stop_after > 0 {
            println!(
                "checkpoint written to {} after {steps} step(s); continue with --resume",
                plan.path.display()
            );
            if !session.is_finished() {
                return Ok(());
            }
        } else {
            println!("final checkpoint written to {}", plan.path.display());
        }
    }

    let outcome = session.outcome().map_err(|e| e.to_string())?;
    // Full-precision summary: byte-identical between an uninterrupted
    // run and a stop/resume pair (the CI smoke diffs these lines).
    println!("\n-- search result --");
    println!(
        "winner {}  acc {:.12e}  ece {:.12e}  ape {:.12e}  latency {:.12e} ms",
        outcome.best.config,
        outcome.best.metrics.accuracy,
        outcome.best.metrics.ece,
        outcome.best.metrics.ape,
        outcome.best.latency_ms
    );
    println!("aim score {:.12e}", spec.aim.score(&outcome.best));
    println!(
        "archive {} configs, front {}, hypervolume {:.12e}",
        outcome.archive.len(),
        outcome.archive.front_len(),
        outcome.archive.hypervolume()
    );
    println!("budget {} fresh evaluations", outcome.budget_spent);
    Ok(())
}

/// Fast deterministic single-configuration evaluation: builds the
/// (untrained) supernet, activates `--config`, runs MC-dropout inference
/// over a synthetic validation split and prints metrics plus a
/// predictive-distribution digest at full precision.
///
/// Every number printed is a pure function of the flags — independent of
/// `NDS_THREADS`, core count and weight-sharing strategy. The golden
/// determinism tests assert this by diffing the command's bytes across
/// environments.
fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use neural_dropout_search::data::{cifar_like, mnist_like, svhn_like, DatasetConfig};
    use neural_dropout_search::engine::{Execution, PredictRequest};
    use neural_dropout_search::metrics::{
        accuracy, average_predictive_entropy, ece, escalation_rate, nll, EceConfig,
    };
    use neural_dropout_search::supernet::Supernet;
    use neural_dropout_search::tensor::rng::Rng64;

    let config = config_for(flags)?;
    let seed: u64 = parse_flag(flags, "seed", 42)?;
    let samples: usize = parse_flag(flags, "samples", 3)?;
    let val: usize = parse_flag(flags, "val", 32)?;
    // Scheduling only — the printed bytes are identical for both
    // orders (the golden suite diffs exactly that), so the choice is
    // deliberately absent from the output.
    let execution: Execution = parse_flag(flags, "execution", Execution::RoundMajor)?;
    // Validated up front: a malformed gate exits 2 before any dataset
    // or supernet work happens.
    let adaptive = adaptive_policy_from_flags(flags)?;
    let arch_name = flags.get("arch").map(String::as_str).unwrap_or("lenet");
    // Width-scaled CPU variants, paired with their paper datasets (§4.1).
    let (arch, splits) = {
        let data_config = DatasetConfig {
            train: 16,
            val,
            test: 8,
            seed: seed ^ 0xDA7A,
            noise: 0.05,
        };
        match arch_name {
            "lenet" => (zoo::lenet(), mnist_like(&data_config)),
            "vgg" | "vgg11" => (zoo::vgg11(8), svhn_like(&data_config)),
            "resnet" | "resnet18" => (zoo::resnet18(8), cifar_like(&data_config)),
            "vit" | "transformer" => (zoo::tiny_vit(16, 4, 2), mnist_like(&data_config)),
            other => return Err(usage(format!("unknown arch `{other}`"))),
        }
    };
    let spec = if flags.contains_key("extended") {
        SupernetSpec::extended_default(arch, seed)
    } else {
        SupernetSpec::paper_default(arch, seed)
    }
    .map_err(|e| e.to_string())?;
    let mut supernet = Supernet::build(&spec).map_err(|e| e.to_string())?;
    supernet.set_config(&config).map_err(|e| e.to_string())?;
    supernet.set_sampling_number(samples);
    let mut rng = Rng64::new(seed ^ 0x00D);
    let ood = splits.val.ood_noise(val.max(1), &mut rng);
    let (images, labels) = splits.val.full_batch();
    // One serving entry point for the whole evaluation: the supernet's
    // engine (float backend) holds the warm workspace and clone cache;
    // its bytes are identical for any worker count, chunk size or pool
    // size — the property the golden suite pins.
    let engine = supernet.engine_mut();
    engine.set_chunk_size(16);
    engine.set_execution(execution);
    if let Some(policy) = &adaptive {
        engine.set_adaptive(policy.clone());
    }
    let pred = engine
        .predict(&PredictRequest::new(&images))
        .map_err(|e| e.to_string())?;
    let ood_pred = engine
        .predict(&PredictRequest::new(&ood))
        .map_err(|e| e.to_string())?;
    let acc = accuracy(&pred.probs, &labels).map_err(|e| e.to_string())?;
    let cal = ece(&pred.probs, &labels, EceConfig::default()).map_err(|e| e.to_string())?;
    let neg_ll = nll(&pred.probs, &labels).map_err(|e| e.to_string())?;
    let ape = average_predictive_entropy(&ood_pred.probs).map_err(|e| e.to_string())?;
    println!(
        "eval arch={} config={config} seed={seed} samples={samples} val={val}",
        spec.arch.name
    );
    println!("accuracy {acc:.12e}");
    println!("ece      {cal:.12e}");
    println!("nll      {neg_ll:.12e}");
    println!("ape      {ape:.12e}");
    // Digest of the full predictive distribution: any single changed bit
    // anywhere in the pipeline shows up here.
    let digest: f64 = pred
        .probs
        .iter()
        .enumerate()
        .map(|(i, &p)| (i as f64 + 1.0) * p as f64)
        .sum();
    println!("digest   {digest:.12e}");
    let row0: Vec<String> = pred.probs.as_slice()[..pred.probs.shape().dim(1).min(10)]
        .iter()
        .map(|p| format!("{p:.9e}"))
        .collect();
    println!("probs[0] {}", row0.join(" "));
    // Gating report, printed strictly after the golden-pinned lines so
    // `--adaptive off` (and no flag at all) stays byte-identical to the
    // committed golden transcript.
    if let Some(esc) = adaptive
        .as_ref()
        .filter(|p| p.enabled())
        .and_then(|p| p.escalation.as_ref())
    {
        println!(
            "adaptive gate={} threshold={:.6e} pilot={}",
            esc.metric, esc.threshold, esc.pilot
        );
        if let Some(rows) = &pred.row_samples {
            println!("escalation id  {:.12e}", escalation_rate(rows, esc.pilot));
        }
        if let Some(rows) = &ood_pred.row_samples {
            println!("escalation ood {:.12e}", escalation_rate(rows, esc.pilot));
        }
    }
    Ok(())
}

/// Parses the `--adaptive` / `--gate` / `--pilot` flag family into an
/// escalation policy. Validation happens here, before any dataset or
/// supernet work starts: a non-finite or negative threshold, an unknown
/// gate metric or a zero pilot count is a usage error (exit 2), never a
/// mid-run fault. Returns `None` when `--adaptive` is absent and an
/// inert policy for `--adaptive off` (byte-identical to no policy).
fn adaptive_policy_from_flags(
    flags: &HashMap<String, String>,
) -> Result<Option<neural_dropout_search::adaptive::AdaptivePolicy>, CliError> {
    use neural_dropout_search::adaptive::{AdaptivePolicy, EscalationPolicy, GateMetric};

    let Some(raw) = flags.get("adaptive") else {
        for stray in ["gate", "pilot"] {
            if flags.contains_key(stray) {
                return Err(usage(format!("--{stray} requires --adaptive")));
            }
        }
        return Ok(None);
    };
    if raw == "off" {
        return Ok(Some(AdaptivePolicy::disabled()));
    }
    let threshold: f64 = raw.parse().map_err(|_| {
        usage(format!(
            "bad --adaptive value `{raw}` (expected `off` or a threshold)"
        ))
    })?;
    if !threshold.is_finite() || threshold < 0.0 {
        return Err(usage(format!(
            "--adaptive threshold must be finite and non-negative, got `{raw}`"
        )));
    }
    let metric: GateMetric = match flags.get("gate") {
        None => GateMetric::PredictiveEntropy,
        Some(g) => g
            .parse()
            .map_err(|_| usage(format!("bad --gate value `{g}` (entropy | top-var)")))?,
    };
    let pilot: usize = parse_flag(flags, "pilot", 1)?;
    let policy = AdaptivePolicy::escalate(EscalationPolicy {
        metric,
        threshold,
        pilot,
    });
    policy.validate().map_err(|e| usage(e.to_string()))?;
    Ok(Some(policy))
}

fn parse_flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, CliError> {
    match flags.get(key) {
        Some(raw) => raw
            .parse()
            .map_err(|_| usage(format!("bad --{key} value `{raw}`"))),
        None => Ok(default),
    }
}

fn hw_arch_for(
    flags: &HashMap<String, String>,
) -> Result<neural_dropout_search::nn::arch::Architecture, CliError> {
    match flags.get("arch").map(String::as_str).unwrap_or("lenet") {
        "lenet" => Ok(zoo::lenet()),
        "vgg" | "vgg11" => Ok(zoo::vgg11_paper()),
        "resnet" | "resnet18" => Ok(zoo::resnet18_paper()),
        "vit" | "transformer" => Ok(zoo::tiny_vit(16, 4, 2)),
        other => Err(usage(format!("unknown arch `{other}`"))),
    }
}

fn config_for(flags: &HashMap<String, String>) -> Result<DropoutConfig, CliError> {
    flags
        .get("config")
        .ok_or_else(|| usage("--config is required"))?
        .parse()
        .map_err(|e: neural_dropout_search::supernet::SupernetError| usage(e.to_string()))
}

fn cmd_analyze(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let arch = hw_arch_for(flags)?;
    let config = config_for(flags)?;
    let mut accel = AcceleratorConfig::for_arch(&arch);
    if flags.contains_key("spatial") {
        accel.mapping = McMapping::Spatial;
    }
    if let Some(samples) = flags.get("samples") {
        accel.samples = samples
            .parse()
            .map_err(|_| usage(format!("bad --samples `{samples}`")))?;
    }
    let model = AcceleratorModel::new(accel);
    let report = model.analyze(&arch, &config).map_err(|e| e.to_string())?;
    println!("{report}");
    Ok(())
}

fn cmd_hls(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let arch = hw_arch_for(flags)?;
    let config = config_for(flags)?;
    let out: PathBuf = flags
        .get("out")
        .ok_or_else(|| usage("--out is required"))?
        .into();
    let accel = AcceleratorConfig::for_arch(&arch);
    let project = generate_project(&arch, &config, &accel, None).map_err(|e| e.to_string())?;
    project.write_to(&out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} files ({} bytes) to {}",
        project.files().len(),
        project.total_bytes(),
        out.display()
    );
    Ok(())
}

fn cmd_space(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let seed = 0;
    let arch = match flags.get("arch").map(String::as_str).unwrap_or("lenet") {
        "lenet" => zoo::lenet(),
        "vgg" | "vgg11" => zoo::vgg11(8),
        "resnet" | "resnet18" => zoo::resnet18(8),
        "vit" | "transformer" => zoo::tiny_vit(16, 4, 2),
        other => return Err(usage(format!("unknown arch `{other}`"))),
    };
    let spec = if flags.contains_key("extended") {
        SupernetSpec::extended_default(arch, seed)
    } else {
        SupernetSpec::paper_default(arch, seed)
    }
    .map_err(|e| e.to_string())?;
    println!(
        "architecture {}: {} dropout slots, {} configurations",
        spec.arch.name,
        spec.slot_count(),
        spec.space_size()
    );
    for slot in spec.slots() {
        let choices: String = spec.choices[slot.id]
            .iter()
            .map(|k| k.code().to_string())
            .collect::<Vec<_>>()
            .join("/");
        println!(
            "  slot {}: {:?} position, shape {}, choices {}",
            slot.id, slot.position, slot.shape, choices
        );
    }
    if spec.space_size() <= 64 {
        println!("\nall configurations:");
        for config in spec.enumerate() {
            println!("  {config}");
        }
    }
    Ok(())
}

fn cmd_serve_bench(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use neural_dropout_search::engine::Execution;
    use neural_dropout_search::serve::{ServeRequest, ServerBuilder, TenantSpec};
    use neural_dropout_search::supernet::Supernet;
    use neural_dropout_search::tensor::rng::Rng64;
    use neural_dropout_search::tensor::{Shape, Tensor};
    use std::time::Instant;

    let seed: u64 = parse_flag(flags, "seed", 42)?;
    let samples: usize = parse_flag(flags, "samples", 3)?;
    let tenants: usize = parse_flag::<usize>(flags, "tenants", 1)?.max(1);
    let max_batch: usize = parse_flag(flags, "max-batch", 8)?;
    let wait_ms: f64 = parse_flag(flags, "wait-ms", 0.5)?;
    let serial_reqs: usize = parse_flag::<usize>(flags, "serial", 16)?.max(2);
    let sat_reqs: usize = parse_flag::<usize>(flags, "requests", 64)?.max(1);
    let execution: Execution = parse_flag(flags, "execution", Execution::RoundMajor)?;
    // Validated up front, like every other flag: exit 2 before the
    // supernet is built or any request is accepted.
    let adaptive = adaptive_policy_from_flags(flags)?;
    let arch_name = flags.get("arch").map(String::as_str).unwrap_or("lenet");
    // Width-scaled CPU variants, as in `eval`; the request payload is
    // one image of the architecture's input shape.
    let (arch, c, hw) = match arch_name {
        "lenet" => (zoo::lenet(), 1, 28),
        "vgg" | "vgg11" => (zoo::vgg11(8), 3, 32),
        "resnet" | "resnet18" => (zoo::resnet18(8), 3, 32),
        "vit" | "transformer" => (zoo::tiny_vit(16, 4, 2), 1, 28),
        other => return Err(usage(format!("unknown arch `{other}`"))),
    };
    let spec = SupernetSpec::paper_default(arch, seed).map_err(|e| e.to_string())?;
    let mut supernet = Supernet::build(&spec).map_err(|e| e.to_string())?;
    // Per-request and per-tenant streams come from the split helper so
    // the domains cannot collide with each other (or with the search
    // campaign's per-island streams) the way ad-hoc xor/add offsets can.
    let image_stream = Rng64::derive(seed, 0x5E21);
    let image = |i: u64| {
        let mut rng = Rng64::new(Rng64::derive(image_stream, i));
        Tensor::rand_normal(Shape::d4(1, c, hw, hw), 0.0, 1.0, &mut rng)
    };

    let mut builder = ServerBuilder::new(supernet.net_mut().clone())
        .max_batch(max_batch)
        .max_wait_ms(wait_ms)
        .execution(execution);
    let tenant_ids: Vec<_> = (0..tenants)
        .map(|t| {
            builder.tenant(TenantSpec {
                seed: Rng64::derive(Rng64::derive(seed, 0x7E4A), t as u64),
                samples,
                adaptive: adaptive.clone().unwrap_or_default(),
            })
        })
        .collect();
    let server = builder.build();
    println!(
        "serve-bench arch={} samples={samples} tenants={tenants} max_batch={max_batch} \
         wait_ms={wait_ms} execution={execution}",
        spec.arch.name
    );
    if let Some(esc) = adaptive
        .as_ref()
        .filter(|p| p.enabled())
        .and_then(|p| p.escalation.as_ref())
    {
        println!(
            "adaptive gate={} threshold={:.6e} pilot={}",
            esc.metric, esc.threshold, esc.pilot
        );
    }

    // Warm-up, then batch-1 serial: one request in flight at a time —
    // each pays the full handoff plus the (empty) coalescing window.
    let submit = |t: usize, i: u64| {
        server
            .submit(tenant_ids[t % tenants], ServeRequest::new(image(i)))
            .map_err(|e| e.to_string())
    };
    submit(0, 0)?.wait().map_err(|e| e.to_string())?;
    let mut lat_ms = Vec::with_capacity(serial_reqs);
    let serial_t0 = Instant::now();
    for i in 0..serial_reqs {
        let t = Instant::now();
        submit(i, 1 + i as u64)?.wait().map_err(|e| e.to_string())?;
        lat_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let serial_rps = serial_reqs as f64 / serial_t0.elapsed().as_secs_f64();
    lat_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p50 = lat_ms[lat_ms.len() / 2];
    let p99 = lat_ms[((lat_ms.len() as f64 * 0.99).ceil() as usize).clamp(1, lat_ms.len()) - 1];

    // Saturation: every request queued up front, tenants round-robin.
    let sat_t0 = Instant::now();
    let tickets: Result<Vec<_>, _> = (0..sat_reqs).map(|i| submit(i, 2000 + i as u64)).collect();
    let mut batch_sum = 0usize;
    for ticket in tickets? {
        batch_sum += ticket.wait().map_err(|e| e.to_string())?.timing.batch_size;
    }
    let sat_rps = sat_reqs as f64 / sat_t0.elapsed().as_secs_f64();
    server.shutdown();

    println!(
        "batch-1   {serial_reqs} requests: p50 {p50:.3} ms, p99 {p99:.3} ms, {serial_rps:.1} req/s"
    );
    println!(
        "saturated {sat_reqs} requests: {sat_rps:.1} req/s, mean batch {:.2}, speedup {:.3}x",
        batch_sum as f64 / sat_reqs as f64,
        sat_rps / serial_rps
    );
    Ok(())
}
