//! `nds` — command-line front end to the neural dropout search framework.
//!
//! ```text
//! nds run     --arch lenet|vgg|resnet|vit [--aim accuracy|ece|ape|latency]
//!             [--seed N] [--gp N] [--extended]
//! nds eval    --arch lenet|vgg|resnet|vit --config BKM [--seed N]
//!             [--samples S] [--val N]
//! nds analyze --arch lenet|vgg|resnet|vit --config BKM [--spatial] [--samples S]
//! nds hls     --arch lenet|vgg|resnet|vit --config BKM --out DIR
//! nds space   --arch lenet|vgg|resnet|vit [--extended]
//! ```
//!
//! `run` executes the full four-phase framework; `eval` runs one fast,
//! fully deterministic MC-dropout evaluation of a single configuration
//! (the golden-file determinism suite diffs its bytes across
//! `NDS_THREADS` settings); `analyze` prints the csynth-style report for
//! one design point; `hls` writes the generated project to disk; `space`
//! lists the search space.

use neural_dropout_search::core::{run, LatencySource, Specification};
use neural_dropout_search::hls::generate_project;
use neural_dropout_search::hw::accel::{AcceleratorConfig, AcceleratorModel, McMapping};
use neural_dropout_search::nn::zoo;
use neural_dropout_search::search::SearchAim;
use neural_dropout_search::supernet::{DropoutConfig, SupernetSpec};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
nds — hardware-aware neural dropout search (DAC'24 reproduction)

USAGE:
    nds run     --arch <lenet|vgg|resnet|vit> [--aim <accuracy|ece|ape|latency>]
                [--seed <N>] [--gp <train-points>] [--extended]
    nds eval    --arch <lenet|vgg|resnet|vit> --config <CODES> [--seed <N>]
                [--samples <S>] [--val <N>]
    nds analyze --arch <lenet|vgg|resnet|vit> --config <CODES> [--spatial] [--samples <S>]
    nds hls     --arch <lenet|vgg|resnet|vit> --config <CODES> --out <DIR>
    nds space   --arch <lenet|vgg|resnet|vit> [--extended]

CONFIG CODES: one letter per dropout slot —
    B Bernoulli, R Random, K Block, M Masksembles, G Gaussian (extension)

EXAMPLES:
    nds run --arch lenet --aim ece --seed 7
    nds analyze --arch resnet --config KMBM
    nds hls --arch lenet --config RRB --out ./hls_out
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("missing command".to_string());
    };
    let flags = parse_flags(&args[1..])?;
    match command.as_str() {
        "run" => cmd_run(&flags),
        "eval" => cmd_eval(&flags),
        "analyze" => cmd_analyze(&flags),
        "hls" => cmd_hls(&flags),
        "space" => cmd_space(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got `{}`", args[i]))?;
        // Boolean flags take no value.
        if matches!(key, "extended" | "spatial") {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn spec_for(flags: &HashMap<String, String>) -> Result<Specification, String> {
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
        .transpose()?
        .unwrap_or(42);
    let arch = flags.get("arch").map(String::as_str).unwrap_or("lenet");
    let mut spec = match arch {
        "lenet" => Specification::lenet_demo(seed),
        "vgg" | "vgg11" => Specification::vgg_demo(seed),
        "resnet" | "resnet18" => Specification::resnet_demo(seed),
        "vit" | "transformer" => {
            let mut spec = Specification::lenet_demo(seed);
            spec.arch = zoo::tiny_vit(16, 4, 2);
            spec
        }
        other => {
            return Err(format!(
                "unknown arch `{other}` (lenet | vgg | resnet | vit)"
            ))
        }
    };
    if let Some(aim) = flags.get("aim") {
        spec.aim = match aim.as_str() {
            "accuracy" | "acc" => SearchAim::accuracy_optimal(),
            "ece" => SearchAim::ece_optimal(),
            "ape" => SearchAim::ape_optimal(),
            "latency" | "lat" => SearchAim::latency_optimal(),
            other => return Err(format!("unknown aim `{other}`")),
        };
    }
    if let Some(points) = flags.get("gp") {
        let train_points = points
            .parse()
            .map_err(|_| format!("bad --gp value `{points}`"))?;
        spec.latency_source = LatencySource::Gp { train_points };
    }
    if flags.contains_key("extended") {
        let supernet_spec =
            SupernetSpec::extended_default(spec.arch.clone(), seed).map_err(|e| e.to_string())?;
        spec.choices = Some(supernet_spec.choices);
    }
    Ok(spec)
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), String> {
    let spec = spec_for(flags)?;
    println!(
        "running 4-phase search: arch={} dataset={} aim={}",
        spec.arch.name, spec.dataset, spec.aim.name
    );
    let outcome = run(&spec).map_err(|e| e.to_string())?;
    for epoch in &outcome.training {
        println!(
            "  train epoch {}: loss {:.4}, accuracy {:.1}%",
            epoch.epoch,
            epoch.loss,
            100.0 * epoch.accuracy
        );
    }
    let best = &outcome.best;
    println!(
        "\nwinner {}  acc {:.1}%  ECE {:.1}%  aPE {:.3}  latency {:.3} ms",
        best.config,
        100.0 * best.metrics.accuracy,
        100.0 * best.metrics.ece,
        best.metrics.ape,
        best.latency_ms
    );
    println!("\n{}", outcome.report);
    println!(
        "timings: train {:.1}s, search {:.1}s",
        outcome.timings.training_s, outcome.timings.search_s
    );
    Ok(())
}

/// Fast deterministic single-configuration evaluation: builds the
/// (untrained) supernet, activates `--config`, runs MC-dropout inference
/// over a synthetic validation split and prints metrics plus a
/// predictive-distribution digest at full precision.
///
/// Every number printed is a pure function of the flags — independent of
/// `NDS_THREADS`, core count and weight-sharing strategy. The golden
/// determinism tests assert this by diffing the command's bytes across
/// environments.
fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), String> {
    use neural_dropout_search::data::{cifar_like, mnist_like, svhn_like, DatasetConfig};
    use neural_dropout_search::engine::PredictRequest;
    use neural_dropout_search::metrics::{
        accuracy, average_predictive_entropy, ece, nll, EceConfig,
    };
    use neural_dropout_search::supernet::Supernet;
    use neural_dropout_search::tensor::rng::Rng64;

    let config = config_for(flags)?;
    let seed: u64 = parse_flag(flags, "seed", 42)?;
    let samples: usize = parse_flag(flags, "samples", 3)?;
    let val: usize = parse_flag(flags, "val", 32)?;
    let arch_name = flags.get("arch").map(String::as_str).unwrap_or("lenet");
    // Width-scaled CPU variants, paired with their paper datasets (§4.1).
    let (arch, splits) = {
        let data_config = DatasetConfig {
            train: 16,
            val,
            test: 8,
            seed: seed ^ 0xDA7A,
            noise: 0.05,
        };
        match arch_name {
            "lenet" => (zoo::lenet(), mnist_like(&data_config)),
            "vgg" | "vgg11" => (zoo::vgg11(8), svhn_like(&data_config)),
            "resnet" | "resnet18" => (zoo::resnet18(8), cifar_like(&data_config)),
            "vit" | "transformer" => (zoo::tiny_vit(16, 4, 2), mnist_like(&data_config)),
            other => return Err(format!("unknown arch `{other}`")),
        }
    };
    let spec = if flags.contains_key("extended") {
        SupernetSpec::extended_default(arch, seed)
    } else {
        SupernetSpec::paper_default(arch, seed)
    }
    .map_err(|e| e.to_string())?;
    let mut supernet = Supernet::build(&spec).map_err(|e| e.to_string())?;
    supernet.set_config(&config).map_err(|e| e.to_string())?;
    supernet.set_sampling_number(samples);
    let mut rng = Rng64::new(seed ^ 0x00D);
    let ood = splits.val.ood_noise(val.max(1), &mut rng);
    let (images, labels) = splits.val.full_batch();
    // One serving entry point for the whole evaluation: the supernet's
    // engine (float backend) holds the warm workspace and clone cache;
    // its bytes are identical for any worker count, chunk size or pool
    // size — the property the golden suite pins.
    let engine = supernet.engine_mut();
    engine.set_chunk_size(16);
    let pred = engine
        .predict(&PredictRequest::new(&images))
        .map_err(|e| e.to_string())?;
    let ood_pred = engine
        .predict(&PredictRequest::new(&ood))
        .map_err(|e| e.to_string())?;
    let acc = accuracy(&pred.probs, &labels).map_err(|e| e.to_string())?;
    let cal = ece(&pred.probs, &labels, EceConfig::default()).map_err(|e| e.to_string())?;
    let neg_ll = nll(&pred.probs, &labels).map_err(|e| e.to_string())?;
    let ape = average_predictive_entropy(&ood_pred.probs).map_err(|e| e.to_string())?;
    println!(
        "eval arch={} config={config} seed={seed} samples={samples} val={val}",
        spec.arch.name
    );
    println!("accuracy {acc:.12e}");
    println!("ece      {cal:.12e}");
    println!("nll      {neg_ll:.12e}");
    println!("ape      {ape:.12e}");
    // Digest of the full predictive distribution: any single changed bit
    // anywhere in the pipeline shows up here.
    let digest: f64 = pred
        .probs
        .iter()
        .enumerate()
        .map(|(i, &p)| (i as f64 + 1.0) * p as f64)
        .sum();
    println!("digest   {digest:.12e}");
    let row0: Vec<String> = pred.probs.as_slice()[..pred.probs.shape().dim(1).min(10)]
        .iter()
        .map(|p| format!("{p:.9e}"))
        .collect();
    println!("probs[0] {}", row0.join(" "));
    Ok(())
}

fn parse_flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("bad --{key} value `{raw}`")),
        None => Ok(default),
    }
}

fn hw_arch_for(
    flags: &HashMap<String, String>,
) -> Result<neural_dropout_search::nn::arch::Architecture, String> {
    match flags.get("arch").map(String::as_str).unwrap_or("lenet") {
        "lenet" => Ok(zoo::lenet()),
        "vgg" | "vgg11" => Ok(zoo::vgg11_paper()),
        "resnet" | "resnet18" => Ok(zoo::resnet18_paper()),
        "vit" | "transformer" => Ok(zoo::tiny_vit(16, 4, 2)),
        other => Err(format!("unknown arch `{other}`")),
    }
}

fn config_for(flags: &HashMap<String, String>) -> Result<DropoutConfig, String> {
    flags
        .get("config")
        .ok_or_else(|| "--config is required".to_string())?
        .parse()
        .map_err(|e: neural_dropout_search::supernet::SupernetError| e.to_string())
}

fn cmd_analyze(flags: &HashMap<String, String>) -> Result<(), String> {
    let arch = hw_arch_for(flags)?;
    let config = config_for(flags)?;
    let mut accel = AcceleratorConfig::for_arch(&arch);
    if flags.contains_key("spatial") {
        accel.mapping = McMapping::Spatial;
    }
    if let Some(samples) = flags.get("samples") {
        accel.samples = samples
            .parse()
            .map_err(|_| format!("bad --samples `{samples}`"))?;
    }
    let model = AcceleratorModel::new(accel);
    let report = model.analyze(&arch, &config).map_err(|e| e.to_string())?;
    println!("{report}");
    Ok(())
}

fn cmd_hls(flags: &HashMap<String, String>) -> Result<(), String> {
    let arch = hw_arch_for(flags)?;
    let config = config_for(flags)?;
    let out: PathBuf = flags
        .get("out")
        .ok_or_else(|| "--out is required".to_string())?
        .into();
    let accel = AcceleratorConfig::for_arch(&arch);
    let project = generate_project(&arch, &config, &accel, None).map_err(|e| e.to_string())?;
    project.write_to(&out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} files ({} bytes) to {}",
        project.files().len(),
        project.total_bytes(),
        out.display()
    );
    Ok(())
}

fn cmd_space(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed = 0;
    let arch = match flags.get("arch").map(String::as_str).unwrap_or("lenet") {
        "lenet" => zoo::lenet(),
        "vgg" | "vgg11" => zoo::vgg11(8),
        "resnet" | "resnet18" => zoo::resnet18(8),
        "vit" | "transformer" => zoo::tiny_vit(16, 4, 2),
        other => return Err(format!("unknown arch `{other}`")),
    };
    let spec = if flags.contains_key("extended") {
        SupernetSpec::extended_default(arch, seed)
    } else {
        SupernetSpec::paper_default(arch, seed)
    }
    .map_err(|e| e.to_string())?;
    println!(
        "architecture {}: {} dropout slots, {} configurations",
        spec.arch.name,
        spec.slot_count(),
        spec.space_size()
    );
    for slot in spec.slots() {
        let choices: String = spec.choices[slot.id]
            .iter()
            .map(|k| k.code().to_string())
            .collect::<Vec<_>>()
            .join("/");
        println!(
            "  slot {}: {:?} position, shape {}, choices {}",
            slot.id, slot.position, slot.shape, choices
        );
    }
    if spec.space_size() <= 64 {
        println!("\nall configurations:");
        for config in spec.enumerate() {
            println!("  {config}");
        }
    }
    Ok(())
}
