//! Cross-crate integration: the qualitative metric trade-offs the paper's
//! Table 1 and Figure 4 rest on, reproduced on a trained LeNet supernet.

use neural_dropout_search::data::{mnist_like, DatasetConfig};
use neural_dropout_search::hw::accel::{AcceleratorConfig, AcceleratorModel};
use neural_dropout_search::nn::train::TrainConfig;
use neural_dropout_search::nn::zoo;
use neural_dropout_search::search::pareto::{figure4_objectives, on_frontier};
use neural_dropout_search::search::{LatencyProvider, SearchBuilder, Strategy};
use neural_dropout_search::supernet::{DropoutConfig, Supernet, SupernetSpec};
use neural_dropout_search::tensor::rng::Rng64;

/// Trains one LeNet supernet and exhaustively evaluates all 32 configs.
/// Expensive-ish (about a minute), so every qualitative check shares it.
fn evaluated_archive() -> (SupernetSpec, Vec<neural_dropout_search::search::Candidate>) {
    let splits = mnist_like(&DatasetConfig {
        train: 1280,
        val: 192,
        test: 64,
        seed: 55,
        noise: 0.06,
    });
    let spec = SupernetSpec::paper_default(zoo::lenet(), 55).unwrap();
    let mut supernet = Supernet::build(&spec).unwrap();
    let mut rng = Rng64::new(55);
    let train_config = TrainConfig {
        epochs: 4,
        schedule: neural_dropout_search::nn::optim::LrSchedule::Cosine {
            base: 0.05,
            floor: 0.005,
            total: 4,
        },
        ..TrainConfig::default()
    };
    supernet
        .train_spos(&splits.train, &train_config, &mut rng)
        .unwrap();
    let ood = splits.train.ood_noise(192, &mut rng);
    let model = AcceleratorModel::new(AcceleratorConfig::lenet_paper());
    let latency = LatencyProvider::Exact {
        model,
        arch: zoo::lenet(),
    };
    let archive = SearchBuilder::new(&mut supernet)
        .strategy(Strategy::Exhaustive)
        .validation(&splits.val)
        .ood(ood)
        .latency(latency)
        .batch_size(64)
        .build()
        .unwrap()
        .run()
        .unwrap()
        .archive
        .into_candidates();
    (spec, archive)
}

#[test]
fn exhaustive_archive_reproduces_paper_structure() {
    let (spec, archive) = evaluated_archive();
    assert_eq!(archive.len(), spec.space_size());

    let by_config = |code: &str| {
        let config: DropoutConfig = code.parse().unwrap();
        archive
            .iter()
            .find(|c| c.config == config)
            .unwrap_or_else(|| panic!("config {code} missing from archive"))
            .clone()
    };

    // --- Supernet learned something: the best config beats chance well. ---
    let best_acc = archive
        .iter()
        .map(|c| c.metrics.accuracy)
        .fold(0.0, f64::max);
    assert!(
        best_acc > 0.5,
        "best accuracy {best_acc} too low to be meaningful"
    );

    // --- Latency structure (Table 1): B and M tie at the bottom; any ---
    // --- config containing K is dragged to all-K latency.             ---
    let all_b = by_config("BBB");
    let all_m = by_config("MMM");
    let all_r = by_config("RRB"); // FC slot cannot take R; use conv slots
    let with_block = by_config("KKB");
    assert!((all_b.latency_ms - all_m.latency_ms).abs() < 1e-9);
    assert!(all_r.latency_ms > all_b.latency_ms);
    assert!(with_block.latency_ms > all_r.latency_ms);

    // --- Uncertainty structure: stochastic point dropout (Bernoulli) ---
    // --- yields more OOD entropy than the static mask set.           ---
    assert!(
        all_b.metrics.ape > all_m.metrics.ape,
        "Bernoulli aPE {} should exceed Masksembles aPE {}",
        all_b.metrics.ape,
        all_m.metrics.ape
    );

    // --- Figure 4: every optimal metric value is achieved on the ---
    // --- exhaustive Pareto frontier. (With a finite validation   ---
    // --- set, metric ties are common, so we assert that at least ---
    // --- one achiever of each optimum is non-dominated — which   ---
    // --- is the well-posed form of the paper's claim.)           ---
    let objectives = figure4_objectives();
    let best_acc_value = archive
        .iter()
        .map(|c| c.metrics.accuracy)
        .fold(f64::NEG_INFINITY, f64::max);
    let best_ece_value = archive
        .iter()
        .map(|c| c.metrics.ece)
        .fold(f64::INFINITY, f64::min);
    let best_ape_value = archive
        .iter()
        .map(|c| c.metrics.ape)
        .fold(f64::NEG_INFINITY, f64::max);
    let achieved_on_frontier =
        |name: &str, achieves: &dyn Fn(&neural_dropout_search::search::Candidate) -> bool| {
            assert!(
                archive
                    .iter()
                    .any(|c| achieves(c) && on_frontier(c, &archive, &objectives)),
                "no {name}-optimal configuration lies on the Pareto frontier"
            );
        };
    achieved_on_frontier("accuracy", &|c| {
        c.metrics.accuracy >= best_acc_value - 1e-12
    });
    achieved_on_frontier("ECE", &|c| c.metrics.ece <= best_ece_value + 1e-12);
    achieved_on_frontier("aPE", &|c| c.metrics.ape >= best_ape_value - 1e-12);

    // --- Hybrid advantage (Table 2): the accuracy-optimal config need ---
    // --- not be uniform, and must beat (or tie) every uniform config. ---
    let acc_best = archive
        .iter()
        .max_by(|a, b| a.metrics.accuracy.total_cmp(&b.metrics.accuracy))
        .unwrap();
    for uniform in spec.uniform_configs() {
        let candidate = archive.iter().find(|c| c.config == uniform).unwrap();
        assert!(
            acc_best.metrics.accuracy >= candidate.metrics.accuracy,
            "uniform {} beats the search optimum",
            uniform
        );
    }
}
