//! Cross-crate integration: the full four-phase framework.

use neural_dropout_search::core::{run, LatencySource, Specification};
use neural_dropout_search::data::DatasetConfig;
use neural_dropout_search::search::{EvolutionConfig, SearchAim};

fn tiny_spec(seed: u64) -> Specification {
    let mut spec = Specification::lenet_demo(seed);
    spec.dataset_config = DatasetConfig {
        train: 128,
        val: 64,
        test: 64,
        seed,
        noise: 0.05,
    };
    spec.train.epochs = 2;
    spec.evolution = EvolutionConfig {
        population: 8,
        generations: 3,
        parents: 4,
        ..EvolutionConfig::default()
    };
    spec.ood_samples = 64;
    spec
}

#[test]
fn full_pipeline_produces_consistent_artifacts() {
    let spec = tiny_spec(101);
    let outcome = run(&spec).unwrap();

    // Phase 2 evidence: losses recorded and finite.
    assert_eq!(outcome.training.len(), 2);
    assert!(outcome.training.iter().all(|e| e.loss.is_finite()));

    // Phase 3: every archived candidate is a member of the search space
    // with sane metric ranges.
    let supernet_spec = spec.supernet_spec().unwrap();
    assert!(!outcome.search.archive.is_empty());
    for candidate in &outcome.search.archive {
        assert!(
            supernet_spec.contains(&candidate.config),
            "{}",
            candidate.config
        );
        assert!((0.0..=1.0).contains(&candidate.metrics.accuracy));
        assert!((0.0..=1.0).contains(&candidate.metrics.ece));
        assert!(candidate.metrics.ape >= 0.0);
        assert!(candidate.metrics.ape <= 10.0f64.ln() + 1e-9);
        assert!(candidate.latency_ms > 0.0);
    }

    // The winner maximises the aim over the archive.
    let best_score = spec.aim.score(&outcome.best);
    for candidate in &outcome.search.archive {
        assert!(
            spec.aim.score(candidate) <= best_score + 1e-12,
            "archive contains a better candidate than the reported winner"
        );
    }

    // Phase 4: hardware report consistent with the winner.
    assert!(outcome
        .report
        .design
        .ends_with(&outcome.best.config.compact()));
    assert!(outcome.report.fits_device());
    assert!((outcome.report.latency_ms - outcome.best.latency_ms).abs() < 1e-9);

    // HLS project exists and mentions the architecture.
    assert!(outcome.hls.file("firmware/lenet.cpp").is_some());
}

#[test]
fn same_seed_reproduces_the_same_winner() {
    let a = run(&tiny_spec(202)).unwrap();
    let b = run(&tiny_spec(202)).unwrap();
    assert_eq!(a.best.config, b.best.config);
    assert_eq!(a.best.metrics, b.best.metrics);
    assert_eq!(a.best.latency_ms, b.best.latency_ms);
    // Full archives agree, not just the winner.
    let keys = |o: &neural_dropout_search::core::FrameworkOutcome| {
        let mut v: Vec<String> = o
            .search
            .archive
            .iter()
            .map(|c| c.config.compact())
            .collect();
        v.sort();
        v
    };
    assert_eq!(keys(&a), keys(&b));
}

#[test]
fn latency_optimal_search_avoids_stalling_dropout() {
    // With the latency aim, the winner must not contain Block or Random —
    // they are the only designs that stall the pipeline (Table 1).
    let spec = tiny_spec(303).with_aim(SearchAim::latency_optimal());
    let outcome = run(&spec).unwrap();
    for kind in outcome.best.config.kinds() {
        assert!(
            !matches!(
                kind,
                neural_dropout_search::dropout::DropoutKind::Block
                    | neural_dropout_search::dropout::DropoutKind::Random
            ),
            "latency-optimal winner {} contains a stalling dropout",
            outcome.best.config
        );
    }
}

#[test]
fn gp_and_exact_latency_agree_on_ranking() {
    let exact = run(&tiny_spec(404)).unwrap();
    let gp =
        run(&tiny_spec(404).with_latency_source(LatencySource::Gp { train_points: 20 })).unwrap();
    // Same algorithmic metrics (same training seed); latency figures may
    // differ slightly but must stay close on every shared archive config.
    let rmse = gp.gp_rmse_ms.unwrap();
    assert!(rmse < 0.05, "GP RMSE {rmse} ms too large for LeNet");
    for candidate in &gp.search.archive {
        let twin = exact
            .search
            .archive
            .iter()
            .find(|c| c.config == candidate.config);
        if let Some(twin) = twin {
            assert!(
                (twin.latency_ms - candidate.latency_ms).abs() < 0.1,
                "GP latency {} vs exact {} for {}",
                candidate.latency_ms,
                twin.latency_ms,
                candidate.config
            );
        }
    }
}
