//! Campaign integration suite: the island-model subsystem's determinism
//! contract.
//!
//! Three groups of guarantees:
//!
//! 1. **Merge laws** — `ParetoArchive::merge` is commutative,
//!    associative and idempotent over random candidate sets and both
//!    objective sets, and merging archives round-tripped through the
//!    JSON checkpoint format equals merging the live archives. These
//!    laws are what make a campaign's merged state independent of
//!    island completion order.
//! 2. **Campaign determinism** — re-running a campaign reproduces
//!    byte-identical state (the CI `NDS_THREADS={1,4}` matrix re-runs
//!    this under both pool sizes); a stop/save/resume cycle through the
//!    campaign directory protocol equals the uninterrupted run; and
//!    elite adoption is trajectory-neutral — an island inside a
//!    campaign walks exactly the generation history it would walk
//!    alone, because adoption consumes no RNG draws.
//! 3. **Typed failures** — degenerate topologies and mismatched island
//!    configurations surface as typed errors, never panics.

use neural_dropout_search::campaign::{load_campaign, Campaign, CampaignManifest};
use neural_dropout_search::search::pareto::{ObjectiveSet, ParetoArchive};
use neural_dropout_search::search::{
    Candidate, Evaluator, EvolutionConfig, SearchAim, SearchBuilder, SearchCheckpoint,
    SearchSession, Strategy,
};
use neural_dropout_search::supernet::{CandidateMetrics, DropoutConfig, SupernetSpec};
use neural_dropout_search::{nn::zoo, search};
use proptest::prelude::*;
use std::collections::HashMap;

/// Synthetic evaluator with a planted optimum, mirroring the one in
/// `tests/search_session.rs`: deterministic, memoised, config-dependent
/// metrics so the Pareto machinery has structure to chew on.
struct PlantedEvaluator {
    target: DropoutConfig,
    fresh: usize,
    cache: HashMap<String, Candidate>,
}

impl PlantedEvaluator {
    fn new(target: &str) -> Self {
        PlantedEvaluator {
            target: target.parse().unwrap(),
            fresh: 0,
            cache: HashMap::new(),
        }
    }
}

impl Evaluator for PlantedEvaluator {
    fn evaluate(&mut self, config: &DropoutConfig) -> search::Result<Candidate> {
        if let Some(hit) = self.cache.get(&config.compact()) {
            return Ok(hit.clone());
        }
        self.fresh += 1;
        let matches = config
            .kinds()
            .iter()
            .zip(self.target.kinds())
            .filter(|(a, b)| a == b)
            .count();
        let candidate = synth_candidate_with_accuracy(config, matches as f64 / config.len() as f64);
        self.cache.insert(config.compact(), candidate.clone());
        Ok(candidate)
    }

    fn fresh_evaluations(&self) -> usize {
        self.fresh
    }
}

fn synth_candidate_with_accuracy(config: &DropoutConfig, accuracy: f64) -> Candidate {
    let spread = config.compact().bytes().map(u64::from).sum::<u64>() as f64;
    Candidate {
        config: config.clone(),
        metrics: CandidateMetrics {
            accuracy,
            ece: 0.02 + (spread % 7.0) / 100.0,
            ape: 0.3 + (spread % 11.0) / 20.0,
        },
        latency_ms: 1.0 + (spread % 5.0) / 10.0,
    }
}

/// A 3-slot config from a base-4 encoded index (0..64).
fn config_from_code(n: usize) -> DropoutConfig {
    let letters = ['B', 'R', 'K', 'M'];
    let code: String = (0..3).map(|slot| letters[(n >> (2 * slot)) & 3]).collect();
    code.parse().unwrap()
}

fn archive_from_codes(objectives: ObjectiveSet, codes: &[usize]) -> ParetoArchive {
    let mut archive = ParetoArchive::new(objectives);
    for &n in codes {
        let config = config_from_code(n);
        let accuracy = ((n * 7) % 13) as f64 / 13.0;
        archive.insert(&synth_candidate_with_accuracy(&config, accuracy));
    }
    archive
}

fn lenet_spec() -> SupernetSpec {
    SupernetSpec::paper_default(zoo::lenet(), 1).unwrap()
}

fn campaign_aim() -> SearchAim {
    SearchAim::weighted("blend", 1.0, 1.0, 0.25, 0.05)
}

fn island_strategy(seed: u64, generations: usize) -> Strategy {
    Strategy::Evolution(EvolutionConfig {
        population: 6,
        generations,
        parents: 3,
        seed,
        ..Default::default()
    })
}

/// One campaign island per evaluator, with derived per-island seeds.
fn build_islands<'a>(
    evaluators: &'a mut [PlantedEvaluator],
    base_seed: u64,
    generations: usize,
) -> Vec<SearchSession<'a>> {
    evaluators
        .iter_mut()
        .enumerate()
        .map(|(index, evaluator)| {
            SearchBuilder::with_evaluator(evaluator, lenet_spec())
                .strategy(island_strategy(
                    neural_dropout_search::campaign::island_seed(base_seed, index),
                    generations,
                ))
                .aim(campaign_aim())
                .build()
                .unwrap()
        })
        .collect()
}

/// Round-trips a snapshot through the JSON checkpoint format and
/// rebuilds a session from it with a fresh evaluator.
fn restore_session<'a>(
    snap: &SearchCheckpoint,
    evaluator: &'a mut PlantedEvaluator,
) -> SearchSession<'a> {
    let checkpoint = SearchCheckpoint::from_json(&snap.to_json()).unwrap();
    SearchBuilder::with_evaluator(evaluator, lenet_spec())
        .resume(checkpoint)
        .build()
        .unwrap()
}

fn temp_campaign_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nds_campaign_it_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Commutativity, associativity and idempotence of the archive
    /// merge, over random candidate sets (with overlap) and both
    /// objective sets. These are exactly the laws that make the merged
    /// campaign state independent of fold order.
    #[test]
    fn merge_laws_hold(
        a in proptest::collection::vec(0usize..64, 0..12),
        b in proptest::collection::vec(0usize..64, 0..12),
        c in proptest::collection::vec(0usize..64, 0..12),
        objective_ix in 0usize..2,
    ) {
        let objectives = [ObjectiveSet::Figure4, ObjectiveSet::Full][objective_ix];
        let a = archive_from_codes(objectives, &a);
        let b = archive_from_codes(objectives, &b);
        let c = archive_from_codes(objectives, &c);
        let ab = a.merge(&b).unwrap();
        let ba = b.merge(&a).unwrap();
        prop_assert_eq!(ab.candidates(), ba.candidates(), "commutativity");
        let ab_c = ab.merge(&c).unwrap();
        let a_bc = a.merge(&b.merge(&c).unwrap()).unwrap();
        prop_assert_eq!(ab_c.candidates(), a_bc.candidates(), "associativity");
        let twice = ab_c.merge(&ab_c).unwrap();
        prop_assert_eq!(twice.candidates(), ab_c.candidates(), "idempotence");
        // The union loses nobody: every input key is in the merge.
        for key in a.candidates().iter().chain(b.candidates()).chain(c.candidates()) {
            prop_assert!(ab_c.contains(&key.config.compact()));
        }
    }

    /// Merging archives that travelled through the JSON checkpoint
    /// format equals merging the live archives — the property campaign
    /// resume leans on when it rebuilds islands from disk and keeps
    /// folding their archives.
    #[test]
    fn merge_of_checkpointed_equals_merge_of_live(
        seed_a in 0u64..200,
        seed_b in 0u64..200,
        generations in 1usize..4,
    ) {
        let run = |seed: u64, evaluator: &mut PlantedEvaluator| {
            let mut session = SearchBuilder::with_evaluator(evaluator, lenet_spec())
                .strategy(island_strategy(seed, generations))
                .aim(campaign_aim())
                .build()
                .unwrap();
            session.run().unwrap();
            session.snapshot()
        };
        let mut eval_a = PlantedEvaluator::new("KRM");
        let mut eval_b = PlantedEvaluator::new("BBM");
        let snap_a = run(seed_a, &mut eval_a);
        let snap_b = run(seed_b, &mut eval_b);

        // Live merge: rebuild archives straight from the snapshots.
        let rebuild_live = |snap: &SearchCheckpoint| {
            let memo: HashMap<String, Candidate> =
                snap.memo.iter().map(|c| (c.config.compact(), c.clone())).collect();
            let mut archive = ParetoArchive::new(snap.objectives);
            for key in &snap.archive {
                archive.insert(&memo[key]);
            }
            archive
        };
        let live = rebuild_live(&snap_a).merge(&rebuild_live(&snap_b)).unwrap();

        // Checkpointed merge: the same archives after a JSON round trip
        // and a full session resume with fresh evaluators.
        let mut fresh_a = PlantedEvaluator::new("KRM");
        let mut fresh_b = PlantedEvaluator::new("BBM");
        let restored_a = restore_session(&snap_a, &mut fresh_a);
        let restored_b = restore_session(&snap_b, &mut fresh_b);
        let restored = restored_a.archive().merge(restored_b.archive()).unwrap();
        prop_assert_eq!(live.candidates(), restored.candidates());
    }
}

#[test]
fn campaign_reruns_are_byte_identical() {
    let run_campaign = || {
        let mut evaluators = vec![PlantedEvaluator::new("KRM"), PlantedEvaluator::new("KRM")];
        let mut islands = build_islands(&mut evaluators, 0xCA4411, 4);
        let mut campaign = Campaign::new(&mut islands, 2).unwrap();
        let outcome = campaign.run().unwrap();
        let snapshots: Vec<String> = islands.iter().map(|s| s.snapshot().to_json()).collect();
        (outcome, snapshots)
    };
    let (first, first_snaps) = run_campaign();
    let (second, second_snaps) = run_campaign();
    assert_eq!(first.best, second.best, "best diverged");
    assert_eq!(
        first.archive.candidates(),
        second.archive.candidates(),
        "merged archive diverged"
    );
    assert_eq!(first.budget_spent, second.budget_spent);
    assert_eq!(first_snaps, second_snaps, "island snapshots diverged");
}

#[test]
fn campaign_stop_resume_equals_uninterrupted() {
    let generations = 4;
    let migrate_every = 2;
    // Uninterrupted reference run.
    let mut full_evals = vec![PlantedEvaluator::new("MKB"), PlantedEvaluator::new("MKB")];
    let mut full_islands = build_islands(&mut full_evals, 0x5709, generations);
    let mut full_campaign = Campaign::new(&mut full_islands, migrate_every).unwrap();
    let full_outcome = full_campaign.run().unwrap();
    let full_snaps: Vec<String> = full_islands
        .iter()
        .map(|s| s.snapshot().to_json())
        .collect();

    // Stop after one epoch, checkpoint the whole campaign to disk.
    let dir = temp_campaign_dir("stop_resume");
    {
        let mut part_evals = vec![PlantedEvaluator::new("MKB"), PlantedEvaluator::new("MKB")];
        let mut part_islands = build_islands(&mut part_evals, 0x5709, generations);
        let mut part_campaign = Campaign::new(&mut part_islands, migrate_every).unwrap();
        part_campaign.run_epoch(|_| {}).unwrap();
        part_campaign.save(&dir).unwrap();
    }

    // Resume from the directory with fresh evaluators and finish.
    let resumed = load_campaign(&dir).unwrap();
    assert!(resumed.warnings.is_empty(), "{:?}", resumed.warnings);
    assert_eq!(resumed.manifest.epoch, 1);
    let mut resumed_evals = [PlantedEvaluator::new("MKB"), PlantedEvaluator::new("MKB")];
    let mut resumed_islands: Vec<SearchSession> = resumed_evals
        .iter_mut()
        .zip(resumed.islands.iter())
        .map(|(evaluator, checkpoint)| {
            SearchBuilder::with_evaluator(evaluator, lenet_spec())
                .resume(checkpoint.clone())
                .build()
                .unwrap()
        })
        .collect();
    let mut resumed_campaign =
        Campaign::resumed(&mut resumed_islands, migrate_every, resumed.manifest.epoch).unwrap();
    let resumed_outcome = resumed_campaign.run().unwrap();
    let resumed_snaps: Vec<String> = resumed_islands
        .iter()
        .map(|s| s.snapshot().to_json())
        .collect();

    assert_eq!(full_outcome.best, resumed_outcome.best, "best diverged");
    assert_eq!(
        full_outcome.archive.candidates(),
        resumed_outcome.archive.candidates(),
        "merged archive diverged"
    );
    assert_eq!(full_outcome.epochs, resumed_outcome.epochs);
    assert_eq!(full_snaps, resumed_snaps, "island snapshots diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Elite adoption must not perturb an island's own search stream: the
/// per-generation history of an island inside a campaign is identical
/// to the history of the same session run alone, because adoption
/// enters the memo and archive without consuming RNG draws or budget.
#[test]
fn migration_is_trajectory_neutral() {
    let generations = 5;
    let mut solo_eval = PlantedEvaluator::new("KRM");
    let mut solo = SearchBuilder::with_evaluator(&mut solo_eval, lenet_spec())
        .strategy(island_strategy(
            neural_dropout_search::campaign::island_seed(0xF00D, 0),
            generations,
        ))
        .aim(campaign_aim())
        .build()
        .unwrap();
    solo.run().unwrap();
    let solo_history = solo.history().to_vec();

    let mut evaluators = vec![PlantedEvaluator::new("KRM"), PlantedEvaluator::new("KRM")];
    let mut islands = build_islands(&mut evaluators, 0xF00D, generations);
    let mut campaign = Campaign::new(&mut islands, 1).unwrap();
    campaign.run().unwrap();
    assert_eq!(
        islands[0].history(),
        solo_history.as_slice(),
        "campaign island 0 must walk the exact trajectory it walks alone"
    );
}

#[test]
fn degenerate_campaigns_are_typed_errors() {
    let mut none: [SearchSession; 0] = [];
    assert!(Campaign::new(&mut none, 1).is_err(), "empty island set");

    let mut evaluators = vec![PlantedEvaluator::new("KRM")];
    let mut islands = build_islands(&mut evaluators, 1, 2);
    assert!(
        Campaign::new(&mut islands, 0).is_err(),
        "migrate_every == 0"
    );

    // Mismatched aims across islands cannot be scored together.
    let mut eval_a = PlantedEvaluator::new("KRM");
    let mut eval_b = PlantedEvaluator::new("KRM");
    let mut mixed = vec![
        SearchBuilder::with_evaluator(&mut eval_a, lenet_spec())
            .strategy(island_strategy(1, 2))
            .aim(SearchAim::accuracy_optimal())
            .build()
            .unwrap(),
        SearchBuilder::with_evaluator(&mut eval_b, lenet_spec())
            .strategy(island_strategy(2, 2))
            .aim(SearchAim::ece_optimal())
            .build()
            .unwrap(),
    ];
    assert!(Campaign::new(&mut mixed, 1).is_err(), "mismatched aims");
}

/// The manifest rejects foreign JSON and inconsistent topology with
/// typed errors (the directory protocol's version gate).
#[test]
fn manifest_gate_is_typed() {
    assert!(CampaignManifest::from_json("{\"format\": \"other\"}").is_err());
    let manifest = CampaignManifest {
        version: neural_dropout_search::campaign::CAMPAIGN_VERSION,
        islands: 2,
        migrate_every: 1,
        epoch: 0,
        progress: vec![0], // wrong length
    };
    assert!(manifest.validate().is_err());
}
