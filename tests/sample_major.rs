//! Sample-major ↔ round-major byte-identity bridge.
//!
//! The fused sample-major execution path (PR 8) folds the MC sample
//! dimension into the batch: one (S·B)-row pass per layer with a
//! precomputed per-sample mask bank, instead of S sequential passes.
//! Its whole value rests on one contract — **the bytes do not change**:
//! the fused pass must reproduce the round-major reference exactly, so
//! golden fixtures recorded round-major stay valid forever and the
//! execution knob is a pure scheduling choice.
//!
//! This suite is the permanent bridge pinning that contract at the
//! engine level, across the axes that could plausibly break it:
//!
//! * **ragged batch sizes** interacting with micro-batch chunking (the
//!   mask streams advance per batch item, so any chunking slip shifts
//!   every later item's masks);
//! * **every dropout design** (Bernoulli / Random / Block /
//!   Masksembles / Gaussian — each draws its masks differently, and
//!   Masksembles additionally carries a mask-set cursor across
//!   samples);
//! * **both numeric backends** (float and the quantized datapath, whose
//!   fused path quantizes through a tap at exactly the round-major
//!   points);
//! * **worker splits** (the CI `NDS_THREADS={1,4}` matrix re-runs this
//!   whole suite under both pool sizes).

use neural_dropout_search::dropout::{DropoutKind, DropoutLayer, DropoutSettings};
use neural_dropout_search::engine::{
    Backend, EngineBuilder, Execution, PredictRequest, UncertaintyEngine, UncertaintyFlags,
};
use neural_dropout_search::hw::simulator::quantize_network;
use neural_dropout_search::nn::arch::{FeatureShape, SlotInfo, SlotPosition};
use neural_dropout_search::nn::layers::{Conv2d, Flatten, Linear, Sequential};
use neural_dropout_search::quant::Q7_8;
use neural_dropout_search::tensor::conv::ConvGeometry;
use neural_dropout_search::tensor::rng::Rng64;
use neural_dropout_search::tensor::{Shape, Tensor};
use proptest::prelude::*;

/// A small net with one live dropout slot of the given design. Block is
/// conv-only, so it gets a conv trunk; every other kind rides the
/// fully-connected trunk.
fn net_with(kind: DropoutKind, seed: u64) -> Sequential {
    let mut rng = Rng64::new(seed);
    let settings = DropoutSettings {
        rate: 0.4,
        ..DropoutSettings::default()
    };
    let mut net = Sequential::new();
    if kind == DropoutKind::Block {
        net.push(Box::new(Conv2d::new(
            1,
            2,
            ConvGeometry::new(3, 1, 0),
            true,
            &mut rng,
        )));
        let slot = SlotInfo {
            id: 0,
            shape: FeatureShape::Map { c: 2, h: 2, w: 2 },
            position: SlotPosition::Conv,
        };
        net.push(Box::new(
            DropoutLayer::for_slot(kind, &slot, &settings, seed).unwrap(),
        ));
        net.push(Box::new(Flatten::new()));
        net.push(Box::new(Linear::new(8, 4, true, &mut rng)));
    } else {
        net.push(Box::new(Flatten::new()));
        net.push(Box::new(Linear::new(16, 12, true, &mut rng)));
        let slot = SlotInfo {
            id: 0,
            shape: FeatureShape::Vector { features: 12 },
            position: SlotPosition::FullyConnected,
        };
        net.push(Box::new(
            DropoutLayer::for_slot(kind, &slot, &settings, seed).unwrap(),
        ));
        net.push(Box::new(Linear::new(12, 4, true, &mut rng)));
    }
    net
}

fn images(seed: u64, n: usize) -> Tensor {
    let mut rng = Rng64::new(seed);
    Tensor::rand_normal(Shape::d4(n, 1, 4, 4), 0.0, 1.0, &mut rng)
}

fn engine_for(
    kind: DropoutKind,
    backend: &Backend,
    execution: Execution,
    seed: u64,
    samples: usize,
    workers: usize,
    chunk: usize,
) -> UncertaintyEngine {
    let mut net = net_with(kind, seed);
    if !matches!(backend, Backend::Float32) {
        quantize_network(&mut net, Q7_8);
    }
    EngineBuilder::new(net)
        .backend(backend.clone())
        .execution(execution)
        .samples(samples)
        .workers(workers)
        .chunk_size(chunk)
        .build()
}

const KINDS: [DropoutKind; 5] = [
    DropoutKind::Bernoulli,
    DropoutKind::Random,
    DropoutKind::Block,
    DropoutKind::Masksembles,
    DropoutKind::Gaussian,
];

/// Deterministic exhaustive sweep: every dropout design × both
/// backends, with diagnostics requested, so no design ever depends on
/// the proptest sampler to get covered.
#[test]
fn every_design_and_backend_is_execution_order_invariant() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        for backend in [Backend::Float32, Backend::quantized_q78()] {
            let seed = 40 + i as u64;
            let x = images(seed ^ 0xABCD, 5);
            let request = PredictRequest::new(&x).with_outputs(UncertaintyFlags::ALL);
            let mut round = engine_for(kind, &backend, Execution::RoundMajor, seed, 3, 1, 2);
            let mut fused = engine_for(kind, &backend, Execution::SampleMajor, seed, 3, 1, 2);
            let expect = round.predict(&request).unwrap();
            let got = fused.predict(&request).unwrap();
            assert_eq!(
                expect.probs.as_slice(),
                got.probs.as_slice(),
                "{kind:?}/{} diverged between execution orders",
                backend.label()
            );
            assert_eq!(expect.entropy, got.entropy, "{kind:?} entropy");
            assert_eq!(
                expect.mutual_information, got.mutual_information,
                "{kind:?} mutual information"
            );
            assert_eq!(expect.variance, got.variance, "{kind:?} variance");
        }
    }
}

/// A warm engine flipped between orders mid-stream serves the same
/// bytes either way — the mask-bank cache and the MC clone cache must
/// not leak state across the switch.
#[test]
fn switching_orders_on_a_warm_engine_is_invisible() {
    let x = images(77, 6);
    let mut engine = engine_for(
        DropoutKind::Masksembles,
        &Backend::Float32,
        Execution::RoundMajor,
        7,
        4,
        1,
        3,
    );
    let expect = engine.predict(&PredictRequest::new(&x)).unwrap();
    engine.set_execution(Execution::SampleMajor);
    let fused = engine.predict(&PredictRequest::new(&x)).unwrap();
    assert_eq!(expect.probs.as_slice(), fused.probs.as_slice());
    engine.set_execution(Execution::RoundMajor);
    let back = engine.predict(&PredictRequest::new(&x)).unwrap();
    assert_eq!(expect.probs.as_slice(), back.probs.as_slice());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The bridge property: for any (design, backend, ragged batch,
    /// chunking, sample count, worker split), sample-major fused
    /// execution is byte-identical to the round-major reference — and
    /// a second (cache-warm) fused round replays the same bytes.
    #[test]
    fn sample_major_matches_round_major_bytes(
        seed in 0u64..200,
        kind_ix in 0usize..5,
        backend_ix in 0usize..2,
        n in 1usize..9,
        chunk in 1usize..10,
        samples in 1usize..5,
        workers in 1usize..5,
    ) {
        let kind = KINDS[kind_ix];
        let backend = if backend_ix == 0 {
            Backend::Float32
        } else {
            Backend::quantized_q78()
        };
        let x = images(seed ^ 0xF00D, n);
        let mut round = engine_for(kind, &backend, Execution::RoundMajor, seed, samples, 1, n);
        let expect = round.predict(&PredictRequest::new(&x)).unwrap();
        let mut fused =
            engine_for(kind, &backend, Execution::SampleMajor, seed, samples, workers, chunk);
        let got = fused.predict(&PredictRequest::new(&x)).unwrap();
        prop_assert_eq!(
            expect.probs.as_slice(),
            got.probs.as_slice(),
            "{:?}/{} diverged (n={}, chunk={}, samples={}, workers={})",
            kind, backend.label(), n, chunk, samples, workers
        );
        let again = fused.predict(&PredictRequest::new(&x)).unwrap();
        prop_assert_eq!(
            expect.probs.as_slice(),
            again.probs.as_slice(),
            "warm mask-bank replay changed bytes"
        );
    }
}
