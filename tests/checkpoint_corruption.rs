//! Checkpoint corruption and recovery: any byte-level damage to a
//! search checkpoint must surface as a typed [`SearchError::Checkpoint`]
//! — never a panic — and the `.bak` rotation written by the atomic save
//! protocol must heal a corrupted primary byte for byte.

// Same waiver as `nds-search` itself: `SearchError` is a few bytes over
// clippy's 128-byte heuristic on a cold path.
#![allow(clippy::result_large_err)]

use neural_dropout_search::fault::FaultPlan;
use neural_dropout_search::search::{
    self, Candidate, CheckpointSource, SearchBuilder, SearchCheckpoint, SearchError, Strategy,
};
use neural_dropout_search::supernet::{CandidateMetrics, DropoutConfig, SupernetSpec};
use neural_dropout_search::{nn::zoo, search::EvolutionConfig};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serialises the tests that call [`SearchCheckpoint::save`]: the torn
/// write fault plan is process-global, so a concurrent clean save could
/// otherwise consume another test's injection.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

/// Deterministic synthetic evaluator — the checkpoint, not the
/// evaluator, carries all search state, so a plain function suffices.
struct SyntheticEvaluator;

impl search::Evaluator for SyntheticEvaluator {
    fn evaluate(&mut self, config: &DropoutConfig) -> search::Result<Candidate> {
        let spread = config.compact().bytes().map(u64::from).sum::<u64>() as f64;
        Ok(Candidate {
            config: config.clone(),
            metrics: CandidateMetrics {
                accuracy: (spread % 13.0) / 13.0,
                ece: 0.02 + (spread % 7.0) / 100.0,
                ape: 0.3 + (spread % 11.0) / 20.0,
            },
            latency_ms: 1.0 + (spread % 5.0) / 10.0,
        })
    }

    fn fresh_evaluations(&self) -> usize {
        0
    }
}

/// Two consecutive mid-run snapshots of the same session (after one and
/// two steps), so rotation tests have distinct known-good states.
fn snapshot_pair() -> (SearchCheckpoint, SearchCheckpoint) {
    let spec = SupernetSpec::paper_default(zoo::lenet(), 1).unwrap();
    let mut evaluator = SyntheticEvaluator;
    let mut session = SearchBuilder::with_evaluator(&mut evaluator, spec)
        .strategy(Strategy::Evolution(EvolutionConfig {
            population: 4,
            generations: 3,
            parents: 2,
            seed: 0xC0FFEE,
            ..Default::default()
        }))
        .build()
        .unwrap();
    session.step().unwrap();
    let first = session.snapshot();
    session.step().unwrap();
    let second = session.snapshot();
    (first, second)
}

fn checkpoint_json() -> &'static str {
    static JSON: OnceLock<String> = OnceLock::new();
    JSON.get_or_init(|| snapshot_pair().0.to_json())
}

#[test]
fn truncation_at_every_byte_offset_is_a_typed_error_never_a_panic() {
    let json = checkpoint_json();
    let bytes = json.as_bytes();
    // A prefix may end mid-UTF-8-sequence; lossy conversion models what
    // a reader of the torn file would feed the parser.
    for cut in 0..bytes.len() {
        let torn = String::from_utf8_lossy(&bytes[..cut]).into_owned();
        let outcome = catch_unwind(AssertUnwindSafe(|| SearchCheckpoint::from_json(&torn)));
        match outcome {
            Ok(Err(SearchError::Checkpoint(_))) => {}
            Ok(Err(other)) => panic!("cut at {cut}: wrong error type: {other:?}"),
            // A cut that only sheds trailing whitespace leaves the
            // document complete; anything shorter must fail typed.
            Ok(Ok(_)) => assert_eq!(
                torn.trim_end(),
                json.trim_end(),
                "cut at {cut}: a truncated checkpoint must not parse"
            ),
            Err(_) => panic!("cut at {cut}: the parser panicked on a truncated checkpoint"),
        }
    }
    // Sanity: the untruncated text still parses.
    assert!(SearchCheckpoint::from_json(json).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Single-bit flips anywhere in the serialised checkpoint must
    /// never panic the parser: either a typed checkpoint error, or — if
    /// the flip lands inside a numeric literal and stays syntactically
    /// valid — a clean parse of the (semantically different) state.
    #[test]
    fn single_bit_flips_never_panic_the_parser(pos in 0usize..1_000_000, bit in 0usize..8) {
        let json = checkpoint_json();
        let mut bytes = json.as_bytes().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        let outcome = catch_unwind(AssertUnwindSafe(|| SearchCheckpoint::from_json(&mutated)));
        match outcome {
            Ok(Ok(_)) | Ok(Err(SearchError::Checkpoint(_))) => {}
            Ok(Err(other)) => prop_assert!(false, "flip at {pos}.{bit}: wrong error type: {other:?}"),
            Err(_) => prop_assert!(false, "flip at {pos}.{bit}: parser panicked"),
        }
    }
}

#[test]
fn corrupted_primary_heals_from_the_backup_byte_identically() {
    let _serial = serial();
    let dir = std::env::temp_dir().join("nds_ckpt_backup_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cp.json");
    let (first, second) = snapshot_pair();
    assert_ne!(first.to_json(), second.to_json(), "distinct states");
    first.save(&path).unwrap();
    assert!(
        !SearchCheckpoint::backup_path(&path).exists(),
        "the first save has nothing to rotate"
    );
    second.save(&path).unwrap();
    // The rotation preserved the first save's exact bytes.
    let rotated = std::fs::read_to_string(SearchCheckpoint::backup_path(&path)).unwrap();
    assert_eq!(rotated, first.to_json());
    // An intact primary loads as Primary.
    let (loaded, source) = SearchCheckpoint::load_with_fallback(&path).unwrap();
    assert_eq!(source, CheckpointSource::Primary);
    assert_eq!(loaded.to_json(), second.to_json());
    // Corrupt the primary: the fallback serves the rotated state and
    // reports why the primary was unusable.
    std::fs::write(&path, "{ definitely not a checkpoint").unwrap();
    let (healed, source) = SearchCheckpoint::load_with_fallback(&path).unwrap();
    match source {
        CheckpointSource::Backup { primary_error } => {
            assert!(!primary_error.is_empty(), "the warning needs a cause");
        }
        other => panic!("expected a backup recovery, got {other:?}"),
    }
    assert_eq!(
        healed.to_json(),
        first.to_json(),
        "backup recovery must be byte-identical to the rotated save"
    );
    // With both files corrupted the failure is typed and names both.
    std::fs::write(SearchCheckpoint::backup_path(&path), "also garbage").unwrap();
    let err = SearchCheckpoint::load_with_fallback(&path).unwrap_err();
    match err {
        SearchError::Checkpoint(msg) => {
            assert!(msg.contains("checkpoint unrecoverable"), "{msg}");
            assert!(msg.contains("primary failed"), "{msg}");
            assert!(msg.contains("backup failed"), "{msg}");
        }
        other => panic!("expected a checkpoint error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_torn_write_is_survivable_via_the_rotation() {
    let _serial = serial();
    let dir = std::env::temp_dir().join("nds_ckpt_torn_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cp.json");
    let (first, second) = snapshot_pair();
    first.save(&path).unwrap();
    second.save(&path).unwrap(); // rotates `first` into cp.json.bak
                                 // A torn write models a crash mid-save *without* the atomic
                                 // protocol: the primary ends up truncated in place.
    let injected = FaultPlan::new(29).torn_checkpoint_at(40).activate();
    second.save(&path).unwrap();
    drop(injected);
    let torn = std::fs::read_to_string(&path).unwrap();
    assert_eq!(torn.len(), 40, "the fault must actually tear the write");
    assert!(matches!(
        SearchCheckpoint::load(&path),
        Err(SearchError::Checkpoint(_))
    ));
    // The rotation still holds the last complete pre-crash state.
    let (healed, source) = SearchCheckpoint::load_with_fallback(&path).unwrap();
    assert!(matches!(source, CheckpointSource::Backup { .. }));
    assert_eq!(healed.to_json(), first.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}
