//! Regression tests for zero-copy shared-weight inference.
//!
//! The Monte-Carlo engine and the population evaluator clone whole
//! networks per worker; since PR 2 those clones share the caller's
//! weights through copy-on-write [`SharedTensor`] storage. These tests
//! pin the sharing down with pointer identity and reference counts so a
//! future refactor cannot silently reintroduce per-worker weight copies
//! — and verify the flip side, that training a fork detaches its weights
//! instead of corrupting the original's.

use neural_dropout_search::engine::{EngineBuilder, PredictRequest};
use neural_dropout_search::nn::optim::Sgd;
use neural_dropout_search::nn::{zoo, Layer, Mode};
use neural_dropout_search::supernet::{Supernet, SupernetSpec};
use neural_dropout_search::tensor::rng::Rng64;
use neural_dropout_search::tensor::{Shape, SharedTensor, Tensor};

fn lenet_supernet(seed: u64) -> Supernet {
    let spec = SupernetSpec::paper_default(zoo::lenet(), seed).unwrap();
    Supernet::build(&spec).unwrap()
}

#[test]
fn network_clones_share_every_weight_allocation() {
    let mut supernet = lenet_supernet(1);
    let net = supernet.net_mut();
    let clone = net.clone();
    let originals = net.params();
    let cloned = clone.params();
    assert_eq!(originals.len(), cloned.len());
    for (a, b) in originals.iter().zip(cloned.iter()) {
        assert!(
            SharedTensor::ptr_eq(&a.value, &b.value),
            "clone_box must share weight storage, not copy it"
        );
    }
}

#[test]
fn supernet_fork_shares_weights_without_copying() {
    let mut original = lenet_supernet(2);
    let baseline: Vec<usize> = original
        .net_mut()
        .params()
        .iter()
        .map(|p| p.value.strong_count())
        .collect();
    let mut fork = original.fork().unwrap();
    for ((a, b), &before) in original
        .net_mut()
        .params()
        .iter()
        .zip(fork.net_mut().params())
        .zip(baseline.iter())
    {
        assert!(
            SharedTensor::ptr_eq(&a.value, &b.value),
            "fork must share weight storage"
        );
        assert_eq!(
            a.value.strong_count(),
            before + 1,
            "fork adds exactly one handle per weight, no hidden copies"
        );
    }
}

#[test]
fn engine_rounds_leave_caller_weight_storage_untouched() {
    // The engine runs every pass on clones of its own clone of the
    // caller's network; with shared storage the caller's parameter
    // allocations must come back byte- and pointer-identical — proof
    // that no path wrote to (and therefore copy-on-write-detached) the
    // weights, and none were reallocated.
    let mut supernet = lenet_supernet(3);
    let before: Vec<SharedTensor> = supernet
        .net_mut()
        .params()
        .iter()
        .map(|p| p.value.clone())
        .collect();
    let mut rng = Rng64::new(4);
    let images = Tensor::rand_normal(Shape::d4(6, 1, 28, 28), 0.0, 1.0, &mut rng);
    let mut engine = EngineBuilder::new(supernet.net_mut().clone())
        .samples(4)
        .workers(3)
        .chunk_size(3)
        .build();
    let response = engine.predict(&PredictRequest::new(&images)).unwrap();
    assert_eq!(response.achieved_samples, 4);
    drop(engine); // releases the engine's net plus its worker clone cache
    for (p, held) in supernet.net_mut().params().iter().zip(before.iter()) {
        assert!(
            SharedTensor::ptr_eq(&p.value, held),
            "an MC round must not detach or reallocate the caller's weights"
        );
        assert_eq!(
            p.value.strong_count(),
            2, // the param itself + the handle this test holds
            "engine and worker clones must all have been dropped without copying"
        );
    }
}

#[test]
fn training_after_fork_mutates_only_the_owners_weights() {
    let mut original = lenet_supernet(5);
    let mut fork = original.fork().unwrap();
    let frozen: Vec<Vec<f32>> = original
        .net_mut()
        .params()
        .iter()
        .map(|p| p.value.as_slice().to_vec())
        .collect();
    // One SGD step on the fork with a synthetic gradient.
    {
        let mut params = fork.net_mut().params_mut();
        for p in params.iter_mut() {
            p.grad = Tensor::full(p.value.shape().clone(), 1.0).into();
        }
        Sgd::new(0.1).step(&mut params);
    }
    // The fork's weights moved and detached; the original's did not move.
    for ((a, b), before) in original
        .net_mut()
        .params()
        .iter()
        .zip(fork.net_mut().params())
        .zip(frozen.iter())
    {
        assert!(
            !SharedTensor::ptr_eq(&a.value, &b.value),
            "the trained fork must own detached weight storage"
        );
        assert_eq!(
            a.value.as_slice(),
            before.as_slice(),
            "training the fork must not change the original's weights"
        );
        assert_ne!(
            b.value.as_slice(),
            before.as_slice(),
            "the fork's weights must actually have been updated"
        );
    }
    // And the detached fork still runs.
    let x = Tensor::zeros(Shape::d4(1, 1, 28, 28));
    let logits = fork.net_mut().forward(&x, Mode::Standard).unwrap();
    assert_eq!(logits.shape().dims(), &[1, 10]);
}

#[test]
fn shared_and_deep_copied_nets_predict_identical_bytes() {
    // The Arc-sharing path must be invisible to the numerics: a fork
    // (shared weights) and a manually deep-copied network produce the
    // same bytes from the same MC round.
    let mut original = lenet_supernet(6);
    let mut fork = original.fork().unwrap();
    let mut deep = lenet_supernet(6);
    let weights: Vec<Tensor> = original
        .net_mut()
        .params()
        .iter()
        .map(|p| (*p.value).clone()) // force a real copy through Deref
        .collect();
    for (dst, src) in deep.net_mut().params_mut().into_iter().zip(weights) {
        dst.value = src.into();
    }
    let mut rng = Rng64::new(7);
    let images = Tensor::rand_normal(Shape::d4(5, 1, 28, 28), 0.0, 1.0, &mut rng);
    let request = PredictRequest::new(&images);
    let mut shared_engine = EngineBuilder::new(fork.net_mut().clone())
        .samples(3)
        .chunk_size(2)
        .build();
    let mut deep_engine = EngineBuilder::new(deep.net_mut().clone())
        .samples(3)
        .chunk_size(2)
        .build();
    let shared_pred = shared_engine.predict(&request).unwrap();
    let deep_pred = deep_engine.predict(&request).unwrap();
    assert_eq!(shared_pred.probs.as_slice(), deep_pred.probs.as_slice());
}
