//! Smoke tests for the `nds` command-line binary.

use std::process::Command;

fn nds(args: &[&str]) -> (bool, String, String) {
    let (code, stdout, stderr) = nds_status(args);
    (code == Some(0), stdout, stderr)
}

/// Like [`nds`] but exposing the exit code: 0 success, 1 runtime
/// failure, 2 usage error.
fn nds_status(args: &[&str]) -> (Option<i32>, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_nds"))
        .args(args)
        .output()
        .expect("nds binary runs");
    (
        output.status.code(),
        String::from_utf8_lossy(&output.stdout).to_string(),
        String::from_utf8_lossy(&output.stderr).to_string(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = nds(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("analyze"));
}

#[test]
fn space_lists_the_paper_space() {
    let (ok, stdout, _) = nds(&["space", "--arch", "lenet"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("32 configurations"), "{stdout}");
    assert!(stdout.contains("slot 2"), "{stdout}");
    // Extended space is bigger and mentions G.
    let (ok, stdout, _) = nds(&["space", "--arch", "lenet", "--extended"]);
    assert!(ok);
    assert!(stdout.contains("75 configurations"), "{stdout}");
    assert!(stdout.contains("G"), "{stdout}");
}

#[test]
fn analyze_prints_a_report() {
    let (ok, stdout, _) = nds(&["analyze", "--arch", "lenet", "--config", "RRB"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("C-synthesis report"), "{stdout}");
    assert!(stdout.contains("Total power"), "{stdout}");
    // Spatial mapping flag is accepted and lowers latency.
    let (ok, spatial, _) = nds(&["analyze", "--arch", "lenet", "--config", "RRB", "--spatial"]);
    assert!(ok);
    let latency = |s: &str| -> f64 {
        s.lines()
            .find(|l| l.contains("latency"))
            .and_then(|l| l.split("latency ").nth(1))
            .and_then(|l| l.split(" ms").next())
            .and_then(|v| v.parse().ok())
            .expect("report contains a latency figure")
    };
    assert!(latency(&spatial) < latency(&stdout));
}

#[test]
fn hls_writes_a_project() {
    let dir = std::env::temp_dir().join("nds_cli_hls_test");
    let _ = std::fs::remove_dir_all(&dir);
    let (ok, stdout, _) = nds(&[
        "hls",
        "--arch",
        "lenet",
        "--config",
        "BBB",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}");
    assert!(dir.join("firmware/nnet_dropout.h").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn vit_space_and_analysis_work() {
    let (ok, stdout, _) = nds(&["space", "--arch", "vit"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("16 configurations"), "{stdout}");
    assert!(
        stdout.contains("16x1x16"),
        "token-sequence slot shape: {stdout}"
    );
    let (ok, stdout, _) = nds(&["analyze", "--arch", "vit", "--config", "KM"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("encoder_attention"), "{stdout}");
    assert!(stdout.contains("patch_embed"), "{stdout}");
}

#[test]
fn search_stop_resume_reproduces_the_uninterrupted_summary() {
    let dir = std::env::temp_dir().join("nds_cli_search_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let checkpoint = dir.join("cp.json");
    let base = [
        "search",
        "--arch",
        "lenet",
        "--epochs",
        "1",
        "--train",
        "96",
        "--val",
        "32",
        "--generations",
        "3",
        "--population",
        "5",
        "--parents",
        "2",
        "--seed",
        "11",
    ];
    let (ok, full, err) = nds(&base);
    assert!(ok, "{full}\n{err}");
    assert!(full.contains("winner"), "{full}");
    fn with<'a>(base: &[&'a str], extra: &[&'a str]) -> Vec<&'a str> {
        let mut args: Vec<&'a str> = base.to_vec();
        args.extend_from_slice(extra);
        args
    }
    let cp = checkpoint.to_str().unwrap();
    let (ok, _, err) = nds(&with(&base, &["--checkpoint", cp, "--stop-after", "1"]));
    assert!(ok, "{err}");
    assert!(checkpoint.exists(), "checkpoint file written");
    let (ok, resumed, err) = nds(&with(&base, &["--checkpoint", cp, "--resume"]));
    assert!(ok, "{err}");
    // The full-precision final summaries must be byte-identical.
    let summary = |s: &str| {
        s.lines()
            .skip_while(|l| !l.starts_with("-- search result --"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert!(!summary(&full).is_empty());
    assert_eq!(
        summary(&full),
        summary(&resumed),
        "resumed summary must equal the uninterrupted one byte for byte"
    );
    // A corrupted primary now heals from the .bak rotation the earlier
    // saves left behind: the resume succeeds, warns, and still lands on
    // the byte-identical summary (the backup holds the after-step-1
    // snapshot, so the resumed run replays the same remaining steps).
    let backup = dir.join("cp.json.bak");
    assert!(backup.exists(), "save must rotate the previous checkpoint");
    std::fs::write(&checkpoint, "{ not a checkpoint").unwrap();
    let (ok, healed, stderr) = nds(&with(&base, &["--checkpoint", cp, "--resume"]));
    assert!(ok, "{stderr}");
    assert!(
        stderr.contains("resumed from last-good backup"),
        "backup fallback must warn: {stderr}"
    );
    assert_eq!(
        summary(&full),
        summary(&healed),
        "backup-resumed summary must equal the uninterrupted one"
    );
    // With primary AND backup corrupted the failure is a clean typed
    // runtime error (exit 1), never a panic.
    std::fs::write(&checkpoint, "{ not a checkpoint").unwrap();
    std::fs::write(&backup, "also garbage").unwrap();
    let (code, _, stderr) = nds_status(&with(&base, &["--checkpoint", cp, "--resume"]));
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("checkpoint unrecoverable"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn search_survives_sigkill_and_resumes_from_periodic_checkpoint() {
    use std::process::Stdio;
    let dir = std::env::temp_dir().join("nds_cli_sigkill_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let checkpoint = dir.join("cp.json");
    let cp = checkpoint.to_str().unwrap();
    let base = [
        "search",
        "--arch",
        "lenet",
        "--epochs",
        "1",
        "--train",
        "96",
        "--val",
        "32",
        "--generations",
        "3",
        "--population",
        "5",
        "--parents",
        "2",
        "--seed",
        "11",
    ];
    fn with<'a>(base: &[&'a str], extra: &[&'a str]) -> Vec<&'a str> {
        let mut args: Vec<&'a str> = base.to_vec();
        args.extend_from_slice(extra);
        args
    }
    let (ok, full, err) = nds(&base);
    assert!(ok, "{full}\n{err}");
    // Start an identical run that checkpoints after every step, and
    // SIGKILL it as soon as the first checkpoint lands on disk — no
    // flushing, no atexit, the hard crash the atomic save protocol is
    // built for.
    let mut child = Command::new(env!("CARGO_BIN_EXE_nds"))
        .args(with(
            &base,
            &["--checkpoint", cp, "--checkpoint-every", "1"],
        ))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("nds binary spawns");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    while !checkpoint.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "no checkpoint appeared before the deadline"
        );
        if child.try_wait().expect("child pollable").is_some() {
            break; // finished before we could kill it: resume still works
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let _ = child.kill(); // SIGKILL on unix
    let _ = child.wait();
    let (ok, resumed, err) = nds(&with(&base, &["--checkpoint", cp, "--resume"]));
    assert!(ok, "{err}");
    let summary = |s: &str| {
        s.lines()
            .skip_while(|l| !l.starts_with("-- search result --"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert!(!summary(&full).is_empty());
    assert_eq!(
        summary(&full),
        summary(&resumed),
        "post-SIGKILL resume must reproduce the uninterrupted summary"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_input_fails_with_usage() {
    let (code, _, stderr) = nds_status(&["frobnicate"]);
    assert_eq!(code, Some(2), "usage errors exit 2: {stderr}");
    assert!(stderr.contains("unknown command"), "{stderr}");
    assert!(stderr.contains("USAGE"), "{stderr}");
    let (code, _, stderr) = nds_status(&["analyze", "--arch", "lenet"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("--config is required"), "{stderr}");
    let (code, _, stderr) = nds_status(&["analyze", "--arch", "lenet", "--config", "XYZ"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("unknown dropout code"), "{stderr}");
    let (code, _, stderr) = nds_status(&["search", "--resume"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("--resume needs --checkpoint"), "{stderr}");
}

#[test]
fn adaptive_flags_reject_bad_values_before_any_work() {
    // Satellite of the PR 6 rejects-vs-faults policy: a malformed gate
    // is a usage error (exit 2, usage dumped, nothing computed), never
    // a mid-run fault. `f64::from_str` happily parses "inf"/"nan", so
    // these must be caught by explicit validation, not the parser.
    let eval = ["eval", "--arch", "lenet", "--config", "RKM"];
    let bad: &[&[&str]] = &[
        &["--adaptive", "nan"],
        &["--adaptive", "inf"],
        &["--adaptive", "-inf"],
        &["--adaptive", "-0.5"],
        &["--adaptive", "bogus"],
        &["--adaptive", "0.5", "--gate", "bogus"],
        &["--adaptive", "0.5", "--pilot", "0"],
        &["--adaptive", "0.5", "--gate", "top-var", "--pilot", "1"],
        &["--gate", "entropy"],
        &["--pilot", "2"],
    ];
    for extra in bad {
        let args: Vec<&str> = eval.iter().chain(extra.iter()).copied().collect();
        let (code, stdout, stderr) = nds_status(&args);
        assert_eq!(code, Some(2), "{extra:?} must exit 2: {stderr}");
        assert!(stderr.contains("USAGE"), "{extra:?}: {stderr}");
        assert!(
            stdout.is_empty(),
            "{extra:?} must fail before any work starts: {stdout}"
        );
        // The same family guards serve-bench.
        let args: Vec<&str> = ["serve-bench"]
            .iter()
            .chain(extra.iter())
            .copied()
            .collect();
        let (code, stdout, _) = nds_status(&args);
        assert_eq!(code, Some(2), "serve-bench {extra:?} must exit 2");
        assert!(stdout.is_empty(), "serve-bench {extra:?} started work");
    }
}

#[test]
fn adaptive_eval_reports_the_gate_after_the_pinned_lines() {
    let (ok, stdout, stderr) = nds(&[
        "eval",
        "--arch",
        "lenet",
        "--config",
        "RKM",
        "--seed",
        "11",
        "--adaptive",
        "0.5",
    ]);
    assert!(ok, "{stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    let gate = lines
        .iter()
        .position(|l| l.starts_with("adaptive gate=entropy"))
        .expect("gate line present");
    let probs = lines
        .iter()
        .position(|l| l.starts_with("probs[0]"))
        .expect("probs line present");
    assert!(
        gate > probs,
        "gating report must print after the golden-pinned lines: {stdout}"
    );
    assert!(
        lines.iter().any(|l| l.starts_with("escalation id")),
        "{stdout}"
    );
    assert!(
        lines.iter().any(|l| l.starts_with("escalation ood")),
        "{stdout}"
    );
}

#[test]
fn runtime_failures_exit_1_without_usage_dump() {
    // A well-formed invocation whose work fails: writing the HLS
    // project under a path blocked by a regular file.
    let dir = std::env::temp_dir().join("nds_cli_exit_code_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, "a file, not a directory").unwrap();
    let out = blocker.join("sub");
    let (code, _, stderr) = nds_status(&[
        "hls",
        "--arch",
        "lenet",
        "--config",
        "BBB",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(1), "runtime errors exit 1: {stderr}");
    assert!(
        !stderr.contains("USAGE"),
        "runtime errors must not dump usage: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
