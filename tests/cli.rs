//! Smoke tests for the `nds` command-line binary.

use std::process::Command;

fn nds(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_nds"))
        .args(args)
        .output()
        .expect("nds binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).to_string(),
        String::from_utf8_lossy(&output.stderr).to_string(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = nds(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("analyze"));
}

#[test]
fn space_lists_the_paper_space() {
    let (ok, stdout, _) = nds(&["space", "--arch", "lenet"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("32 configurations"), "{stdout}");
    assert!(stdout.contains("slot 2"), "{stdout}");
    // Extended space is bigger and mentions G.
    let (ok, stdout, _) = nds(&["space", "--arch", "lenet", "--extended"]);
    assert!(ok);
    assert!(stdout.contains("75 configurations"), "{stdout}");
    assert!(stdout.contains("G"), "{stdout}");
}

#[test]
fn analyze_prints_a_report() {
    let (ok, stdout, _) = nds(&["analyze", "--arch", "lenet", "--config", "RRB"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("C-synthesis report"), "{stdout}");
    assert!(stdout.contains("Total power"), "{stdout}");
    // Spatial mapping flag is accepted and lowers latency.
    let (ok, spatial, _) = nds(&["analyze", "--arch", "lenet", "--config", "RRB", "--spatial"]);
    assert!(ok);
    let latency = |s: &str| -> f64 {
        s.lines()
            .find(|l| l.contains("latency"))
            .and_then(|l| l.split("latency ").nth(1))
            .and_then(|l| l.split(" ms").next())
            .and_then(|v| v.parse().ok())
            .expect("report contains a latency figure")
    };
    assert!(latency(&spatial) < latency(&stdout));
}

#[test]
fn hls_writes_a_project() {
    let dir = std::env::temp_dir().join("nds_cli_hls_test");
    let _ = std::fs::remove_dir_all(&dir);
    let (ok, stdout, _) = nds(&[
        "hls",
        "--arch",
        "lenet",
        "--config",
        "BBB",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}");
    assert!(dir.join("firmware/nnet_dropout.h").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn vit_space_and_analysis_work() {
    let (ok, stdout, _) = nds(&["space", "--arch", "vit"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("16 configurations"), "{stdout}");
    assert!(
        stdout.contains("16x1x16"),
        "token-sequence slot shape: {stdout}"
    );
    let (ok, stdout, _) = nds(&["analyze", "--arch", "vit", "--config", "KM"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("encoder_attention"), "{stdout}");
    assert!(stdout.contains("patch_embed"), "{stdout}");
}

#[test]
fn search_stop_resume_reproduces_the_uninterrupted_summary() {
    let dir = std::env::temp_dir().join("nds_cli_search_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let checkpoint = dir.join("cp.json");
    let base = [
        "search",
        "--arch",
        "lenet",
        "--epochs",
        "1",
        "--train",
        "96",
        "--val",
        "32",
        "--generations",
        "3",
        "--population",
        "5",
        "--parents",
        "2",
        "--seed",
        "11",
    ];
    let (ok, full, err) = nds(&base);
    assert!(ok, "{full}\n{err}");
    assert!(full.contains("winner"), "{full}");
    fn with<'a>(base: &[&'a str], extra: &[&'a str]) -> Vec<&'a str> {
        let mut args: Vec<&'a str> = base.to_vec();
        args.extend_from_slice(extra);
        args
    }
    let cp = checkpoint.to_str().unwrap();
    let (ok, _, err) = nds(&with(&base, &["--checkpoint", cp, "--stop-after", "1"]));
    assert!(ok, "{err}");
    assert!(checkpoint.exists(), "checkpoint file written");
    let (ok, resumed, err) = nds(&with(&base, &["--checkpoint", cp, "--resume"]));
    assert!(ok, "{err}");
    // The full-precision final summaries must be byte-identical.
    let summary = |s: &str| {
        s.lines()
            .skip_while(|l| !l.starts_with("-- search result --"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert!(!summary(&full).is_empty());
    assert_eq!(
        summary(&full),
        summary(&resumed),
        "resumed summary must equal the uninterrupted one byte for byte"
    );
    // A corrupted checkpoint is a clean error, not a panic.
    std::fs::write(&checkpoint, "{ not a checkpoint").unwrap();
    let (ok, _, stderr) = nds(&with(&base, &["--checkpoint", cp, "--resume"]));
    assert!(!ok);
    assert!(stderr.contains("checkpoint"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_input_fails_with_usage() {
    let (ok, _, stderr) = nds(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");
    let (ok, _, stderr) = nds(&["analyze", "--arch", "lenet"]);
    assert!(!ok);
    assert!(stderr.contains("--config is required"), "{stderr}");
    let (ok, _, stderr) = nds(&["analyze", "--arch", "lenet", "--config", "XYZ"]);
    assert!(!ok);
    assert!(stderr.contains("unknown dropout code"), "{stderr}");
}
