//! Serving front-end integration: dynamic batching must be invisible
//! in the bytes, and the server must survive real concurrency.
//!
//! The load-bearing property is **batch-1 equivalence**: whatever
//! micro-batches the dispatcher forms — ragged request sizes, mixed
//! uncertainty flags, interleaved tenants, jittered arrivals — every
//! response is byte-identical to serving the same request alone on a
//! standalone `UncertaintyEngine` with the tenant's spec. The server
//! coalesces at the dispatch level (it never concatenates tensors), so
//! this holds by construction; these tests pin it against regressions.

use neural_dropout_search::adaptive::AdaptivePolicy;
use neural_dropout_search::dropout::{DropoutKind, DropoutLayer, DropoutSettings};
use neural_dropout_search::engine::{
    EngineBuilder, PredictRequest, UncertaintyEngine, UncertaintyFlags,
};
use neural_dropout_search::nn::arch::{FeatureShape, SlotInfo, SlotPosition};
use neural_dropout_search::nn::layers::{Flatten, Linear, Sequential};
use neural_dropout_search::serve::{ServeRequest, ServerBuilder, TenantSpec};
use neural_dropout_search::tensor::rng::Rng64;
use neural_dropout_search::tensor::{Shape, Tensor};
use proptest::prelude::*;

/// A small network with a live dropout layer: mask-stream positions are
/// observable in the bytes, so any coalescing that perturbed a stream
/// would fail the equivalence assertions.
fn stochastic_net(seed: u64) -> Sequential {
    let mut rng = Rng64::new(seed);
    let mut net = Sequential::new();
    net.push(Box::new(Flatten::new()));
    net.push(Box::new(Linear::new(16, 12, true, &mut rng)));
    let slot = SlotInfo {
        id: 0,
        shape: FeatureShape::Vector { features: 12 },
        position: SlotPosition::FullyConnected,
    };
    net.push(Box::new(
        DropoutLayer::for_slot(
            DropoutKind::Bernoulli,
            &slot,
            &DropoutSettings {
                rate: 0.4,
                ..DropoutSettings::default()
            },
            seed,
        )
        .unwrap(),
    ));
    net.push(Box::new(Linear::new(12, 4, true, &mut rng)));
    net
}

fn images(seed: u64, n: usize) -> Tensor {
    let mut rng = Rng64::new(seed);
    Tensor::rand_normal(Shape::d4(n, 1, 4, 4), 0.0, 1.0, &mut rng)
}

/// Maps a 3-bit selector onto an uncertainty-flag combination.
fn flags_from_bits(bits: u8) -> UncertaintyFlags {
    let mut flags = UncertaintyFlags::NONE;
    if bits & 1 != 0 {
        flags = flags | UncertaintyFlags::ENTROPY;
    }
    if bits & 2 != 0 {
        flags = flags | UncertaintyFlags::MUTUAL_INFORMATION;
    }
    if bits & 4 != 0 {
        flags = flags | UncertaintyFlags::VARIANCE;
    }
    flags
}

/// The three tenant specs every equivalence test shares: distinct
/// seeds and sample counts, so misrouting a request to the wrong
/// tenant's engine changes bytes.
const TENANTS: [TenantSpec; 3] = [
    TenantSpec {
        seed: 0,
        samples: 3,
        adaptive: AdaptivePolicy::disabled(),
    },
    TenantSpec {
        seed: 101,
        samples: 2,
        adaptive: AdaptivePolicy::disabled(),
    },
    TenantSpec {
        seed: 202,
        samples: 4,
        adaptive: AdaptivePolicy::disabled(),
    },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dynamic batching is byte-invisible: under ragged request sizes,
    /// mixed flags, interleaved tenants and jittered arrival order,
    /// every served response equals the standalone engine's bytes for
    /// the same (tenant spec, input, flags).
    #[test]
    fn dynamic_batching_is_byte_identical_to_batch_1(
        case_seed in 0u64..10_000,
        request_count in 2usize..9,
        max_batch in 1usize..7,
        jitter in 0u64..3,
    ) {
        let net = stochastic_net(42);
        let mut builder = ServerBuilder::new(net.clone())
            .max_batch(max_batch)
            .max_wait_ms(0.5);
        let tenant_ids: Vec<_> = TENANTS.iter().map(|s| builder.tenant(s.clone())).collect();
        let server = builder.build();

        // Derive each request's shape from the case seed: tenant,
        // ragged batch size, flag mix, and an arrival-jitter pause.
        let mut rng = Rng64::new(case_seed);
        let plans: Vec<(usize, usize, u8, u64)> = (0..request_count)
            .map(|_| {
                (
                    (rng.next_u64() % TENANTS.len() as u64) as usize,
                    1 + (rng.next_u64() % 5) as usize,
                    (rng.next_u64() % 8) as u8,
                    rng.next_u64() % (jitter * 200 + 1),
                )
            })
            .collect();

        let tickets: Vec<_> = plans
            .iter()
            .enumerate()
            .map(|(i, &(tenant, n, bits, pause_us))| {
                if pause_us > 0 {
                    std::thread::sleep(std::time::Duration::from_micros(pause_us));
                }
                let request = ServeRequest::new(images(case_seed + i as u64, n))
                    .with_outputs(flags_from_bits(bits));
                server.submit(tenant_ids[tenant], request).unwrap()
            })
            .collect();
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        server.shutdown();

        // Batch-1 reference: a standalone engine per tenant. Engine
        // bytes depend only on (net, seed, samples, input, flags) —
        // never on what ran before — so one engine per tenant serves
        // as the reference for all of that tenant's requests.
        let mut reference: Vec<UncertaintyEngine> = TENANTS
            .iter()
            .map(|spec| {
                EngineBuilder::new(net.clone())
                    .seed(spec.seed)
                    .samples(spec.samples)
                    .build()
            })
            .collect();
        for (i, (&(tenant, n, bits, _), served)) in
            plans.iter().zip(responses.iter()).enumerate()
        {
            let x = images(case_seed + i as u64, n);
            let direct = reference[tenant]
                .predict(&PredictRequest::new(&x).with_outputs(flags_from_bits(bits)))
                .unwrap();
            prop_assert_eq!(served.tenant, tenant_ids[tenant]);
            prop_assert!(served.timing.batch_size >= 1 && served.timing.batch_size <= max_batch);
            prop_assert_eq!(
                served.prediction.probs.as_slice(),
                direct.probs.as_slice(),
                "request {} (tenant {}, n {}): batched probs differ from batch-1",
                i,
                tenant,
                n
            );
            prop_assert_eq!(&served.prediction.entropy, &direct.entropy);
            prop_assert_eq!(
                &served.prediction.mutual_information,
                &direct.mutual_information
            );
            prop_assert_eq!(&served.prediction.variance, &direct.variance);
            prop_assert_eq!(
                served.prediction.achieved_samples,
                TENANTS[tenant].samples
            );
        }
    }
}

/// Many client threads hammering one server: every submission is
/// answered exactly once with the right tenant's bytes, and shutdown
/// is clean with nothing dropped. This is the CI smoke for the
/// multi-threaded serving path (`NDS_THREADS` governs the engine
/// worker pool underneath; the client threads here are on top).
#[test]
fn concurrent_clients_all_get_their_own_answers() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 6;

    let net = stochastic_net(7);
    let mut builder = ServerBuilder::new(net.clone())
        .max_batch(4)
        .max_wait_ms(0.5);
    let tenant_ids: Vec<_> = TENANTS.iter().map(|s| builder.tenant(s.clone())).collect();
    let server = builder.build();

    let responses = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let server = &server;
                let tenant_ids = &tenant_ids;
                scope.spawn(move || {
                    (0..PER_CLIENT)
                        .map(|i| {
                            let tenant = (client + i) % TENANTS.len();
                            let n = 1 + (client + i) % 4;
                            let request =
                                ServeRequest::new(images((client * PER_CLIENT + i) as u64, n))
                                    .with_outputs(UncertaintyFlags::ENTROPY);
                            let response = server
                                .submit(tenant_ids[tenant], request)
                                .unwrap()
                                .wait()
                                .unwrap();
                            (client, i, tenant, n, response)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });
    server.shutdown();

    assert_eq!(responses.len(), CLIENTS * PER_CLIENT, "no response dropped");
    let mut reference: Vec<UncertaintyEngine> = TENANTS
        .iter()
        .map(|spec| {
            EngineBuilder::new(net.clone())
                .seed(spec.seed)
                .samples(spec.samples)
                .build()
        })
        .collect();
    for (client, i, tenant, n, response) in responses {
        let x = images((client * PER_CLIENT + i) as u64, n);
        let direct = reference[tenant]
            .predict(&PredictRequest::new(&x).with_outputs(UncertaintyFlags::ENTROPY))
            .unwrap();
        assert_eq!(response.tenant, tenant_ids[tenant]);
        assert_eq!(
            response.prediction.probs.as_slice(),
            direct.probs.as_slice(),
            "client {client} request {i}: response bytes must match batch-1"
        );
        assert_eq!(response.prediction.entropy, direct.entropy);
    }
}
