//! Property-based tests over the workspace's core invariants.

use neural_dropout_search::dropout::masks::{
    bernoulli_mask, block_mask, drop_fraction, random_mask,
};
use neural_dropout_search::dropout::masksembles::MaskSet;
use neural_dropout_search::gp::{GpRegressor, Kernel};
use neural_dropout_search::metrics::{accuracy, average_predictive_entropy, ece, EceConfig};
use neural_dropout_search::quant::{dequantize_slice, quantize_slice, Fixed, Q7_8};
use neural_dropout_search::supernet::DropoutConfig;
use neural_dropout_search::tensor::rng::Rng64;
use neural_dropout_search::tensor::{Shape, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- fixed point -----------------------------------------------------

    /// Quantisation error never exceeds half an LSB inside the
    /// representable range.
    #[test]
    fn q78_round_trip_error_is_bounded(v in -127.0f32..127.0) {
        let q = Fixed::from_f32(v, Q7_8);
        prop_assert!((q.to_f32() - v).abs() <= Q7_8.resolution() / 2.0 + 1e-7);
    }

    /// Values beyond the rails saturate instead of wrapping.
    #[test]
    fn q78_saturates_out_of_range(v in 200.0f32..1e6) {
        prop_assert_eq!(Fixed::from_f32(v, Q7_8).raw(), i16::MAX);
        prop_assert_eq!(Fixed::from_f32(-v, Q7_8).raw(), i16::MIN);
    }

    /// Slice quantisation round-trips through raw words losslessly.
    #[test]
    fn quantize_slice_round_trips(vs in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
        let raw = quantize_slice(&vs, Q7_8);
        let back = dequantize_slice(&raw, Q7_8);
        let again = quantize_slice(&back, Q7_8);
        prop_assert_eq!(raw, again, "second round trip must be exact");
    }

    /// Fixed-point multiplication commutes.
    #[test]
    fn fixed_mul_commutes(a in -80.0f32..80.0, b in -1.5f32..1.5) {
        let fa = Fixed::from_f32(a, Q7_8);
        let fb = Fixed::from_f32(b, Q7_8);
        prop_assert_eq!(fa * fb, fb * fa);
    }

    // ---- masks -------------------------------------------------------------

    /// Bernoulli masks contain only 0 and the inverted-dropout scale, and
    /// empirical drop fraction is sane.
    #[test]
    fn bernoulli_mask_values(seed in 0u64..1000, rate in 0.0f32..0.9) {
        let mut rng = Rng64::new(seed);
        let mask = bernoulli_mask(256, rate, &mut rng);
        let scale = 1.0 / (1.0 - rate);
        prop_assert!(mask.iter().all(|&v| v == 0.0 || (v - scale).abs() < 1e-5));
        prop_assert!(drop_fraction(&mask) <= 1.0);
    }

    /// Random masks drop exactly floor(rate * n) and preserve the mean.
    #[test]
    fn random_mask_exact_count(seed in 0u64..1000, rate in 0.0f32..0.9, n in 1usize..256) {
        let mut rng = Rng64::new(seed);
        let mask = random_mask(n, rate, &mut rng);
        let dropped = mask.iter().filter(|&&v| v == 0.0).count();
        prop_assert_eq!(dropped, ((rate as f64) * n as f64).floor() as usize);
        if dropped < n {
            let mean: f64 = mask.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
            prop_assert!((mean - 1.0).abs() < 1e-5);
        }
    }

    /// Block masks never produce negative or non-finite entries.
    #[test]
    fn block_mask_entries_valid(seed in 0u64..500, rate in 0.0f32..0.6, hw in 4usize..20) {
        let mut rng = Rng64::new(seed);
        let mask = block_mask(hw, hw, rate, 3, &mut rng);
        prop_assert_eq!(mask.len(), hw * hw);
        prop_assert!(mask.iter().all(|&v| v.is_finite() && v >= 0.0));
    }

    /// Masksembles: every mask keeps something and preserves the mean.
    #[test]
    fn masksembles_masks_preserve_mean(seed in 0u64..500, features in 2usize..96, scale in 1.0f64..3.5) {
        let mut rng = Rng64::new(seed);
        let set = MaskSet::generate(3, features, scale, &mut rng);
        for i in 0..set.len() {
            let mask = set.mask(i);
            let kept = mask.iter().filter(|&&v| v > 0.0).count();
            prop_assert!(kept > 0);
            let mean: f64 = mask.iter().map(|&v| v as f64).sum::<f64>() / features as f64;
            prop_assert!((mean - 1.0).abs() < 1e-5);
        }
    }

    // ---- configs -----------------------------------------------------------

    /// Config display/parse round-trips for arbitrary code strings.
    #[test]
    fn config_round_trips(codes in proptest::collection::vec(0usize..4, 1..8)) {
        let kinds: Vec<_> = codes
            .iter()
            .map(|&i| neural_dropout_search::dropout::DropoutKind::all()[i])
            .collect();
        let config = DropoutConfig::new(kinds);
        let display = config.to_string();
        let parsed: DropoutConfig = display.parse().unwrap();
        prop_assert_eq!(&parsed, &config);
        let compact: DropoutConfig = config.compact().parse().unwrap();
        prop_assert_eq!(&compact, &config);
    }

    // ---- metrics -----------------------------------------------------------

    /// On random probability rows: accuracy in [0,1], ECE in [0,1], and
    /// aPE within [0, ln C].
    #[test]
    fn metric_ranges(seed in 0u64..1000, n in 1usize..40) {
        let classes = 5;
        let mut rng = Rng64::new(seed);
        let mut data = Vec::with_capacity(n * classes);
        for _ in 0..n {
            let mut row: Vec<f32> = (0..classes).map(|_| rng.uniform_f32() + 1e-3).collect();
            let sum: f32 = row.iter().sum();
            row.iter_mut().for_each(|v| *v /= sum);
            data.extend(row);
        }
        let probs = Tensor::from_vec(data, Shape::d2(n, classes)).unwrap();
        let labels: Vec<usize> = (0..n).map(|_| rng.below(classes)).collect();
        let acc = accuracy(&probs, &labels).unwrap();
        prop_assert!((0.0..=1.0).contains(&acc));
        let calibration = ece(&probs, &labels, EceConfig::default()).unwrap();
        prop_assert!((0.0..=1.0).contains(&calibration));
        let ape = average_predictive_entropy(&probs).unwrap();
        prop_assert!(ape >= 0.0 && ape <= (classes as f64).ln() + 1e-9);
    }

    // ---- tensor / RNG --------------------------------------------------------

    /// Shape offsets enumerate exactly 0..len once.
    #[test]
    fn shape_offsets_are_a_bijection(c in 1usize..5, h in 1usize..6, w in 1usize..6) {
        let shape = Shape::d3(c, h, w);
        let mut seen = vec![false; shape.len()];
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    let off = shape.offset(&[ci, hi, wi]).unwrap();
                    prop_assert!(!seen[off]);
                    seen[off] = true;
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// sample_indices returns a sorted unique k-subset.
    #[test]
    fn sample_indices_properties(seed in 0u64..1000, n in 1usize..128, frac in 0.0f64..1.0) {
        let k = ((n as f64) * frac) as usize;
        let mut rng = Rng64::new(seed);
        let ix = rng.sample_indices(n, k);
        prop_assert_eq!(ix.len(), k);
        prop_assert!(ix.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(ix.iter().all(|&i| i < n));
    }

    // ---- pruning -----------------------------------------------------------

    /// Magnitude pruning achieves the requested sparsity within one weight
    /// per tensor, and never touches rank-1 parameters.
    #[test]
    fn pruning_respects_fraction(seed in 0u64..300, sparsity in 0.0f64..1.0) {
        use neural_dropout_search::nn::layers::{Conv2d, Linear, Flatten, Sequential};
        use neural_dropout_search::nn::prune::{measured_sparsity, prune_magnitude};
        use neural_dropout_search::nn::Layer as _;
        use neural_dropout_search::tensor::conv::ConvGeometry;
        let mut rng = Rng64::new(seed);
        let mut net = Sequential::new();
        net.push(Box::new(Conv2d::new(1, 4, ConvGeometry::new(3, 1, 1), true, &mut rng)));
        net.push(Box::new(Flatten::new()));
        net.push(Box::new(Linear::new(4 * 6 * 6, 5, true, &mut rng)));
        let bias_before: Vec<f32> = net
            .params()
            .iter()
            .filter(|p| p.value.shape().rank() < 2)
            .flat_map(|p| p.value.as_slice().to_vec())
            .collect();
        let stats = prune_magnitude(&mut net, sparsity);
        // Per-tensor floor() rounding: at most one weight per tensor short.
        prop_assert!(stats.pruned <= (sparsity * stats.total as f64).ceil() as usize + 2);
        prop_assert!((measured_sparsity(&net) - stats.sparsity()).abs() < 1e-9);
        let bias_after: Vec<f32> = net
            .params()
            .iter()
            .filter(|p| p.value.shape().rank() < 2)
            .flat_map(|p| p.value.as_slice().to_vec())
            .collect();
        prop_assert_eq!(bias_before, bias_after);
    }

    /// Capturing and re-applying a prune mask is idempotent: a second
    /// reapply changes nothing, and sparsity is preserved exactly.
    #[test]
    fn prune_mask_reapply_is_idempotent(seed in 0u64..300, sparsity in 0.1f64..0.9) {
        use neural_dropout_search::nn::layers::{Linear, Flatten, Sequential};
        use neural_dropout_search::nn::prune::{measured_sparsity, prune_magnitude, PruneMask};
        use neural_dropout_search::nn::Layer as _;
        let mut rng = Rng64::new(seed);
        let mut net = Sequential::new();
        net.push(Box::new(Flatten::new()));
        net.push(Box::new(Linear::new(32, 16, true, &mut rng)));
        prune_magnitude(&mut net, sparsity);
        let mask = PruneMask::capture(&net);
        for p in net.params_mut() {
            p.value.map_inplace(|v| v + 0.5);
        }
        mask.reapply(&mut net);
        let once: Vec<f32> = net.params().iter().flat_map(|p| p.value.as_slice().to_vec()).collect();
        mask.reapply(&mut net);
        let twice: Vec<f32> = net.params().iter().flat_map(|p| p.value.as_slice().to_vec()).collect();
        prop_assert_eq!(once, twice);
        prop_assert!((measured_sparsity(&net) - mask.sparsity()).abs() < 1e-9);
    }

    // ---- hypervolume ---------------------------------------------------------

    /// Hypervolume is monotone: adding any point never decreases it, and
    /// adding a dominated point never changes it.
    #[test]
    fn hypervolume_monotonicity(
        seed in 0u64..500,
        n in 1usize..8,
    ) {
        use neural_dropout_search::search::pareto::{dominates, figure4_objectives, hypervolume};
        use neural_dropout_search::search::Candidate;
        use neural_dropout_search::supernet::CandidateMetrics;
        use neural_dropout_search::dropout::DropoutKind;
        let mut rng = Rng64::new(seed);
        let mk = |rng: &mut Rng64| Candidate {
            config: DropoutConfig::uniform(DropoutKind::Bernoulli, 1),
            metrics: CandidateMetrics {
                accuracy: rng.uniform(),
                ece: rng.uniform(),
                ape: rng.uniform() * 2.3,
            },
            latency_ms: 1.0,
        };
        let points: Vec<Candidate> = (0..n).map(|_| mk(&mut rng)).collect();
        let extra = mk(&mut rng);
        let objectives = figure4_objectives();
        let reference = [0.0, 1.0, 0.0];
        let base = hypervolume(&points, &objectives, &reference);
        let mut extended = points.clone();
        extended.push(extra.clone());
        let grown = hypervolume(&extended, &objectives, &reference);
        prop_assert!(grown >= base - 1e-12, "HV shrank: {base} -> {grown}");
        if points.iter().any(|p| dominates(p, &extra, &objectives)) {
            prop_assert!((grown - base).abs() < 1e-12, "dominated point changed HV");
        }
    }

    /// The hypervolume of a single point is the product of its oriented
    /// distances to the reference.
    #[test]
    fn hypervolume_single_point_is_box_volume(
        acc in 0.01f64..1.0,
        ece in 0.0f64..0.99,
        ape in 0.01f64..2.0,
    ) {
        use neural_dropout_search::search::pareto::{figure4_objectives, hypervolume};
        use neural_dropout_search::search::Candidate;
        use neural_dropout_search::supernet::CandidateMetrics;
        use neural_dropout_search::dropout::DropoutKind;
        let point = Candidate {
            config: DropoutConfig::uniform(DropoutKind::Bernoulli, 1),
            metrics: CandidateMetrics { accuracy: acc, ece, ape },
            latency_ms: 1.0,
        };
        let hv = hypervolume(&[point], &figure4_objectives(), &[0.0, 1.0, 0.0]);
        let expected = acc * (1.0 - ece) * ape;
        prop_assert!((hv - expected).abs() < 1e-9, "hv {hv} expected {expected}");
    }

    // ---- batch-norm accumulation ----------------------------------------------

    /// Accumulated (pooled) statistics equal the statistics of the
    /// concatenated batches regardless of how the data is split.
    #[test]
    fn bn_accumulation_is_split_invariant(seed in 0u64..300, split in 1usize..7) {
        use neural_dropout_search::nn::layers::BatchNorm2d;
        use neural_dropout_search::nn::{Layer as _, Mode};
        let mut rng = Rng64::new(seed);
        let n = 8usize;
        let x = Tensor::rand_normal(Shape::d4(n, 1, 2, 2), 1.5, 2.0, &mut rng);
        // One shot.
        let mut bn_whole = BatchNorm2d::new(1);
        bn_whole.begin_stat_accumulation();
        bn_whole.forward(&x, Mode::Train).unwrap();
        prop_assert!(bn_whole.finish_stat_accumulation());
        // Split at `split`.
        let split = split.min(n - 1);
        let items = 4;
        let a = Tensor::from_vec(x.as_slice()[..split * items].to_vec(), Shape::d4(split, 1, 2, 2)).unwrap();
        let b = Tensor::from_vec(x.as_slice()[split * items..].to_vec(), Shape::d4(n - split, 1, 2, 2)).unwrap();
        let mut bn_split = BatchNorm2d::new(1);
        bn_split.begin_stat_accumulation();
        bn_split.forward(&a, Mode::Train).unwrap();
        bn_split.forward(&b, Mode::Train).unwrap();
        prop_assert!(bn_split.finish_stat_accumulation());
        prop_assert!((bn_whole.running_mean()[0] - bn_split.running_mean()[0]).abs() < 1e-4);
        prop_assert!((bn_whole.running_var()[0] - bn_split.running_var()[0]).abs() < 1e-3);
    }

    // ---- attention ---------------------------------------------------------

    /// Self-attention is permutation-equivariant for any weights and any
    /// token swap (no positional encoding in this design).
    #[test]
    fn attention_permutation_equivariance(seed in 0u64..300, a in 0usize..5, b in 0usize..5) {
        use neural_dropout_search::nn::layers::MultiHeadAttention;
        use neural_dropout_search::nn::{Layer as _, Mode};
        let (t, d) = (5usize, 8usize);
        let mut rng = Rng64::new(seed);
        let mut attn = MultiHeadAttention::new(d, 2, &mut rng);
        let x = Tensor::rand_normal(Shape::d4(1, t, 1, d), 0.0, 1.0, &mut rng);
        let y = attn.forward(&x, Mode::Train).unwrap();
        let mut xp = x.clone();
        for k in 0..d {
            let va = x.as_slice()[a * d + k];
            let vb = x.as_slice()[b * d + k];
            xp.as_mut_slice()[a * d + k] = vb;
            xp.as_mut_slice()[b * d + k] = va;
        }
        let yp = attn.forward(&xp, Mode::Train).unwrap();
        for k in 0..d {
            prop_assert!((y.as_slice()[a * d + k] - yp.as_slice()[b * d + k]).abs() < 1e-4);
            prop_assert!((y.as_slice()[b * d + k] - yp.as_slice()[a * d + k]).abs() < 1e-4);
        }
    }

    /// Layer norm output rows always have mean ~0 / var ~1 under unit
    /// affine parameters, for any input distribution.
    #[test]
    fn layer_norm_always_normalizes(seed in 0u64..300, mean in -10.0f32..10.0, std in 0.1f32..5.0) {
        use neural_dropout_search::nn::layers::LayerNorm;
        use neural_dropout_search::nn::{Layer as _, Mode};
        let d = 8usize;
        let mut ln = LayerNorm::new(d);
        let mut rng = Rng64::new(seed);
        let x = Tensor::rand_normal(Shape::d4(2, 3, 1, d), mean, std, &mut rng);
        let y = ln.forward(&x, Mode::Train).unwrap();
        for r in 0..6 {
            let row = &y.as_slice()[r * d..(r + 1) * d];
            let m: f32 = row.iter().sum::<f32>() / d as f32;
            let v: f32 = row.iter().map(|&u| (u - m) * (u - m)).sum::<f32>() / d as f32;
            prop_assert!(m.abs() < 1e-3, "row {r} mean {m}");
            prop_assert!((v - 1.0).abs() < 2e-2, "row {r} var {v}");
        }
    }

    // ---- Monte-Carlo inference ---------------------------------------------

    /// MC prediction is byte-identical between a serial engine and any
    /// parallel fan-out, for any seed and sampling number — the
    /// guarantee the parallel sampling engine is built around.
    #[test]
    fn mc_predict_parallel_equals_serial(
        seed in 0u64..400,
        samples in 1usize..6,
        workers in 2usize..6,
        kind_ix in 0usize..4,
    ) {
        use neural_dropout_search::dropout::{DropoutKind, DropoutLayer, DropoutSettings};
        use neural_dropout_search::engine::{EngineBuilder, PredictRequest};
        use neural_dropout_search::nn::arch::{FeatureShape, SlotInfo, SlotPosition};
        use neural_dropout_search::nn::layers::{Flatten, Linear, Sequential};

        let kind = [
            DropoutKind::Bernoulli,
            DropoutKind::Random,
            DropoutKind::Gaussian,
            DropoutKind::Masksembles,
        ][kind_ix];
        let build = || {
            let mut rng = Rng64::new(seed);
            let mut net = Sequential::new();
            net.push(Box::new(Flatten::new()));
            net.push(Box::new(Linear::new(16, 10, true, &mut rng)));
            let slot = SlotInfo {
                id: 0,
                shape: FeatureShape::Vector { features: 10 },
                position: SlotPosition::FullyConnected,
            };
            net.push(Box::new(
                DropoutLayer::for_slot(
                    kind,
                    &slot,
                    &DropoutSettings { rate: 0.4, ..DropoutSettings::default() },
                    seed ^ 0xD0,
                )
                .unwrap(),
            ));
            net.push(Box::new(Linear::new(10, 3, true, &mut rng)));
            net
        };
        let mut rng = Rng64::new(seed ^ 0xA11CE);
        let x = Tensor::rand_normal(Shape::d4(4, 1, 4, 4), 0.0, 1.0, &mut rng);
        let request = PredictRequest::new(&x);
        let mut serial_engine = EngineBuilder::new(build())
            .samples(samples)
            .workers(1)
            .chunk_size(2)
            .build();
        let serial = serial_engine.predict(&request).unwrap();
        let mut parallel_engine = EngineBuilder::new(build())
            .samples(samples)
            .workers(workers)
            .chunk_size(2)
            .build();
        let parallel = parallel_engine.predict(&request).unwrap();
        prop_assert_eq!(serial.probs.as_slice(), parallel.probs.as_slice());
    }

    // ---- GP --------------------------------------------------------------------

    /// GP predictive variance is non-negative everywhere and the mean
    /// interpolates training targets under tiny noise.
    #[test]
    fn gp_basic_soundness(seed in 0u64..200) {
        let mut rng = Rng64::new(seed);
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 + rng.uniform() * 0.3]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 0.7).sin()).collect();
        let gp = GpRegressor::fit(
            &xs,
            &ys,
            Kernel::Matern52 { lengthscale: 1.0, variance: 1.0 },
            1e-8,
        )
        .unwrap();
        for (x, &y) in xs.iter().zip(ys.iter()) {
            let (mean, var) = gp.predict(x);
            prop_assert!(var >= 0.0);
            prop_assert!((mean - y).abs() < 1e-2);
        }
        let (_, var_far) = gp.predict(&[1e3]);
        prop_assert!(var_far >= 0.0);
    }
}
