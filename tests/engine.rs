//! `UncertaintyEngine` integration suite: the unified serving facade's
//! scheduling and caching can never change the bytes it serves.
//!
//! Four groups of guarantees, all **engine-vs-engine golden checks** (a
//! serial one-shot engine is the reference computation; the benches and
//! `perf_baseline` migrated off the deprecated free-function wrappers,
//! whose own byte-stability is pinned in their home crates):
//!
//! 1. **Worker splits** — any explicit worker split produces the same
//!    bytes as the serial reference engine (the CI `NDS_THREADS={1,4}`
//!    matrix re-runs this whole suite under both pool sizes, covering
//!    the pool dimension too).
//! 2. **Uncertainty diagnostics** — entropy / mutual information /
//!    variance are exactly equal across scheduling choices and obey
//!    their analytic invariants.
//! 3. **Chunked streaming** — property test: engine-chosen micro-batch
//!    execution is byte-identical to one-shot execution across ragged
//!    batch sizes, all three backends, and worker counts.
//! 4. **Clone-cache staleness** — weight mutations (copy-on-write
//!    detach), batch-norm running-stat updates and structural surgery
//!    (push or same-count swap, via the `Sequential` structural epoch)
//!    all invalidate the persistent worker clones, so cached parallel
//!    rounds can never serve stale state.

use neural_dropout_search::dropout::{DropoutKind, DropoutLayer, DropoutSettings};
use neural_dropout_search::engine::{
    Backend, EngineBuilder, PredictRequest, SimPlatform, UncertaintyEngine, UncertaintyFlags,
};
use neural_dropout_search::hw::simulator::quantize_network;
use neural_dropout_search::nn::arch::{FeatureShape, SlotInfo, SlotPosition};
use neural_dropout_search::nn::layers::{BatchNorm2d, Flatten, Linear, Sequential};
use neural_dropout_search::nn::Layer;
use neural_dropout_search::quant::Q7_8;
use neural_dropout_search::tensor::rng::Rng64;
use neural_dropout_search::tensor::{Shape, Tensor};
use proptest::prelude::*;

/// A small stochastic net: Flatten → Linear → Bernoulli dropout → Linear.
fn stochastic_net(seed: u64) -> Sequential {
    let mut rng = Rng64::new(seed);
    let mut net = Sequential::new();
    net.push(Box::new(Flatten::new()));
    net.push(Box::new(Linear::new(16, 12, true, &mut rng)));
    let slot = SlotInfo {
        id: 0,
        shape: FeatureShape::Vector { features: 12 },
        position: SlotPosition::FullyConnected,
    };
    net.push(Box::new(
        DropoutLayer::for_slot(
            DropoutKind::Bernoulli,
            &slot,
            &DropoutSettings {
                rate: 0.5,
                ..DropoutSettings::default()
            },
            seed,
        )
        .unwrap(),
    ));
    net.push(Box::new(Linear::new(12, 4, true, &mut rng)));
    net
}

/// Same net with a batch-norm in front — running statistics are the one
/// piece of inference state pointer identity cannot fingerprint.
fn bn_net(seed: u64) -> Sequential {
    let mut inner = stochastic_net(seed);
    let mut layers: Vec<Box<dyn Layer>> = vec![Box::new(BatchNorm2d::new(1))];
    for layer in inner.layers_mut() {
        layers.push(layer.clone_box());
    }
    layers.into_iter().collect()
}

fn images(seed: u64, n: usize) -> Tensor {
    let mut rng = Rng64::new(seed);
    Tensor::rand_normal(Shape::d4(n, 1, 4, 4), 0.0, 1.0, &mut rng)
}

#[test]
fn engine_float_backend_worker_splits_are_byte_identical() {
    let x = images(2, 5);
    // Golden reference: serial one-shot execution of the same network.
    let mut reference = EngineBuilder::new(stochastic_net(1))
        .samples(4)
        .workers(1)
        .chunk_size(5)
        .build();
    let expect = reference.predict(&PredictRequest::new(&x)).unwrap();
    for workers in [2, 4, 8] {
        let mut engine = EngineBuilder::new(stochastic_net(1))
            .samples(4)
            .workers(workers)
            .chunk_size(2)
            .build();
        let resp = engine.predict(&PredictRequest::new(&x)).unwrap();
        assert_eq!(
            expect.probs.as_slice(),
            resp.probs.as_slice(),
            "parallel engine diverged from the serial reference at {workers} workers"
        );
    }
}

#[test]
fn engine_uncertainty_outputs_are_schedule_invariant_and_consistent() {
    let x = images(4, 6);
    // Golden reference: serial one-shot; candidate: parallel + chunked.
    let mut reference = EngineBuilder::new(stochastic_net(3))
        .samples(5)
        .workers(1)
        .chunk_size(6)
        .build();
    let expect = reference
        .predict(&PredictRequest::new(&x).with_outputs(UncertaintyFlags::ALL))
        .unwrap();
    let mut engine = EngineBuilder::new(stochastic_net(3))
        .samples(5)
        .workers(4)
        .chunk_size(2)
        .build();
    let resp = engine
        .predict(&PredictRequest::new(&x).with_outputs(UncertaintyFlags::ALL))
        .unwrap();
    assert_eq!(expect.probs.as_slice(), resp.probs.as_slice());
    assert_eq!(
        expect.entropy, resp.entropy,
        "entropy must be exactly schedule-invariant"
    );
    assert_eq!(
        expect.mutual_information, resp.mutual_information,
        "mutual information must be exactly schedule-invariant"
    );
    assert_eq!(
        expect.variance, resp.variance,
        "variance must be exactly schedule-invariant"
    );
    // Analytic invariants: all diagnostics non-negative, and mutual
    // information (epistemic part) can never exceed total entropy.
    let entropy = resp.entropy.unwrap();
    let mi = resp.mutual_information.unwrap();
    let variance = resp.variance.unwrap();
    for i in 0..entropy.len() {
        assert!(entropy[i] >= 0.0);
        assert!((0.0..=entropy[i] + 1e-12).contains(&mi[i]));
        assert!(variance[i] >= 0.0);
    }
}

#[test]
fn engine_quantized_backend_worker_splits_are_byte_identical() {
    let x = images(6, 5);
    let quantized_engine = |workers: usize, chunk: usize| {
        let mut net = stochastic_net(5);
        quantize_network(&mut net, Q7_8);
        EngineBuilder::new(net)
            .backend(Backend::quantized_q78())
            .samples(3)
            .workers(workers)
            .chunk_size(chunk)
            .build()
    };
    let expect = quantized_engine(1, 5)
        .predict(&PredictRequest::new(&x))
        .unwrap();
    for workers in [3, 4] {
        let resp = quantized_engine(workers, 2)
            .predict(&PredictRequest::new(&x))
            .unwrap();
        assert_eq!(
            expect.probs.as_slice(),
            resp.probs.as_slice(),
            "quantized engine diverged from the serial reference at {workers} workers"
        );
    }
}

#[test]
fn hw_sim_backend_matches_quantized_bytes_and_adds_timing() {
    let x = images(8, 4);
    let mut quantized = EngineBuilder::new(stochastic_net(7))
        .backend(Backend::quantized_q78())
        .samples(3)
        .build();
    let mut hw_sim = EngineBuilder::new(stochastic_net(7))
        .backend(Backend::HwSim(SimPlatform {
            name: "XCKU115 (modelled)".to_string(),
            format: Q7_8,
            latency_ms_per_image: 0.905,
        }))
        .samples(3)
        .build();
    let q = quantized.predict(&PredictRequest::new(&x)).unwrap();
    let h = hw_sim.predict(&PredictRequest::new(&x)).unwrap();
    assert_eq!(
        q.probs.as_slice(),
        h.probs.as_slice(),
        "hw-sim must compute through the same datapath as quantized"
    );
    assert_eq!(q.timing.modelled_latency_ms, None);
    let modelled = h.timing.modelled_latency_ms.unwrap();
    assert!((modelled - 4.0 * 0.905).abs() < 1e-12);
    assert_eq!(h.timing.backend, "hw-sim");
}

#[test]
fn weight_mutation_invalidates_cached_parallel_clones() {
    // Populate the clone cache with a parallel round, mutate the weights
    // (copy-on-write detach), and check the next parallel round equals a
    // fresh engine's serial answer — i.e. the cache rebuilt instead of
    // serving the pre-mutation weights.
    let x = images(10, 4);
    let mut engine = EngineBuilder::new(stochastic_net(9))
        .samples(4)
        .workers(4)
        .build();
    let before = engine.predict(&PredictRequest::new(&x)).unwrap();
    for param in engine.net_mut().params_mut() {
        param.value.map_inplace(|v| v * 1.5);
    }
    let after = engine.predict(&PredictRequest::new(&x)).unwrap();
    assert_ne!(
        before.probs.as_slice(),
        after.probs.as_slice(),
        "scaled weights must change the prediction"
    );
    let mut fresh_net = stochastic_net(9);
    for param in fresh_net.params_mut() {
        param.value.map_inplace(|v| v * 1.5);
    }
    let mut fresh = EngineBuilder::new(fresh_net).samples(4).workers(1).build();
    let expect = fresh.predict(&PredictRequest::new(&x)).unwrap();
    assert_eq!(
        expect.probs.as_slice(),
        after.probs.as_slice(),
        "cached parallel round must equal a fresh serial computation"
    );
}

#[test]
fn layer_push_invalidates_cached_parallel_clones() {
    // Pushing a parameterless layer changes neither weight pointers nor
    // batch-norm epochs; the top-level layer-count fingerprint must
    // still invalidate the cached clones.
    use neural_dropout_search::nn::layers::Relu;
    let x = images(14, 4);
    let mut engine = EngineBuilder::new(stochastic_net(13))
        .samples(4)
        .workers(4)
        .build();
    let before = engine.predict(&PredictRequest::new(&x)).unwrap();
    engine.net_mut().push(Box::new(Relu::new()));
    let after = engine.predict(&PredictRequest::new(&x)).unwrap();
    assert_ne!(
        before.probs.as_slice(),
        after.probs.as_slice(),
        "a ReLU on the logits must change the softmax"
    );
    let mut fresh_net = stochastic_net(13);
    fresh_net.push(Box::new(Relu::new()));
    let mut fresh = EngineBuilder::new(fresh_net).samples(4).workers(1).build();
    let expect = fresh.predict(&PredictRequest::new(&x)).unwrap();
    assert_eq!(
        expect.probs.as_slice(),
        after.probs.as_slice(),
        "cached clones must not serve the pre-surgery architecture"
    );
}

#[test]
fn same_count_layer_swap_invalidates_cached_parallel_clones() {
    // Replacing one parameterless layer with another keeps the layer
    // count, every weight pointer and every batch-norm epoch identical —
    // historically the one edit that required a manual
    // `invalidate_cache`. The `Sequential` structural epoch (bumped by
    // the `layers_mut` borrow) must now catch it automatically.
    use neural_dropout_search::nn::layers::{Identity, Relu};
    let x = images(16, 4);
    let with_tail = |tail: Box<dyn Layer>| -> Sequential {
        let mut net = stochastic_net(15);
        net.push(tail);
        net
    };
    let mut engine = EngineBuilder::new(with_tail(Box::new(Relu::new())))
        .samples(4)
        .workers(4)
        .build();
    let before = engine.predict(&PredictRequest::new(&x)).unwrap();
    let last = engine.net_mut().len() - 1;
    engine.net_mut().layers_mut()[last] = Box::new(Identity::new());
    let after = engine.predict(&PredictRequest::new(&x)).unwrap();
    assert_ne!(
        before.probs.as_slice(),
        after.probs.as_slice(),
        "dropping the logits ReLU must change the softmax"
    );
    let mut fresh = EngineBuilder::new(with_tail(Box::new(Identity::new())))
        .samples(4)
        .workers(1)
        .build();
    let expect = fresh.predict(&PredictRequest::new(&x)).unwrap();
    assert_eq!(
        expect.probs.as_slice(),
        after.probs.as_slice(),
        "cached clones must not survive a same-count layer swap"
    );
}

#[test]
fn batch_norm_stat_update_invalidates_cached_parallel_clones() {
    // Batch-norm running stats are plain vectors — invisible to weight
    // pointer identity. The stats-epoch fingerprint must catch the
    // update and rebuild the cached clones.
    let x = images(12, 4);
    let mut engine = EngineBuilder::new(bn_net(11)).samples(4).workers(4).build();
    let before = engine.predict(&PredictRequest::new(&x)).unwrap();
    let shift = |net: &mut Sequential| {
        net.visit_batch_norms(&mut |bn| {
            let mean: Vec<f32> = bn.running_mean().iter().map(|m| m + 0.75).collect();
            let var: Vec<f32> = bn.running_var().iter().map(|v| v * 2.0).collect();
            bn.set_running_stats(&mean, &var);
        });
    };
    shift(engine.net_mut());
    let after = engine.predict(&PredictRequest::new(&x)).unwrap();
    assert_ne!(
        before.probs.as_slice(),
        after.probs.as_slice(),
        "shifted running stats must change the prediction"
    );
    let mut fresh_net = bn_net(11);
    shift(&mut fresh_net);
    let mut fresh = EngineBuilder::new(fresh_net).samples(4).workers(1).build();
    let expect = fresh.predict(&PredictRequest::new(&x)).unwrap();
    assert_eq!(
        expect.probs.as_slice(),
        after.probs.as_slice(),
        "stale batch-norm clones must not survive in the cache"
    );
}

/// One-shot reference vs chunked/parallel execution for a given backend.
fn engine_for(
    backend: &Backend,
    seed: u64,
    samples: usize,
    workers: usize,
    chunk: usize,
) -> UncertaintyEngine {
    let mut net = stochastic_net(seed);
    if !matches!(backend, Backend::Float32) {
        quantize_network(&mut net, Q7_8);
    }
    EngineBuilder::new(net)
        .backend(backend.clone())
        .samples(samples)
        .workers(workers)
        .chunk_size(chunk)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chunked/streaming execution is byte-identical to one-shot
    /// execution across ragged batch sizes, all three backends, and
    /// worker counts — the engine's streaming contract.
    #[test]
    fn chunked_streaming_is_byte_identical_to_one_shot(
        seed in 0u64..200,
        n in 1usize..9,
        chunk in 1usize..10,
        samples in 1usize..5,
        workers in 1usize..5,
        backend_ix in 0usize..3,
    ) {
        let backend = match backend_ix {
            0 => Backend::Float32,
            1 => Backend::quantized_q78(),
            _ => Backend::HwSim(SimPlatform {
                name: "prop".to_string(),
                format: Q7_8,
                latency_ms_per_image: 1.0,
            }),
        };
        let x = images(seed ^ 0xC0FFEE, n);
        // One-shot: the whole batch in a single micro-batch, serial.
        let mut reference = engine_for(&backend, seed, samples, 1, n);
        let expect = reference.predict(&PredictRequest::new(&x)).unwrap();
        // Chunked + parallel: engine-chosen micro-batches, worker split.
        let mut streamed = engine_for(&backend, seed, samples, workers, chunk);
        let got = streamed.predict(&PredictRequest::new(&x)).unwrap();
        prop_assert_eq!(
            expect.probs.as_slice(),
            got.probs.as_slice(),
            "backend {} diverged (n={}, chunk={}, workers={})",
            backend.label(), n, chunk, workers
        );
        // A second round through the (now warm) caches: same bytes.
        let again = streamed.predict(&PredictRequest::new(&x)).unwrap();
        prop_assert_eq!(expect.probs.as_slice(), again.probs.as_slice());
    }
}
