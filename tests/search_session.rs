//! `SearchSession` integration suite: the unified search API is the sole
//! entry point to the search phase (the legacy `evolve` / `random_search`
//! / `evaluate_all` free functions are gone), and its checkpoint/resume
//! must be byte-exact.
//!
//! Three groups of guarantees:
//!
//! 1. **Run determinism** — rebuilding a session with the same strategy,
//!    aim and seed reproduces byte-identical results (best candidate,
//!    archive order and contents, per-generation history) with the same
//!    evaluation budget; exhaustive runs follow `enumerate` order.
//! 2. **Resume determinism** — property test: snapshotting after *k*
//!    steps, serialising through the JSON checkpoint format, and
//!    resuming with a *fresh* evaluator reproduces the uninterrupted
//!    run byte for byte (the CI `NDS_THREADS={1,4}` matrix re-runs this
//!    under both pool sizes). Exercised over synthetic evaluators and
//!    over a real supernet rebuilt from its spec — the process-restart
//!    scenario.
//! 3. **Typed checkpoint failures** — corrupted JSON and version
//!    mismatches surface as `SearchError::Checkpoint`, never a panic.

use neural_dropout_search::data::{mnist_like, DatasetConfig};
use neural_dropout_search::search::{
    Candidate, Evaluator, EvolutionConfig, EvolutionResult, GenerationStats, RandomSearchConfig,
    SearchAim, SearchBuilder, SearchError, SearchEvent, SearchOutcome, Strategy,
};
use neural_dropout_search::supernet::{CandidateMetrics, DropoutConfig, Supernet, SupernetSpec};
use neural_dropout_search::{nn::zoo, search};
use proptest::prelude::*;
use std::collections::HashMap;

/// Synthetic evaluator with a planted optimum (accuracy = fraction of
/// slots matching a target config); deterministic and memoised like the
/// real supernet evaluator.
struct PlantedEvaluator {
    target: DropoutConfig,
    fresh: usize,
    cache: HashMap<String, Candidate>,
}

impl PlantedEvaluator {
    fn new(target: &str) -> Self {
        PlantedEvaluator {
            target: target.parse().unwrap(),
            fresh: 0,
            cache: HashMap::new(),
        }
    }
}

impl Evaluator for PlantedEvaluator {
    fn evaluate(&mut self, config: &DropoutConfig) -> search::Result<Candidate> {
        if let Some(hit) = self.cache.get(&config.compact()) {
            return Ok(hit.clone());
        }
        self.fresh += 1;
        let matches = config
            .kinds()
            .iter()
            .zip(self.target.kinds())
            .filter(|(a, b)| a == b)
            .count();
        // Slightly config-dependent ECE/aPE/latency so the Pareto
        // archive and the aim weights have real structure to chew on.
        let spread = config.compact().bytes().map(u64::from).sum::<u64>() as f64;
        let candidate = Candidate {
            config: config.clone(),
            metrics: CandidateMetrics {
                accuracy: matches as f64 / config.len() as f64,
                ece: 0.02 + (spread % 7.0) / 100.0,
                ape: 0.3 + (spread % 11.0) / 20.0,
            },
            latency_ms: 1.0 + (spread % 5.0) / 10.0,
        };
        self.cache.insert(config.compact(), candidate.clone());
        Ok(candidate)
    }

    fn fresh_evaluations(&self) -> usize {
        self.fresh
    }
}

fn lenet_spec() -> SupernetSpec {
    SupernetSpec::paper_default(zoo::lenet(), 1).unwrap()
}

fn assert_results_identical(a: &EvolutionResult, b: &EvolutionResult, what: &str) {
    assert_eq!(a.best, b.best, "{what}: best candidate diverged");
    assert_eq!(a.archive, b.archive, "{what}: archive diverged");
    assert_eq!(a.history, b.history, "{what}: history diverged");
}

fn outcome_as_result(outcome: SearchOutcome) -> EvolutionResult {
    outcome.into()
}

#[test]
fn evolution_runs_are_byte_identical_across_session_rebuilds() {
    let spec = lenet_spec();
    let config = EvolutionConfig {
        population: 10,
        generations: 6,
        parents: 4,
        seed: 0xEA,
        ..Default::default()
    };
    let aim = SearchAim::weighted("blend", 1.0, 2.0, 0.5, 0.1);
    let mut first_eval = PlantedEvaluator::new("KRM");
    let mut first = SearchBuilder::with_evaluator(&mut first_eval, spec.clone())
        .strategy(Strategy::Evolution(config))
        .aim(aim.clone())
        .build()
        .unwrap();
    let first = outcome_as_result(first.run().unwrap());
    let mut second_eval = PlantedEvaluator::new("KRM");
    let mut second = SearchBuilder::with_evaluator(&mut second_eval, spec.clone())
        .strategy(Strategy::Evolution(config))
        .aim(aim)
        .build()
        .unwrap();
    let second = outcome_as_result(second.run().unwrap());
    assert_results_identical(&first, &second, "evolution rebuild");
    assert_eq!(
        first_eval.fresh_evaluations(),
        second_eval.fresh_evaluations(),
        "both runs must consume the same evaluation budget"
    );
}

#[test]
fn random_runs_are_byte_identical_across_session_rebuilds() {
    let spec = lenet_spec();
    let config = RandomSearchConfig {
        budget: 20,
        seed: 0x5EED,
    };
    let aim = SearchAim::ece_optimal();
    let mut first_eval = PlantedEvaluator::new("BKM");
    let mut first = SearchBuilder::with_evaluator(&mut first_eval, spec.clone())
        .strategy(Strategy::Random(config))
        .aim(aim.clone())
        .build()
        .unwrap();
    let first = outcome_as_result(first.run().unwrap());
    let mut second_eval = PlantedEvaluator::new("BKM");
    let mut second = SearchBuilder::with_evaluator(&mut second_eval, spec.clone())
        .strategy(Strategy::Random(config))
        .aim(aim)
        .build()
        .unwrap();
    let second = outcome_as_result(second.run().unwrap());
    assert_results_identical(&first, &second, "random rebuild");
}

#[test]
fn exhaustive_session_preserves_enumeration_order() {
    let spec = lenet_spec();
    let mut evaluator = PlantedEvaluator::new("MKB");
    let mut session = SearchBuilder::with_evaluator(&mut evaluator, spec.clone())
        .strategy(Strategy::Exhaustive)
        .build()
        .unwrap();
    let archive = session.run().unwrap().archive.into_candidates();
    let expect: Vec<String> = spec.enumerate().iter().map(|c| c.compact()).collect();
    let got: Vec<String> = archive.iter().map(|c| c.config.compact()).collect();
    assert_eq!(
        expect, got,
        "exhaustive archive must follow enumerate order"
    );
    assert_eq!(evaluator.fresh_evaluations(), spec.space_size());
}

#[test]
fn session_streams_events_and_tracks_the_archive() {
    let spec = lenet_spec();
    let mut evaluator = PlantedEvaluator::new("KRM");
    let mut session = SearchBuilder::with_evaluator(&mut evaluator, spec)
        .strategy(Strategy::Evolution(EvolutionConfig {
            population: 8,
            generations: 4,
            parents: 3,
            ..Default::default()
        }))
        .build()
        .unwrap();
    let mut steps = 0usize;
    let mut finished = 0usize;
    let outcome = session
        .run_with(|event| match event {
            SearchEvent::Step(step) => {
                steps += 1;
                assert!(step.archive_len >= step.archive_added);
                assert!(step.front_len >= 1 && step.front_len <= step.archive_len);
                assert!(step.hypervolume >= 0.0);
                assert!(step.budget_spent >= step.archive_len);
            }
            SearchEvent::Finished => finished += 1,
        })
        .unwrap();
    assert_eq!(steps, 4, "one event per generation");
    assert_eq!(finished, 1);
    assert_eq!(outcome.history.len(), 4);
    assert!(outcome.archive.front_len() >= 1);
    assert!(outcome.archive.hypervolume() > 0.0);
    // The winner sits on the archive's own frontier-or-better: its aim
    // score dominates every archived candidate's.
    let aim = SearchAim::accuracy_optimal();
    for candidate in outcome.archive.candidates() {
        assert!(aim.score(candidate) <= aim.score(&outcome.best) + 1e-12);
    }
}

/// Runs the full session in one go, and a snapshot/JSON/resume split at
/// step `k`, with *fresh* evaluators for each leg (the checkpoint, not
/// the evaluator, carries all search state) — then requires bytewise
/// equality of the outcomes.
fn assert_resume_equals_uninterrupted(strategy: Strategy, aim: SearchAim, target: &str, k: usize) {
    let spec = lenet_spec();
    let mut full_eval = PlantedEvaluator::new(target);
    let mut full_session = SearchBuilder::with_evaluator(&mut full_eval, spec.clone())
        .strategy(strategy.clone())
        .aim(aim.clone())
        .build()
        .unwrap();
    let full = outcome_as_result(full_session.run().unwrap());
    drop(full_session);

    let mut first_eval = PlantedEvaluator::new(target);
    let mut first_session = SearchBuilder::with_evaluator(&mut first_eval, spec.clone())
        .strategy(strategy)
        .aim(aim)
        .build()
        .unwrap();
    for _ in 0..k {
        if matches!(first_session.step().unwrap(), SearchEvent::Finished) {
            break;
        }
    }
    let json = first_session.snapshot().to_json();
    drop(first_session);

    let checkpoint = search::SearchCheckpoint::from_json(&json).unwrap();
    let mut resumed_eval = PlantedEvaluator::new(target);
    let mut resumed_session = SearchBuilder::with_evaluator(&mut resumed_eval, spec)
        .resume(checkpoint)
        .build()
        .unwrap();
    let resumed = outcome_as_result(resumed_session.run().unwrap());
    assert_results_identical(&full, &resumed, "resume");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Snapshot-after-k + resume equals the uninterrupted evolutionary
    /// run byte for byte, for every snapshot point.
    #[test]
    fn evolution_resume_is_byte_identical(
        population in 4usize..12,
        generations in 2usize..7,
        seed in 0u64..500,
        k in 0usize..7,
        target_ix in 0usize..3,
    ) {
        let target = ["KRM", "BBM", "MKB"][target_ix];
        let config = EvolutionConfig {
            population,
            generations,
            parents: (population / 2).max(1),
            seed,
            ..Default::default()
        };
        assert_resume_equals_uninterrupted(
            Strategy::Evolution(config),
            SearchAim::weighted("blend", 1.0, 1.0, 0.25, 0.05),
            target,
            k.min(generations),
        );
    }

    /// Same property for the random-search baseline (chunked steps).
    #[test]
    fn random_resume_is_byte_identical(
        budget in 1usize..33,
        seed in 0u64..500,
        k in 0usize..4,
    ) {
        assert_resume_equals_uninterrupted(
            Strategy::Random(RandomSearchConfig { budget, seed }),
            SearchAim::ape_optimal(),
            "RKM",
            k,
        );
    }

    /// Same property for exhaustive enumeration.
    #[test]
    fn exhaustive_resume_is_byte_identical(k in 0usize..3, target_ix in 0usize..3) {
        let target = ["KRM", "BBM", "MKB"][target_ix];
        assert_resume_equals_uninterrupted(
            Strategy::Exhaustive,
            SearchAim::accuracy_optimal(),
            target,
            k,
        );
    }
}

#[test]
fn supernet_backed_resume_survives_a_process_restart() {
    // The real thing: an (untrained) supernet whose evaluations route
    // through its UncertaintyEngine. The resumed leg rebuilds supernet
    // and dataset from scratch — exactly what a restarted process does —
    // so the checkpoint plus deterministic reconstruction must
    // reproduce the uninterrupted run byte for byte.
    let data_config = DatasetConfig {
        train: 32,
        val: 16,
        test: 8,
        seed: 0xA11CE,
        noise: 0.05,
    };
    let strategy = Strategy::Evolution(EvolutionConfig {
        population: 5,
        generations: 3,
        parents: 2,
        seed: 0xF00D,
        ..Default::default()
    });
    let run_leg = |resume_json: Option<&str>,
                   steps: Option<usize>|
     -> (Option<String>, Option<EvolutionResult>) {
        let splits = mnist_like(&data_config);
        let spec = SupernetSpec::paper_default(zoo::lenet(), 77).unwrap();
        let mut supernet = Supernet::build(&spec).unwrap();
        // No explicit .ood(): the builder derives the default probe set
        // from the effective seed — and on resume that seed must come
        // out of the checkpoint (the resumed leg configures *no*
        // strategy, so a builder-derived default would probe different
        // noise and silently diverge).
        let mut builder = SearchBuilder::new(&mut supernet)
            .aim(SearchAim::ece_optimal())
            .validation(&splits.val)
            .batch_size(16);
        if let Some(json) = resume_json {
            builder = builder.resume(search::SearchCheckpoint::from_json(json).unwrap());
        } else {
            builder = builder.strategy(strategy.clone());
        }
        let mut session = builder.build().unwrap();
        match steps {
            Some(k) => {
                for _ in 0..k {
                    session.step().unwrap();
                }
                (Some(session.snapshot().to_json()), None)
            }
            None => {
                let outcome = outcome_as_result(session.run().unwrap());
                (None, Some(outcome))
            }
        }
    };
    let (_, full) = run_leg(None, None);
    let (json, _) = run_leg(None, Some(2));
    let (_, resumed) = run_leg(json.as_deref(), None);
    assert_results_identical(
        &full.unwrap(),
        &resumed.unwrap(),
        "supernet-backed resume after restart",
    );
}

#[test]
fn corrupted_and_mismatched_checkpoints_fail_with_typed_errors() {
    let spec = lenet_spec();
    let mut evaluator = PlantedEvaluator::new("KRM");
    let mut session = SearchBuilder::with_evaluator(&mut evaluator, spec.clone())
        .strategy(Strategy::Evolution(EvolutionConfig {
            population: 6,
            generations: 3,
            parents: 2,
            ..Default::default()
        }))
        .build()
        .unwrap();
    session.step().unwrap();
    let json = session.snapshot().to_json();
    drop(session);

    // Bit-flip corruption, truncation, version bump: all typed errors.
    let corrupted = json.replace("\"archive\"", "\"archvie\"");
    let truncated = &json[..json.len() / 2];
    let version_bump = json.replace("\"version\": 1", "\"version\": 2");
    for (label, bad) in [
        ("field rename", corrupted.as_str()),
        ("truncation", truncated),
        ("version mismatch", version_bump.as_str()),
        ("not json", "definitely { not json"),
    ] {
        match search::SearchCheckpoint::from_json(bad) {
            Err(SearchError::Checkpoint(msg)) => {
                assert!(
                    !msg.is_empty(),
                    "{label}: message should explain the failure"
                )
            }
            other => panic!("{label}: expected a typed checkpoint error, got {other:?}"),
        }
    }

    // A checkpoint referencing state the memo cannot resolve is rejected
    // at resume time, not served half-restored.
    let mut checkpoint = search::SearchCheckpoint::from_json(&json).unwrap();
    checkpoint.best = Some((9.9, "GGG".to_string()));
    let mut evaluator = PlantedEvaluator::new("KRM");
    match SearchBuilder::with_evaluator(&mut evaluator, spec.clone())
        .resume(checkpoint)
        .build()
    {
        Err(SearchError::Checkpoint(msg)) => assert!(msg.contains("GGG"), "{msg}"),
        other => panic!("expected checkpoint error, got {:?}", other.map(|_| ())),
    }

    // Degenerate strategy hyperparameters smuggled through a well-formed
    // checkpoint (e.g. a hand-edited parent pool of zero, or a drained
    // population with generations left) must be typed errors too — the
    // step loop would otherwise panic on them.
    let break_strategy = |f: &dyn Fn(&mut search::SearchCheckpoint)| {
        let mut checkpoint = search::SearchCheckpoint::from_json(&json).unwrap();
        f(&mut checkpoint);
        let parse_err = search::SearchCheckpoint::from_json(&checkpoint.to_json());
        assert!(
            matches!(parse_err, Err(SearchError::Checkpoint(_))),
            "loader must reject the doctored checkpoint: {parse_err:?}"
        );
        let mut evaluator = PlantedEvaluator::new("KRM");
        let resume_err = SearchBuilder::with_evaluator(&mut evaluator, spec.clone())
            .resume(checkpoint)
            .build()
            .map(|_| ());
        assert!(
            matches!(resume_err, Err(SearchError::Checkpoint(_))),
            "resume must reject the doctored checkpoint: {resume_err:?}"
        );
    };
    break_strategy(&|checkpoint| {
        if let search::StrategyProgress::Evolution { config, .. } = &mut checkpoint.strategy {
            config.parents = 0;
        }
    });
    break_strategy(&|checkpoint| {
        if let search::StrategyProgress::Evolution { population, .. } = &mut checkpoint.strategy {
            population.clear();
        }
    });
}

#[test]
fn builder_validates_degenerate_configurations() {
    let spec = lenet_spec();
    let mut evaluator = PlantedEvaluator::new("BBB");
    let bad = SearchBuilder::with_evaluator(&mut evaluator, spec.clone())
        .strategy(Strategy::Evolution(EvolutionConfig {
            population: 0,
            ..Default::default()
        }))
        .build();
    assert!(matches!(bad, Err(SearchError::BadConfig(_))));
    let mut evaluator = PlantedEvaluator::new("BBB");
    let bad = SearchBuilder::with_evaluator(&mut evaluator, spec.clone())
        .strategy(Strategy::Random(RandomSearchConfig { budget: 0, seed: 1 }))
        .build();
    assert!(matches!(bad, Err(SearchError::BadConfig(_))));
    // Supernet-backed sessions require a validation split.
    let supernet_spec = SupernetSpec::paper_default(zoo::lenet(), 5).unwrap();
    let mut supernet = Supernet::build(&supernet_spec).unwrap();
    match SearchBuilder::new(&mut supernet).build() {
        Err(SearchError::BadConfig(msg)) => assert!(msg.contains("validation"), "{msg}"),
        other => panic!("expected BadConfig, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn seed_override_replaces_the_strategy_seed() {
    let spec = lenet_spec();
    let run_with_seed = |seed_override: Option<u64>, config_seed: u64| {
        let mut evaluator = PlantedEvaluator::new("KRM");
        let mut builder = SearchBuilder::with_evaluator(&mut evaluator, spec.clone()).strategy(
            Strategy::Evolution(EvolutionConfig {
                population: 6,
                generations: 3,
                parents: 2,
                seed: config_seed,
                ..Default::default()
            }),
        );
        if let Some(seed) = seed_override {
            builder = builder.seed(seed);
        }
        let mut session = builder.build().unwrap();
        let outcome = session.run().unwrap();
        let history: Vec<GenerationStats> = outcome.history.clone();
        (outcome.best.config.compact(), history)
    };
    let (_, a) = run_with_seed(None, 1234);
    let (_, b) = run_with_seed(Some(1234), 999);
    assert_eq!(a, b, "builder seed must override the config seed exactly");
}
