//! Allocation regression suite: a counting global allocator pins the
//! inference hot path at **zero heap allocations** in steady state.
//!
//! The engine's throughput claim rests on fully-buffered, allocation-free
//! pipelines (the discipline of the FPGA dataflow it models): after one
//! warm-up round, `predict_probs_ws` and the MC round harness must run
//! entirely out of the [`Workspace`] pool, and `Supernet::fork` must be
//! O(layers) — a copy-on-write rewire, not a fresh He-initialised
//! parameter set.
//!
//! Everything runs inside **one** `#[test]` so no concurrent test thread
//! can pollute the counters, and `NDS_THREADS` is pinned to `1` before
//! the worker pool resolves so every measured chunk runs inline on this
//! thread. That covers the in-place serial path *and* — since the
//! engine's per-worker clone cache — the **parallel** code path: with an
//! explicit `workers = 4` split, the harness takes its cached-clone
//! parallel branch (chunk boundaries, per-worker nets and workspaces all
//! exercised), and after warm-up it too must stay off the allocator.
//! Thread-pool dispatch itself is the one part serial execution cannot
//! measure; the `NDS_THREADS=4` CI leg runs the same suite for
//! correctness (byte identity), while the allocation counters stay
//! meaningful in this pinned-serial leg.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use neural_dropout_search::dropout::mc::{mc_sample_rounds_into, McCloneCache};
use neural_dropout_search::engine::{EngineBuilder, PredictRequest};
use neural_dropout_search::nn::train::predict_probs_ws;
use neural_dropout_search::nn::{zoo, Layer, Mode, NnError};
use neural_dropout_search::supernet::{Supernet, SupernetSpec};
use neural_dropout_search::tensor::rng::Rng64;
use neural_dropout_search::tensor::{Shape, SharedTensor, Tensor, Workspace};

/// Pass-through allocator that counts allocations while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static BYTES: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Runs `f` with the counters armed, returning (allocations, bytes).
fn count_allocs<T>(f: impl FnOnce() -> T) -> (usize, usize, T) {
    ALLOCS.store(0, Ordering::SeqCst);
    BYTES.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let out = f();
    ARMED.store(false, Ordering::SeqCst);
    (
        ALLOCS.load(Ordering::SeqCst),
        BYTES.load(Ordering::SeqCst),
        out,
    )
}

fn lenet_supernet(seed: u64) -> Supernet {
    let spec = SupernetSpec::paper_default(zoo::lenet(), seed).unwrap();
    let mut net = Supernet::build(&spec).unwrap();
    net.set_config(&"BBB".parse().unwrap()).unwrap();
    net
}

#[test]
fn steady_state_inference_and_forking_stay_off_the_allocator() {
    // Pin the pool to serial before anything resolves NDS_THREADS: the
    // zero-allocation guarantee is for the in-place serial path.
    std::env::set_var("NDS_THREADS", "1");

    let mut supernet = lenet_supernet(42);
    let mut rng = Rng64::new(7);
    let images = Tensor::rand_normal(Shape::d4(8, 1, 28, 28), 0.0, 1.0, &mut rng);
    let mut ws = Workspace::new();

    // ------------------------------------------------------------------
    // predict_probs: zero allocations after one warm-up batch.
    // ------------------------------------------------------------------
    for _ in 0..2 {
        let probs =
            predict_probs_ws(supernet.net_mut(), &images, Mode::McInference, 4, &mut ws).unwrap();
        ws.recycle_tensor(probs);
    }
    let (allocs, bytes, probs) = count_allocs(|| {
        predict_probs_ws(supernet.net_mut(), &images, Mode::McInference, 4, &mut ws).unwrap()
    });
    assert_eq!(probs.shape(), &Shape::d2(8, 10));
    ws.recycle_tensor(probs);
    assert_eq!(
        allocs, 0,
        "steady-state predict_probs must not allocate ({allocs} allocations, {bytes} bytes)"
    );

    // Standard mode rides the same pooled path (warm its slightly
    // different buffer mix first — dropout copies instead of masking).
    for _ in 0..2 {
        let probs =
            predict_probs_ws(supernet.net_mut(), &images, Mode::Standard, 4, &mut ws).unwrap();
        ws.recycle_tensor(probs);
    }
    let (allocs, bytes, probs) = count_allocs(|| {
        predict_probs_ws(supernet.net_mut(), &images, Mode::Standard, 4, &mut ws).unwrap()
    });
    ws.recycle_tensor(probs);
    assert_eq!(
        allocs, 0,
        "steady-state Standard predict_probs must not allocate ({allocs} allocations, {bytes} bytes)"
    );

    // ------------------------------------------------------------------
    // MC round harness (serial, in place): zero allocations after one
    // warm-up round.
    // ------------------------------------------------------------------
    let pass_len = 8 * 10;
    let mut cache = McCloneCache::new();
    for _ in 0..2 {
        let mut slab = ws.take_dirty(3 * pass_len);
        mc_sample_rounds_into::<NnError>(
            supernet.net_mut(),
            3,
            1,
            0,
            &mut cache,
            &mut ws,
            pass_len,
            &mut slab,
            &|net, ws| predict_probs_ws(net, &images, Mode::McInference, 4, ws),
        )
        .unwrap();
        ws.recycle(slab);
    }
    let (allocs, bytes, slab) = count_allocs(|| {
        let mut slab = ws.take_dirty(3 * pass_len);
        mc_sample_rounds_into::<NnError>(
            supernet.net_mut(),
            3,
            1,
            0,
            &mut cache,
            &mut ws,
            pass_len,
            &mut slab,
            &|net, ws| predict_probs_ws(net, &images, Mode::McInference, 4, ws),
        )
        .unwrap();
        slab
    });
    assert_eq!(slab.len(), 3 * pass_len);
    ws.recycle(slab);
    assert_eq!(
        allocs, 0,
        "steady-state serial MC round must not allocate ({allocs} allocations, {bytes} bytes)"
    );

    // ------------------------------------------------------------------
    // Engine, parallel path: with an explicit 4-way worker split the
    // harness runs its parallel branch on the persistent clone cache —
    // after warm-up (cache built, per-worker workspaces warm), steady-
    // state rounds must perform zero heap allocations too. This is the
    // ROADMAP item PR 3 left open ("the parallel MC path still clones
    // the net per worker task").
    // ------------------------------------------------------------------
    let mut engine = EngineBuilder::new(supernet.net_mut().clone())
        .samples(3)
        .workers(4)
        .chunk_size(4)
        .build();
    let request = PredictRequest::new(&images);
    for _ in 0..2 {
        let warm = engine.predict(&request).unwrap();
        engine.recycle(warm);
    }
    let (allocs, bytes, resp) = count_allocs(|| engine.predict(&request).unwrap());
    assert_eq!(resp.probs.shape(), &Shape::d2(8, 10));
    assert_eq!(resp.timing.workers, 4);
    engine.recycle(resp);
    assert_eq!(
        allocs, 0,
        "steady-state parallel engine predict must not allocate \
         ({allocs} allocations, {bytes} bytes)"
    );

    // ------------------------------------------------------------------
    // Supernet::fork: O(layers), sharing every weight — no fresh
    // He-initialised parameter set.
    // ------------------------------------------------------------------
    let param_bytes: usize = supernet
        .net_mut()
        .params()
        .iter()
        .map(|p| p.value.len() * std::mem::size_of::<f32>())
        .sum();
    let (fork_allocs, fork_bytes, mut fork) = count_allocs(|| supernet.fork().unwrap());
    for (a, b) in supernet
        .net_mut()
        .params()
        .iter()
        .zip(fork.net_mut().params())
    {
        assert!(
            SharedTensor::ptr_eq(&a.value, &b.value),
            "fork must share weight storage"
        );
    }
    // LeNet's supernet is a few dozen layers (incl. 3 slots x 4 dropout
    // candidates); a copy-on-write fork costs a small, layer-proportional
    // number of allocations. The old rebuild path allocated (and He-
    // initialised) every parameter tensor — over a parameter-set of
    // bytes — so these bounds fail loudly if it ever comes back.
    assert!(
        fork_allocs < 400,
        "fork should be O(layers): {fork_allocs} allocations"
    );
    assert!(
        fork_bytes < param_bytes / 4,
        "fork allocated {fork_bytes} bytes vs {param_bytes} parameter bytes — \
         did it rebuild a parameter set?"
    );

    // The fork evaluates with the same bytes as the original (CoW share,
    // not a copy): one MC round each, identical sample slabs.
    let mc_round = |net: &mut neural_dropout_search::nn::layers::Sequential, ws: &mut Workspace| {
        let mut cache = McCloneCache::new();
        let mut slab = ws.take_dirty(3 * pass_len);
        mc_sample_rounds_into::<NnError>(
            net,
            3,
            1,
            0,
            &mut cache,
            ws,
            pass_len,
            &mut slab,
            &|net, ws| predict_probs_ws(net, &images, Mode::McInference, 4, ws),
        )
        .unwrap();
        slab
    };
    let a = mc_round(supernet.net_mut(), &mut ws);
    let mut fork_ws = Workspace::new();
    let b = mc_round(fork.net_mut(), &mut fork_ws);
    assert_eq!(a, b);
    ws.recycle(a);
    fork_ws.recycle(b);
}
