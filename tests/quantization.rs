//! Cross-crate integration: the Q7.8 functional simulator on a trained
//! network — the fixed-point datapath must not wreck accuracy (the paper
//! deploys all designs at 16-bit fixed point).

use neural_dropout_search::data::{mnist_like, DatasetConfig};
use neural_dropout_search::engine::{Backend, EngineBuilder, PredictRequest};
use neural_dropout_search::hw::simulator::quantize_network;
use neural_dropout_search::metrics::accuracy;
use neural_dropout_search::nn::train::TrainConfig;
use neural_dropout_search::nn::zoo;
use neural_dropout_search::quant::Q7_8;
use neural_dropout_search::supernet::{Supernet, SupernetSpec};
use neural_dropout_search::tensor::rng::Rng64;

#[test]
fn q78_inference_tracks_float_inference() {
    let splits = mnist_like(&DatasetConfig {
        train: 768,
        val: 64,
        test: 128,
        seed: 77,
        noise: 0.05,
    });
    let spec = SupernetSpec::paper_default(zoo::lenet(), 77).unwrap();
    let mut supernet = Supernet::build(&spec).unwrap();
    let mut rng = Rng64::new(77);
    let schedule = neural_dropout_search::nn::optim::LrSchedule::Cosine {
        base: 0.05,
        floor: 0.005,
        total: 5,
    };
    supernet
        .train_spos(
            &splits.train,
            &TrainConfig {
                epochs: 5,
                schedule,
                ..TrainConfig::default()
            },
            &mut rng,
        )
        .unwrap();
    supernet.set_config(&"BBB".parse().unwrap()).unwrap();

    let (images, labels) = splits.test.full_batch();
    let request = PredictRequest::new(&images);
    let mut float_engine = EngineBuilder::new(supernet.net_mut().clone())
        .samples(3)
        .chunk_size(64)
        .build();
    let float_pred = float_engine.predict(&request).unwrap();
    let float_acc = accuracy(&float_pred.probs, &labels).unwrap();

    let changed = quantize_network(supernet.net_mut(), Q7_8);
    assert!(changed > 0, "weights should move when snapped to Q7.8");
    let mut q_engine = EngineBuilder::new(supernet.net_mut().clone())
        .backend(Backend::quantized_q78())
        .samples(3)
        .build();
    let q_pred = q_engine.predict(&request).unwrap();
    let q_acc = accuracy(&q_pred.probs, &labels).unwrap();

    assert!(
        float_acc > 0.4,
        "float model too weak for the comparison ({float_acc})"
    );
    assert!(
        (float_acc - q_acc).abs() < 0.10,
        "Q7.8 accuracy {q_acc} strays too far from float accuracy {float_acc}"
    );
}

#[test]
fn quantized_predictions_are_valid_distributions() {
    let splits = mnist_like(&DatasetConfig {
        train: 64,
        val: 16,
        test: 32,
        seed: 78,
        noise: 0.05,
    });
    let spec = SupernetSpec::paper_default(zoo::lenet(), 78).unwrap();
    let mut supernet = Supernet::build(&spec).unwrap();
    supernet.set_config(&"MMM".parse().unwrap()).unwrap();
    quantize_network(supernet.net_mut(), Q7_8);
    let (images, _) = splits.test.full_batch();
    let mut engine = EngineBuilder::new(supernet.net_mut().clone())
        .backend(Backend::quantized_q78())
        .samples(3)
        .build();
    let probs = engine.predict(&PredictRequest::new(&images)).unwrap().probs;
    assert!(probs.all_finite());
    let c = probs.shape().dim(1);
    for i in 0..probs.shape().dim(0) {
        let row_sum: f32 = probs.as_slice()[i * c..(i + 1) * c].iter().sum();
        assert!((row_sum - 1.0).abs() < 1e-4, "row {i} sums to {row_sum}");
    }
}
