//! Fault-tolerance integration tests driven by the deterministic
//! [`neural_dropout_search::fault`] harness: injected worker panics,
//! worker deaths, NaN poisoning and slow passes must surface as *typed*
//! errors (or graceful degradation), never as process aborts, and the
//! pool/engine must keep serving byte-identical results afterwards.
//!
//! Fault plans are process-global, so every test takes the [`SERIAL`]
//! lock first — the harness documents this pattern.

use neural_dropout_search::dropout::{DropoutKind, DropoutLayer, DropoutSettings};
use neural_dropout_search::engine::{EngineBuilder, EngineError, PredictRequest};
use neural_dropout_search::fault::FaultPlan;
use neural_dropout_search::nn::arch::{FeatureShape, SlotInfo, SlotPosition};
use neural_dropout_search::nn::layers::{Flatten, Linear, Sequential};
use neural_dropout_search::tensor::parallel::{
    pool_respawn_count, run_scoped_checked, worker_count,
};
use neural_dropout_search::tensor::rng::Rng64;
use neural_dropout_search::tensor::{Shape, Tensor};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    // A test that panicked while holding the lock poisons it; the lock
    // only serialises, so recover and continue.
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

/// A small net with a live Bernoulli dropout slot, so MC samples differ.
fn stochastic_net(seed: u64) -> Sequential {
    let mut rng = Rng64::new(seed);
    let mut net = Sequential::new();
    net.push(Box::new(Flatten::new()));
    net.push(Box::new(Linear::new(16, 12, true, &mut rng)));
    let slot = SlotInfo {
        id: 0,
        shape: FeatureShape::Vector { features: 12 },
        position: SlotPosition::FullyConnected,
    };
    net.push(Box::new(
        DropoutLayer::for_slot(
            DropoutKind::Bernoulli,
            &slot,
            &DropoutSettings {
                rate: 0.5,
                ..DropoutSettings::default()
            },
            seed,
        )
        .unwrap(),
    ));
    net.push(Box::new(Linear::new(12, 4, true, &mut rng)));
    net
}

fn batch(seed: u64) -> Tensor {
    let mut rng = Rng64::new(seed);
    Tensor::rand_normal(Shape::d4(3, 1, 4, 4), 0.0, 1.0, &mut rng)
}

#[test]
fn pool_task_panic_becomes_a_typed_error_and_the_pool_survives() {
    let _serial = serial();
    let injected = FaultPlan::new(7).panic_on_pool_task(0).activate();
    let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..8)
        .map(|_| Box::new(|| {}) as Box<dyn FnOnce() + Send>)
        .collect();
    let err = run_scoped_checked(tasks).unwrap_err();
    assert!(err.to_string().contains("injected fault"), "{err}");
    drop(injected);
    // The pool keeps serving after the panic: every task of the next
    // batch runs exactly once.
    let done = AtomicUsize::new(0);
    let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..8)
        .map(|_| {
            Box::new(|| {
                done.fetch_add(1, Ordering::SeqCst);
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    run_scoped_checked(tasks).expect("pool serves after a task panic");
    assert_eq!(done.load(Ordering::SeqCst), 8);
}

#[test]
fn engine_surfaces_injected_pool_panics_as_transient_typed_errors() {
    let _serial = serial();
    let x = batch(2);
    let mut engine = EngineBuilder::new(stochastic_net(3))
        .samples(4)
        .workers(2)
        .build();
    let injected = FaultPlan::new(11).panic_on_pool_task(0).activate();
    let err = engine.predict(&PredictRequest::new(&x)).unwrap_err();
    drop(injected);
    assert!(matches!(err, EngineError::Pool(_)), "{err}");
    assert!(err.is_transient(), "pool faults are retryable");
    assert!(err.to_string().contains("injected fault"), "{err}");
    // After the fault clears, the same engine serves the exact answer a
    // never-faulted engine would (worker clones may hold half-advanced
    // stochastic state after a mid-round abort, so rebuild them first).
    engine.invalidate_cache();
    let healed = engine.predict(&PredictRequest::new(&x)).unwrap();
    let mut clean = EngineBuilder::new(stochastic_net(3))
        .samples(4)
        .workers(2)
        .build();
    let want = clean.predict(&PredictRequest::new(&x)).unwrap();
    assert_eq!(
        healed.probs.as_slice(),
        want.probs.as_slice(),
        "a faulted engine must fully recover, byte for byte"
    );
}

#[test]
fn transient_retries_heal_one_shot_pool_faults_byte_identically() {
    let _serial = serial();
    let x = batch(4);
    let mut retrying = EngineBuilder::new(stochastic_net(5))
        .samples(4)
        .workers(2)
        .transient_retries(2)
        .build();
    let injected = FaultPlan::new(13).panic_on_pool_task(0).activate();
    // The first attempt hits the (one-shot) injected panic; the retry
    // runs clean and the caller never sees the fault.
    let resp = retrying
        .predict(&PredictRequest::new(&x))
        .expect("transient retry heals a one-shot fault");
    drop(injected);
    assert_eq!(resp.achieved_samples, 4);
    assert!(!resp.degraded);
    let mut clean = EngineBuilder::new(stochastic_net(5))
        .samples(4)
        .workers(2)
        .build();
    let want = clean.predict(&PredictRequest::new(&x)).unwrap();
    assert_eq!(
        resp.probs.as_slice(),
        want.probs.as_slice(),
        "a retried request must be byte-identical to a never-faulted one"
    );
}

#[test]
fn killed_workers_respawn_and_the_pool_keeps_serving() {
    let _serial = serial();
    if worker_count() <= 1 {
        // Serial pool: no worker threads exist to kill.
        return;
    }
    let before = pool_respawn_count();
    let injected = FaultPlan::new(17).kill_worker().activate();
    // Keep submitting batches until some worker wakes, dies on its tick
    // and is respawned. Every batch must still complete in full — the
    // submitter and surviving workers drain it.
    let deadline = Instant::now() + Duration::from_secs(60);
    while pool_respawn_count() == before {
        assert!(
            Instant::now() < deadline,
            "no worker respawn observed before the deadline"
        );
        let done = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..16)
            .map(|_| {
                Box::new(|| {
                    done.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        run_scoped_checked(tasks).expect("a worker death must not fail the batch");
        assert_eq!(done.load(Ordering::SeqCst), 16, "every task still runs");
    }
    drop(injected);
    assert!(
        pool_respawn_count() > before,
        "the dead worker was replaced"
    );
}

#[test]
fn nan_poisoning_is_reported_as_non_finite_output_not_a_panic() {
    let _serial = serial();
    let x = batch(6);
    let mut engine = EngineBuilder::new(stochastic_net(9))
        .samples(2)
        .workers(1)
        .build();
    // Poison the first Linear layer's activations: the NaN must ride
    // through dropout and softmax into the output scan.
    let injected = FaultPlan::new(19).poison_layer(1).activate();
    let err = engine.predict(&PredictRequest::new(&x)).unwrap_err();
    drop(injected);
    assert!(matches!(err, EngineError::NonFiniteOutput { .. }), "{err}");
    assert!(!err.is_transient(), "data corruption is not retryable");
    // The engine stays serviceable once the fault clears.
    engine.invalidate_cache();
    let resp = engine
        .predict(&PredictRequest::new(&x))
        .expect("engine serves after a poisoned round");
    assert!(resp.probs.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn slow_passes_degrade_sample_count_within_the_latency_budget() {
    let _serial = serial();
    let x = batch(8);
    let mut budgeted = EngineBuilder::new(stochastic_net(21))
        .samples(6)
        .workers(1)
        .build();
    // Each pass sleeps 60 ms against a 100 ms budget: after round 1 the
    // projection (>= 120 ms) busts the budget, so the engine serves a
    // degraded response instead of blowing the deadline.
    let injected = FaultPlan::new(23)
        .slow_pass(Duration::from_millis(60))
        .activate();
    let resp = budgeted
        .predict(&PredictRequest::new(&x).with_latency_budget(100.0))
        .expect("degradation is not an error");
    drop(injected);
    assert!(resp.degraded, "the budget must force degradation");
    assert!(
        resp.achieved_samples >= 1 && resp.achieved_samples < 6,
        "round granularity: at least one, fewer than requested (got {})",
        resp.achieved_samples
    );
    assert_eq!(resp.timing.samples, resp.achieved_samples);
    // The served prefix is byte-identical to an unbudgeted engine asked
    // for exactly that many samples: degradation changes how many
    // samples are averaged, never their bytes.
    let mut reference = EngineBuilder::new(stochastic_net(21))
        .samples(resp.achieved_samples)
        .workers(1)
        .build();
    let want = reference.predict(&PredictRequest::new(&x)).unwrap();
    assert!(!want.degraded);
    assert_eq!(
        resp.probs.as_slice(),
        want.probs.as_slice(),
        "degraded probabilities must equal the unbudgeted prefix"
    );
}
