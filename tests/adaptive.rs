//! Integration suite for the uncertainty-gated adaptive subsystem.
//!
//! Two load-bearing claims from the crate contract:
//!
//! 1. **OOD reliability** — the gates must not treat out-of-distribution
//!    inputs as easy: under the escalation gate, in-distribution rows
//!    mostly stay at the pilot budget while OOD rows (pure noise and
//!    sign-flipped data) escalate to the full sample count; under the
//!    exit gate, in-distribution rows exit at the early head while OOD
//!    rows fall through to the final classifier.
//! 2. **Byte invisibility when disabled** — property test: an engine
//!    carrying [`AdaptivePolicy::disabled`] serves bytes identical to an
//!    engine with no policy at all, across backends, execution orders,
//!    worker counts and batch shapes; and the escalate-everything gate
//!    reproduces the unbudgeted engine's bytes exactly.

use neural_dropout_search::adaptive::exits::attach_exit_heads;
use neural_dropout_search::adaptive::{AdaptivePolicy, EscalationPolicy, ExitPolicy, GateMetric};
use neural_dropout_search::dropout::{DropoutKind, DropoutLayer, DropoutSettings};
use neural_dropout_search::engine::{Backend, EngineBuilder, Execution, PredictRequest};
use neural_dropout_search::metrics::escalation_rate;
use neural_dropout_search::nn::arch::{FeatureShape, SlotInfo, SlotPosition};
use neural_dropout_search::nn::layers::{Flatten, Linear, Sequential};
use neural_dropout_search::nn::Layer;
use neural_dropout_search::tensor::rng::Rng64;
use neural_dropout_search::tensor::{Shape, Tensor};
use proptest::prelude::*;

/// A 4-class classifier with hand-set weights: class `c`'s logit sums
/// input block `[4c, 4c+4)`. In-distribution inputs elevate exactly one
/// block, so the classifier is confident by construction; inputs without
/// that structure land near-uniform.
fn crafted_classifier() -> Linear {
    let mut rng = Rng64::new(0);
    let mut fc = Linear::new(16, 4, true, &mut rng);
    let mut params = fc.params_mut();
    let w = params[0].value.as_mut_slice();
    assert_eq!(w.len(), 64);
    w.fill(0.0);
    for c in 0..4 {
        for j in 0..4 {
            w[c * 16 + c * 4 + j] = 1.5;
        }
    }
    drop(params);
    fc
}

/// Flatten → Bernoulli dropout → crafted classifier: a stochastic net
/// whose in-distribution pilot entropy is near zero.
fn crafted_net(seed: u64, rate: f32) -> Sequential {
    let mut net = Sequential::new();
    net.push(Box::new(Flatten::new()));
    let slot = SlotInfo {
        id: 0,
        shape: FeatureShape::Vector { features: 16 },
        position: SlotPosition::FullyConnected,
    };
    net.push(Box::new(
        DropoutLayer::for_slot(
            DropoutKind::Bernoulli,
            &slot,
            &DropoutSettings {
                rate,
                ..DropoutSettings::default()
            },
            seed,
        )
        .unwrap(),
    ));
    net.push(Box::new(crafted_classifier()));
    net
}

/// In-distribution batch: low noise plus a +2.5 bump on block `r % 4`.
fn id_images(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
    let mut rng = Rng64::new(seed);
    let mut x = Tensor::rand_normal(Shape::d4(n, 1, 4, 4), 0.0, 0.1, &mut rng);
    let mut labels = Vec::with_capacity(n);
    for (r, row) in x.as_mut_slice().chunks_mut(16).enumerate() {
        let class = r % 4;
        for v in &mut row[class * 4..class * 4 + 4] {
            *v += 2.5;
        }
        labels.push(class);
    }
    (x, labels)
}

/// OOD by content: pure noise with no block structure.
fn ood_noise(n: usize, seed: u64) -> Tensor {
    let mut rng = Rng64::new(seed);
    Tensor::rand_normal(Shape::d4(n, 1, 4, 4), 0.0, 0.3, &mut rng)
}

/// OOD by shift: in-distribution images sign-flipped, which turns the
/// confident block into strong negative evidence and leaves the other
/// three classes competing near-uniformly.
fn ood_shifted(n: usize, seed: u64) -> Tensor {
    let (mut x, _) = id_images(n, seed);
    for v in x.as_mut_slice() {
        *v = -*v;
    }
    x
}

#[test]
fn escalation_gate_spends_samples_on_ood_not_id() {
    let policy = AdaptivePolicy::escalate(EscalationPolicy {
        metric: GateMetric::PredictiveEntropy,
        threshold: 0.5,
        pilot: 1,
    });
    let mut engine = EngineBuilder::new(crafted_net(3, 0.2))
        .samples(4)
        .seed(17)
        .adaptive(policy)
        .build();

    let (id, _) = id_images(32, 5);
    let id_pred = engine.predict(&PredictRequest::new(&id)).unwrap();
    let id_rate = escalation_rate(id_pred.row_samples.as_ref().unwrap(), 1);

    let noise_pred = engine
        .predict(&PredictRequest::new(&ood_noise(32, 6)))
        .unwrap();
    let noise_rate = escalation_rate(noise_pred.row_samples.as_ref().unwrap(), 1);

    let shift_pred = engine
        .predict(&PredictRequest::new(&ood_shifted(32, 5)))
        .unwrap();
    let shift_rate = escalation_rate(shift_pred.row_samples.as_ref().unwrap(), 1);

    assert!(
        id_rate <= 0.25,
        "in-distribution rows must mostly stay at the pilot budget, got {id_rate}"
    );
    assert!(
        noise_rate >= 0.9,
        "noise OOD must escalate to the full budget, got {noise_rate}"
    );
    assert!(
        shift_rate >= 0.9,
        "shifted OOD must escalate to the full budget, got {shift_rate}"
    );
    assert_eq!(
        noise_pred.achieved_samples, 4,
        "escalated rows reach full S"
    );
}

#[test]
fn exit_gate_keeps_ood_on_the_full_path() {
    // Head placed after Flatten, sharing the crafted classifier's
    // weights (temperature 1): confident exactly on block-structured
    // inputs, near-uniform elsewhere.
    let mut net = crafted_net(4, 0.2);
    let heads = attach_exit_heads(
        &mut net,
        &Shape::d4(1, 1, 4, 4),
        &[1],
        4,
        &mut Rng64::new(9),
    )
    .unwrap();
    assert_eq!(heads, 1);
    for layer in net.each_layer_mut() {
        if layer.as_exit_head().is_some() {
            let mut params = layer.params_mut();
            let w = params[0].value.as_mut_slice();
            w.fill(0.0);
            for c in 0..4 {
                for j in 0..4 {
                    w[c * 16 + c * 4 + j] = 1.5;
                }
            }
        }
    }
    let policy = AdaptivePolicy {
        escalation: None,
        exits: Some(ExitPolicy {
            thresholds: vec![0.85],
        }),
    };
    let mut engine = EngineBuilder::new(net)
        .samples(2)
        .seed(23)
        .adaptive(policy)
        .build();

    let early_share = |hist: &Vec<usize>| {
        let total: usize = hist.iter().sum();
        hist[0] as f64 / total.max(1) as f64
    };
    let (id, _) = id_images(24, 8);
    let id_pred = engine.predict(&PredictRequest::new(&id)).unwrap();
    let id_share = early_share(id_pred.exit_histogram.as_ref().unwrap());

    let noise_pred = engine
        .predict(&PredictRequest::new(&ood_noise(24, 9)))
        .unwrap();
    let noise_share = early_share(noise_pred.exit_histogram.as_ref().unwrap());

    let shift_pred = engine
        .predict(&PredictRequest::new(&ood_shifted(24, 8)))
        .unwrap();
    let shift_share = early_share(shift_pred.exit_histogram.as_ref().unwrap());

    assert!(
        id_share >= 0.9,
        "in-distribution rows should take the early exit, got {id_share}"
    );
    assert!(
        noise_share <= 0.25,
        "noise OOD must not exit early, got {noise_share}"
    );
    assert!(
        shift_share <= 0.25,
        "shifted OOD must not exit early, got {shift_share}"
    );
}

#[test]
fn escalate_everything_reproduces_the_unbudgeted_bytes() {
    let x = ood_noise(7, 11);
    for execution in [Execution::RoundMajor, Execution::SampleMajor] {
        let mut plain = EngineBuilder::new(crafted_net(6, 0.3))
            .samples(3)
            .seed(31)
            .execution(execution)
            .build();
        let expect = plain.predict(&PredictRequest::new(&x)).unwrap();
        let mut gated = EngineBuilder::new(crafted_net(6, 0.3))
            .samples(3)
            .seed(31)
            .execution(execution)
            .adaptive(AdaptivePolicy::escalate(EscalationPolicy::entropy(0.0)))
            .build();
        let got = gated.predict(&PredictRequest::new(&x)).unwrap();
        assert_eq!(got.probs.as_slice(), expect.probs.as_slice());
        assert_eq!(got.entropy, expect.entropy);
        assert_eq!(got.mutual_information, expect.mutual_information);
        assert_eq!(got.row_samples, Some(vec![3; 7]));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `AdaptivePolicy::disabled()` is byte-invisible across backends,
    /// execution orders, worker counts and batch shapes.
    #[test]
    fn disabled_gate_is_byte_invisible(
        seed in 0u64..40,
        n in 1usize..6,
        samples in 1usize..4,
        fused in 0usize..2,
        quantized in 0usize..2,
        workers in 1usize..4,
    ) {
        let execution = if fused == 1 { Execution::SampleMajor } else { Execution::RoundMajor };
        let backend = if quantized == 1 { Backend::quantized_q78() } else { Backend::Float32 };
        let x = ood_noise(n, seed ^ 0xAB);
        let mut plain = EngineBuilder::new(crafted_net(seed, 0.4))
            .samples(samples)
            .seed(seed)
            .workers(workers)
            .execution(execution)
            .backend(backend.clone())
            .build();
        let expect = plain.predict(&PredictRequest::new(&x)).unwrap();
        let mut gated = EngineBuilder::new(crafted_net(seed, 0.4))
            .samples(samples)
            .seed(seed)
            .workers(workers)
            .execution(execution)
            .backend(backend)
            .adaptive(AdaptivePolicy::disabled())
            .build();
        let got = gated.predict(&PredictRequest::new(&x)).unwrap();
        prop_assert_eq!(got.probs.as_slice(), expect.probs.as_slice());
        prop_assert_eq!(got.entropy, expect.entropy);
        prop_assert_eq!(got.variance, expect.variance);
        prop_assert_eq!(got.row_samples, None);
        prop_assert_eq!(got.exit_histogram, None);
    }
}
