//! Golden-file determinism suite.
//!
//! Three layers of defence against nondeterminism and silent numeric
//! drift in the inference pipeline:
//!
//! 1. **Committed fixtures** (`tests/golden/`): exact formatted outputs
//!    for hand-computable calibration metrics and for LeNet logits on a
//!    fixed seed. Any change to kernel accumulation order, weight
//!    initialisation or metric arithmetic shows up as a byte diff.
//! 2. **Cross-environment CLI byte identity**: `nds eval` must print the
//!    same bytes under `NDS_THREADS=1` and `NDS_THREADS=4` — the
//!    user-facing form of the serial-vs-parallel bit-identity guarantee.
//! 3. **Sharing-path identity**: covered in `tests/zero_copy.rs` (shared
//!    Arc weights vs deep copies produce identical bytes).
//!
//! Regenerating fixtures after an *intentional* numeric change:
//!
//! ```text
//! NDS_REGEN_GOLDEN=1 cargo test --test golden
//! git diff tests/golden/   # review, then commit
//! ```

use neural_dropout_search::hw::simulator::{quantize_network, quantized_forward};
use neural_dropout_search::metrics::{
    accuracy, apply_temperature, brier_score, ece, nll, EceConfig,
};
use neural_dropout_search::nn::{zoo, Layer, Mode};
use neural_dropout_search::quant::Q7_8;
use neural_dropout_search::supernet::{Supernet, SupernetSpec};
use neural_dropout_search::tensor::rng::Rng64;
use neural_dropout_search::tensor::{Shape, Tensor};
use std::path::PathBuf;
use std::process::Command;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares `actual` against the committed fixture, or rewrites the
/// fixture when `NDS_REGEN_GOLDEN=1`.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var("NDS_REGEN_GOLDEN").as_deref() == Ok("1") {
        std::fs::create_dir_all(golden_dir()).expect("golden dir is creatable");
        std::fs::write(&path, actual).expect("fixture is writable");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run NDS_REGEN_GOLDEN=1 cargo test --test golden",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "output diverged from committed fixture {name}; if the change is \
         intentional, regenerate with NDS_REGEN_GOLDEN=1 and commit the diff"
    );
}

/// Hand-computable calibration inputs: four two-class predictions with
/// simple confidences. With the default 15-bin ECE:
///   row 0: probs (0.9, 0.1), label 0 — correct, confidence 0.9
///   row 1: probs (0.6, 0.4), label 1 — wrong,   confidence 0.6
///   row 2: probs (0.8, 0.2), label 0 — correct, confidence 0.8
///   row 3: probs (0.3, 0.7), label 1 — correct, confidence 0.7
/// NLL = -(ln 0.9 + ln 0.4 + ln 0.8 + ln 0.7) / 4 ≈ 0.398.
fn hand_probs() -> (Tensor, Vec<usize>) {
    let probs = Tensor::from_vec(
        vec![0.9, 0.1, 0.6, 0.4, 0.8, 0.2, 0.3, 0.7],
        Shape::d2(4, 2),
    )
    .unwrap();
    (probs, vec![0, 1, 0, 1])
}

#[test]
fn calibration_metrics_match_committed_fixture() {
    let (probs, labels) = hand_probs();
    let acc = accuracy(&probs, &labels).unwrap();
    let expected_nll = -(0.9f64.ln() + 0.4f64.ln() + 0.8f64.ln() + 0.7f64.ln()) / 4.0;
    let got_nll = nll(&probs, &labels).unwrap();
    // f32 prob storage vs f64 hand arithmetic: agree to ~1e-7.
    assert!(
        (got_nll - expected_nll).abs() < 1e-6,
        "hand-check: {got_nll}"
    );
    assert_eq!(acc, 0.75, "3 of 4 predictions are correct");
    // Temperature scaling (calibration.rs): T = 2 on the log-probs halves
    // every logit gap; metrics of the scaled distribution are part of the
    // fixture so the softmax path is pinned too.
    let logits = probs.map(|p| p.ln());
    let scaled = apply_temperature(&logits, 2.0).unwrap();
    let mut out = String::new();
    out.push_str(&format!("accuracy {acc:.12e}\n"));
    out.push_str(&format!(
        "ece {:.12e}\n",
        ece(&probs, &labels, EceConfig::default()).unwrap()
    ));
    out.push_str(&format!("nll {got_nll:.12e}\n"));
    out.push_str(&format!(
        "brier {:.12e}\n",
        brier_score(&probs, &labels,).unwrap()
    ));
    out.push_str(&format!("nll_t2 {:.12e}\n", nll(&scaled, &labels).unwrap()));
    out.push_str(&format!(
        "ece_t2 {:.12e}\n",
        ece(&scaled, &labels, EceConfig::default()).unwrap()
    ));
    assert_golden("calibration_metrics.txt", &out);
}

#[test]
fn lenet_logits_match_committed_fixture() {
    // Untrained LeNet supernet at a fixed seed, Standard-mode forward on
    // a fixed input batch: the logits exercise the full conv → pool →
    // linear pipeline with pure arithmetic (no libm), so they are exact
    // across platforms and must never drift.
    let spec = SupernetSpec::paper_default(zoo::lenet(), 20_240_101).unwrap();
    let mut supernet = Supernet::build(&spec).unwrap();
    supernet.set_config(&"BBB".parse().unwrap()).unwrap();
    let mut rng = Rng64::new(77);
    let images = Tensor::rand_normal(Shape::d4(3, 1, 28, 28), 0.0, 1.0, &mut rng);
    let logits = supernet.net_mut().forward(&images, Mode::Standard).unwrap();
    assert_eq!(logits.shape(), &Shape::d2(3, 10));
    let mut out = String::new();
    for (i, row) in logits.as_slice().chunks(10).enumerate() {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:.9e}")).collect();
        out.push_str(&format!("logits[{i}] {}\n", cells.join(" ")));
    }
    assert_golden("lenet_logits.txt", &out);
}

#[test]
fn quantized_forward_q78_matches_committed_fixture() {
    // The fixed-point datapath pinned alongside the float path: a toy
    // MLP with Q7.8-snapped weights, Standard-mode forward with
    // activations rounded to Q7.8 between layers. Quantisation is pure
    // arithmetic (scale, round, clamp); only the final softmax touches
    // libm, exactly like the float CLI fixture.
    use neural_dropout_search::nn::layers::{Flatten, Linear, Relu, Sequential};
    let mut rng = Rng64::new(20_240_102);
    let mut net = Sequential::new();
    net.push(Box::new(Flatten::new()));
    net.push(Box::new(Linear::new(8, 16, true, &mut rng)));
    net.push(Box::new(Relu::new()));
    net.push(Box::new(Linear::new(16, 4, true, &mut rng)));
    let changed = quantize_network(&mut net, Q7_8);
    assert!(changed > 0, "He-normal weights rarely sit on the Q7.8 grid");
    let images = Tensor::rand_normal(Shape::d4(3, 2, 2, 2), 0.0, 1.0, &mut rng);
    let probs = quantized_forward(&mut net, &images, Q7_8, Mode::Standard).unwrap();
    assert_eq!(probs.shape(), &Shape::d2(3, 4));
    let mut out = String::new();
    for (i, row) in probs.as_slice().chunks(4).enumerate() {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:.9e}")).collect();
        out.push_str(&format!("q78_probs[{i}] {}\n", cells.join(" ")));
    }
    assert_golden("quantized_forward_q78.txt", &out);
}

fn eval_bytes(threads: &str, args: &[&str]) -> (bool, Vec<u8>) {
    let output = Command::new(env!("CARGO_BIN_EXE_nds"))
        .env("NDS_THREADS", threads)
        .args(args)
        .output()
        .expect("nds binary runs");
    (output.status.success(), output.stdout)
}

#[test]
fn cli_eval_bytes_identical_across_thread_counts() {
    for args in [
        // LeNet: conv + maxpool + FC dropout slots.
        &["eval", "--arch", "lenet", "--config", "BBB", "--seed", "7"][..],
        // ResNet: batch-norm + residual blocks + four slots.
        &[
            "eval", "--arch", "resnet", "--config", "BBBB", "--seed", "9",
        ][..],
    ] {
        let (ok1, serial) = eval_bytes("1", args);
        let (ok4, parallel) = eval_bytes("4", args);
        assert!(ok1 && ok4, "eval must succeed under both thread counts");
        assert!(!serial.is_empty());
        assert_eq!(
            serial,
            parallel,
            "`nds {}` bytes diverged between NDS_THREADS=1 and 4",
            args.join(" ")
        );
    }
}

#[test]
fn cli_eval_bytes_identical_across_execution_orders() {
    // The sample-major fused path (PR 8) is a pure scheduling choice:
    // `nds eval --execution sample-major` must print byte-for-byte what
    // the round-major default prints — which is also why the committed
    // fixture below needed no regeneration when the knob landed.
    let base = &["eval", "--arch", "lenet", "--config", "RKM", "--seed", "11"];
    let (ok_round, round) = eval_bytes("4", &[&base[..], &["--execution", "round-major"]].concat());
    let (ok_fused, fused) =
        eval_bytes("4", &[&base[..], &["--execution", "sample-major"]].concat());
    assert!(ok_round && ok_fused, "eval must succeed in both orders");
    assert!(!round.is_empty());
    assert_eq!(
        round, fused,
        "`nds eval` bytes diverged between round-major and sample-major execution"
    );
}

#[test]
fn cli_eval_bytes_match_committed_fixture() {
    // The full CLI output is itself a fixture: metrics, digest and the
    // leading probability row. MC sampling goes through softmax (libm
    // exp), which is deterministic for a fixed libm; this pins the
    // end-to-end pipeline on the reference platform and in CI.
    let (ok, bytes) = eval_bytes(
        "4",
        &["eval", "--arch", "lenet", "--config", "RKM", "--seed", "11"],
    );
    assert!(ok);
    assert_golden("cli_eval_lenet_rkm.txt", &String::from_utf8(bytes).unwrap());
}

#[test]
fn cli_eval_adaptive_off_matches_the_same_fixture() {
    // `--adaptive off` must be byte-invisible: the disabled gate takes
    // the standard engine path and prints no extra lines, so the output
    // is the exact committed fixture of the flagless invocation.
    let (ok, bytes) = eval_bytes(
        "4",
        &[
            "eval",
            "--arch",
            "lenet",
            "--config",
            "RKM",
            "--seed",
            "11",
            "--adaptive",
            "off",
        ],
    );
    assert!(ok);
    assert_golden("cli_eval_lenet_rkm.txt", &String::from_utf8(bytes).unwrap());
}
