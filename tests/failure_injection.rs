//! Failure-injection integration tests: every cross-crate error path a
//! user can realistically hit must fail loudly and descriptively, never
//! silently corrupt results.

use neural_dropout_search::data::{mnist_like, DatasetConfig};
use neural_dropout_search::dropout::{DropoutKind, DropoutLayer, DropoutSettings};
use neural_dropout_search::gp::{GpRegressor, Kernel};
use neural_dropout_search::hw::accel::{AcceleratorConfig, AcceleratorModel};
use neural_dropout_search::metrics::{accuracy, ece, EceConfig};
use neural_dropout_search::nn::arch::{FeatureShape, SlotInfo, SlotPosition};
use neural_dropout_search::nn::zoo;
use neural_dropout_search::nn::{Layer, Mode};
use neural_dropout_search::supernet::{DropoutConfig, Supernet, SupernetSpec};
use neural_dropout_search::tensor::rng::Rng64;
use neural_dropout_search::tensor::{Shape, Tensor};

#[test]
fn error_messages_carry_context() {
    // Shape mismatch names the op and both shapes.
    let a = Tensor::zeros(Shape::d1(3));
    let b = Tensor::zeros(Shape::d1(4));
    let msg = a.add(&b).unwrap_err().to_string();
    assert!(msg.contains("[3]") && msg.contains("[4]"), "{msg}");

    // Metric errors name the inconsistency.
    let probs = Tensor::zeros(Shape::d2(2, 3));
    let msg = accuracy(&probs, &[0]).unwrap_err().to_string();
    assert!(msg.contains("2") && msg.contains("1"), "{msg}");

    // Supernet spec errors name the slot.
    let err = SupernetSpec::new(
        zoo::lenet(),
        vec![
            vec![DropoutKind::Bernoulli],
            vec![DropoutKind::Bernoulli],
            vec![DropoutKind::Block], // Block illegal at the FC slot (id 2)
        ],
        DropoutSettings::default(),
        1,
    );
    let msg = err.unwrap_err().to_string();
    assert!(msg.contains("slot 2"), "{msg}");
}

#[test]
fn nan_inputs_are_detectable_not_silent() {
    // A NaN pixel must propagate to the output where `all_finite` flags it
    // (the framework's invariant checks rely on this).
    let mut rng = Rng64::new(1);
    let mut net = zoo::lenet().build_with_identity_slots(&mut rng).unwrap();
    let mut images = Tensor::zeros(Shape::d4(1, 1, 28, 28));
    images.as_mut_slice()[5] = f32::NAN;
    let out = net.forward(&images, Mode::Standard).unwrap();
    assert!(!out.all_finite(), "NaN must not vanish silently");
}

#[test]
fn evaluating_a_foreign_config_fails() {
    let spec = SupernetSpec::paper_default(zoo::lenet(), 2).unwrap();
    let mut supernet = Supernet::build(&spec).unwrap();
    // 4 slots for a 3-slot network.
    let foreign: DropoutConfig = "BBBB".parse().unwrap();
    assert!(supernet.set_config(&foreign).is_err());
    // Block at the FC slot: in-kind but out-of-space.
    let illegal: DropoutConfig = "BBK".parse().unwrap();
    assert!(supernet.set_config(&illegal).is_err());
    // The supernet remains usable afterwards.
    assert!(supernet.set_config(&"BBB".parse().unwrap()).is_ok());
}

#[test]
fn accelerator_rejects_mismatched_designs_and_stays_usable() {
    let model = AcceleratorModel::new(AcceleratorConfig::resnet_paper());
    let arch = zoo::resnet18_paper();
    assert!(model.analyze(&arch, &"BB".parse().unwrap()).is_err());
    // Same model instance still works for a valid design.
    assert!(model.analyze(&arch, &"BBBB".parse().unwrap()).is_ok());
}

#[test]
fn degenerate_accelerator_budgets_do_not_divide_by_zero() {
    let mut config = AcceleratorConfig::resnet_paper();
    config.dsp_budget = 0; // clamped internally
    let model = AcceleratorModel::new(config);
    let report = model
        .analyze(&zoo::resnet18_paper(), &"BBBB".parse().unwrap())
        .unwrap();
    assert!(report.latency_ms.is_finite());
    assert!(report.latency_ms > 0.0);
}

#[test]
fn gp_handles_degenerate_training_sets() {
    // A single training point is legal.
    let gp = GpRegressor::fit(
        &[vec![1.0]],
        &[2.0],
        Kernel::Matern52 {
            lengthscale: 1.0,
            variance: 1.0,
        },
        1e-6,
    )
    .unwrap();
    let (mean, var) = gp.predict(&[1.0]);
    assert!((mean - 2.0).abs() < 1e-3);
    assert!(var >= 0.0);
    // Constant targets: predictions revert to that constant.
    let gp = GpRegressor::fit(
        &[vec![0.0], vec![1.0], vec![2.0]],
        &[5.0, 5.0, 5.0],
        Kernel::Rbf {
            lengthscale: 1.0,
            variance: 1.0,
        },
        1e-6,
    )
    .unwrap();
    assert!((gp.predict(&[0.5]).0 - 5.0).abs() < 1e-6);
}

#[test]
fn dropout_layer_survives_batch_of_one_and_large_rates() {
    let slot = SlotInfo {
        id: 0,
        shape: FeatureShape::Map { c: 2, h: 3, w: 3 },
        position: SlotPosition::Conv,
    };
    let settings = DropoutSettings {
        rate: 0.9,
        ..DropoutSettings::default()
    };
    for kind in DropoutKind::all() {
        let mut layer = DropoutLayer::for_slot(kind, &slot, &settings, 3).unwrap();
        let x = Tensor::ones(Shape::d4(1, 2, 3, 3));
        let y = layer.forward(&x, Mode::Train).unwrap();
        assert!(
            y.all_finite(),
            "{kind} produced non-finite values at rate 0.9"
        );
        let g = Tensor::ones(Shape::d4(1, 2, 3, 3));
        assert!(layer.backward(&g).unwrap().all_finite());
    }
}

#[test]
fn training_with_single_sample_dataset_does_not_panic() {
    let splits = mnist_like(&DatasetConfig {
        train: 1,
        val: 1,
        test: 1,
        seed: 4,
        noise: 0.0,
    });
    let spec = SupernetSpec::paper_default(zoo::lenet(), 4).unwrap();
    let mut supernet = Supernet::build(&spec).unwrap();
    let mut rng = Rng64::new(4);
    let config = neural_dropout_search::nn::train::TrainConfig {
        epochs: 1,
        batch_size: 8,
        ..Default::default()
    };
    let history = supernet
        .train_spos(&splits.train, &config, &mut rng)
        .unwrap();
    assert_eq!(history.len(), 1);
    assert!(history[0].loss.is_finite());
}

#[test]
fn ece_with_more_bins_than_samples_is_stable() {
    let probs = Tensor::from_vec(vec![0.9, 0.1], Shape::d2(1, 2)).unwrap();
    let value = ece(&probs, &[0], EceConfig { bins: 1000 }).unwrap();
    assert!((0.0..=1.0).contains(&value));
}

#[test]
fn hls_write_to_rejects_bad_target() {
    use neural_dropout_search::hls::generate_project;
    let project = generate_project(
        &zoo::lenet(),
        &"BBB".parse().unwrap(),
        &AcceleratorConfig::lenet_paper(),
        None,
    )
    .unwrap();
    // Writing under a path that exists as a *file* must error, not panic.
    let bogus = std::env::temp_dir().join("nds_failure_injection_file");
    std::fs::write(&bogus, "occupied").unwrap();
    let err = project.write_to(&bogus.join("sub"));
    assert!(err.is_err());
    let _ = std::fs::remove_file(&bogus);
}

#[test]
fn standalone_builder_rejects_bad_configs() {
    use neural_dropout_search::supernet::build_standalone;
    // Wrong arity.
    let err = build_standalone(
        &zoo::lenet(),
        &"BB".parse().unwrap(),
        &DropoutSettings::default(),
        1,
    )
    .unwrap_err()
    .to_string();
    assert!(err.contains("3 slots"), "{err}");
    // Illegal kind at the FC slot.
    assert!(build_standalone(
        &zoo::lenet(),
        &"BBK".parse().unwrap(),
        &DropoutSettings::default(),
        1,
    )
    .is_err());
}

#[test]
#[should_panic(expected = "hypervolume supports 1-3 objectives")]
fn hypervolume_rejects_too_many_objectives() {
    use neural_dropout_search::search::pareto::{full_objectives, hypervolume};
    let _ = hypervolume(&[], &full_objectives(), &[0.0, 1.0, 0.0, 100.0]);
    // full_objectives has 4 entries -> must panic before returning.
    let _ = hypervolume(&[], &full_objectives()[..0], &[]);
}

#[test]
#[should_panic(expected = "reference/objective arity mismatch")]
fn hypervolume_rejects_reference_arity_mismatch() {
    use neural_dropout_search::search::pareto::{figure4_objectives, hypervolume};
    let _ = hypervolume(&[], &figure4_objectives(), &[0.0]);
}

#[test]
fn transformer_arch_rejects_bad_geometry() {
    use neural_dropout_search::nn::arch::{Architecture, LayerDef};
    // 5px patches do not tile 28x28.
    let bad_patch = Architecture {
        name: "bad-vit".into(),
        input: (1, 28, 28),
        classes: 10,
        defs: vec![LayerDef::PatchEmbed { patch: 5, dim: 16 }],
    };
    assert!(bad_patch.slots().is_err() || bad_patch.profile().is_err());
    // 3 heads do not divide a 16-wide embedding.
    let bad_heads = Architecture {
        name: "bad-heads".into(),
        input: (1, 28, 28),
        classes: 10,
        defs: vec![
            LayerDef::PatchEmbed { patch: 7, dim: 16 },
            LayerDef::EncoderAttention { heads: 3 },
        ],
    };
    let err = bad_heads.profile().unwrap_err().to_string();
    assert!(err.contains("heads"), "{err}");
    // Attention before patch embedding (spatial input) is rejected.
    let no_tokens = Architecture {
        name: "no-tokens".into(),
        input: (1, 28, 28),
        classes: 10,
        defs: vec![LayerDef::EncoderAttention { heads: 2 }],
    };
    let err = no_tokens.profile().unwrap_err().to_string();
    assert!(err.contains("token sequence"), "{err}");
}

#[test]
fn pruning_mask_detects_structure_changes() {
    use neural_dropout_search::nn::layers::{Flatten, Linear, Sequential};
    use neural_dropout_search::nn::prune::{prune_magnitude, PruneMask};
    let mut rng = Rng64::new(3);
    let mut net = Sequential::new();
    net.push(Box::new(Flatten::new()));
    net.push(Box::new(Linear::new(8, 4, true, &mut rng)));
    prune_magnitude(&mut net, 0.5);
    let mask = PruneMask::capture(&net);
    let mut other = Sequential::new();
    other.push(Box::new(Flatten::new()));
    other.push(Box::new(Linear::new(8, 4, true, &mut rng)));
    other.push(Box::new(Linear::new(4, 2, true, &mut rng)));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        mask.reapply(&mut other);
    }));
    assert!(
        outcome.is_err(),
        "mismatched structure must panic, not corrupt"
    );
}
