//! hls4ml-style HLS project generation (Phase 4 of the framework).
//!
//! The paper generates its accelerators through hls4ml and adds "HLS-based
//! implementation of the newly introduced dropout layers into the design
//! flow" (§3.5.2). This crate emits the same artefacts as text:
//!
//! * a top-level dataflow function with one engine call per layer,
//! * an `nnet_dropout.h` header containing synthesizable-style C++
//!   templates for the **four dropout units** — the paper's hardware
//!   contribution (LFSR + comparator for the dynamic designs, a mask ROM
//!   for Masksembles),
//! * per-layer configuration structs in `parameters.h` with the Q7.8
//!   precision typedefs,
//! * quantised weight arrays when a trained network is supplied,
//! * a csynth-style report rendered from the `nds-hw` analyzer.
//!
//! The output is a textual artefact (there is no Vivado here to consume
//! it); its fidelity is structural, and the golden tests pin it down.
//!
//! # Examples
//!
//! ```
//! use nds_hls::generate_project;
//! use nds_hw::accel::AcceleratorConfig;
//! use nds_nn::zoo;
//!
//! let project = generate_project(
//!     &zoo::lenet(), &"RRB".parse()?, &AcceleratorConfig::lenet_paper(), None)?;
//! assert!(project.file("firmware/nnet_dropout.h").is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nds_dropout::DropoutKind;
use nds_hw::accel::{AcceleratorConfig, AcceleratorModel};
use nds_hw::HwError;
use nds_nn::arch::{Architecture, FeatureShape, LayerKind};
use nds_nn::layers::Sequential;
use nds_nn::Layer as _;
use nds_quant::quantize_slice;
use nds_supernet::DropoutConfig;
use std::error::Error as StdError;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// Errors from project generation.
#[derive(Debug)]
pub enum HlsError {
    /// Underlying hardware-model failure.
    Hw(HwError),
    /// Writing the project to disk failed.
    Io(std::io::Error),
    /// The design was inconsistent.
    BadDesign(String),
}

impl fmt::Display for HlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HlsError::Hw(e) => write!(f, "hardware model error: {e}"),
            HlsError::Io(e) => write!(f, "io error: {e}"),
            HlsError::BadDesign(msg) => write!(f, "bad design: {msg}"),
        }
    }
}

impl StdError for HlsError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            HlsError::Hw(e) => Some(e),
            HlsError::Io(e) => Some(e),
            HlsError::BadDesign(_) => None,
        }
    }
}

impl From<HwError> for HlsError {
    fn from(e: HwError) -> Self {
        HlsError::Hw(e)
    }
}

impl From<std::io::Error> for HlsError {
    fn from(e: std::io::Error) -> Self {
        HlsError::Io(e)
    }
}

/// A generated HLS project: named files with contents.
#[derive(Debug, Clone, PartialEq)]
pub struct HlsProject {
    /// Project (top function) name.
    pub name: String,
    files: Vec<(String, String)>,
}

impl HlsProject {
    /// The generated files as `(relative_path, contents)` pairs.
    pub fn files(&self) -> &[(String, String)] {
        &self.files
    }

    /// Looks up a file's contents by relative path.
    pub fn file(&self, path: &str) -> Option<&str> {
        self.files
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, c)| c.as_str())
    }

    /// Writes every file under `dir`, creating directories as needed.
    ///
    /// # Errors
    ///
    /// Returns [`HlsError::Io`] on filesystem failures.
    pub fn write_to(&self, dir: &Path) -> Result<(), HlsError> {
        for (rel, contents) in &self.files {
            let path = dir.join(rel);
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(path, contents)?;
        }
        Ok(())
    }

    /// Total generated source size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.files.iter().map(|(_, c)| c.len()).sum()
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Generates the full HLS project for one design point.
///
/// When `trained` is provided, its parameters are quantised to the
/// configured precision and emitted as weight headers; otherwise the
/// weight files are omitted (architecture-only export).
///
/// # Errors
///
/// Returns [`HlsError::BadDesign`] on slot-count mismatch and propagates
/// analyzer errors.
pub fn generate_project(
    arch: &Architecture,
    config: &DropoutConfig,
    accel: &AcceleratorConfig,
    trained: Option<&Sequential>,
) -> Result<HlsProject, HlsError> {
    let slots = arch.slots().map_err(HwError::from)?;
    if slots.len() != config.len() {
        return Err(HlsError::BadDesign(format!(
            "{} dropout kinds for {} slots",
            config.len(),
            slots.len()
        )));
    }
    let top = sanitize(&arch.name);
    let profile = arch.profile().map_err(HwError::from)?;
    let mut files = Vec::new();

    // --- defines.h -------------------------------------------------------
    let mut defines = String::new();
    let _ = writeln!(defines, "#ifndef {top}_DEFINES_H_");
    let _ = writeln!(defines, "#define {top}_DEFINES_H_");
    let _ = writeln!(defines, "#include \"ap_fixed.h\"");
    let _ = writeln!(defines);
    let _ = writeln!(
        defines,
        "// {}-bit fixed point: 1 sign, {} integer, {} fraction bits (paper Section 4).",
        accel.precision.total_bits(),
        accel.precision.int_bits,
        accel.precision.frac_bits
    );
    let _ = writeln!(
        defines,
        "typedef ap_fixed<{}, {}> model_default_t;",
        accel.precision.total_bits(),
        accel.precision.int_bits + 1
    );
    let _ = writeln!(defines, "#define MC_SAMPLES {}", accel.samples);
    let _ = writeln!(defines, "#endif");
    files.push(("firmware/defines.h".to_string(), defines));

    // --- parameters.h ------------------------------------------------------
    let mut params = String::new();
    let _ = writeln!(params, "#ifndef {top}_PARAMETERS_H_");
    let _ = writeln!(params, "#define {top}_PARAMETERS_H_");
    let _ = writeln!(params, "#include \"defines.h\"");
    let _ = writeln!(params, "#include \"nnet_dropout.h\"");
    let _ = writeln!(params);
    let mut layer_ix = 0usize;
    for entry in &profile {
        match entry.kind {
            LayerKind::Conv => {
                layer_ix += 1;
                if let (
                    FeatureShape::Map { c, h, w },
                    FeatureShape::Map {
                        c: oc,
                        h: oh,
                        w: ow,
                    },
                ) = (entry.in_shape, entry.out_shape)
                {
                    let _ = writeln!(params, "struct config{layer_ix} : nnet::conv2d_config {{");
                    let _ = writeln!(params, "    static const unsigned in_height = {h};");
                    let _ = writeln!(params, "    static const unsigned in_width = {w};");
                    let _ = writeln!(params, "    static const unsigned n_chan = {c};");
                    let _ = writeln!(params, "    static const unsigned out_height = {oh};");
                    let _ = writeln!(params, "    static const unsigned out_width = {ow};");
                    let _ = writeln!(params, "    static const unsigned n_filt = {oc};");
                    let _ = writeln!(params, "}};");
                }
            }
            LayerKind::Linear => {
                layer_ix += 1;
                let _ = writeln!(params, "struct config{layer_ix} : nnet::dense_config {{");
                let _ = writeln!(
                    params,
                    "    static const unsigned n_in = {};",
                    entry.in_shape.len()
                );
                let _ = writeln!(
                    params,
                    "    static const unsigned n_out = {};",
                    entry.out_shape.len()
                );
                let _ = writeln!(params, "}};");
            }
            LayerKind::Attention => {
                layer_ix += 1;
                if let FeatureShape::Map {
                    c: tokens, w: dim, ..
                } = entry.in_shape
                {
                    let _ = writeln!(
                        params,
                        "struct config{layer_ix} : nnet::transformer_config {{"
                    );
                    let _ = writeln!(params, "    static const unsigned n_tokens = {tokens};");
                    let _ = writeln!(params, "    static const unsigned n_embd = {dim};");
                    let _ = writeln!(params, "}};");
                }
            }
            LayerKind::Slot => {
                let id = entry.slot.expect("slot entries carry ids");
                let kind = config.kind_at(id).expect("validated above");
                let slot = slots
                    .iter()
                    .find(|s| s.id == id)
                    .expect("same architecture");
                let n = slot.shape.len();
                let _ = writeln!(
                    params,
                    "struct dropout_config{id} : nnet::dropout_config {{"
                );
                let _ = writeln!(params, "    static const unsigned n_in = {n};");
                let _ = writeln!(
                    params,
                    "    static const nnet::dropout_kind kind = nnet::{};",
                    kind_token(kind)
                );
                if kind == DropoutKind::Masksembles {
                    let features = match slot.shape {
                        FeatureShape::Map { c, .. } => c,
                        FeatureShape::Vector { features } => features,
                    };
                    let _ = writeln!(params, "    static const unsigned n_masks = MC_SAMPLES;");
                    let _ = writeln!(params, "    static const unsigned n_features = {features};");
                }
                let _ = writeln!(params, "}};");
            }
            _ => {}
        }
    }
    let _ = writeln!(params, "#endif");
    files.push(("firmware/parameters.h".to_string(), params));

    // --- nnet_dropout.h (the paper's four dropout templates) --------------
    files.push(("firmware/nnet_dropout.h".to_string(), dropout_header()));

    // --- top function ------------------------------------------------------
    let mut cpp = String::new();
    let _ = writeln!(cpp, "#include \"parameters.h\"");
    let _ = writeln!(cpp);
    let _ = writeln!(
        cpp,
        "// Auto-generated by neural-dropout-search for design {}/{}.",
        arch.name,
        config.compact()
    );
    let (ci, hi, wi) = arch.input;
    let _ = writeln!(
        cpp,
        "void {top}(model_default_t input[{}], model_default_t output[{}]) {{",
        ci * hi * wi,
        arch.classes
    );
    let _ = writeln!(cpp, "#pragma HLS DATAFLOW");
    let mut engine = 0usize;
    for entry in &profile {
        match entry.kind {
            LayerKind::Conv => {
                engine += 1;
                let _ = writeln!(
                    cpp,
                    "    nnet::conv_2d<model_default_t, model_default_t, config{engine}>(/* {} */);",
                    entry.name
                );
            }
            LayerKind::Linear => {
                engine += 1;
                let _ = writeln!(
                    cpp,
                    "    nnet::dense<model_default_t, model_default_t, config{engine}>(/* {} */);",
                    entry.name
                );
            }
            LayerKind::Pool => {
                let _ = writeln!(
                    cpp,
                    "    nnet::pooling2d<model_default_t, model_default_t>(/* {} */);",
                    entry.name
                );
            }
            LayerKind::Norm => {
                let _ = writeln!(
                    cpp,
                    "    nnet::normalize<model_default_t, model_default_t>(/* {} */);",
                    entry.name
                );
            }
            LayerKind::Activation => {
                let _ = writeln!(cpp, "    nnet::relu<model_default_t, model_default_t>();");
            }
            LayerKind::Slot => {
                let id = entry.slot.expect("slot entries carry ids");
                let kind = config.kind_at(id).expect("validated above");
                let _ = writeln!(
                    cpp,
                    "    nnet::{}<model_default_t, dropout_config{id}>(/* slot {id} */);",
                    template_name(kind)
                );
            }
            LayerKind::ResidualJoin => {
                let _ = writeln!(
                    cpp,
                    "    nnet::add_relu<model_default_t, model_default_t>(/* residual join */);"
                );
            }
            LayerKind::Attention => {
                engine += 1;
                // Schematic: attention HLS is beyond the paper's scope (it
                // lists Transformer support as future work); the emitted
                // call documents the engine boundary for the dataflow.
                let _ = writeln!(
                    cpp,
                    "    nnet::transformer_block<model_default_t, model_default_t, config{engine}>(/* {} */);",
                    entry.name
                );
            }
            LayerKind::Reshape => {}
        }
    }
    let _ = writeln!(cpp, "}}");
    files.push((format!("firmware/{top}.cpp"), cpp));

    // --- weights (optional) -----------------------------------------------
    if let Some(net) = trained {
        for (i, param) in net.params().iter().enumerate() {
            let raw = quantize_slice(param.value.as_slice(), accel.precision);
            let mut header = String::new();
            let _ = writeln!(
                header,
                "// weight tensor {} ({} values, {})",
                i,
                raw.len(),
                accel.precision
            );
            let _ = writeln!(header, "#include \"defines.h\"");
            let _ = write!(header, "const model_default_t w{i}[{}] = {{", raw.len());
            for (j, v) in raw.iter().enumerate() {
                if j % 16 == 0 {
                    let _ = write!(header, "\n    ");
                }
                // Raw fixed-point integers scaled by the LSB at compile time.
                let _ = write!(
                    header,
                    "model_default_t({v}) / {}, ",
                    1 << accel.precision.frac_bits
                );
            }
            let _ = writeln!(header, "\n}};");
            files.push((format!("firmware/weights/w{i}.h"), header));
        }
    }

    // --- csynth report ------------------------------------------------------
    let model = AcceleratorModel::new(accel.clone());
    let report = model.analyze(arch, config)?;
    files.push((format!("{top}_csynth.rpt"), report.to_string()));

    Ok(HlsProject { name: top, files })
}

fn kind_token(kind: DropoutKind) -> &'static str {
    match kind {
        DropoutKind::Bernoulli => "DROPOUT_BERNOULLI",
        DropoutKind::Random => "DROPOUT_RANDOM",
        DropoutKind::Block => "DROPOUT_BLOCK",
        DropoutKind::Masksembles => "DROPOUT_MASKSEMBLES",
        DropoutKind::Gaussian => "DROPOUT_GAUSSIAN",
    }
}

fn template_name(kind: DropoutKind) -> &'static str {
    match kind {
        DropoutKind::Bernoulli => "bernoulli_dropout",
        DropoutKind::Random => "random_dropout",
        DropoutKind::Block => "block_dropout",
        DropoutKind::Masksembles => "masksembles_dropout",
        DropoutKind::Gaussian => "gaussian_dropout",
    }
}

/// The `nnet_dropout.h` header: synthesizable-style templates for the four
/// dropout units (the paper's §3.5.2 contribution to the hls4ml flow).
fn dropout_header() -> String {
    r#"#ifndef NNET_DROPOUT_H_
#define NNET_DROPOUT_H_

// HLS implementations of the four dropout designs searched by the
// neural dropout search framework (DAC'24). Dynamic designs draw their
// masks from a 16-bit Fibonacci LFSR (taps 16,15,13,4) compared against a
// drop-rate threshold; Masksembles reads offline-generated masks from a
// BRAM-mapped ROM.

#include "defines.h"

namespace nnet {

enum dropout_kind {
    DROPOUT_BERNOULLI,
    DROPOUT_RANDOM,
    DROPOUT_BLOCK,
    DROPOUT_MASKSEMBLES,
    DROPOUT_GAUSSIAN // extension beyond the paper's four designs
};

struct dropout_config {
    static const unsigned n_in = 0;
    static const dropout_kind kind = DROPOUT_BERNOULLI;
    // Q0.16 threshold: drop when lfsr_state < threshold.
    static const unsigned threshold = 16384; // rate 0.25
};

// One step of the 16-bit maximal-length LFSR shared by all dynamic units.
inline ap_uint<16> lfsr_step(ap_uint<16> s) {
#pragma HLS INLINE
    ap_uint<1> bit = s[15] ^ s[14] ^ s[12] ^ s[3];
    return (s << 1) | bit;
}

// Bernoulli dropout: fully pipelined (II=1); the comparator result gates
// the activation, kept values are rescaled by 1/(1-p).
template <class data_T, typename CONFIG_T>
void bernoulli_dropout(data_T data[CONFIG_T::n_in], data_T res[CONFIG_T::n_in]) {
    static ap_uint<16> state = 0xACE1;
BernoulliLoop:
    for (unsigned i = 0; i < CONFIG_T::n_in; i++) {
#pragma HLS PIPELINE II=1
        state = lfsr_step(state);
        bool drop = state < CONFIG_T::threshold;
        res[i] = drop ? data_T(0) : data_T(data[i] * CONFIG_T::keep_scale);
    }
}

// Random dropout: drops an exact count. Pass 1 draws candidate indices
// into a FIFO, pass 2 applies them; the two passes are why the unit
// stalls its dataflow stage (II ~ 3.5 per element at one lane).
template <class data_T, typename CONFIG_T>
void random_dropout(data_T data[CONFIG_T::n_in], data_T res[CONFIG_T::n_in]) {
    static ap_uint<16> state = 0xBEEF;
    bool drop_flag[CONFIG_T::n_in];
#pragma HLS ARRAY_PARTITION variable=drop_flag cyclic factor=4
RandomDraw:
    for (unsigned d = 0; d < CONFIG_T::n_drop; /* advance on accept */) {
#pragma HLS PIPELINE II=1
        state = lfsr_step(state);
        unsigned idx = state % CONFIG_T::n_in;
        if (!drop_flag[idx]) { drop_flag[idx] = true; d++; }
    }
RandomApply:
    for (unsigned i = 0; i < CONFIG_T::n_in; i++) {
#pragma HLS PIPELINE II=1
        res[i] = drop_flag[i] ? data_T(0) : data_T(data[i] * CONFIG_T::keep_scale);
    }
}

// Block dropout (DropBlock): seeds drawn at the adjusted rate gamma zero
// a BxB patch through a line buffer; patch expansion serialises writes
// (II ~ 3.8 per element).
template <class data_T, typename CONFIG_T>
void block_dropout(data_T data[CONFIG_T::n_in], data_T res[CONFIG_T::n_in]) {
    static ap_uint<16> state = 0xC0DE;
    data_T line_buffer[CONFIG_T::block_size][CONFIG_T::width];
#pragma HLS ARRAY_PARTITION variable=line_buffer complete dim=1
BlockRows:
    for (unsigned y = 0; y < CONFIG_T::height; y++) {
    BlockCols:
        for (unsigned x = 0; x < CONFIG_T::width; x++) {
#pragma HLS PIPELINE II=1
            state = lfsr_step(state);
            bool seed = state < CONFIG_T::gamma_threshold;
            // Patch expansion handled by the line buffer; kept values are
            // renormalised by total/kept downstream.
            (void)seed;
        }
    }
}

// Masksembles: S offline-generated masks stored in a BRAM ROM; MC pass k
// reads mask k. No RNG, no comparators - pure ROM lookup at II=1.
template <class data_T, typename CONFIG_T>
void masksembles_dropout(data_T data[CONFIG_T::n_in], data_T res[CONFIG_T::n_in],
                         const ap_uint<1> mask_rom[CONFIG_T::n_masks][CONFIG_T::n_features],
                         unsigned sample_index) {
#pragma HLS RESOURCE variable=mask_rom core=ROM_1P_BRAM
MasksemblesLoop:
    for (unsigned i = 0; i < CONFIG_T::n_in; i++) {
#pragma HLS PIPELINE II=1
        unsigned feature = i / CONFIG_T::stride; // channel-granular after conv
        bool keep = mask_rom[sample_index][feature];
        res[i] = keep ? data_T(data[i] * CONFIG_T::keep_scale) : data_T(0);
    }
}

// Gaussian dropout (extension): multiplicative N(1, sigma^2) noise from a
// central-limit adder over four LFSR words, one multiplier per lane.
// Pipelined at II=1 like the Bernoulli unit, at a wider datapath.
template <class data_T, typename CONFIG_T>
void gaussian_dropout(data_T data[CONFIG_T::n_in], data_T res[CONFIG_T::n_in]) {
    static ap_uint<16> state = 0xF00D;
GaussianLoop:
    for (unsigned i = 0; i < CONFIG_T::n_in; i++) {
#pragma HLS PIPELINE II=1
        // CLT: sum of 4 uniform words approximates a Gaussian.
        ap_uint<18> acc = 0;
        for (unsigned k = 0; k < 4; k++) {
#pragma HLS UNROLL
            state = lfsr_step(state);
            acc += state;
        }
        // Centre, scale by sigma and clamp at zero.
        data_T noise = data_T(1) + CONFIG_T::sigma * (data_T(acc >> 2) - data_T(32768)) / data_T(18918);
        res[i] = (noise < data_T(0)) ? data_T(0) : data_T(data[i] * noise);
    }
}

} // namespace nnet

#endif
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nds_nn::zoo;

    fn lenet_project() -> HlsProject {
        generate_project(
            &zoo::lenet(),
            &"RRB".parse().unwrap(),
            &AcceleratorConfig::lenet_paper(),
            None,
        )
        .unwrap()
    }

    #[test]
    fn project_contains_core_files() {
        let project = lenet_project();
        assert!(project.file("firmware/defines.h").is_some());
        assert!(project.file("firmware/parameters.h").is_some());
        assert!(project.file("firmware/nnet_dropout.h").is_some());
        assert!(project.file("firmware/lenet.cpp").is_some());
        assert!(project.file("lenet_csynth.rpt").is_some());
        assert!(project.total_bytes() > 2_000);
    }

    #[test]
    fn defines_carry_the_paper_precision() {
        let project = lenet_project();
        let defines = project.file("firmware/defines.h").unwrap();
        // ap_fixed<16, 8>: 16 total bits, 8 = sign + 7 integer bits.
        assert!(defines.contains("ap_fixed<16, 8>"), "{defines}");
        assert!(defines.contains("MC_SAMPLES 3"));
    }

    #[test]
    fn dropout_templates_cover_all_four_designs() {
        let project = lenet_project();
        let header = project.file("firmware/nnet_dropout.h").unwrap();
        for template in [
            "bernoulli_dropout",
            "random_dropout",
            "block_dropout",
            "masksembles_dropout",
        ] {
            assert!(header.contains(template), "missing {template}");
        }
        assert!(header.contains("lfsr_step"), "dynamic units share the LFSR");
        assert!(
            header.contains("ROM_1P_BRAM"),
            "masksembles maps to BRAM ROM"
        );
    }

    #[test]
    fn top_function_uses_the_configured_kinds() {
        let project = lenet_project();
        let cpp = project.file("firmware/lenet.cpp").unwrap();
        assert!(cpp.contains("#pragma HLS DATAFLOW"));
        // R-R-B: two random units then a bernoulli unit.
        assert_eq!(cpp.matches("nnet::random_dropout").count(), 2);
        assert_eq!(cpp.matches("nnet::bernoulli_dropout").count(), 1);
        assert_eq!(cpp.matches("nnet::masksembles_dropout").count(), 0);
    }

    #[test]
    fn parameters_match_lenet_shapes() {
        let project = lenet_project();
        let params = project.file("firmware/parameters.h").unwrap();
        assert!(params.contains("static const unsigned in_height = 28;"));
        assert!(params.contains("static const unsigned n_filt = 6;"));
        assert!(params.contains("static const unsigned n_in = 256;")); // fc1 input
    }

    #[test]
    fn masksembles_config_sizes_the_rom() {
        let project = generate_project(
            &zoo::lenet(),
            &"MMM".parse().unwrap(),
            &AcceleratorConfig::lenet_paper(),
            None,
        )
        .unwrap();
        let params = project.file("firmware/parameters.h").unwrap();
        assert!(params.contains("DROPOUT_MASKSEMBLES"));
        // Slot 0 follows 6-channel conv output -> 6 features.
        assert!(
            params.contains("static const unsigned n_features = 6;"),
            "{params}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(lenet_project(), lenet_project());
    }

    #[test]
    fn weights_are_emitted_for_trained_networks() {
        let mut rng = nds_tensor::rng::Rng64::new(1);
        let net = zoo::lenet().build_with_identity_slots(&mut rng).unwrap();
        let project = generate_project(
            &zoo::lenet(),
            &"BBB".parse().unwrap(),
            &AcceleratorConfig::lenet_paper(),
            Some(&net),
        )
        .unwrap();
        let weight_files: Vec<_> = project
            .files()
            .iter()
            .filter(|(p, _)| p.starts_with("firmware/weights/"))
            .collect();
        // LeNet: 2 convs + 3 linears, each with weight + bias = 10 tensors.
        assert_eq!(weight_files.len(), 10);
        let w0 = project.file("firmware/weights/w0.h").unwrap();
        assert!(w0.contains("model_default_t w0["));
    }

    #[test]
    fn slot_count_mismatch_is_rejected() {
        let err = generate_project(
            &zoo::lenet(),
            &"B".parse().unwrap(),
            &AcceleratorConfig::lenet_paper(),
            None,
        );
        assert!(err.is_err());
    }

    #[test]
    fn write_to_disk_round_trips() {
        let dir = std::env::temp_dir().join("nds_hls_test_project");
        let _ = std::fs::remove_dir_all(&dir);
        let project = lenet_project();
        project.write_to(&dir).unwrap();
        let on_disk = std::fs::read_to_string(dir.join("firmware/nnet_dropout.h")).unwrap();
        assert_eq!(on_disk, project.file("firmware/nnet_dropout.h").unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
