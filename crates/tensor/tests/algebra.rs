//! Property-based algebra laws for the tensor substrate.
//!
//! These pin down the linear-algebra identities the backprop
//! implementations silently rely on (e.g. conv-as-matmul lowering and the
//! transpose rules used in the gradient derivations).

use nds_tensor::conv::{conv2d, im2col, ConvGeometry};
use nds_tensor::rng::Rng64;
use nds_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn tensor_2d(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = Rng64::new(seed);
    Tensor::rand_uniform(Shape::d2(rows, cols), -2.0, 2.0, &mut rng)
}

fn approx_eq(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.iter()
            .zip(b.iter())
            .all(|(&x, &y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A·B)·C == A·(B·C)
    #[test]
    fn matmul_is_associative(m in 1usize..6, k in 1usize..6, n in 1usize..6, p in 1usize..6, seed in 0u64..500) {
        let a = tensor_2d(m, k, seed);
        let b = tensor_2d(k, n, seed ^ 1);
        let c = tensor_2d(n, p, seed ^ 2);
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(approx_eq(&left, &right, 1e-4));
    }

    /// A·(B + C) == A·B + A·C
    #[test]
    fn matmul_distributes_over_addition(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..500) {
        let a = tensor_2d(m, k, seed);
        let b = tensor_2d(k, n, seed ^ 3);
        let c = tensor_2d(k, n, seed ^ 4);
        let left = a.matmul(&b.add(&c).unwrap()).unwrap();
        let right = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(approx_eq(&left, &right, 1e-4));
    }

    /// (A·B)ᵀ == Bᵀ·Aᵀ
    #[test]
    fn transpose_reverses_products(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..500) {
        let a = tensor_2d(m, k, seed);
        let b = tensor_2d(k, n, seed ^ 5);
        let left = a.matmul(&b).unwrap().transpose().unwrap();
        let right = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        prop_assert!(approx_eq(&left, &right, 1e-4));
    }

    /// Transposition is an involution.
    #[test]
    fn transpose_involution(m in 1usize..8, n in 1usize..8, seed in 0u64..500) {
        let a = tensor_2d(m, n, seed);
        prop_assert_eq!(a.transpose().unwrap().transpose().unwrap(), a);
    }

    /// Convolution is linear in its input: conv(x + y) == conv(x) + conv(y).
    #[test]
    fn conv2d_is_linear(c in 1usize..3, hw in 4usize..8, oc in 1usize..3, seed in 0u64..300) {
        let mut rng = Rng64::new(seed);
        let g = ConvGeometry::new(3, 1, 1);
        let x = Tensor::rand_uniform(Shape::d4(1, c, hw, hw), -1.0, 1.0, &mut rng);
        let y = Tensor::rand_uniform(Shape::d4(1, c, hw, hw), -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform(Shape::d4(oc, c, 3, 3), -1.0, 1.0, &mut rng);
        let sum_then_conv = conv2d(&x.add(&y).unwrap(), &w, None, g).unwrap();
        let conv_then_sum = conv2d(&x, &w, None, g)
            .unwrap()
            .add(&conv2d(&y, &w, None, g).unwrap())
            .unwrap();
        prop_assert!(approx_eq(&sum_then_conv, &conv_then_sum, 1e-4));
    }

    /// im2col column count equals N*OH*OW and row count C*K*K.
    #[test]
    fn im2col_shape_law(n in 1usize..3, c in 1usize..4, hw in 3usize..9, k in 1usize..4, seed in 0u64..300) {
        prop_assume!(k <= hw);
        let mut rng = Rng64::new(seed);
        let g = ConvGeometry::new(k, 1, 0);
        let x = Tensor::rand_uniform(Shape::d4(n, c, hw, hw), -1.0, 1.0, &mut rng);
        let cols = im2col(&x, g).unwrap();
        let od = g.out_dim(hw);
        prop_assert_eq!(cols.shape(), &Shape::d2(c * k * k, n * od * od));
    }

    /// Softmax rows are invariant to per-row logit shifts.
    #[test]
    fn softmax_shift_invariance(n in 1usize..5, c in 2usize..8, shift in -50.0f32..50.0, seed in 0u64..500) {
        let a = tensor_2d(n, c, seed);
        let shifted = a.map(|v| v + shift);
        let p1 = a.softmax_rows().unwrap();
        let p2 = shifted.softmax_rows().unwrap();
        prop_assert!(approx_eq(&p1, &p2, 1e-4));
    }

    /// Scaling commutes with summation: sum(αx) == α·sum(x).
    #[test]
    fn scale_sum_commute(n in 1usize..64, alpha in -3.0f32..3.0, seed in 0u64..500) {
        let mut rng = Rng64::new(seed);
        let x = Tensor::rand_uniform(Shape::d1(n), -1.0, 1.0, &mut rng);
        let lhs = x.scale(alpha).sum();
        let rhs = alpha as f64 * x.sum();
        prop_assert!((lhs - rhs).abs() < 1e-4 * (1.0 + rhs.abs()));
    }
}
