//! Property-based equivalence tests for the gemm-lowered convolution.
//!
//! The per-image im2col + blocked-gemm [`conv2d`] must be **bit-for-bit**
//! equal to the naive direct-convolution oracle [`conv2d_direct`] across
//! ragged shapes, strides and padding (both kernels fix the same
//! `(channel, ky, kx)` accumulation order from the same bias seed), and
//! bit-identical to itself for any worker split and for any scratch
//! workspace state.

use nds_tensor::conv::{conv2d, conv2d_direct, conv2d_ws, ConvGeometry};
use nds_tensor::rng::Rng64;
use nds_tensor::{Shape, Tensor, Workspace};
use proptest::prelude::*;

/// Draws a random conv problem. Kernel/stride/padding are clamped so the
/// kernel always fits the padded input (`out_dim > 0`).
#[allow(clippy::too_many_arguments)]
fn rand_problem(
    seed: u64,
    n: usize,
    c: usize,
    oc: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    padding: usize,
) -> (Tensor, Tensor, Tensor, ConvGeometry) {
    let k = k.min(h + 2 * padding).min(w + 2 * padding).max(1);
    let g = ConvGeometry::new(k, stride, padding);
    let mut rng = Rng64::new(seed);
    let input = Tensor::rand_normal(Shape::d4(n, c, h, w), 0.0, 1.0, &mut rng);
    let weight = Tensor::rand_normal(Shape::d4(oc, c, k, k), 0.0, 0.7, &mut rng);
    let bias = Tensor::rand_normal(Shape::d1(oc), 0.0, 0.5, &mut rng);
    (input, weight, bias, g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Blocked-gemm conv2d is bit-for-bit equal to the direct oracle on
    /// ragged shapes, strides and padding — with and without bias.
    #[test]
    fn conv2d_matches_direct_bitwise(
        seed in 0u64..10_000,
        n in 1usize..4,
        c in 1usize..5,
        oc in 1usize..7,
        h in 1usize..11,
        w in 1usize..11,
        k in 1usize..6,
        stride in 1usize..4,
        padding in 0usize..3,
    ) {
        let (input, weight, bias, g) = rand_problem(seed, n, c, oc, h, w, k, stride, padding);
        let fast = conv2d(&input, &weight, Some(&bias), g).unwrap();
        let slow = conv2d_direct(&input, &weight, Some(&bias), g).unwrap();
        prop_assert_eq!(
            fast.as_slice(),
            slow.as_slice(),
            "bias path diverged: n={} c={} oc={} {}x{} k{} s{} p{}",
            n, c, oc, h, w, g.kernel, stride, padding
        );
        let fast = conv2d(&input, &weight, None, g).unwrap();
        let slow = conv2d_direct(&input, &weight, None, g).unwrap();
        prop_assert_eq!(
            fast.as_slice(),
            slow.as_slice(),
            "bias-free path diverged: n={} c={} oc={} {}x{} k{} s{} p{}",
            n, c, oc, h, w, g.kernel, stride, padding
        );
    }

    /// Zero weights (pruned-network case) and all-zero inputs keep the
    /// bit-for-bit equivalence: the gemm kernel's zero-weight skip is
    /// mirrored by the oracle.
    #[test]
    fn conv2d_matches_direct_with_pruned_weights(
        seed in 0u64..10_000,
        c in 1usize..4,
        oc in 1usize..5,
        h in 2usize..9,
        k in 1usize..4,
    ) {
        let (input, weight, bias, g) = rand_problem(seed, 2, c, oc, h, h, k, 1, 1);
        // Magnitude-prune ~half the weights to exact zero.
        let mut rng = Rng64::new(seed ^ 0xF00D);
        let mut pruned = weight.clone();
        pruned
            .iter_mut()
            .for_each(|v| *v = if rng.bernoulli(0.5) { 0.0 } else { *v });
        let fast = conv2d(&input, &pruned, Some(&bias), g).unwrap();
        let slow = conv2d_direct(&input, &pruned, Some(&bias), g).unwrap();
        prop_assert_eq!(fast.as_slice(), slow.as_slice());
    }

    /// The scratch-workspace entry point returns the same bytes whatever
    /// state the pool is in (fresh, warm, oversized buffers).
    #[test]
    fn conv2d_ws_is_insensitive_to_workspace_state(
        seed in 0u64..10_000,
        c in 1usize..4,
        oc in 1usize..5,
        h in 2usize..9,
        k in 1usize..4,
        stride in 1usize..3,
    ) {
        let (input, weight, bias, g) = rand_problem(seed, 2, c, oc, h, h, k, stride, 1);
        let fresh = conv2d(&input, &weight, Some(&bias), g).unwrap();
        let mut warm = Workspace::new();
        warm.recycle(vec![7.0f32; 4096]); // oversized, non-zero garbage
        let a = conv2d_ws(&input, &weight, Some(&bias), g, &mut warm).unwrap();
        let b = conv2d_ws(&input, &weight, Some(&bias), g, &mut warm).unwrap();
        prop_assert_eq!(fresh.as_slice(), a.as_slice());
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }
}
