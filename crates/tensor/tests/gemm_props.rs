//! Property-based equivalence tests for the optimised matmul kernels.
//!
//! The blocked/parallel kernels must agree with the naive ikj reference
//! to float tolerance on *ragged* shapes (nothing aligned to block or
//! worker boundaries) at every worker count, and must be bit-identical
//! to themselves across worker counts.

use nds_tensor::ops::{gemm, gemm_transa, gemm_transb};
use nds_tensor::rng::Rng64;
use nds_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn rand_pair(seed: u64, m: usize, k: usize, n: usize, transb: bool) -> (Tensor, Tensor) {
    let mut rng = Rng64::new(seed);
    let a = Tensor::rand_normal(Shape::d2(m, k), 0.0, 1.0, &mut rng);
    let b_shape = if transb {
        Shape::d2(n, k)
    } else {
        Shape::d2(k, n)
    };
    let b = Tensor::rand_normal(b_shape, 0.0, 1.0, &mut rng);
    (a, b)
}

fn assert_close(fast: &[f32], slow: &[f32], k: usize, what: &str) -> Result<(), String> {
    // Tolerance scales with the reduction depth: each output element sums
    // k products of unit-normal values.
    let tol = 1e-5f32 * (k as f32).sqrt().max(1.0) * 8.0;
    for (i, (x, y)) in fast.iter().zip(slow.iter()).enumerate() {
        prop_assert!(
            (x - y).abs() <= tol * (1.0 + y.abs()),
            "{what}[{i}]: {x} vs {y} (k = {k})"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked parallel matmul equals the naive reference on ragged
    /// shapes, for every worker count.
    #[test]
    fn matmul_matches_naive(
        seed in 0u64..10_000,
        m in 1usize..80,
        k in 1usize..96,
        n in 1usize..80,
        workers in 1usize..9,
    ) {
        let (a, b) = rand_pair(seed, m, k, n, false);
        let slow = a.matmul_naive(&b).unwrap();
        let mut fast = vec![0.0f32; m * n];
        gemm(a.as_slice(), b.as_slice(), m, k, n, &mut fast, workers);
        assert_close(&fast, slow.as_slice(), k, "matmul")?;
    }

    /// `matmul_transb` equals naive-matmul-of-the-transpose on ragged
    /// shapes, for every worker count.
    #[test]
    fn matmul_transb_matches_naive(
        seed in 0u64..10_000,
        m in 1usize..80,
        k in 1usize..96,
        n in 1usize..80,
        workers in 1usize..9,
    ) {
        let (a, bt) = rand_pair(seed, m, k, n, true);
        let slow = a.matmul_naive(&bt.transpose().unwrap()).unwrap();
        let mut fast = vec![0.0f32; m * n];
        gemm_transb(a.as_slice(), bt.as_slice(), m, k, n, &mut fast, workers);
        assert_close(&fast, slow.as_slice(), k, "matmul_transb")?;
    }

    /// `matmul_transa` equals naive matmul of the explicit transpose.
    #[test]
    fn matmul_transa_matches_naive(
        seed in 0u64..10_000,
        r in 1usize..64,
        m in 1usize..48,
        n in 1usize..48,
        workers in 1usize..9,
    ) {
        let mut rng = Rng64::new(seed);
        let at = Tensor::rand_normal(Shape::d2(r, m), 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(Shape::d2(r, n), 0.0, 1.0, &mut rng);
        let slow = at.transpose().unwrap().matmul_naive(&b).unwrap();
        let mut fast = vec![0.0f32; m * n];
        gemm_transa(at.as_slice(), b.as_slice(), r, m, n, &mut fast, workers);
        assert_close(&fast, slow.as_slice(), r, "matmul_transa")?;
    }

    /// Worker count never changes a single bit of the output.
    #[test]
    fn kernels_are_bit_stable_across_worker_counts(
        seed in 0u64..10_000,
        m in 1usize..64,
        k in 1usize..64,
        n in 1usize..64,
    ) {
        let (a, b) = rand_pair(seed, m, k, n, false);
        let mut reference = vec![0.0f32; m * n];
        gemm(a.as_slice(), b.as_slice(), m, k, n, &mut reference, 1);
        for workers in [2usize, 3, 5, 8, 13] {
            let mut out = vec![0.0f32; m * n];
            gemm(a.as_slice(), b.as_slice(), m, k, n, &mut out, workers);
            prop_assert_eq!(&out, &reference, "gemm diverged at {} workers", workers);
        }
        let (a, bt) = rand_pair(seed ^ 1, m, k, n, true);
        let mut reference = vec![0.0f32; m * n];
        gemm_transb(a.as_slice(), bt.as_slice(), m, k, n, &mut reference, 1);
        for workers in [2usize, 4, 7] {
            let mut out = vec![0.0f32; m * n];
            gemm_transb(a.as_slice(), bt.as_slice(), m, k, n, &mut out, workers);
            prop_assert_eq!(&out, &reference, "gemm_transb diverged at {} workers", workers);
        }
    }
}
