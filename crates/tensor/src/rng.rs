//! Deterministic pseudo-random number generation.
//!
//! All randomness in the workspace flows through [`Rng64`], a
//! SplitMix64-seeded Xoshiro256\*\* generator. Implementing the PRNG in-house
//! (rather than depending on `rand`) keeps dropout-mask generation
//! bit-reproducible across toolchain updates and mirrors the hardware LFSR
//! unit modelled by the `nds-hw` crate.
//!
//! # Examples
//!
//! ```
//! use nds_tensor::rng::Rng64;
//!
//! let mut a = Rng64::new(42);
//! let mut b = Rng64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
//! let x = a.uniform(); // in [0, 1)
//! assert!((0.0..1.0).contains(&x));
//! ```

/// SplitMix64 step, used for seeding and as a cheap stateless mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic Xoshiro256\*\* pseudo-random number generator.
///
/// Statistically strong, tiny, and `Copy`-cheap to fork: [`Rng64::fork`]
/// derives an independent stream, which the supernet trainer uses to give
/// every dropout slot its own reproducible stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// Derives an independent generator keyed by `stream`.
    ///
    /// Forked generators are decorrelated from the parent and from each
    /// other; the parent's state is not advanced.
    pub fn fork(&self, stream: u64) -> Self {
        let mut sm = self.s[0] ^ self.s[3] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// Derives a new seed from `seed`, keyed by `stream_id` — the
    /// canonical way to split one user-facing seed into independent
    /// sub-seeds (per island, per tenant, per probe bank, …).
    ///
    /// Pure and deterministic: the same `(seed, stream_id)` pair always
    /// yields the same derived seed, distinct streams are decorrelated
    /// by a SplitMix64 finalisation, and `derive(seed, s) != seed` for
    /// practical purposes (the mixer has no fixed points of interest).
    /// Prefer this over ad-hoc `seed ^ constant` or
    /// `seed + k * index` arithmetic, which correlates nearby streams.
    pub fn derive(seed: u64, stream_id: u64) -> u64 {
        let mut sm = seed ^ stream_id.wrapping_mul(0xA24B_AED4_963E_E407);
        // Two rounds: one to absorb the stream key, one to finalise, so
        // even stream_id = 0 (where the multiply contributes nothing)
        // lands far from the raw seed.
        splitmix64(&mut sm);
        splitmix64(&mut sm)
    }

    /// The generator's raw internal state — four Xoshiro256\*\* words.
    ///
    /// Together with [`Rng64::from_state`] this makes the generator
    /// exactly resumable: the dropout-search checkpoints serialise this
    /// state so a resumed run replays the identical stream, byte for
    /// byte, from wherever the snapshot was taken.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Reconstructs a generator from a state captured by
    /// [`Rng64::state`]. The next outputs continue the captured stream
    /// exactly.
    pub fn from_state(s: [u64; 4]) -> Self {
        Rng64 { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper bits of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn uniform_f32(&mut self) -> f32 {
        self.uniform() as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform_in requires lo <= hi");
        lo + (hi - lo) * self.uniform_f32()
    }

    /// Unbiased integer in `[0, bound)` via Lemire's rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below requires a non-zero bound");
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= lo.wrapping_neg() % bound {
                return (m >> 64) as usize;
            }
        }
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Standard normal draw via the Box–Muller transform.
    pub fn normal(&mut self) -> f64 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation, as `f32`.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal() as f32
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (a uniform k-subset),
    /// returned in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from {n}");
        // Partial Fisher-Yates over an index vector; O(n) memory, O(n) time,
        // which is fine for the feature-map sizes we handle.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        let mut out = idx[..k].to_vec();
        out.sort_unstable();
        out
    }

    /// Picks a uniformly random element of a slice.
    ///
    /// Returns `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below(xs.len())])
        }
    }
}

impl Default for Rng64 {
    /// Default generator with a fixed seed — deterministic like everything
    /// else in the crate.
    fn default() -> Self {
        Rng64::new(0x5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should differ");
    }

    #[test]
    fn fork_is_independent_and_stable() {
        let parent = Rng64::new(9);
        let mut f1 = parent.fork(1);
        let mut f1b = parent.fork(1);
        let mut f2 = parent.fork(2);
        assert_eq!(f1.next_u64(), f1b.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn derive_is_deterministic_and_splits_streams() {
        assert_eq!(Rng64::derive(42, 0), Rng64::derive(42, 0));
        assert_eq!(Rng64::derive(42, 7), Rng64::derive(42, 7));
        // Distinct streams (and distinct seeds) land far apart.
        let mut seen = std::collections::HashSet::new();
        for seed in [0u64, 1, 42, u64::MAX] {
            assert!(seen.insert(seed), "base seeds distinct by construction");
            for stream in 0u64..16 {
                assert!(
                    seen.insert(Rng64::derive(seed, stream)),
                    "derive({seed}, {stream}) collided"
                );
            }
        }
        // Generators seeded from derived seeds are decorrelated.
        let mut a = Rng64::new(Rng64::derive(9, 0));
        let mut b = Rng64::new(Rng64::derive(9, 1));
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "derived streams should differ");
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = Rng64::new(13);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = Rng64::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = Rng64::new(3);
        for _ in 0..1000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng64::new(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.below(10);
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = Rng64::new(5);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn bernoulli_frequency_tracks_p() {
        let mut rng = Rng64::new(6);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        let freq = hits as f64 / 10_000.0;
        assert!((freq - 0.3).abs() < 0.03, "freq {freq}");
    }

    #[test]
    fn sample_indices_unique_sorted_in_range() {
        let mut rng = Rng64::new(8);
        for _ in 0..100 {
            let ix = rng.sample_indices(20, 7);
            assert_eq!(ix.len(), 7);
            assert!(ix.windows(2).all(|w| w[0] < w[1]), "sorted unique");
            assert!(ix.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn sample_indices_full_set() {
        let mut rng = Rng64::new(8);
        let ix = rng.sample_indices(5, 5);
        assert_eq!(ix, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng64::new(10);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Rng64::new(11);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert!(rng.choose(&[1, 2, 3]).is_some());
    }
}
