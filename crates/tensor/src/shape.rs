use std::fmt;

/// Maximum rank an inline [`Shape`] can hold. Everything in the
/// workspace is rank ≤ 4 (NCHW); the spare slot keeps
/// `stack_batch`-style rank bumps safe.
pub const MAX_RANK: usize = 5;

/// A tensor shape: an ordered list of dimension sizes.
///
/// Dimensions are stored **inline** (`[usize; MAX_RANK]` plus a rank), so
/// constructing or cloning a `Shape` never touches the heap — a property
/// the allocation-free inference path relies on: every layer forward
/// builds its output tensor's shape, and with heap-backed shapes those
/// constructions alone would defeat the [`crate::Workspace`] buffer pool.
/// (Deliberately `Clone`-not-`Copy`: shapes are passed and stored by
/// reference or explicit clone, and the clone is a flat 48-byte copy.)
/// Image tensors follow the NCHW convention `[batch, channels, height,
/// width]`.
///
/// # Examples
///
/// ```
/// use nds_tensor::Shape;
/// let s = Shape::d4(8, 3, 32, 32);
/// assert_eq!(s.len(), 8 * 3 * 32 * 32);
/// assert_eq!(s.rank(), 4);
/// ```
#[derive(Debug, Clone, Eq)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: usize,
}

impl PartialEq for Shape {
    fn eq(&self, other: &Self) -> bool {
        self.dims() == other.dims()
    }
}

impl std::hash::Hash for Shape {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash only the live prefix so equal shapes hash equally
        // regardless of stale data in the unused slots.
        self.dims().hash(state);
    }
}

impl Default for Shape {
    fn default() -> Self {
        Shape::scalar()
    }
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len()` exceeds [`MAX_RANK`].
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "shape rank {} exceeds MAX_RANK {MAX_RANK}",
            dims.len()
        );
        let mut inline = [0usize; MAX_RANK];
        inline[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: inline,
            rank: dims.len(),
        }
    }

    /// A scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape {
            dims: [0; MAX_RANK],
            rank: 0,
        }
    }

    /// A rank-1 shape.
    pub fn d1(n: usize) -> Self {
        Shape::new(&[n])
    }

    /// A rank-2 shape `[rows, cols]`.
    pub fn d2(rows: usize, cols: usize) -> Self {
        Shape::new(&[rows, cols])
    }

    /// A rank-3 shape `[channels, height, width]`.
    pub fn d3(c: usize, h: usize, w: usize) -> Self {
        Shape::new(&[c, h, w])
    }

    /// A rank-4 NCHW shape `[batch, channels, height, width]`.
    pub fn d4(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape::new(&[n, c, h, w])
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of elements (product of all dimensions; 1 for scalars).
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// Returns `true` if the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims()[axis]
    }

    /// Row-major strides for this shape.
    ///
    /// ```
    /// use nds_tensor::Shape;
    /// assert_eq!(Shape::d3(2, 3, 4).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.rank];
        for i in (0..self.rank.saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// Returns `None` if the index rank does not match or any coordinate is
    /// out of bounds.
    pub fn offset(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.rank {
            return None;
        }
        let mut off = 0;
        let mut stride = 1usize;
        // Walk axes from the innermost out so no stride buffer is needed.
        for (&ix, &bound) in index.iter().zip(self.dims().iter()).rev() {
            if ix >= bound {
                return None;
            }
            off += ix * stride;
            stride *= bound;
        }
        Some(off)
    }

    /// Interprets the shape as NCHW, returning `(n, c, h, w)`.
    ///
    /// Returns `None` unless the rank is exactly 4.
    pub fn as_nchw(&self) -> Option<(usize, usize, usize, usize)> {
        if self.rank == 4 {
            Some((self.dims[0], self.dims[1], self.dims[2], self.dims[3]))
        } else {
            None
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(&dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::d4(2, 3, 4, 5).len(), 120);
        assert_eq!(Shape::scalar().len(), 1);
        assert_eq!(Shape::d1(0).len(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::d2(3, 4).strides(), vec![4, 1]);
        assert_eq!(Shape::d4(2, 3, 4, 5).strides(), vec![60, 20, 5, 1]);
        assert_eq!(Shape::d1(7).strides(), vec![1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_round_trips() {
        let s = Shape::d3(2, 3, 4);
        let mut seen = std::collections::HashSet::new();
        for c in 0..2 {
            for h in 0..3 {
                for w in 0..4 {
                    let off = s.offset(&[c, h, w]).unwrap();
                    assert!(off < s.len());
                    assert!(seen.insert(off), "offsets must be unique");
                }
            }
        }
        assert_eq!(seen.len(), s.len());
    }

    #[test]
    fn offset_rejects_bad_indices() {
        let s = Shape::d2(2, 2);
        assert_eq!(s.offset(&[2, 0]), None);
        assert_eq!(s.offset(&[0]), None);
        assert_eq!(s.offset(&[0, 0, 0]), None);
    }

    #[test]
    fn display_is_bracketed() {
        assert_eq!(Shape::d3(1, 2, 3).to_string(), "[1, 2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn as_nchw_requires_rank_4() {
        assert_eq!(Shape::d4(1, 2, 3, 4).as_nchw(), Some((1, 2, 3, 4)));
        assert_eq!(Shape::d3(2, 3, 4).as_nchw(), None);
    }

    #[test]
    fn equality_ignores_unused_inline_slots() {
        // Two rank-2 shapes built through different paths must compare
        // (and hash) equal even if their spare inline slots differ.
        let a = Shape::d2(3, 4);
        let b = Shape::from(vec![3, 4]);
        assert_eq!(a, b);
        let mut hasher_a = std::collections::hash_map::DefaultHasher::new();
        let mut hasher_b = std::collections::hash_map::DefaultHasher::new();
        use std::hash::{Hash, Hasher};
        a.hash(&mut hasher_a);
        b.hash(&mut hasher_b);
        assert_eq!(hasher_a.finish(), hasher_b.finish());
        assert_ne!(a, Shape::d2(4, 3));
        assert_ne!(a, Shape::d1(3));
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_RANK")]
    fn over_max_rank_is_rejected() {
        let _ = Shape::new(&[1usize; MAX_RANK + 1]);
    }
}
