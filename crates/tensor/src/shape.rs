use std::fmt;

/// A tensor shape: an ordered list of dimension sizes.
///
/// Shapes are cheap to clone (they are a small `Vec<usize>`) and compare by
/// value. Image tensors follow the NCHW convention `[batch, channels,
/// height, width]`.
///
/// # Examples
///
/// ```
/// use nds_tensor::Shape;
/// let s = Shape::d4(8, 3, 32, 32);
/// assert_eq!(s.len(), 8 * 3 * 32 * 32);
/// assert_eq!(s.rank(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// A scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// A rank-1 shape.
    pub fn d1(n: usize) -> Self {
        Shape(vec![n])
    }

    /// A rank-2 shape `[rows, cols]`.
    pub fn d2(rows: usize, cols: usize) -> Self {
        Shape(vec![rows, cols])
    }

    /// A rank-3 shape `[channels, height, width]`.
    pub fn d3(c: usize, h: usize, w: usize) -> Self {
        Shape(vec![c, h, w])
    }

    /// A rank-4 NCHW shape `[batch, channels, height, width]`.
    pub fn d4(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape(vec![n, c, h, w])
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of all dimensions; 1 for scalars).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns `true` if the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major strides for this shape.
    ///
    /// ```
    /// use nds_tensor::Shape;
    /// assert_eq!(Shape::d3(2, 3, 4).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// Returns `None` if the index rank does not match or any coordinate is
    /// out of bounds.
    pub fn offset(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.0.len() {
            return None;
        }
        let mut off = 0;
        let strides = self.strides();
        for (i, (&ix, &bound)) in index.iter().zip(self.0.iter()).enumerate() {
            if ix >= bound {
                return None;
            }
            off += ix * strides[i];
        }
        Some(off)
    }

    /// Interprets the shape as NCHW, returning `(n, c, h, w)`.
    ///
    /// Returns `None` unless the rank is exactly 4.
    pub fn as_nchw(&self) -> Option<(usize, usize, usize, usize)> {
        if self.0.len() == 4 {
            Some((self.0[0], self.0[1], self.0[2], self.0[3]))
        } else {
            None
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::d4(2, 3, 4, 5).len(), 120);
        assert_eq!(Shape::scalar().len(), 1);
        assert_eq!(Shape::d1(0).len(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::d2(3, 4).strides(), vec![4, 1]);
        assert_eq!(Shape::d4(2, 3, 4, 5).strides(), vec![60, 20, 5, 1]);
        assert_eq!(Shape::d1(7).strides(), vec![1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_round_trips() {
        let s = Shape::d3(2, 3, 4);
        let mut seen = std::collections::HashSet::new();
        for c in 0..2 {
            for h in 0..3 {
                for w in 0..4 {
                    let off = s.offset(&[c, h, w]).unwrap();
                    assert!(off < s.len());
                    assert!(seen.insert(off), "offsets must be unique");
                }
            }
        }
        assert_eq!(seen.len(), s.len());
    }

    #[test]
    fn offset_rejects_bad_indices() {
        let s = Shape::d2(2, 2);
        assert_eq!(s.offset(&[2, 0]), None);
        assert_eq!(s.offset(&[0]), None);
        assert_eq!(s.offset(&[0, 0, 0]), None);
    }

    #[test]
    fn display_is_bracketed() {
        assert_eq!(Shape::d3(1, 2, 3).to_string(), "[1, 2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn as_nchw_requires_rank_4() {
        assert_eq!(Shape::d4(1, 2, 3, 4).as_nchw(), Some((1, 2, 3, 4)));
        assert_eq!(Shape::d3(2, 3, 4).as_nchw(), None);
    }
}
