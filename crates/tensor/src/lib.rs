//! Dense tensor substrate for the neural dropout search framework.
//!
//! This crate provides the numeric foundation used by every other crate in
//! the workspace:
//!
//! * [`Tensor`] — a dense, row-major `f32` tensor with NCHW conventions for
//!   image data and a rich set of elementwise / linear-algebra operations,
//! * [`Shape`] — a lightweight dimension descriptor,
//! * [`rng::Rng64`] — a deterministic, seedable PRNG (SplitMix64-seeded
//!   Xoshiro256\*\*) used for *all* randomness in the workspace so that every
//!   experiment is reproducible from a single seed,
//! * [`conv`] — 2-D convolution lowered per image onto the blocked gemm
//!   kernels (plus pooling), with a naive direct-convolution oracle,
//! * [`ops`] — cache-blocked, row-parallel matmul kernels with fused
//!   transposed/bias variants, bit-identical across worker counts,
//! * [`parallel`] — data-parallel helpers over a lazily-initialised
//!   persistent worker pool; worker count is configurable via the
//!   `NDS_THREADS` environment variable,
//! * [`SharedTensor`] — copy-on-write `Arc`-backed tensor storage, used
//!   for network weights so inference clones share instead of copying,
//! * [`Workspace`] — a scratch-buffer pool the Monte-Carlo engine threads
//!   through repeated stochastic forward passes to avoid reallocations.
//!
//! # Examples
//!
//! ```
//! use nds_tensor::{Tensor, Shape};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::d2(2, 2)).unwrap();
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b).unwrap();
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is the
// lifetime erasure inside `parallel::pool`, which carries its own
// `#[allow(unsafe_code)]` and safety argument. Everything else in the
// crate remains statically free of unsafe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod conv;
pub mod ops;
pub mod parallel;
pub mod rng;
mod shape;
mod shared;
mod tensor;
mod workspace;

pub use shape::{Shape, MAX_RANK};
pub use shared::SharedTensor;
pub use tensor::Tensor;
pub use workspace::Workspace;

use std::error::Error as StdError;
use std::fmt;

/// Error type for all fallible tensor operations.
///
/// Carries enough context to diagnose shape mismatches without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to be compatible were not.
    ShapeMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Left-hand / expected shape.
        lhs: Shape,
        /// Right-hand / actual shape.
        rhs: Shape,
    },
    /// The number of data elements does not match the product of the shape.
    LengthMismatch {
        /// Expected element count (product of dimensions).
        expected: usize,
        /// Actual element count supplied.
        actual: usize,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending flat or per-axis index.
        index: usize,
        /// The bound that was violated.
        bound: usize,
    },
    /// The operation required a tensor of a particular rank.
    RankMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Required rank.
        expected: usize,
        /// Rank of the tensor supplied.
        actual: usize,
    },
    /// A parameter was outside its legal domain (e.g. zero-sized kernel).
    InvalidArgument {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Description of the violated precondition.
        msg: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs} vs {rhs}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "length mismatch: expected {expected} elements, got {actual}"
                )
            }
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (bound {bound})")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "rank mismatch in {op}: expected rank {expected}, got {actual}"
                )
            }
            TensorError::InvalidArgument { op, msg } => {
                write!(f, "invalid argument to {op}: {msg}")
            }
        }
    }
}

impl StdError for TensorError {}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, TensorError>;
