//! Convolution and pooling kernels.
//!
//! The 2-D convolution is implemented with the classic im2col lowering:
//! patches of the input feature map are unrolled into the columns of a
//! matrix so that the convolution becomes one matrix multiplication — the
//! dataflow the `nds-hw` accelerator model assumes for its
//! latency/resource estimates.
//!
//! # Performance notes
//!
//! [`conv2d`] lowers **per image** onto the cache-blocked, row-parallel
//! [`crate::ops::gemm_acc`] kernel: for each batch item the `[C·K·K, OH·OW]`
//! patch matrix is materialised once into a [`Workspace`]-pooled scratch
//! buffer and multiplied against the weight matrix directly into that
//! image's `[OC, OH·OW]` output slab. Compared to the earlier whole-batch
//! lowering this
//!
//! * keeps the im2col scratch at one image (`C·K·K·OH·OW` floats) instead
//!   of the whole batch, so it stays cache-resident and is recycled across
//!   images and forward passes (steady-state forwards allocate only the
//!   output),
//! * writes gemm results straight into NCHW layout — the old
//!   `[OC, N·OH·OW] → [N, OC, OH, OW]` rearrangement pass is gone,
//! * parallelises over output-channel rows inside the gemm, which for the
//!   VGG/ResNet-scale layers (64–512 channels) saturates the worker pool.
//!
//! The bias is folded in by seeding each output row before accumulation,
//! and accumulation order over `(channel, ky, kx)` is fixed and ascending,
//! so results are **bit-identical for any worker count** and bit-identical
//! to the naive [`conv2d_direct`] oracle (property-tested in
//! `tests/conv_props.rs`).

use crate::ops::gemm_acc;
use crate::parallel::worker_count;
use crate::{Result, Shape, Tensor, TensorError, Workspace};

/// Spatial geometry of a convolution or pooling window.
///
/// # Examples
///
/// ```
/// use nds_tensor::conv::ConvGeometry;
/// let g = ConvGeometry::new(3, 1, 1); // 3x3 kernel, stride 1, pad 1: "same"
/// assert_eq!(g.out_dim(32), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    /// Kernel height and width (square kernels only).
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding on each border.
    pub padding: usize,
}

impl ConvGeometry {
    /// Creates a geometry descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        assert!(stride > 0, "stride must be positive");
        ConvGeometry {
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input of size `dim`.
    ///
    /// Returns 0 when the kernel does not fit.
    pub fn out_dim(&self, dim: usize) -> usize {
        let padded = dim + 2 * self.padding;
        if padded < self.kernel {
            0
        } else {
            (padded - self.kernel) / self.stride + 1
        }
    }
}

/// Unrolls one `[C, H, W]` image into an im2col patch matrix on raw
/// slices: `out` receives `[C*K*K, OH*OW]` row-major, every element
/// written (padded positions as zero).
///
/// This is the per-image building block [`conv2d`] loops over; the
/// whole-batch [`im2col`] remains for callers that need the batched
/// layout.
///
/// # Panics
///
/// Panics (in debug builds) when slice lengths disagree with the
/// dimensions.
pub fn im2col_image(img: &[f32], c: usize, h: usize, w: usize, g: ConvGeometry, out: &mut [f32]) {
    let k = g.kernel;
    let oh = g.out_dim(h);
    let ow = g.out_dim(w);
    debug_assert_eq!(img.len(), c * h * w);
    debug_assert_eq!(out.len(), c * k * k * oh * ow);
    for ci in 0..c {
        let chan = &img[ci * h * w..(ci + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (ci * k + ky) * k + kx;
                let orow = &mut out[row * oh * ow..(row + 1) * oh * ow];
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                    let dst = &mut orow[oy * ow..(oy + 1) * ow];
                    if iy < 0 || iy >= h as isize {
                        dst.fill(0.0);
                        continue;
                    }
                    let src = &chan[iy as usize * w..(iy as usize + 1) * w];
                    for (ox, d) in dst.iter_mut().enumerate() {
                        let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                        *d = if ix < 0 || ix >= w as isize {
                            0.0
                        } else {
                            src[ix as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Scatters one image's im2col-shaped gradient back onto its feature map
/// (the per-image adjoint of [`im2col_image`]): `cols` is
/// `[C*K*K, OH*OW]`, contributions are **accumulated** into `img`
/// (callers zero it first).
///
/// # Panics
///
/// Panics (in debug builds) when slice lengths disagree with the
/// dimensions.
pub fn col2im_image(cols: &[f32], c: usize, h: usize, w: usize, g: ConvGeometry, img: &mut [f32]) {
    let k = g.kernel;
    let oh = g.out_dim(h);
    let ow = g.out_dim(w);
    debug_assert_eq!(img.len(), c * h * w);
    debug_assert_eq!(cols.len(), c * k * k * oh * ow);
    for ci in 0..c {
        let chan = &mut img[ci * h * w..(ci + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (ci * k + ky) * k + kx;
                let srow = &cols[row * oh * ow..(row + 1) * oh * ow];
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dst = &mut chan[iy as usize * w..(iy as usize + 1) * w];
                    for (ox, &s) in srow[oy * ow..(oy + 1) * ow].iter().enumerate() {
                        let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dst[ix as usize] += s;
                    }
                }
            }
        }
    }
}

/// Unrolls an NCHW batch into an im2col matrix.
///
/// For an input `[N, C, H, W]` and geometry `g`, the result is a matrix of
/// shape `[C*K*K, N*OH*OW]`: each column holds one receptive-field patch.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 inputs and
/// [`TensorError::InvalidArgument`] when the kernel does not fit.
pub fn im2col(input: &Tensor, g: ConvGeometry) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw().ok_or(TensorError::RankMismatch {
        op: "im2col",
        expected: 4,
        actual: input.shape().rank(),
    })?;
    let oh = g.out_dim(h);
    let ow = g.out_dim(w);
    if oh == 0 || ow == 0 {
        return Err(TensorError::InvalidArgument {
            op: "im2col",
            msg: format!(
                "kernel {}x{} does not fit input {h}x{w} with padding {}",
                g.kernel, g.kernel, g.padding
            ),
        });
    }
    let k = g.kernel;
    let rows = c * k * k;
    let cols = n * oh * ow;
    let x = input.as_slice();
    let mut out = vec![0.0f32; rows * cols];
    // Row-major output: out[row * cols + col].
    for ci in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ci * k + ky) * k + kx;
                let out_row = &mut out[row * cols..(row + 1) * cols];
                for ni in 0..n {
                    let img = &x[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
                    for oy in 0..oh {
                        let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                        let col_base = (ni * oh + oy) * ow;
                        if iy < 0 || iy >= h as isize {
                            continue; // zero padding: leave zeros in place
                        }
                        let iy = iy as usize;
                        for ox in 0..ow {
                            let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            out_row[col_base + ox] = img[iy * w + ix as usize];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, Shape::d2(rows, cols))
}

/// Scatters an im2col-shaped gradient back onto the input feature map
/// (the adjoint of [`im2col`]).
///
/// `cols` must have shape `[C*K*K, N*OH*OW]`; the result has shape
/// `[N, C, H, W]` given by `input_shape`.
///
/// # Errors
///
/// Returns shape errors mirroring [`im2col`].
pub fn col2im(cols: &Tensor, input_shape: &Shape, g: ConvGeometry) -> Result<Tensor> {
    let (n, c, h, w) = input_shape.as_nchw().ok_or(TensorError::RankMismatch {
        op: "col2im",
        expected: 4,
        actual: input_shape.rank(),
    })?;
    let oh = g.out_dim(h);
    let ow = g.out_dim(w);
    let k = g.kernel;
    let rows = c * k * k;
    let ncols = n * oh * ow;
    if cols.shape() != &Shape::d2(rows, ncols) {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            lhs: Shape::d2(rows, ncols),
            rhs: cols.shape().clone(),
        });
    }
    let src = cols.as_slice();
    let mut out = vec![0.0f32; n * c * h * w];
    for ci in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ci * k + ky) * k + kx;
                let src_row = &src[row * ncols..(row + 1) * ncols];
                for ni in 0..n {
                    let img_base = (ni * c + ci) * h * w;
                    for oy in 0..oh {
                        let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        let col_base = (ni * oh + oy) * ow;
                        for ox in 0..ow {
                            let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            out[img_base + iy * w + ix as usize] += src_row[col_base + ox];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, input_shape.clone())
}

/// Validates conv2d operand shapes, returning
/// `(n, c, h, w, oc, oh, ow)`.
fn conv2d_check(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    g: ConvGeometry,
) -> Result<(usize, usize, usize, usize, usize, usize, usize)> {
    let (n, c, h, w) = input.shape().as_nchw().ok_or(TensorError::RankMismatch {
        op: "conv2d",
        expected: 4,
        actual: input.shape().rank(),
    })?;
    let (oc, wc, kh, kw) = weight.shape().as_nchw().ok_or(TensorError::RankMismatch {
        op: "conv2d(weight)",
        expected: 4,
        actual: weight.shape().rank(),
    })?;
    if wc != c || kh != g.kernel || kw != g.kernel {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: Shape::d4(oc, c, g.kernel, g.kernel),
            rhs: weight.shape().clone(),
        });
    }
    if let Some(b) = bias {
        if b.len() != oc {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d(bias)",
                lhs: Shape::d1(oc),
                rhs: b.shape().clone(),
            });
        }
    }
    let oh = g.out_dim(h);
    let ow = g.out_dim(w);
    if oh == 0 || ow == 0 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d",
            msg: format!(
                "kernel {}x{} does not fit input {h}x{w} with padding {}",
                g.kernel, g.kernel, g.padding
            ),
        });
    }
    Ok((n, c, h, w, oc, oh, ow))
}

/// 2-D convolution: weights `[OC, C, K, K]`, input `[N, C, H, W]`,
/// optional bias `[OC]`, producing `[N, OC, OH, OW]`.
///
/// Lowered per image through [`im2col_image`] + the blocked parallel
/// [`gemm_acc`] kernel (see the module docs). Equivalent to
/// [`conv2d_ws`] with a throwaway [`Workspace`]; hot loops should call
/// that directly so the im2col scratch is reused across calls.
///
/// # Errors
///
/// Returns shape errors when operand dimensions are inconsistent.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    g: ConvGeometry,
) -> Result<Tensor> {
    conv2d_ws(input, weight, bias, g, &mut Workspace::new())
}

/// [`conv2d`] with an explicit scratch [`Workspace`]: the per-image
/// im2col buffer is taken from (and returned to) the pool, so repeated
/// forwards allocate nothing beyond the output tensor.
///
/// Accumulation order per output element is fixed (bias seed, then
/// `(channel, ky, kx)` ascending), so results are bit-identical across
/// worker counts and identical to [`conv2d_direct`].
///
/// # Errors
///
/// Returns shape errors when operand dimensions are inconsistent.
pub fn conv2d_ws(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    g: ConvGeometry,
    workspace: &mut Workspace,
) -> Result<Tensor> {
    let (n, c, h, w, oc, oh, ow) = conv2d_check(input, weight, bias, g)?;
    let k = g.kernel;
    let ckk = c * k * k;
    let spatial = oh * ow;
    let x = input.as_slice();
    let wt = weight.as_slice();
    let bias = bias.map(|b| b.as_slice());
    let workers = worker_count();
    let mut cols = workspace.take_dirty(ckk * spatial);
    // The output buffer also comes from the pool: under the Workspace
    // ownership contract the caller recycles consumed activations, so
    // steady-state forwards cycle the same buffers instead of draining
    // the pool. With a bias, every output row is seeded before the gemm
    // accumulates, so the zero-fill can be skipped entirely.
    let mut out = if bias.is_some() {
        workspace.take_dirty(n * oc * spatial)
    } else {
        workspace.take(n * oc * spatial)
    };
    for ni in 0..n {
        im2col_image(
            &x[ni * c * h * w..(ni + 1) * c * h * w],
            c,
            h,
            w,
            g,
            &mut cols,
        );
        let slab = &mut out[ni * oc * spatial..(ni + 1) * oc * spatial];
        if let Some(b) = bias {
            for (o, row) in slab.chunks_mut(spatial).enumerate() {
                row.fill(b[o]);
            }
        }
        // [OC, CKK] × [CKK, OH·OW] accumulated straight into the NCHW slab.
        gemm_acc(wt, &cols, oc, ckk, spatial, slab, workers);
    }
    workspace.recycle(cols);
    Tensor::from_vec(out, Shape::d4(n, oc, oh, ow))
}

/// Naive direct convolution — the oracle the gemm-lowered [`conv2d`] is
/// property-tested against, kept deliberately close to the textbook
/// definition.
///
/// Accumulation runs over `(channel, ky, kx)` ascending from a bias seed,
/// padded taps multiply an explicit zero, and zero weights are skipped
/// (mirroring the gemm kernel's pruned-weight skip), so the result is
/// **bit-for-bit** equal to [`conv2d`].
///
/// # Errors
///
/// Returns shape errors when operand dimensions are inconsistent.
pub fn conv2d_direct(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    g: ConvGeometry,
) -> Result<Tensor> {
    let (n, c, h, w, oc, oh, ow) = conv2d_check(input, weight, bias, g)?;
    let k = g.kernel;
    let x = input.as_slice();
    let wt = weight.as_slice();
    let bias = bias.map(|b| b.as_slice());
    let mut out = vec![0.0f32; n * oc * oh * ow];
    for ni in 0..n {
        for o in 0..oc {
            let seed = bias.map(|b| b[o]).unwrap_or(0.0);
            let out_base = (ni * oc + o) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = seed;
                    for ci in 0..c {
                        let chan = &x[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
                        for ky in 0..k {
                            let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                            for kx in 0..k {
                                let wv = wt[((o * c + ci) * k + ky) * k + kx];
                                if wv == 0.0 {
                                    continue; // mirrors the gemm zero-skip
                                }
                                let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                                let xv = if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize
                                {
                                    0.0 // padding taps multiply an explicit zero
                                } else {
                                    chan[iy as usize * w + ix as usize]
                                };
                                acc += wv * xv;
                            }
                        }
                    }
                    out[out_base + oy * ow + ox] = acc;
                }
            }
        }
    }
    Tensor::from_vec(out, Shape::d4(n, oc, oh, ow))
}

/// Result of a max-pool forward pass: outputs plus argmax indices for the
/// backward pass.
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled feature map `[N, C, OH, OW]`.
    pub output: Tensor,
    /// Flat input index of the winning element for each output element.
    pub argmax: Vec<usize>,
}

/// Max pooling over an NCHW tensor.
///
/// # Errors
///
/// Returns shape errors when the window does not fit.
pub fn max_pool2d(input: &Tensor, g: ConvGeometry) -> Result<MaxPoolOutput> {
    let (n, c, h, w) = input.shape().as_nchw().ok_or(TensorError::RankMismatch {
        op: "max_pool2d",
        expected: 4,
        actual: input.shape().rank(),
    })?;
    let oh = g.out_dim(h);
    let ow = g.out_dim(w);
    if oh == 0 || ow == 0 {
        return Err(TensorError::InvalidArgument {
            op: "max_pool2d",
            msg: format!("window {} does not fit input {h}x{w}", g.kernel),
        });
    }
    let x = input.as_slice();
    let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
    let mut argmax = vec![0usize; n * c * oh * ow];
    for ni in 0..n {
        for ci in 0..c {
            let img_base = (ni * c + ci) * h * w;
            let out_base = (ni * c + ci) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for ky in 0..g.kernel {
                        let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..g.kernel {
                            let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let idx = img_base + iy as usize * w + ix as usize;
                            // NaN wins and sticks: a poisoned window must
                            // report NaN, not silently pick a finite value.
                            if x[idx] > best || x[idx].is_nan() {
                                best = x[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out[out_base + oy * ow + ox] = best;
                    argmax[out_base + oy * ow + ox] = best_idx;
                }
            }
        }
    }
    Ok(MaxPoolOutput {
        output: Tensor::from_vec(out, Shape::d4(n, c, oh, ow))?,
        argmax,
    })
}

/// Inference-path max pooling: identical outputs to [`max_pool2d`]
/// (same window walk, same NaN-wins rule) but skips the argmax
/// bookkeeping — backward never runs at inference — and draws the output
/// from the workspace pool so steady-state forwards do not allocate.
///
/// # Errors
///
/// Returns shape errors when the window does not fit.
pub fn max_pool2d_ws(input: &Tensor, g: ConvGeometry, workspace: &mut Workspace) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw().ok_or(TensorError::RankMismatch {
        op: "max_pool2d",
        expected: 4,
        actual: input.shape().rank(),
    })?;
    let oh = g.out_dim(h);
    let ow = g.out_dim(w);
    if oh == 0 || ow == 0 {
        return Err(TensorError::InvalidArgument {
            op: "max_pool2d",
            msg: format!("window {} does not fit input {h}x{w}", g.kernel),
        });
    }
    let x = input.as_slice();
    let mut out = workspace.take_dirty(n * c * oh * ow);
    if g.padding == 0 {
        // Unpadded windows are fully in-bounds by `out_dim` construction,
        // so the per-tap boundary tests vanish: walk each window row as a
        // slice. Same `(ky, kx)`-ascending compare order and NaN-wins
        // rule as the general path — identical outputs.
        for chan in 0..n * c {
            let img = &x[chan * h * w..(chan + 1) * h * w];
            let orows = &mut out[chan * oh * ow..(chan + 1) * oh * ow];
            for oy in 0..oh {
                let iy0 = oy * g.stride;
                for (ox, o) in orows[oy * ow..(oy + 1) * ow].iter_mut().enumerate() {
                    let ix0 = ox * g.stride;
                    let mut best = f32::NEG_INFINITY;
                    for ky in 0..g.kernel {
                        let row = &img[(iy0 + ky) * w + ix0..(iy0 + ky) * w + ix0 + g.kernel];
                        for &v in row {
                            best = if v > best || v.is_nan() { v } else { best };
                        }
                    }
                    *o = best;
                }
            }
        }
        return Tensor::from_vec(out, Shape::d4(n, c, oh, ow));
    }
    for ni in 0..n {
        for ci in 0..c {
            let img_base = (ni * c + ci) * h * w;
            let out_base = (ni * c + ci) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    for ky in 0..g.kernel {
                        let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..g.kernel {
                            let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let idx = img_base + iy as usize * w + ix as usize;
                            if x[idx] > best || x[idx].is_nan() {
                                best = x[idx];
                            }
                        }
                    }
                    out[out_base + oy * ow + ox] = best;
                }
            }
        }
    }
    Tensor::from_vec(out, Shape::d4(n, c, oh, ow))
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 inputs.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw().ok_or(TensorError::RankMismatch {
        op: "global_avg_pool",
        expected: 4,
        actual: input.shape().rank(),
    })?;
    let x = input.as_slice();
    let spatial = (h * w) as f32;
    let mut out = vec![0.0f32; n * c];
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let sum: f32 = x[base..base + h * w].iter().sum();
            out[ni * c + ci] = sum / spatial;
        }
    }
    Tensor::from_vec(out, Shape::d2(n, c))
}

/// [`global_avg_pool`] with the output drawn from the workspace pool —
/// bit-identical results, no allocation after warm-up.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 inputs.
pub fn global_avg_pool_ws(input: &Tensor, workspace: &mut Workspace) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw().ok_or(TensorError::RankMismatch {
        op: "global_avg_pool",
        expected: 4,
        actual: input.shape().rank(),
    })?;
    let x = input.as_slice();
    let spatial = (h * w) as f32;
    let mut out = workspace.take_dirty(n * c);
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let sum: f32 = x[base..base + h * w].iter().sum();
            out[ni * c + ci] = sum / spatial;
        }
    }
    Tensor::from_vec(out, Shape::d2(n, c))
}

/// Average pooling over an NCHW tensor (counts padding as zeros, divides by
/// the full window area, matching common "count_include_pad" semantics).
///
/// # Errors
///
/// Returns shape errors when the window does not fit.
pub fn avg_pool2d(input: &Tensor, g: ConvGeometry) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw().ok_or(TensorError::RankMismatch {
        op: "avg_pool2d",
        expected: 4,
        actual: input.shape().rank(),
    })?;
    let oh = g.out_dim(h);
    let ow = g.out_dim(w);
    if oh == 0 || ow == 0 {
        return Err(TensorError::InvalidArgument {
            op: "avg_pool2d",
            msg: format!("window {} does not fit input {h}x{w}", g.kernel),
        });
    }
    let x = input.as_slice();
    let area = (g.kernel * g.kernel) as f32;
    let mut out = vec![0.0f32; n * c * oh * ow];
    for ni in 0..n {
        for ci in 0..c {
            let img_base = (ni * c + ci) * h * w;
            let out_base = (ni * c + ci) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut sum = 0.0f32;
                    for ky in 0..g.kernel {
                        let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..g.kernel {
                            let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            sum += x[img_base + iy as usize * w + ix as usize];
                        }
                    }
                    out[out_base + oy * ow + ox] = sum / area;
                }
            }
        }
    }
    Tensor::from_vec(out, Shape::d4(n, c, oh, ow))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn out_dim_formula() {
        let g = ConvGeometry::new(3, 1, 1);
        assert_eq!(g.out_dim(32), 32);
        let g = ConvGeometry::new(2, 2, 0);
        assert_eq!(g.out_dim(32), 16);
        let g = ConvGeometry::new(5, 1, 0);
        assert_eq!(g.out_dim(28), 24);
        assert_eq!(g.out_dim(3), 0); // kernel larger than padded input
    }

    #[test]
    fn conv2d_identity_kernel() {
        // A 1x1 kernel with weight 1 reproduces the input.
        let input = Tensor::arange(3 * 3)
            .reshape(Shape::d4(1, 1, 3, 3))
            .unwrap();
        let weight = Tensor::ones(Shape::d4(1, 1, 1, 1));
        let out = conv2d(&input, &weight, None, ConvGeometry::new(1, 1, 0)).unwrap();
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn conv2d_known_3x3() {
        // All-ones 3x3 kernel over a 3x3 all-ones image, no padding: sum = 9.
        let input = Tensor::ones(Shape::d4(1, 1, 3, 3));
        let weight = Tensor::ones(Shape::d4(1, 1, 3, 3));
        let out = conv2d(&input, &weight, None, ConvGeometry::new(3, 1, 0)).unwrap();
        assert_eq!(out.shape(), &Shape::d4(1, 1, 1, 1));
        assert_eq!(out.as_slice(), &[9.0]);
        // With padding 1 the corner receptive fields see only 4 ones.
        let out = conv2d(&input, &weight, None, ConvGeometry::new(3, 1, 1)).unwrap();
        assert_eq!(out.shape(), &Shape::d4(1, 1, 3, 3));
        assert_eq!(out.get(&[0, 0, 0, 0]), Some(4.0));
        assert_eq!(out.get(&[0, 0, 1, 1]), Some(9.0));
        assert_eq!(out.get(&[0, 0, 0, 1]), Some(6.0));
    }

    #[test]
    fn conv2d_bias_is_added_per_channel() {
        let input = Tensor::zeros(Shape::d4(2, 1, 2, 2));
        let weight = Tensor::zeros(Shape::d4(3, 1, 1, 1));
        let bias = Tensor::from_vec(vec![1.0, 2.0, 3.0], Shape::d1(3)).unwrap();
        let out = conv2d(&input, &weight, Some(&bias), ConvGeometry::new(1, 1, 0)).unwrap();
        for ni in 0..2 {
            for o in 0..3 {
                assert_eq!(out.get(&[ni, o, 0, 0]), Some((o + 1) as f32));
            }
        }
    }

    #[test]
    fn conv2d_multi_channel_sums_channels() {
        // Two input channels, kernel picks each with weight 1: output = c0 + c1.
        let mut input = Tensor::zeros(Shape::d4(1, 2, 2, 2));
        input.set(&[0, 0, 0, 0], 3.0).unwrap();
        input.set(&[0, 1, 0, 0], 4.0).unwrap();
        let weight = Tensor::ones(Shape::d4(1, 2, 1, 1));
        let out = conv2d(&input, &weight, None, ConvGeometry::new(1, 1, 0)).unwrap();
        assert_eq!(out.get(&[0, 0, 0, 0]), Some(7.0));
    }

    #[test]
    fn conv2d_rejects_wrong_weight_channels() {
        let input = Tensor::zeros(Shape::d4(1, 3, 4, 4));
        let weight = Tensor::zeros(Shape::d4(2, 2, 3, 3));
        assert!(conv2d(&input, &weight, None, ConvGeometry::new(3, 1, 1)).is_err());
        assert!(conv2d_direct(&input, &weight, None, ConvGeometry::new(3, 1, 1)).is_err());
    }

    #[test]
    fn gemm_lowering_matches_direct_oracle_bitwise() {
        let mut rng = Rng64::new(40);
        for (n, c, oc, h, w, k, stride, pad) in [
            (1, 1, 1, 3, 3, 1, 1, 0),
            (2, 3, 4, 5, 7, 3, 1, 1),
            (3, 2, 5, 8, 8, 3, 2, 1),
            (1, 4, 2, 6, 5, 5, 1, 2),
            (2, 1, 3, 4, 4, 2, 2, 0),
        ] {
            let g = ConvGeometry::new(k, stride, pad);
            let input = Tensor::rand_normal(Shape::d4(n, c, h, w), 0.0, 1.0, &mut rng);
            let weight = Tensor::rand_normal(Shape::d4(oc, c, k, k), 0.0, 0.5, &mut rng);
            let bias = Tensor::rand_normal(Shape::d1(oc), 0.0, 0.5, &mut rng);
            let fast = conv2d(&input, &weight, Some(&bias), g).unwrap();
            let slow = conv2d_direct(&input, &weight, Some(&bias), g).unwrap();
            assert_eq!(
                fast.as_slice(),
                slow.as_slice(),
                "({n},{c},{oc},{h},{w},k{k},s{stride},p{pad})"
            );
        }
    }

    #[test]
    fn conv2d_ws_reuses_the_im2col_buffer() {
        let mut rng = Rng64::new(41);
        let input = Tensor::rand_normal(Shape::d4(2, 3, 6, 6), 0.0, 1.0, &mut rng);
        let weight = Tensor::rand_normal(Shape::d4(4, 3, 3, 3), 0.0, 1.0, &mut rng);
        let g = ConvGeometry::new(3, 1, 1);
        let mut ws = Workspace::new();
        let first = conv2d_ws(&input, &weight, None, g, &mut ws).unwrap();
        ws.recycle_tensor(first);
        let allocations = ws.allocations();
        let second = conv2d_ws(&input, &weight, None, g, &mut ws).unwrap();
        assert_eq!(
            ws.allocations(),
            allocations,
            "steady-state conv2d forward must not allocate"
        );
        assert_eq!(second.shape(), &Shape::d4(2, 4, 6, 6));
    }

    #[test]
    fn im2col_image_matches_batched_im2col() {
        let mut rng = Rng64::new(42);
        let input = Tensor::rand_normal(Shape::d4(1, 2, 5, 4), 0.0, 1.0, &mut rng);
        let g = ConvGeometry::new(3, 1, 1);
        let batched = im2col(&input, g).unwrap();
        let mut per_image = vec![7.0f32; batched.len()]; // poisoned: every slot must be written
        im2col_image(input.as_slice(), 2, 5, 4, g, &mut per_image);
        assert_eq!(per_image, batched.as_slice());
    }

    #[test]
    fn im2col_col2im_adjoint_property() {
        // col2im(im2col(x)) counts each input position once per receptive
        // field it participates in; with a 1x1 kernel it is exactly x.
        let input = Tensor::arange(2 * 3 * 3)
            .reshape(Shape::d4(1, 2, 3, 3))
            .unwrap();
        let g = ConvGeometry::new(1, 1, 0);
        let cols = im2col(&input, g).unwrap();
        let back = col2im(&cols, input.shape(), g).unwrap();
        assert_eq!(back.as_slice(), input.as_slice());
        // Per-image variant agrees with the batched one.
        let mut img = vec![0.0f32; input.len()];
        col2im_image(cols.as_slice(), 2, 3, 3, g, &mut img);
        assert_eq!(img, back.as_slice());
    }

    #[test]
    fn max_pool_picks_maxima_and_argmax() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            Shape::d4(1, 1, 4, 4),
        )
        .unwrap();
        let MaxPoolOutput { output, argmax } =
            max_pool2d(&input, ConvGeometry::new(2, 2, 0)).unwrap();
        assert_eq!(output.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
        assert_eq!(argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn avg_pool_averages() {
        let input = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], Shape::d4(1, 1, 2, 2)).unwrap();
        let out = avg_pool2d(&input, ConvGeometry::new(2, 2, 0)).unwrap();
        assert_eq!(out.as_slice(), &[4.0]);
    }

    #[test]
    fn global_avg_pool_reduces_spatial() {
        let input = Tensor::arange(2 * 3 * 2 * 2)
            .reshape(Shape::d4(2, 3, 2, 2))
            .unwrap();
        let out = global_avg_pool(&input).unwrap();
        assert_eq!(out.shape(), &Shape::d2(2, 3));
        // Channel 0 of batch 0 holds 0,1,2,3 -> mean 1.5.
        assert_eq!(out.get(&[0, 0]), Some(1.5));
    }
}
