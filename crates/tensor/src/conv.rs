//! Convolution and pooling kernels.
//!
//! The 2-D convolution is implemented with the classic im2col lowering:
//! patches of the input feature map are unrolled into the columns of a
//! matrix so that the convolution becomes one matrix multiplication. This is
//! both reasonably fast on a CPU and — usefully for this project — exactly
//! the dataflow that the `nds-hw` accelerator model assumes for its
//! latency/resource estimates.

use crate::{Result, Shape, Tensor, TensorError};

/// Spatial geometry of a convolution or pooling window.
///
/// # Examples
///
/// ```
/// use nds_tensor::conv::ConvGeometry;
/// let g = ConvGeometry::new(3, 1, 1); // 3x3 kernel, stride 1, pad 1: "same"
/// assert_eq!(g.out_dim(32), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    /// Kernel height and width (square kernels only).
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding on each border.
    pub padding: usize,
}

impl ConvGeometry {
    /// Creates a geometry descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        assert!(stride > 0, "stride must be positive");
        ConvGeometry {
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input of size `dim`.
    ///
    /// Returns 0 when the kernel does not fit.
    pub fn out_dim(&self, dim: usize) -> usize {
        let padded = dim + 2 * self.padding;
        if padded < self.kernel {
            0
        } else {
            (padded - self.kernel) / self.stride + 1
        }
    }
}

/// Unrolls an NCHW batch into an im2col matrix.
///
/// For an input `[N, C, H, W]` and geometry `g`, the result is a matrix of
/// shape `[C*K*K, N*OH*OW]`: each column holds one receptive-field patch.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 inputs and
/// [`TensorError::InvalidArgument`] when the kernel does not fit.
pub fn im2col(input: &Tensor, g: ConvGeometry) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw().ok_or(TensorError::RankMismatch {
        op: "im2col",
        expected: 4,
        actual: input.shape().rank(),
    })?;
    let oh = g.out_dim(h);
    let ow = g.out_dim(w);
    if oh == 0 || ow == 0 {
        return Err(TensorError::InvalidArgument {
            op: "im2col",
            msg: format!(
                "kernel {}x{} does not fit input {h}x{w} with padding {}",
                g.kernel, g.kernel, g.padding
            ),
        });
    }
    let k = g.kernel;
    let rows = c * k * k;
    let cols = n * oh * ow;
    let x = input.as_slice();
    let mut out = vec![0.0f32; rows * cols];
    // Row-major output: out[row * cols + col].
    for ci in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ci * k + ky) * k + kx;
                let out_row = &mut out[row * cols..(row + 1) * cols];
                for ni in 0..n {
                    let img = &x[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
                    for oy in 0..oh {
                        let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                        let col_base = (ni * oh + oy) * ow;
                        if iy < 0 || iy >= h as isize {
                            continue; // zero padding: leave zeros in place
                        }
                        let iy = iy as usize;
                        for ox in 0..ow {
                            let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            out_row[col_base + ox] = img[iy * w + ix as usize];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, Shape::d2(rows, cols))
}

/// Scatters an im2col-shaped gradient back onto the input feature map
/// (the adjoint of [`im2col`]).
///
/// `cols` must have shape `[C*K*K, N*OH*OW]`; the result has shape
/// `[N, C, H, W]` given by `input_shape`.
///
/// # Errors
///
/// Returns shape errors mirroring [`im2col`].
pub fn col2im(cols: &Tensor, input_shape: &Shape, g: ConvGeometry) -> Result<Tensor> {
    let (n, c, h, w) = input_shape.as_nchw().ok_or(TensorError::RankMismatch {
        op: "col2im",
        expected: 4,
        actual: input_shape.rank(),
    })?;
    let oh = g.out_dim(h);
    let ow = g.out_dim(w);
    let k = g.kernel;
    let rows = c * k * k;
    let ncols = n * oh * ow;
    if cols.shape() != &Shape::d2(rows, ncols) {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            lhs: Shape::d2(rows, ncols),
            rhs: cols.shape().clone(),
        });
    }
    let src = cols.as_slice();
    let mut out = vec![0.0f32; n * c * h * w];
    for ci in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ci * k + ky) * k + kx;
                let src_row = &src[row * ncols..(row + 1) * ncols];
                for ni in 0..n {
                    let img_base = (ni * c + ci) * h * w;
                    for oy in 0..oh {
                        let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        let col_base = (ni * oh + oy) * ow;
                        for ox in 0..ow {
                            let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            out[img_base + iy * w + ix as usize] += src_row[col_base + ox];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, input_shape.clone())
}

/// Direct 2-D convolution: weights `[OC, C, K, K]`, input `[N, C, H, W]`,
/// optional bias `[OC]`, producing `[N, OC, OH, OW]`.
///
/// Lowered through [`im2col`] + matmul.
///
/// # Errors
///
/// Returns shape errors when operand dimensions are inconsistent.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    g: ConvGeometry,
) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw().ok_or(TensorError::RankMismatch {
        op: "conv2d",
        expected: 4,
        actual: input.shape().rank(),
    })?;
    let (oc, wc, kh, kw) = weight.shape().as_nchw().ok_or(TensorError::RankMismatch {
        op: "conv2d(weight)",
        expected: 4,
        actual: weight.shape().rank(),
    })?;
    if wc != c || kh != g.kernel || kw != g.kernel {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: Shape::d4(oc, c, g.kernel, g.kernel),
            rhs: weight.shape().clone(),
        });
    }
    if let Some(b) = bias {
        if b.len() != oc {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d(bias)",
                lhs: Shape::d1(oc),
                rhs: b.shape().clone(),
            });
        }
    }
    let oh = g.out_dim(h);
    let ow = g.out_dim(w);
    let cols = im2col(input, g)?;
    let wmat = weight.reshape(Shape::d2(oc, c * g.kernel * g.kernel))?;
    // [OC, CKK] x [CKK, N*OH*OW] = [OC, N*OH*OW]
    let prod = wmat.matmul(&cols)?;
    // Rearrange [OC, N*OH*OW] -> [N, OC, OH, OW], adding bias as we go.
    let src = prod.as_slice();
    let spatial = oh * ow;
    let mut out = vec![0.0f32; n * oc * spatial];
    for o in 0..oc {
        let badd = bias.map(|b| b.as_slice()[o]).unwrap_or(0.0);
        for ni in 0..n {
            let src_base = o * (n * spatial) + ni * spatial;
            let dst_base = (ni * oc + o) * spatial;
            for s in 0..spatial {
                out[dst_base + s] = src[src_base + s] + badd;
            }
        }
    }
    Tensor::from_vec(out, Shape::d4(n, oc, oh, ow))
}

/// Result of a max-pool forward pass: outputs plus argmax indices for the
/// backward pass.
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled feature map `[N, C, OH, OW]`.
    pub output: Tensor,
    /// Flat input index of the winning element for each output element.
    pub argmax: Vec<usize>,
}

/// Max pooling over an NCHW tensor.
///
/// # Errors
///
/// Returns shape errors when the window does not fit.
pub fn max_pool2d(input: &Tensor, g: ConvGeometry) -> Result<MaxPoolOutput> {
    let (n, c, h, w) = input.shape().as_nchw().ok_or(TensorError::RankMismatch {
        op: "max_pool2d",
        expected: 4,
        actual: input.shape().rank(),
    })?;
    let oh = g.out_dim(h);
    let ow = g.out_dim(w);
    if oh == 0 || ow == 0 {
        return Err(TensorError::InvalidArgument {
            op: "max_pool2d",
            msg: format!("window {} does not fit input {h}x{w}", g.kernel),
        });
    }
    let x = input.as_slice();
    let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
    let mut argmax = vec![0usize; n * c * oh * ow];
    for ni in 0..n {
        for ci in 0..c {
            let img_base = (ni * c + ci) * h * w;
            let out_base = (ni * c + ci) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for ky in 0..g.kernel {
                        let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..g.kernel {
                            let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let idx = img_base + iy as usize * w + ix as usize;
                            // NaN wins and sticks: a poisoned window must
                            // report NaN, not silently pick a finite value.
                            if x[idx] > best || x[idx].is_nan() {
                                best = x[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out[out_base + oy * ow + ox] = best;
                    argmax[out_base + oy * ow + ox] = best_idx;
                }
            }
        }
    }
    Ok(MaxPoolOutput {
        output: Tensor::from_vec(out, Shape::d4(n, c, oh, ow))?,
        argmax,
    })
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 inputs.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw().ok_or(TensorError::RankMismatch {
        op: "global_avg_pool",
        expected: 4,
        actual: input.shape().rank(),
    })?;
    let x = input.as_slice();
    let spatial = (h * w) as f32;
    let mut out = vec![0.0f32; n * c];
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let sum: f32 = x[base..base + h * w].iter().sum();
            out[ni * c + ci] = sum / spatial;
        }
    }
    Tensor::from_vec(out, Shape::d2(n, c))
}

/// Average pooling over an NCHW tensor (counts padding as zeros, divides by
/// the full window area, matching common "count_include_pad" semantics).
///
/// # Errors
///
/// Returns shape errors when the window does not fit.
pub fn avg_pool2d(input: &Tensor, g: ConvGeometry) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw().ok_or(TensorError::RankMismatch {
        op: "avg_pool2d",
        expected: 4,
        actual: input.shape().rank(),
    })?;
    let oh = g.out_dim(h);
    let ow = g.out_dim(w);
    if oh == 0 || ow == 0 {
        return Err(TensorError::InvalidArgument {
            op: "avg_pool2d",
            msg: format!("window {} does not fit input {h}x{w}", g.kernel),
        });
    }
    let x = input.as_slice();
    let area = (g.kernel * g.kernel) as f32;
    let mut out = vec![0.0f32; n * c * oh * ow];
    for ni in 0..n {
        for ci in 0..c {
            let img_base = (ni * c + ci) * h * w;
            let out_base = (ni * c + ci) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut sum = 0.0f32;
                    for ky in 0..g.kernel {
                        let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..g.kernel {
                            let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            sum += x[img_base + iy as usize * w + ix as usize];
                        }
                    }
                    out[out_base + oy * ow + ox] = sum / area;
                }
            }
        }
    }
    Tensor::from_vec(out, Shape::d4(n, c, oh, ow))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_dim_formula() {
        let g = ConvGeometry::new(3, 1, 1);
        assert_eq!(g.out_dim(32), 32);
        let g = ConvGeometry::new(2, 2, 0);
        assert_eq!(g.out_dim(32), 16);
        let g = ConvGeometry::new(5, 1, 0);
        assert_eq!(g.out_dim(28), 24);
        assert_eq!(g.out_dim(3), 0); // kernel larger than padded input
    }

    #[test]
    fn conv2d_identity_kernel() {
        // A 1x1 kernel with weight 1 reproduces the input.
        let input = Tensor::arange(3 * 3)
            .reshape(Shape::d4(1, 1, 3, 3))
            .unwrap();
        let weight = Tensor::ones(Shape::d4(1, 1, 1, 1));
        let out = conv2d(&input, &weight, None, ConvGeometry::new(1, 1, 0)).unwrap();
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn conv2d_known_3x3() {
        // All-ones 3x3 kernel over a 3x3 all-ones image, no padding: sum = 9.
        let input = Tensor::ones(Shape::d4(1, 1, 3, 3));
        let weight = Tensor::ones(Shape::d4(1, 1, 3, 3));
        let out = conv2d(&input, &weight, None, ConvGeometry::new(3, 1, 0)).unwrap();
        assert_eq!(out.shape(), &Shape::d4(1, 1, 1, 1));
        assert_eq!(out.as_slice(), &[9.0]);
        // With padding 1 the corner receptive fields see only 4 ones.
        let out = conv2d(&input, &weight, None, ConvGeometry::new(3, 1, 1)).unwrap();
        assert_eq!(out.shape(), &Shape::d4(1, 1, 3, 3));
        assert_eq!(out.get(&[0, 0, 0, 0]), Some(4.0));
        assert_eq!(out.get(&[0, 0, 1, 1]), Some(9.0));
        assert_eq!(out.get(&[0, 0, 0, 1]), Some(6.0));
    }

    #[test]
    fn conv2d_bias_is_added_per_channel() {
        let input = Tensor::zeros(Shape::d4(2, 1, 2, 2));
        let weight = Tensor::zeros(Shape::d4(3, 1, 1, 1));
        let bias = Tensor::from_vec(vec![1.0, 2.0, 3.0], Shape::d1(3)).unwrap();
        let out = conv2d(&input, &weight, Some(&bias), ConvGeometry::new(1, 1, 0)).unwrap();
        for ni in 0..2 {
            for o in 0..3 {
                assert_eq!(out.get(&[ni, o, 0, 0]), Some((o + 1) as f32));
            }
        }
    }

    #[test]
    fn conv2d_multi_channel_sums_channels() {
        // Two input channels, kernel picks each with weight 1: output = c0 + c1.
        let mut input = Tensor::zeros(Shape::d4(1, 2, 2, 2));
        input.set(&[0, 0, 0, 0], 3.0).unwrap();
        input.set(&[0, 1, 0, 0], 4.0).unwrap();
        let weight = Tensor::ones(Shape::d4(1, 2, 1, 1));
        let out = conv2d(&input, &weight, None, ConvGeometry::new(1, 1, 0)).unwrap();
        assert_eq!(out.get(&[0, 0, 0, 0]), Some(7.0));
    }

    #[test]
    fn conv2d_rejects_wrong_weight_channels() {
        let input = Tensor::zeros(Shape::d4(1, 3, 4, 4));
        let weight = Tensor::zeros(Shape::d4(2, 2, 3, 3));
        assert!(conv2d(&input, &weight, None, ConvGeometry::new(3, 1, 1)).is_err());
    }

    #[test]
    fn im2col_col2im_adjoint_property() {
        // col2im(im2col(x)) counts each input position once per receptive
        // field it participates in; with a 1x1 kernel it is exactly x.
        let input = Tensor::arange(2 * 3 * 3)
            .reshape(Shape::d4(1, 2, 3, 3))
            .unwrap();
        let g = ConvGeometry::new(1, 1, 0);
        let cols = im2col(&input, g).unwrap();
        let back = col2im(&cols, input.shape(), g).unwrap();
        assert_eq!(back.as_slice(), input.as_slice());
    }

    #[test]
    fn max_pool_picks_maxima_and_argmax() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            Shape::d4(1, 1, 4, 4),
        )
        .unwrap();
        let MaxPoolOutput { output, argmax } =
            max_pool2d(&input, ConvGeometry::new(2, 2, 0)).unwrap();
        assert_eq!(output.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
        assert_eq!(argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn avg_pool_averages() {
        let input = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], Shape::d4(1, 1, 2, 2)).unwrap();
        let out = avg_pool2d(&input, ConvGeometry::new(2, 2, 0)).unwrap();
        assert_eq!(out.as_slice(), &[4.0]);
    }

    #[test]
    fn global_avg_pool_reduces_spatial() {
        let input = Tensor::arange(2 * 3 * 2 * 2)
            .reshape(Shape::d4(2, 3, 2, 2))
            .unwrap();
        let out = global_avg_pool(&input).unwrap();
        assert_eq!(out.shape(), &Shape::d2(2, 3));
        // Channel 0 of batch 0 holds 0,1,2,3 -> mean 1.5.
        assert_eq!(out.get(&[0, 0]), Some(1.5));
    }
}
