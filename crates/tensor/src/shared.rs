//! Copy-on-write shared tensor storage.
//!
//! Monte-Carlo inference and population evaluation clone whole networks
//! across worker threads, but inference never *writes* weights — copying
//! them per clone is pure memory-bandwidth waste (megabytes per fork at
//! VGG/ResNet scale). [`SharedTensor`] wraps a [`Tensor`] in an
//! [`Arc`] so that clones share one allocation; the first mutation
//! through [`SharedTensor::make_mut`] (an SGD step, pruning, fake
//! quantisation) detaches a private copy, leaving every other holder
//! untouched.
//!
//! Reads go through `Deref`, so `shared.as_slice()` / `shared.shape()`
//! work exactly as on a plain [`Tensor`]. The common in-place mutators
//! (`as_mut_slice`, `map_inplace`, `add_scaled`, `iter_mut`) are
//! re-exposed as inherent methods that route through `make_mut`, which
//! keeps parameter-update code identical to the owned-tensor version.
//!
//! # Examples
//!
//! ```
//! use nds_tensor::{SharedTensor, Tensor, Shape};
//!
//! let a = SharedTensor::new(Tensor::ones(Shape::d1(4)));
//! let mut b = a.clone();              // no copy: both point at one buffer
//! assert!(SharedTensor::ptr_eq(&a, &b));
//! b.map_inplace(|v| v * 2.0);         // copy-on-write detaches b
//! assert!(!SharedTensor::ptr_eq(&a, &b));
//! assert_eq!(a.as_slice(), &[1.0; 4]);
//! assert_eq!(b.as_slice(), &[2.0; 4]);
//! ```

use crate::{Result, Tensor};
use std::ops::Deref;
use std::sync::Arc;

/// A [`Tensor`] behind an [`Arc`] with copy-on-write mutation.
///
/// `Clone` is O(1) (a reference-count bump); mutation via
/// [`SharedTensor::make_mut`] copies the buffer only while other clones
/// are alive.
#[derive(Debug, Clone)]
pub struct SharedTensor(Arc<Tensor>);

impl SharedTensor {
    /// Wraps a tensor in shared storage.
    pub fn new(tensor: Tensor) -> Self {
        SharedTensor(Arc::new(tensor))
    }

    /// Mutable access to the underlying tensor, copying it first when the
    /// storage is shared with other clones (copy-on-write).
    pub fn make_mut(&mut self) -> &mut Tensor {
        Arc::make_mut(&mut self.0)
    }

    /// Consumes the handle, returning the tensor (cloning only when the
    /// storage is shared).
    pub fn into_tensor(self) -> Tensor {
        Arc::try_unwrap(self.0).unwrap_or_else(|arc| (*arc).clone())
    }

    /// Number of live handles sharing this storage.
    pub fn strong_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }

    /// `true` when both handles point at the same allocation.
    pub fn ptr_eq(a: &SharedTensor, b: &SharedTensor) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    /// Mutable view of the buffer (copy-on-write when shared).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.make_mut().as_mut_slice()
    }

    /// Applies `f` to every element in place (copy-on-write when shared).
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        self.make_mut().map_inplace(f);
    }

    /// In-place `self += alpha * other` (copy-on-write when shared).
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, alpha: f32) -> Result<()> {
        self.make_mut().add_scaled(other, alpha)
    }

    /// Mutable element iterator (copy-on-write when shared).
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f32> {
        self.make_mut().iter_mut()
    }
}

impl Deref for SharedTensor {
    type Target = Tensor;
    fn deref(&self) -> &Tensor {
        &self.0
    }
}

impl From<Tensor> for SharedTensor {
    fn from(tensor: Tensor) -> Self {
        SharedTensor::new(tensor)
    }
}

impl PartialEq for SharedTensor {
    fn eq(&self, other: &Self) -> bool {
        SharedTensor::ptr_eq(self, other) || *self.0 == *other.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn clone_shares_storage_without_copying() {
        let a = SharedTensor::new(Tensor::ones(Shape::d1(8)));
        let b = a.clone();
        assert!(SharedTensor::ptr_eq(&a, &b));
        assert_eq!(a.strong_count(), 2);
        assert_eq!(b.as_slice(), &[1.0; 8]);
    }

    #[test]
    fn make_mut_detaches_only_when_shared() {
        let mut a = SharedTensor::new(Tensor::zeros(Shape::d1(4)));
        // Unique handle: mutation happens in place (no new allocation).
        a.as_mut_slice()[0] = 5.0;
        assert_eq!(a.strong_count(), 1);
        let b = a.clone();
        a.as_mut_slice()[1] = 6.0; // copy-on-write
        assert!(!SharedTensor::ptr_eq(&a, &b));
        assert_eq!(a.as_slice(), &[5.0, 6.0, 0.0, 0.0]);
        assert_eq!(b.as_slice(), &[5.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn writer_detaches_readers_keep_sharing() {
        let original = SharedTensor::new(Tensor::ones(Shape::d1(4)));
        let reader = original.clone();
        let mut writer = original.clone();
        writer.map_inplace(|v| v + 1.0);
        assert!(SharedTensor::ptr_eq(&original, &reader));
        assert_eq!(original.strong_count(), 2);
        assert_eq!(writer.strong_count(), 1);
        assert_eq!(writer.as_slice(), &[2.0; 4]);
    }

    #[test]
    fn add_scaled_routes_through_cow() {
        let mut a = SharedTensor::new(Tensor::ones(Shape::d1(3)));
        let keep = a.clone();
        let delta = Tensor::from_vec(vec![1.0, 2.0, 3.0], Shape::d1(3)).unwrap();
        a.add_scaled(&delta, 0.5).unwrap();
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
        assert_eq!(keep.as_slice(), &[1.0; 3]);
        let bad = Tensor::zeros(Shape::d1(4));
        assert!(a.add_scaled(&bad, 1.0).is_err());
    }

    #[test]
    fn into_tensor_round_trips() {
        let a = SharedTensor::new(Tensor::full(Shape::d1(2), 3.0));
        let t = a.into_tensor();
        assert_eq!(t.as_slice(), &[3.0, 3.0]);
        // Shared: into_tensor copies, the other handle survives.
        let a = SharedTensor::new(Tensor::full(Shape::d1(2), 4.0));
        let b = a.clone();
        let t = a.into_tensor();
        assert_eq!(t.as_slice(), b.as_slice());
    }

    #[test]
    fn equality_compares_contents() {
        let a = SharedTensor::new(Tensor::ones(Shape::d1(2)));
        let b = SharedTensor::new(Tensor::ones(Shape::d1(2)));
        assert_eq!(a, b, "distinct allocations, equal contents");
        assert_ne!(a, SharedTensor::new(Tensor::zeros(Shape::d1(2))));
    }
}
