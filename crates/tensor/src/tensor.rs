use crate::rng::Rng64;
use crate::{Result, Shape, TensorError};
use std::fmt;

/// A dense, row-major `f32` tensor.
///
/// The workhorse value type of the workspace. Image batches use NCHW layout
/// (`[batch, channels, height, width]`); weight matrices for linear layers
/// are `[out_features, in_features]`.
///
/// # Examples
///
/// ```
/// use nds_tensor::{Tensor, Shape};
///
/// let x = Tensor::zeros(Shape::d2(2, 3));
/// assert_eq!(x.len(), 6);
/// let y = x.map(|v| v + 1.0);
/// assert!(y.iter().all(|&v| v == 1.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the product of the dimensions.
    pub fn from_vec(data: Vec<f32>, shape: Shape) -> Result<Self> {
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// An all-zeros tensor of the given shape.
    pub fn zeros(shape: Shape) -> Self {
        Tensor {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// An all-ones tensor of the given shape.
    pub fn ones(shape: Shape) -> Self {
        Tensor {
            data: vec![1.0; shape.len()],
            shape,
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        Tensor {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(Shape::d2(n, n));
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// A rank-1 tensor holding `0, 1, ..., n-1`.
    pub fn arange(n: usize) -> Self {
        Tensor {
            data: (0..n).map(|i| i as f32).collect(),
            shape: Shape::d1(n),
        }
    }

    /// I.i.d. uniform samples in `[lo, hi)`.
    pub fn rand_uniform(shape: Shape, lo: f32, hi: f32, rng: &mut Rng64) -> Self {
        let data = (0..shape.len()).map(|_| rng.uniform_in(lo, hi)).collect();
        Tensor { data, shape }
    }

    /// I.i.d. normal samples with the given mean and standard deviation.
    pub fn rand_normal(shape: Shape, mean: f32, std: f32, rng: &mut Rng64) -> Self {
        let data = (0..shape.len())
            .map(|_| rng.normal_with(mean, std))
            .collect();
        Tensor { data, shape }
    }

    /// Kaiming/He-normal initialisation for a layer with `fan_in` inputs.
    ///
    /// Standard deviation is `sqrt(2 / fan_in)`, the usual choice for
    /// ReLU networks.
    pub fn kaiming_normal(shape: Shape, fan_in: usize, rng: &mut Rng64) -> Self {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        Self::rand_normal(shape, 0.0, std, rng)
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterator over elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Mutable iterator over elements in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f32> {
        self.data.iter_mut()
    }

    /// Element at a multi-dimensional index.
    ///
    /// Returns `None` when the index is invalid for this shape.
    pub fn get(&self, index: &[usize]) -> Option<f32> {
        self.shape.offset(index).map(|o| self.data[o])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the index is invalid.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        match self.shape.offset(index) {
            Some(o) => {
                self.data[o] = value;
                Ok(())
            }
            None => Err(TensorError::IndexOutOfBounds {
                index: *index.last().unwrap_or(&0),
                bound: self.shape.len(),
            }),
        }
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: Shape) -> Result<Tensor> {
        if shape.len() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape,
        })
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise combination of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "zip_map",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        Ok(Tensor {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        })
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a * b)
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, alpha: f32) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "add_scaled",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by a scalar, producing a new tensor.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|v| v * alpha)
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Arithmetic mean of all elements; 0 for empty tensors.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Population variance of all elements; 0 for empty tensors.
    pub fn variance(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        self.data
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / self.data.len() as f64
    }

    /// Maximum element; `None` for empty tensors.
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(m) => Some(m.max(v)),
        })
    }

    /// Minimum element; `None` for empty tensors.
    pub fn min(&self) -> Option<f32> {
        self.data.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(m) => Some(m.min(v)),
        })
    }

    /// Index of the maximum element (first on ties); `None` if empty.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Extracts batch item `n` of an NCHW tensor as a `[C, H, W]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-4 tensors and
    /// [`TensorError::IndexOutOfBounds`] for a bad batch index.
    pub fn batch_item(&self, n: usize) -> Result<Tensor> {
        let (nb, c, h, w) = self.shape.as_nchw().ok_or(TensorError::RankMismatch {
            op: "batch_item",
            expected: 4,
            actual: self.shape.rank(),
        })?;
        if n >= nb {
            return Err(TensorError::IndexOutOfBounds {
                index: n,
                bound: nb,
            });
        }
        let item = c * h * w;
        let start = n * item;
        Tensor::from_vec(self.data[start..start + item].to_vec(), Shape::d3(c, h, w))
    }

    /// Stacks rank-3 `[C, H, W]` tensors into a rank-4 `[N, C, H, W]` batch.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when `items` is empty and
    /// [`TensorError::ShapeMismatch`] when item shapes differ.
    pub fn stack_batch(items: &[Tensor]) -> Result<Tensor> {
        let first = items.first().ok_or_else(|| TensorError::InvalidArgument {
            op: "stack_batch",
            msg: "cannot stack an empty list".to_string(),
        })?;
        let mut data = Vec::with_capacity(items.len() * first.len());
        for item in items {
            if item.shape != first.shape {
                return Err(TensorError::ShapeMismatch {
                    op: "stack_batch",
                    lhs: first.shape.clone(),
                    rhs: item.shape.clone(),
                });
            }
            data.extend_from_slice(&item.data);
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(first.shape.dims());
        Tensor::from_vec(data, Shape::from(dims))
    }

    /// Squared L2 norm of the tensor.
    pub fn norm_sq(&self) -> f64 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum()
    }

    /// `true` when every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        const MAX_SHOWN: usize = 8;
        for (i, v) in self.data.iter().take(MAX_SHOWN).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > MAX_SHOWN {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], Shape::d2(2, 3)).is_ok());
        let err = Tensor::from_vec(vec![1.0; 5], Shape::d2(2, 3)).unwrap_err();
        assert!(matches!(
            err,
            TensorError::LengthMismatch {
                expected: 6,
                actual: 5
            }
        ));
    }

    #[test]
    fn constructors_fill_correctly() {
        assert!(Tensor::zeros(Shape::d1(4)).iter().all(|&v| v == 0.0));
        assert!(Tensor::ones(Shape::d1(4)).iter().all(|&v| v == 1.0));
        assert!(Tensor::full(Shape::d1(4), 2.5).iter().all(|&v| v == 2.5));
        let eye = Tensor::eye(3);
        assert_eq!(eye.get(&[1, 1]), Some(1.0));
        assert_eq!(eye.get(&[0, 1]), Some(0.0));
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], Shape::d1(3)).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], Shape::d1(3)).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn arithmetic_rejects_shape_mismatch() {
        let a = Tensor::zeros(Shape::d1(3));
        let b = Tensor::zeros(Shape::d1(4));
        assert!(a.add(&b).is_err());
        assert!(a.mul(&b).is_err());
        let mut c = Tensor::zeros(Shape::d1(3));
        assert!(c.add_scaled(&b, 1.0).is_err());
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = Tensor::ones(Shape::d1(3));
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], Shape::d1(3)).unwrap();
        a.add_scaled(&b, 0.5).unwrap();
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::d2(2, 2)).unwrap();
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.max(), Some(4.0));
        assert_eq!(t.min(), Some(1.0));
        assert_eq!(t.argmax(), Some(3));
        assert!((t.variance() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn empty_reductions_are_safe() {
        let t = Tensor::zeros(Shape::d1(0));
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max(), None);
        assert_eq!(t.argmax(), None);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6);
        let r = t.reshape(Shape::d2(2, 3)).unwrap();
        assert_eq!(r.get(&[1, 2]), Some(5.0));
        assert!(t.reshape(Shape::d2(2, 4)).is_err());
    }

    #[test]
    fn batch_item_extracts_correct_slice() {
        let t = Tensor::arange(2 * 3 * 2 * 2)
            .reshape(Shape::d4(2, 3, 2, 2))
            .unwrap();
        let item1 = t.batch_item(1).unwrap();
        assert_eq!(item1.shape(), &Shape::d3(3, 2, 2));
        assert_eq!(item1.as_slice()[0], 12.0);
        assert!(t.batch_item(2).is_err());
    }

    #[test]
    fn stack_batch_round_trips_batch_item() {
        let a = Tensor::full(Shape::d3(1, 2, 2), 1.0);
        let b = Tensor::full(Shape::d3(1, 2, 2), 2.0);
        let batch = Tensor::stack_batch(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(batch.shape(), &Shape::d4(2, 1, 2, 2));
        assert_eq!(batch.batch_item(0).unwrap(), a);
        assert_eq!(batch.batch_item(1).unwrap(), b);
    }

    #[test]
    fn stack_batch_validates() {
        assert!(Tensor::stack_batch(&[]).is_err());
        let a = Tensor::zeros(Shape::d3(1, 2, 2));
        let b = Tensor::zeros(Shape::d3(1, 2, 3));
        assert!(Tensor::stack_batch(&[a, b]).is_err());
    }

    #[test]
    fn rand_normal_moments() {
        let mut rng = Rng64::new(1);
        let t = Tensor::rand_normal(Shape::d1(20_000), 1.0, 2.0, &mut rng);
        assert!((t.mean() - 1.0).abs() < 0.1);
        assert!((t.variance() - 4.0).abs() < 0.3);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::ones(Shape::d1(3));
        assert!(t.all_finite());
        t.as_mut_slice()[1] = f32::NAN;
        assert!(!t.all_finite());
    }
}
