//! Reusable scratch-buffer pool for allocation-free hot loops.
//!
//! Monte-Carlo inference runs the same forward pass S times per input,
//! and the evolutionary search repeats that for hundreds of candidates —
//! with identical buffer shapes every time. [`Workspace`] lets those
//! loops recycle their scratch `Vec<f32>`s (and whole [`Tensor`]s)
//! instead of hitting the allocator once per pass per buffer.
//!
//! The pool is deliberately simple: buffers are keyed only by capacity,
//! [`Workspace::take`] hands back the smallest buffer that fits (cleared
//! and zero-filled to the requested length), and anything returned via
//! [`Workspace::recycle`] becomes available to the next `take`. A
//! `Workspace` is cheap to create, so per-thread pools in parallel
//! drivers avoid any locking.
//!
//! # The ownership contract for layer authors
//!
//! `Layer::forward_ws` in `nds-nn` threads one `&mut Workspace` down an
//! entire forward pass. Layers that want the allocation-free guarantee
//! follow three rules:
//!
//! 1. **Outputs come from the pool.** Build the returned tensor from
//!    [`Workspace::take`]/[`Workspace::take_tensor`]. Ownership of the
//!    buffer transfers to the caller with the tensor — the layer must
//!    not keep a handle to it.
//! 2. **Scratch goes back before returning.** Any intermediate buffer
//!    taken from the pool that does not escape in the output (im2col
//!    slabs, attention score matrices, per-item mask rows) is returned
//!    via [`Workspace::recycle`] before `forward_ws` returns, so the
//!    next layer in the chain can reuse it.
//! 3. **Callers recycle what they consume.** A container that feeds
//!    layer N's output into layer N+1 recycles that intermediate once
//!    layer N+1 has produced its own output (`Sequential` does this);
//!    drivers that loop (`predict_probs_ws`, the MC round harness)
//!    recycle final outputs they no longer need. Whoever lets a pooled
//!    tensor drop instead merely loses the reuse, never correctness.
//!
//! Training-mode forwards are exempt: backward passes consume caches
//! whose lifetime outlives a single forward, so `Mode::Train` may
//! allocate freely (and the per-layer backward caches are gated on that
//! mode precisely to keep inference on the pooled path).
//!
//! After one warm-up pass every `take` in a steady-state inference loop
//! is served from the pool: the `tests/alloc_free.rs` suite at the
//! workspace root pins that property with a counting global allocator.
//!
//! # Examples
//!
//! ```
//! use nds_tensor::{Shape, Tensor, Workspace};
//!
//! let mut ws = Workspace::new();
//! let buf = ws.take(1024);            // fresh allocation
//! ws.recycle(buf);
//! let again = ws.take(512);           // reuses the 1024-capacity buffer
//! assert!(again.capacity() >= 1024);
//! assert_eq!(ws.allocations(), 1);    // only the first take allocated
//! # let _ = again;
//! ```

use crate::{Result, Shape, Tensor, TensorError, MAX_RANK};

/// A pool of reusable `f32` scratch buffers.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
    /// Emptied `Vec<Tensor>` containers (capacity retained), so drivers
    /// that collect per-sample tensors each round reuse the container
    /// allocation too.
    lists: Vec<Vec<Tensor>>,
    /// Emptied `Vec<f64>` buffers (capacity retained) for drivers that
    /// emit per-input scalar diagnostics (entropies, mutual information)
    /// each round without re-allocating the result vectors.
    f64s: Vec<Vec<f64>>,
    allocations: usize,
    reuses: usize,
}

impl Workspace {
    /// An empty pool.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Returns a zero-filled buffer of exactly `len` elements, reusing
    /// the smallest pooled buffer whose capacity suffices.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take_dirty(len);
        buf.fill(0.0);
        buf
    }

    /// Returns a buffer of exactly `len` elements **without** the
    /// zero-fill of [`Workspace::take`]: contents are unspecified (stale
    /// values from whatever last recycled the buffer, zeros where it had
    /// to grow).
    ///
    /// For hot-path consumers that provably write every element before
    /// reading any — copies, `gemm_transb`-style full overwrites, im2col
    /// with explicit padding writes — where the memset would be the only
    /// remaining per-pass memory traffic. Accumulating consumers
    /// (`gemm_acc` targets, reduction buffers) must use `take` instead:
    /// reading a stale value would make results depend on pool history
    /// and break the bit-identity guarantee.
    pub fn take_dirty(&mut self, len: usize) -> Vec<f32> {
        let best = self
            .pool
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                self.reuses += 1;
                let mut buf = self.pool.swap_remove(i);
                // Grow (zero-filling only the extension) or shrink the
                // logical length; existing contents stay untouched.
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.allocations += 1;
                vec![0.0; len]
            }
        }
    }

    /// Returns a buffer of `len` elements wrapped in a [`Tensor`] of the
    /// given shape.
    ///
    /// # Panics
    ///
    /// Panics if `shape.len()` disagrees with the requested length —
    /// a programming error in the calling driver.
    pub fn take_tensor(&mut self, shape: Shape) -> Tensor {
        let buf = self.take(shape.len());
        Tensor::from_vec(buf, shape).expect("workspace buffer length matches shape")
    }

    /// Returns a pooled copy of `src`: same shape, same bytes, owned
    /// buffer from the pool — the idiom every pass-through layer
    /// (identity, empty chains, inactive dropout) uses to satisfy the
    /// "outputs come from the pool" contract without allocating.
    pub fn take_copy(&mut self, src: &Tensor) -> Tensor {
        let mut buf = self.take_dirty(src.len());
        buf.copy_from_slice(src.as_slice());
        Tensor::from_vec(buf, src.shape().clone()).expect("copy preserves shape")
    }

    /// Returns a pooled tensor holding `reps` back-to-back copies of
    /// `src`, with the leading dimension widened `reps`-fold.
    ///
    /// This is the sample-major MC executor's tiling step: a `[B, ...]`
    /// activation becomes `[reps·B, ...]` where block `r` (rows
    /// `r·B .. (r+1)·B`) is a byte-exact copy of `src` — so row
    /// `r·B + j` of the result is replica `r` of item `j`. No heap
    /// allocation happens once the pool is warm (the shape is built
    /// inline and the buffer comes from the pool).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for rank-0 inputs and
    /// [`TensorError::InvalidArgument`] when `reps == 0`.
    pub fn take_tiled(&mut self, src: &Tensor, reps: usize) -> Result<Tensor> {
        if src.shape().rank() == 0 {
            return Err(TensorError::RankMismatch {
                op: "take_tiled",
                expected: 1,
                actual: 0,
            });
        }
        if reps == 0 {
            return Err(TensorError::InvalidArgument {
                op: "take_tiled",
                msg: "tile count must be at least 1".to_string(),
            });
        }
        let len = src.len();
        let mut buf = self.take_dirty(len * reps);
        for rep in buf.chunks_mut(len.max(1)) {
            rep.copy_from_slice(src.as_slice());
        }
        let d = src.shape().dims();
        let mut dims = [0usize; MAX_RANK];
        dims[..d.len()].copy_from_slice(d);
        dims[0] *= reps;
        Tensor::from_vec(buf, Shape::new(&dims[..d.len()]))
    }

    /// Hands a buffer back to the pool for future reuse.
    pub fn recycle(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Hands a tensor's backing buffer back to the pool.
    pub fn recycle_tensor(&mut self, tensor: Tensor) {
        self.recycle(tensor.into_vec());
    }

    /// Returns an empty `Vec<Tensor>` container, reusing a pooled one
    /// (with its capacity) when available.
    pub fn take_tensor_list(&mut self) -> Vec<Tensor> {
        self.lists.pop().unwrap_or_default()
    }

    /// Recycles every tensor in `list` back into the buffer pool, then
    /// pools the emptied container itself for [`Workspace::take_tensor_list`].
    pub fn recycle_tensor_list(&mut self, mut list: Vec<Tensor>) {
        for tensor in list.drain(..) {
            self.recycle_tensor(tensor);
        }
        if list.capacity() > 0 {
            self.lists.push(list);
        }
    }

    /// Returns an empty `Vec<f64>` scalar buffer, reusing a pooled one
    /// (with its capacity) when available. Pair with
    /// [`Workspace::recycle_f64`] so steady-state diagnostic loops stop
    /// allocating their per-input result vectors.
    pub fn take_f64(&mut self) -> Vec<f64> {
        self.f64s.pop().unwrap_or_default()
    }

    /// Hands a `Vec<f64>` back to the pool for [`Workspace::take_f64`];
    /// contents are cleared, capacity is retained.
    pub fn recycle_f64(&mut self, mut buf: Vec<f64>) {
        buf.clear();
        if buf.capacity() > 0 {
            self.f64s.push(buf);
        }
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Number of `take` calls that had to allocate fresh memory.
    pub fn allocations(&self) -> usize {
        self.allocations
    }

    /// Number of `take` calls served from the pool.
    pub fn reuses(&self) -> usize {
        self.reuses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_even_after_reuse() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(8);
        buf.iter_mut().for_each(|v| *v = 7.0);
        ws.recycle(buf);
        let again = ws.take(8);
        assert!(again.iter().all(|&v| v == 0.0));
        assert_eq!(ws.reuses(), 1);
        assert_eq!(ws.allocations(), 1);
    }

    #[test]
    fn best_fit_prefers_smallest_adequate_buffer() {
        let mut ws = Workspace::new();
        let small = ws.take(4);
        let large = ws.take(1024);
        ws.recycle(large);
        ws.recycle(small);
        let got = ws.take(3);
        assert!(got.capacity() < 1024, "should reuse the 4-element buffer");
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn undersized_buffers_are_skipped() {
        let mut ws = Workspace::new();
        ws.recycle(vec![0.0; 2]);
        let got = ws.take(16);
        assert_eq!(got.len(), 16);
        assert_eq!(ws.allocations(), 1);
        assert_eq!(ws.pooled(), 1, "undersized buffer stays pooled");
    }

    #[test]
    fn tensor_round_trip() {
        let mut ws = Workspace::new();
        let t = ws.take_tensor(Shape::d2(3, 4));
        assert_eq!(t.len(), 12);
        ws.recycle_tensor(t);
        let t2 = ws.take_tensor(Shape::d2(2, 6));
        assert_eq!(ws.reuses(), 1);
        assert_eq!(t2.shape(), &Shape::d2(2, 6));
    }

    #[test]
    fn zero_length_buffers_are_not_pooled() {
        let mut ws = Workspace::new();
        ws.recycle(Vec::new());
        assert_eq!(ws.pooled(), 0);
    }

    #[test]
    fn take_dirty_skips_the_zero_fill_but_sizes_exactly() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(8);
        buf.iter_mut().for_each(|v| *v = 7.0);
        ws.recycle(buf);
        let dirty = ws.take_dirty(6);
        assert_eq!(dirty.len(), 6);
        assert!(dirty.iter().all(|&v| v == 7.0), "stale contents retained");
        ws.recycle(dirty);
        let grown = ws.take_dirty(8);
        assert_eq!(grown.len(), 8);
        assert!(grown[6..].iter().all(|&v| v == 0.0), "extension zeroed");
        assert_eq!(ws.allocations(), 1, "both dirty takes reused the pool");
    }

    #[test]
    fn f64_buffers_round_trip_with_retained_capacity() {
        let mut ws = Workspace::new();
        let mut buf = ws.take_f64();
        assert!(buf.is_empty());
        buf.extend([1.0, 2.0, 3.0]);
        let cap = buf.capacity();
        ws.recycle_f64(buf);
        let again = ws.take_f64();
        assert!(again.is_empty(), "recycled buffers come back cleared");
        assert_eq!(again.capacity(), cap, "capacity is retained");
        // Zero-capacity buffers are not worth pooling.
        ws.recycle_f64(Vec::new());
        let fresh = ws.take_f64();
        assert_eq!(fresh.capacity(), 0);
    }

    #[test]
    fn take_tiled_replicates_rows_and_reuses_the_pool() {
        let mut ws = Workspace::new();
        let src = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::d2(2, 2)).unwrap();
        let tiled = ws.take_tiled(&src, 3).unwrap();
        assert_eq!(tiled.shape(), &Shape::d2(6, 2));
        assert_eq!(
            tiled.as_slice(),
            &[1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0]
        );
        ws.recycle_tensor(tiled);
        let allocations = ws.allocations();
        let again = ws.take_tiled(&src, 3).unwrap();
        assert_eq!(
            ws.allocations(),
            allocations,
            "steady-state tiling is pooled"
        );
        assert_eq!(again.shape(), &Shape::d2(6, 2));
        // Degenerate cases: rank-0 and zero reps are typed errors.
        let scalar = Tensor::from_vec(vec![5.0], Shape::scalar()).unwrap();
        assert!(ws.take_tiled(&scalar, 2).is_err());
        assert!(ws.take_tiled(&src, 0).is_err());
    }

    #[test]
    fn tensor_lists_round_trip_container_and_buffers() {
        let mut ws = Workspace::new();
        let mut list = ws.take_tensor_list();
        list.push(ws.take_tensor(Shape::d1(8)));
        list.push(ws.take_tensor(Shape::d1(4)));
        let cap = list.capacity();
        ws.recycle_tensor_list(list);
        assert_eq!(ws.pooled(), 2, "both tensor buffers return to the pool");
        let again = ws.take_tensor_list();
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap, "container capacity is retained");
        let t = ws.take(6);
        assert_eq!(ws.reuses(), 1, "buffer takes are served from the pool");
        let _ = t;
    }
}
