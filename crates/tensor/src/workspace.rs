//! Reusable scratch-buffer pool for allocation-free hot loops.
//!
//! Monte-Carlo inference runs the same forward pass S times per input,
//! and the evolutionary search repeats that for hundreds of candidates —
//! with identical buffer shapes every time. [`Workspace`] lets those
//! loops recycle their scratch `Vec<f32>`s (and whole [`Tensor`]s)
//! instead of hitting the allocator once per pass per buffer.
//!
//! The pool is deliberately simple: buffers are keyed only by capacity,
//! [`Workspace::take`] hands back the smallest buffer that fits (cleared
//! and zero-filled to the requested length), and anything returned via
//! [`Workspace::recycle`] becomes available to the next `take`. A
//! `Workspace` is cheap to create, so per-thread pools in parallel
//! drivers avoid any locking.
//!
//! # Examples
//!
//! ```
//! use nds_tensor::{Shape, Tensor, Workspace};
//!
//! let mut ws = Workspace::new();
//! let buf = ws.take(1024);            // fresh allocation
//! ws.recycle(buf);
//! let again = ws.take(512);           // reuses the 1024-capacity buffer
//! assert!(again.capacity() >= 1024);
//! assert_eq!(ws.allocations(), 1);    // only the first take allocated
//! # let _ = again;
//! ```

use crate::{Shape, Tensor};

/// A pool of reusable `f32` scratch buffers.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
    allocations: usize,
    reuses: usize,
}

impl Workspace {
    /// An empty pool.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Returns a zero-filled buffer of exactly `len` elements, reusing
    /// the smallest pooled buffer whose capacity suffices.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let best = self
            .pool
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                self.reuses += 1;
                let mut buf = self.pool.swap_remove(i);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.allocations += 1;
                vec![0.0; len]
            }
        }
    }

    /// Returns a buffer of `len` elements wrapped in a [`Tensor`] of the
    /// given shape.
    ///
    /// # Panics
    ///
    /// Panics if `shape.len()` disagrees with the requested length —
    /// a programming error in the calling driver.
    pub fn take_tensor(&mut self, shape: Shape) -> Tensor {
        let buf = self.take(shape.len());
        Tensor::from_vec(buf, shape).expect("workspace buffer length matches shape")
    }

    /// Hands a buffer back to the pool for future reuse.
    pub fn recycle(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Hands a tensor's backing buffer back to the pool.
    pub fn recycle_tensor(&mut self, tensor: Tensor) {
        self.recycle(tensor.into_vec());
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Number of `take` calls that had to allocate fresh memory.
    pub fn allocations(&self) -> usize {
        self.allocations
    }

    /// Number of `take` calls served from the pool.
    pub fn reuses(&self) -> usize {
        self.reuses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_even_after_reuse() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(8);
        buf.iter_mut().for_each(|v| *v = 7.0);
        ws.recycle(buf);
        let again = ws.take(8);
        assert!(again.iter().all(|&v| v == 0.0));
        assert_eq!(ws.reuses(), 1);
        assert_eq!(ws.allocations(), 1);
    }

    #[test]
    fn best_fit_prefers_smallest_adequate_buffer() {
        let mut ws = Workspace::new();
        let small = ws.take(4);
        let large = ws.take(1024);
        ws.recycle(large);
        ws.recycle(small);
        let got = ws.take(3);
        assert!(got.capacity() < 1024, "should reuse the 4-element buffer");
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn undersized_buffers_are_skipped() {
        let mut ws = Workspace::new();
        ws.recycle(vec![0.0; 2]);
        let got = ws.take(16);
        assert_eq!(got.len(), 16);
        assert_eq!(ws.allocations(), 1);
        assert_eq!(ws.pooled(), 1, "undersized buffer stays pooled");
    }

    #[test]
    fn tensor_round_trip() {
        let mut ws = Workspace::new();
        let t = ws.take_tensor(Shape::d2(3, 4));
        assert_eq!(t.len(), 12);
        ws.recycle_tensor(t);
        let t2 = ws.take_tensor(Shape::d2(2, 6));
        assert_eq!(ws.reuses(), 1);
        assert_eq!(t2.shape(), &Shape::d2(2, 6));
    }

    #[test]
    fn zero_length_buffers_are_not_pooled() {
        let mut ws = Workspace::new();
        ws.recycle(Vec::new());
        assert_eq!(ws.pooled(), 0);
    }
}
