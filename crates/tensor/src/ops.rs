//! Linear-algebra and activation operations on [`Tensor`].
//!
//! # Performance notes
//!
//! The matrix kernels here are the workspace's hottest code: one
//! supernet evaluation runs S Monte-Carlo forward passes per input and
//! the evolutionary search performs hundreds of such evaluations. They
//! are therefore written as cache-blocked kernels parallelised over
//! output rows via [`crate::parallel`]:
//!
//! * [`Tensor::matmul`] — `[m, k] × [k, n]`, blocked over the `j`/`k`
//!   dimensions so a `B` panel is reused across every row of a worker's
//!   range instead of being re-streamed from memory per row,
//! * [`Tensor::matmul_transb`] — `A × Bᵀ` with `B` stored `[n, k]`
//!   row-major, the natural layout of linear-layer weights; computes
//!   contiguous dot products with unrolled accumulators and **no
//!   transposed copy of the weights**,
//! * [`Tensor::matmul_transa`] — `Aᵀ × B` by outer-product
//!   accumulation, used by linear backward passes (`dW = gradᵀ · x`),
//! * [`Tensor::matmul_bias`] / [`Tensor::matmul_transb_bias`] — fused
//!   bias-add variants that skip the extra output traversal.
//!
//! All kernels partition work by *output rows*, so every output element
//! is accumulated by exactly one thread in a fixed `k`-ascending order:
//! results are **bit-identical for any worker count**, which the MC
//! engine relies on for reproducible uncertainty estimates. The
//! slice-level entry points ([`gemm`], [`gemm_transb`], …) take an
//! explicit worker count so tests can sweep thread counts without
//! touching the `NDS_THREADS` environment variable.
//!
//! Row tasks are dispatched onto the persistent worker pool in
//! [`crate::parallel`] (no per-call thread spawns); a per-task work floor
//! of ~64k mul-adds keeps small matrices on the inline serial path where
//! even queueing would cost more than the multiply. `conv2d` lowers onto
//! [`gemm_acc`] per image (see [`crate::conv`]), so the convolutional
//! VGG/ResNet paths ride these same kernels.

use crate::parallel::{for_each_ragged_chunk_mut_workers, worker_count};
use crate::{Result, Shape, Tensor, TensorError};

/// Column-block width: output row segments of this many `f32`s (1 KiB)
/// stay resident in L1 while a `B` panel streams through.
const BLOCK_N: usize = 256;
/// Depth-block: `BLOCK_K × BLOCK_N` panels of `B` (128 KiB) fit in L2.
const BLOCK_K: usize = 128;
/// Below this many `f32`s (~512 KiB) the whole `B` operand is assumed
/// cache-resident and the kernels skip blocking entirely.
const L2_FLOATS: usize = 128 * 1024;

/// `out[m, n] = a[m, k] × b[k, n]` on raw row-major slices, parallelised
/// over output rows across `workers` threads.
///
/// Accumulation over `k` is ascending for every output element
/// regardless of blocking or worker count, so results are bit-identical
/// across thread counts.
///
/// # Panics
///
/// Panics (in debug builds) when the slice lengths disagree with the
/// dimensions; the safe [`Tensor::matmul`] wrapper validates shapes.
pub fn gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32], workers: usize) {
    out.fill(0.0);
    gemm_acc(a, b, m, k, n, out, workers);
}

/// Accumulating variant of [`gemm`]: `out += a × b`. Backward passes use
/// this to fold several gradient contributions into one buffer without
/// temporaries.
pub fn gemm_acc(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    workers: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let rows_per_task = rows_per_task(m, k * n, workers);
    // When the whole B operand is L2-resident, blocking only adds loop
    // overhead — stream it row by row (plain ikj) instead.
    let block = k * n > L2_FLOATS;
    for_each_ragged_chunk_mut_workers(out, rows_per_task * n, workers, |task, out_rows| {
        let row0 = task * rows_per_task;
        let rows = out_rows.len() / n;
        let (bn, bk) = if block { (BLOCK_N, BLOCK_K) } else { (n, k) };
        for jb in (0..n).step_by(bn) {
            let jend = (jb + bn).min(n);
            for kb in (0..k).step_by(bk) {
                let kend = (kb + bk).min(k);
                for r in 0..rows {
                    let arow = &a[(row0 + r) * k + kb..(row0 + r) * k + kend];
                    let orow = &mut out_rows[r * n + jb..r * n + jend];
                    gemm_acc_panel(arow, b, kb, n, jb, jend, orow);
                }
            }
        }
    });
}

/// One `out_row += arowᵀ · B[kb.., jb..jend]` panel of [`gemm_acc`]:
/// the output row is walked in register tiles (64 columns, then 16,
/// then a scalar tail), each accumulating every `k` contribution of the
/// panel before touching memory again. Wide tiles matter beyond the
/// saved output traffic: each column's accumulator is a loop-carried
/// dependency with FP-add latency, so a 64-wide tile gives the core
/// four independent 16-lane chains to interleave per `k` step. Zero `A`
/// entries are skipped so magnitude-pruned weights keep their discount.
///
/// **Bit-identical to the naive ikj walk**: each output element receives
/// its contributions one addition at a time in strictly ascending `k`
/// order — the tile holds one independent accumulator per column, never
/// a re-associated sum.
#[inline]
fn gemm_acc_panel(
    arow: &[f32],
    b: &[f32],
    kb: usize,
    n: usize,
    jb: usize,
    jend: usize,
    orow: &mut [f32],
) {
    let width = jend - jb;
    let mut j0 = 0;
    while j0 + 64 <= width {
        gemm_acc_tile::<64>(arow, b, kb * n + jb + j0, n, &mut orow[j0..j0 + 64]);
        j0 += 64;
    }
    while j0 + 16 <= width {
        gemm_acc_tile::<16>(arow, b, kb * n + jb + j0, n, &mut orow[j0..j0 + 16]);
        j0 += 16;
    }
    if j0 < width {
        // Ragged tail narrower than a tile: plain per-k row walk.
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let base = (kb + p) * n + jb;
            let brow = &b[base + j0..base + width];
            for (o, &bv) in orow[j0..width].iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// One `T`-wide register tile of [`gemm_acc_panel`]: loads `T` output
/// columns once, folds in every `arow` element in ascending `k` order,
/// stores once. `bbase` is the flat index of the tile's first column in
/// the panel's first `B` row; successive `k` rows sit `n` floats apart.
#[inline]
fn gemm_acc_tile<const T: usize>(
    arow: &[f32],
    b: &[f32],
    bbase: usize,
    n: usize,
    otile: &mut [f32],
) {
    let mut acc = [0.0f32; T];
    acc.copy_from_slice(otile);
    let klen = arow.len();
    // `chunks_exact(n)` walks the B rows without per-k bounds checks,
    // but drops the final row when the tile does not reach the end of
    // the matrix — peel the last k step and handle it explicitly.
    let (head, last) = arow.split_at(klen - 1);
    for (&av, brow) in head.iter().zip(b[bbase..].chunks_exact(n)) {
        // Skipping zero A entries keeps magnitude-pruned networks
        // cheap and never reorders the k-sum.
        if av == 0.0 {
            continue;
        }
        for (o, &bv) in acc.iter_mut().zip(brow.iter()) {
            *o += av * bv;
        }
    }
    let av = last[0];
    if av != 0.0 {
        let base = bbase + (klen - 1) * n;
        let brow = &b[base..base + T];
        for (o, &bv) in acc.iter_mut().zip(brow.iter()) {
            *o += av * bv;
        }
    }
    otile.copy_from_slice(&acc);
}

/// `out[m, n] = a[m, k] × bt[n, k]ᵀ` on raw row-major slices — `bt` holds
/// the *already transposed* right operand (one row per output column),
/// so each output element is a dot product of two contiguous rows.
///
/// This is the linear-layer forward kernel: weights are stored
/// `[out_features, in_features]` and never copied.
pub fn gemm_transb(
    a: &[f32],
    bt: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    workers: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(bt.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let rows_per_task = rows_per_task(m, k * n, workers);
    for_each_ragged_chunk_mut_workers(out, rows_per_task * n, workers, |task, out_rows| {
        let row0 = task * rows_per_task;
        for (r, orow) in out_rows.chunks_mut(n).enumerate() {
            let arow = &a[(row0 + r) * k..(row0 + r) * k + k];
            for (j, o) in orow.iter_mut().enumerate() {
                *o = dot(arow, &bt[j * k..(j + 1) * k]);
            }
        }
    });
}

/// Accumulating variant of [`gemm_transb`]: `out += a × btᵀ`. The conv2d
/// backward uses this to fold per-image weight-gradient contributions
/// into one buffer without temporaries.
pub fn gemm_transb_acc(
    a: &[f32],
    bt: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    workers: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(bt.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let rows_per_task = rows_per_task(m, k * n, workers);
    for_each_ragged_chunk_mut_workers(out, rows_per_task * n, workers, |task, out_rows| {
        let row0 = task * rows_per_task;
        for (r, orow) in out_rows.chunks_mut(n).enumerate() {
            let arow = &a[(row0 + r) * k..(row0 + r) * k + k];
            for (j, o) in orow.iter_mut().enumerate() {
                *o += dot(arow, &bt[j * k..(j + 1) * k]);
            }
        }
    });
}

/// `out[m, n] = at[r, m]ᵀ × b[r, n]` on raw row-major slices — the shared
/// leading dimension `r` of both operands is reduced by outer-product
/// accumulation. Used by linear backward passes (`dW = gradᵀ · x`)
/// without materialising the transposed gradient.
pub fn gemm_transa(
    at: &[f32],
    b: &[f32],
    r: usize,
    m: usize,
    n: usize,
    out: &mut [f32],
    workers: usize,
) {
    out.fill(0.0);
    gemm_transa_acc(at, b, r, m, n, out, workers);
}

/// Accumulating variant of [`gemm_transa`]: `out += atᵀ × b`.
pub fn gemm_transa_acc(
    at: &[f32],
    b: &[f32],
    r: usize,
    m: usize,
    n: usize,
    out: &mut [f32],
    workers: usize,
) {
    debug_assert_eq!(at.len(), r * m);
    debug_assert_eq!(b.len(), r * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let rows_per_task = rows_per_task(m, r * n, workers);
    for_each_ragged_chunk_mut_workers(out, rows_per_task * n, workers, |task, out_rows| {
        let row0 = task * rows_per_task;
        let rows = out_rows.len() / n;
        for i in 0..r {
            let brow = &b[i * n..(i + 1) * n];
            for r_local in 0..rows {
                let av = at[i * m + row0 + r_local];
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out_rows[r_local * n..(r_local + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
    });
}

/// Contiguous dot product with eight independent accumulators (keeps the
/// FP dependency chain short enough for the compiler to vectorise;
/// `chunks_exact` removes the bounds checks from the hot loop).
#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let (mut a4, mut a5, mut a6, mut a7) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let mut xs = a.chunks_exact(8);
    let mut ys = b.chunks_exact(8);
    for (x, y) in xs.by_ref().zip(ys.by_ref()) {
        a0 += x[0] * y[0];
        a1 += x[1] * y[1];
        a2 += x[2] * y[2];
        a3 += x[3] * y[3];
        a4 += x[4] * y[4];
        a5 += x[5] * y[5];
        a6 += x[6] * y[6];
        a7 += x[7] * y[7];
    }
    let tail: f32 = xs
        .remainder()
        .iter()
        .zip(ys.remainder().iter())
        .map(|(&x, &y)| x * y)
        .sum();
    ((a0 + a1) + (a2 + a3)) + ((a4 + a5) + (a6 + a7)) + tail
}

/// Picks how many output rows each parallel task should own: enough that
/// per-task work dominates dispatch overhead, while still splitting `m`
/// across all workers. `flops_per_row` approximates the work per row.
fn rows_per_task(m: usize, flops_per_row: usize, workers: usize) -> usize {
    if workers <= 1 {
        return m;
    }
    // Target at least ~64k mul-adds per task (tens of microseconds of
    // compute) so pool-queue overhead stays a small fraction and tiny
    // matrices run serial.
    let min_rows = 65_536usize.div_ceil(flops_per_row.max(1));
    m.div_ceil(workers).max(min_rows).min(m)
}

impl Tensor {
    /// Matrix multiplication of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// Cache-blocked and parallelised over output rows (see the module
    /// docs); bit-identical across worker counts.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::ShapeMismatch`] when the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k, n) = matmul_dims(self, other, "matmul")?;
        let mut out = vec![0.0f32; m * n];
        gemm(
            self.as_slice(),
            other.as_slice(),
            m,
            k,
            n,
            &mut out,
            worker_count(),
        );
        Tensor::from_vec(out, Shape::d2(m, n))
    }

    /// Reference single-threaded ikj matmul — the seed kernel, kept as
    /// the oracle the optimised kernels are property-tested against.
    ///
    /// # Errors
    ///
    /// Same contract as [`Tensor::matmul`].
    pub fn matmul_naive(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k, n) = matmul_dims(self, other, "matmul")?;
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, Shape::d2(m, n))
    }

    /// Fused `self × otherᵀ` where `other` is stored `[n, k]` row-major:
    /// `[m, k] × [n, k]ᵀ → [m, n]` with **no transposed copy**.
    ///
    /// This is the natural orientation of linear-layer weights
    /// (`[out_features, in_features]`), so `x.matmul_transb(&w)` replaces
    /// the seed's `x.matmul(&w.transpose()?)` and its per-forward
    /// allocation.
    ///
    /// # Errors
    ///
    /// Returns rank/shape errors when the operands are incompatible.
    pub fn matmul_transb(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k, n) = matmul_transb_dims(self, other)?;
        let mut out = vec![0.0f32; m * n];
        gemm_transb(
            self.as_slice(),
            other.as_slice(),
            m,
            k,
            n,
            &mut out,
            worker_count(),
        );
        Tensor::from_vec(out, Shape::d2(m, n))
    }

    /// Fused `selfᵀ × other` where both operands share their leading
    /// dimension: `[r, m]ᵀ × [r, n] → [m, n]`.
    ///
    /// Linear backward uses this for `dW = gradᵀ · x` without
    /// materialising the transposed gradient.
    ///
    /// # Errors
    ///
    /// Returns rank/shape errors when the operands are incompatible.
    pub fn matmul_transa(&self, other: &Tensor) -> Result<Tensor> {
        if self.shape().rank() != 2 || other.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul_transa",
                expected: 2,
                actual: if self.shape().rank() != 2 {
                    self.shape().rank()
                } else {
                    other.shape().rank()
                },
            });
        }
        let (r, m) = (self.shape().dim(0), self.shape().dim(1));
        let (r2, n) = (other.shape().dim(0), other.shape().dim(1));
        if r != r2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_transa",
                lhs: self.shape().clone(),
                rhs: other.shape().clone(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        gemm_transa(
            self.as_slice(),
            other.as_slice(),
            r,
            m,
            n,
            &mut out,
            worker_count(),
        );
        Tensor::from_vec(out, Shape::d2(m, n))
    }

    /// Fused `self × other + bias` (bias broadcast over rows), saving the
    /// separate [`Tensor::add_row_bias`] traversal.
    ///
    /// # Errors
    ///
    /// Returns rank/shape errors when the operands are incompatible.
    pub fn matmul_bias(&self, other: &Tensor, bias: &Tensor) -> Result<Tensor> {
        let (m, k, n) = matmul_dims(self, other, "matmul_bias")?;
        check_bias(bias, n, "matmul_bias", self)?;
        let mut out = vec![0.0f32; m * n];
        gemm(
            self.as_slice(),
            other.as_slice(),
            m,
            k,
            n,
            &mut out,
            worker_count(),
        );
        add_bias_rows(&mut out, bias.as_slice(), n);
        Tensor::from_vec(out, Shape::d2(m, n))
    }

    /// Fused `self × otherᵀ + bias` — the complete linear-layer forward
    /// (`y = x · Wᵀ + b`) in one kernel: no weight transpose, no second
    /// pass for the bias.
    ///
    /// # Errors
    ///
    /// Returns rank/shape errors when the operands are incompatible.
    pub fn matmul_transb_bias(&self, other: &Tensor, bias: &Tensor) -> Result<Tensor> {
        let (m, k, n) = matmul_transb_dims(self, other)?;
        check_bias(bias, n, "matmul_transb_bias", self)?;
        let mut out = vec![0.0f32; m * n];
        gemm_transb(
            self.as_slice(),
            other.as_slice(),
            m,
            k,
            n,
            &mut out,
            worker_count(),
        );
        add_bias_rows(&mut out, bias.as_slice(), n);
        Tensor::from_vec(out, Shape::d2(m, n))
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose",
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        let (m, n) = (self.shape().dim(0), self.shape().dim(1));
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_vec(out, Shape::d2(n, m))
    }

    /// Matrix–vector product: `[m, k] × [k] → [m]`.
    ///
    /// # Errors
    ///
    /// Returns a rank or shape error when the operands are incompatible.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matvec",
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        if v.shape().rank() != 1 {
            return Err(TensorError::RankMismatch {
                op: "matvec",
                expected: 1,
                actual: v.shape().rank(),
            });
        }
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        if v.len() != k {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape().clone(),
                rhs: v.shape().clone(),
            });
        }
        let a = self.as_slice();
        let x = v.as_slice();
        let mut out = vec![0.0f32; m];
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            out[i] = row.iter().zip(x.iter()).map(|(&r, &xv)| r * xv).sum();
        }
        Tensor::from_vec(out, Shape::d1(m))
    }

    /// Rectified linear unit, elementwise `max(0, x)`.
    ///
    /// NaN inputs propagate to the output (Rust's `f32::max` would launder
    /// them to zero, hiding numerical blow-ups from downstream checks).
    pub fn relu(&self) -> Tensor {
        self.map(|v| if v > 0.0 || v.is_nan() { v } else { 0.0 })
    }

    /// Numerically-stable softmax along the last axis of a rank-2 tensor.
    ///
    /// Each row is shifted by its max before exponentiation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 inputs.
    pub fn softmax_rows(&self) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "softmax_rows",
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        let (m, n) = (self.shape().dim(0), self.shape().dim(1));
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &a[i * n..(i + 1) * n];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f64;
            for j in 0..n {
                let e = (row[j] - max).exp();
                out[i * n + j] = e;
                sum += e as f64;
            }
            let inv = (1.0 / sum) as f32;
            for j in 0..n {
                out[i * n + j] *= inv;
            }
        }
        Tensor::from_vec(out, Shape::d2(m, n))
    }

    /// In-place [`Tensor::softmax_rows`]: overwrites the tensor with its
    /// row-wise softmax without allocating an output buffer.
    ///
    /// Bit-identical to the allocating variant (same shift, exponential
    /// and `f64` row-sum order) — the allocation-free inference path uses
    /// this on logits it already owns.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 tensors.
    pub fn softmax_rows_inplace(&mut self) -> Result<()> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "softmax_rows_inplace",
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        let n = self.shape().dim(1);
        if n == 0 {
            return Ok(());
        }
        for row in self.as_mut_slice().chunks_mut(n) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f64;
            for v in row.iter_mut() {
                let e = (*v - max).exp();
                *v = e;
                sum += e as f64;
            }
            let inv = (1.0 / sum) as f32;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
        Ok(())
    }

    /// Log-softmax along the last axis of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 inputs.
    pub fn log_softmax_rows(&self) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "log_softmax_rows",
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        let (m, n) = (self.shape().dim(0), self.shape().dim(1));
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &a[i * n..(i + 1) * n];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let log_sum: f64 = row
                .iter()
                .map(|&v| ((v - max) as f64).exp())
                .sum::<f64>()
                .ln();
            for j in 0..n {
                out[i * n + j] = row[j] - max - log_sum as f32;
            }
        }
        Tensor::from_vec(out, Shape::d2(m, n))
    }

    /// Sums a rank-2 tensor over its rows, producing a `[cols]` vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 inputs.
    pub fn sum_rows(&self) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "sum_rows",
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        let (m, n) = (self.shape().dim(0), self.shape().dim(1));
        let a = self.as_slice();
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            for j in 0..n {
                out[j] += a[i * n + j];
            }
        }
        Tensor::from_vec(out, Shape::d1(n))
    }

    /// Adds a `[cols]` bias vector to every row of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns a rank/shape error when operands are incompatible.
    pub fn add_row_bias(&self, bias: &Tensor) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "add_row_bias",
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        let (m, n) = (self.shape().dim(0), self.shape().dim(1));
        if bias.len() != n {
            return Err(TensorError::ShapeMismatch {
                op: "add_row_bias",
                lhs: self.shape().clone(),
                rhs: bias.shape().clone(),
            });
        }
        let a = self.as_slice();
        let b = bias.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] = a[i * n + j] + b[j];
            }
        }
        Tensor::from_vec(out, Shape::d2(m, n))
    }
}

fn matmul_dims(a: &Tensor, b: &Tensor, op: &'static str) -> Result<(usize, usize, usize)> {
    if a.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: a.shape().rank(),
        });
    }
    if b.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: b.shape().rank(),
        });
    }
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    Ok((m, k, n))
}

fn matmul_transb_dims(a: &Tensor, bt: &Tensor) -> Result<(usize, usize, usize)> {
    if a.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "matmul_transb",
            expected: 2,
            actual: a.shape().rank(),
        });
    }
    if bt.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "matmul_transb",
            expected: 2,
            actual: bt.shape().rank(),
        });
    }
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (n, k2) = (bt.shape().dim(0), bt.shape().dim(1));
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_transb",
            lhs: a.shape().clone(),
            rhs: bt.shape().clone(),
        });
    }
    Ok((m, k, n))
}

fn check_bias(bias: &Tensor, n: usize, op: &'static str, lhs: &Tensor) -> Result<()> {
    if bias.len() != n {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: lhs.shape().clone(),
            rhs: bias.shape().clone(),
        });
    }
    Ok(())
}

/// Adds `bias` (length `n`) to every `n`-wide row of `out` — the bias
/// pass shared by the fused matmul variants and the pooled linear-layer
/// forward, kept in one place so both add in the same element order.
pub fn add_bias_rows(out: &mut [f32], bias: &[f32], n: usize) {
    for row in out.chunks_mut(n.max(1)) {
        for (o, &b) in row.iter_mut().zip(bias.iter()) {
            *o += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn t2(rows: usize, cols: usize, data: &[f32]) -> Tensor {
        Tensor::from_vec(data.to_vec(), Shape::d2(rows, cols)).unwrap()
    }

    #[test]
    fn matmul_known_product() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t2(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t2(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let c = a.matmul(&Tensor::eye(2)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_validates_shapes() {
        let a = t2(2, 3, &[0.0; 6]);
        let b = t2(2, 3, &[0.0; 6]);
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros(Shape::d1(3));
        assert!(v.matmul(&b).is_err());
    }

    #[test]
    fn blocked_matmul_matches_naive_across_block_boundaries() {
        let mut rng = Rng64::new(7);
        // Sizes straddling BLOCK_N / BLOCK_K boundaries and ragged shapes.
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 2),
            (17, 31, 13),
            (64, 128, 256),
            (65, 129, 257),
            (130, 300, 70),
        ] {
            let a = Tensor::rand_normal(Shape::d2(m, k), 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal(Shape::d2(k, n), 0.0, 1.0, &mut rng);
            let fast = a.matmul(&b).unwrap();
            let slow = a.matmul_naive(&b).unwrap();
            for (x, y) in fast.iter().zip(slow.iter()) {
                assert!((x - y).abs() < 1e-4, "({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn gemm_is_bit_identical_across_worker_counts() {
        let mut rng = Rng64::new(8);
        let (m, k, n) = (37, 53, 29);
        let a = Tensor::rand_normal(Shape::d2(m, k), 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(Shape::d2(k, n), 0.0, 1.0, &mut rng);
        let mut reference = vec![0.0f32; m * n];
        gemm(a.as_slice(), b.as_slice(), m, k, n, &mut reference, 1);
        for workers in [2, 3, 5, 8, 16] {
            let mut out = vec![0.0f32; m * n];
            gemm(a.as_slice(), b.as_slice(), m, k, n, &mut out, workers);
            assert_eq!(out, reference, "workers = {workers}");
        }
    }

    #[test]
    fn transb_matches_explicit_transpose() {
        let mut rng = Rng64::new(9);
        for (m, k, n) in [(1, 4, 1), (5, 7, 3), (33, 65, 17)] {
            let a = Tensor::rand_normal(Shape::d2(m, k), 0.0, 1.0, &mut rng);
            let bt = Tensor::rand_normal(Shape::d2(n, k), 0.0, 1.0, &mut rng);
            let fused = a.matmul_transb(&bt).unwrap();
            let reference = a.matmul_naive(&bt.transpose().unwrap()).unwrap();
            assert_eq!(fused.shape(), &Shape::d2(m, n));
            for (x, y) in fused.iter().zip(reference.iter()) {
                assert!((x - y).abs() < 1e-4, "({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn transa_matches_explicit_transpose() {
        let mut rng = Rng64::new(10);
        for (r, m, n) in [(1, 2, 3), (8, 5, 7), (40, 21, 11)] {
            let at = Tensor::rand_normal(Shape::d2(r, m), 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal(Shape::d2(r, n), 0.0, 1.0, &mut rng);
            let fused = at.matmul_transa(&b).unwrap();
            let reference = at.transpose().unwrap().matmul_naive(&b).unwrap();
            assert_eq!(fused.shape(), &Shape::d2(m, n));
            for (x, y) in fused.iter().zip(reference.iter()) {
                assert!((x - y).abs() < 1e-4, "({r},{m},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn fused_bias_variants_match_two_step() {
        let mut rng = Rng64::new(11);
        let (m, k, n) = (9, 14, 6);
        let a = Tensor::rand_normal(Shape::d2(m, k), 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(Shape::d2(k, n), 0.0, 1.0, &mut rng);
        let bt = b.transpose().unwrap();
        let bias = Tensor::rand_normal(Shape::d1(n), 0.0, 1.0, &mut rng);
        let two_step = a.matmul(&b).unwrap().add_row_bias(&bias).unwrap();
        let fused = a.matmul_bias(&b, &bias).unwrap();
        let fused_t = a.matmul_transb_bias(&bt, &bias).unwrap();
        for ((x, y), z) in fused.iter().zip(two_step.iter()).zip(fused_t.iter()) {
            assert!((x - y).abs() < 1e-5);
            assert!((z - y).abs() < 1e-4);
        }
    }

    #[test]
    fn fused_variants_validate_shapes() {
        let a = t2(2, 3, &[0.0; 6]);
        let good_bt = t2(4, 3, &[0.0; 12]);
        let bad_bt = t2(4, 2, &[0.0; 8]);
        assert!(a.matmul_transb(&good_bt).is_ok());
        assert!(a.matmul_transb(&bad_bt).is_err());
        let bad_bias = Tensor::zeros(Shape::d1(3));
        let good_bias = Tensor::zeros(Shape::d1(4));
        assert!(a.matmul_transb_bias(&good_bt, &good_bias).is_ok());
        assert!(a.matmul_transb_bias(&good_bt, &bad_bias).is_err());
        let b = t2(3, 4, &[0.0; 12]);
        assert!(a.matmul_bias(&b, &good_bias).is_ok());
        assert!(a.matmul_bias(&b, &bad_bias).is_err());
        // transa: leading dims must agree.
        let at = t2(5, 2, &[0.0; 10]);
        let bad = t2(4, 3, &[0.0; 12]);
        assert!(at.matmul_transa(&bad).is_err());
    }

    #[test]
    fn transpose_swaps_axes() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let at = a.transpose().unwrap();
        assert_eq!(at.shape(), &Shape::d2(3, 2));
        assert_eq!(at.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(at.transpose().unwrap(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let v = Tensor::from_vec(vec![1.0, 0.0, -1.0], Shape::d1(3)).unwrap();
        let got = a.matvec(&v).unwrap();
        assert_eq!(got.as_slice(), &[-2.0, -2.0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let a = Tensor::from_vec(vec![-1.0, 0.0, 2.0], Shape::d1(3)).unwrap();
        assert_eq!(a.relu().as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let s = a.softmax_rows().unwrap();
        for i in 0..2 {
            let row_sum: f32 = s.as_slice()[i * 3..(i + 1) * 3].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5, "row {i} sums to {row_sum}");
        }
        // The huge-logit row must not overflow to NaN.
        assert!(s.all_finite());
        // Equal logits give the uniform distribution.
        for j in 0..3 {
            assert!((s.get(&[1, j]).unwrap() - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_inplace_is_bit_identical_to_allocating() {
        let a = t2(
            3,
            4,
            &[
                1.0, 2.0, 3.0, 4.0, -1.5, 0.0, 7.25, -3.0, 1000.0, 999.0, 1000.0, 998.5,
            ],
        );
        let reference = a.softmax_rows().unwrap();
        let mut inplace = a.clone();
        inplace.softmax_rows_inplace().unwrap();
        assert_eq!(
            inplace.as_slice(),
            reference.as_slice(),
            "must match bitwise"
        );
        assert_eq!(inplace.shape(), reference.shape());
        let mut bad = Tensor::zeros(Shape::d1(3));
        assert!(bad.softmax_rows_inplace().is_err());
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let a = t2(1, 4, &[0.5, -0.5, 2.0, 0.0]);
        let s = a.softmax_rows().unwrap();
        let ls = a.log_softmax_rows().unwrap();
        for j in 0..4 {
            let expect = s.get(&[0, j]).unwrap().ln();
            assert!((ls.get(&[0, j]).unwrap() - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn sum_rows_and_bias() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sum_rows().unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        let bias = Tensor::from_vec(vec![10.0, 20.0, 30.0], Shape::d1(3)).unwrap();
        let c = a.add_row_bias(&bias).unwrap();
        assert_eq!(c.as_slice(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }
}
