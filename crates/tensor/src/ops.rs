//! Linear-algebra and activation operations on [`Tensor`].
//!
//! These free-standing kernels are deliberately simple, cache-friendly
//! implementations: the workspace targets reproducibility and clarity over
//! BLAS-level throughput, and the hardware crate models performance
//! analytically rather than by timing these routines.

use crate::{Result, Shape, Tensor, TensorError};

impl Tensor {
    /// Matrix multiplication of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// Uses an ikj loop order so the inner loop streams both the `b` row and
    /// the output row.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::ShapeMismatch`] when the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        if other.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: other.shape().rank(),
            });
        }
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        let (k2, n) = (other.shape().dim(0), other.shape().dim(1));
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape().clone(),
                rhs: other.shape().clone(),
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, Shape::d2(m, n))
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose",
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        let (m, n) = (self.shape().dim(0), self.shape().dim(1));
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_vec(out, Shape::d2(n, m))
    }

    /// Matrix–vector product: `[m, k] × [k] → [m]`.
    ///
    /// # Errors
    ///
    /// Returns a rank or shape error when the operands are incompatible.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matvec",
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        if v.shape().rank() != 1 {
            return Err(TensorError::RankMismatch {
                op: "matvec",
                expected: 1,
                actual: v.shape().rank(),
            });
        }
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        if v.len() != k {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape().clone(),
                rhs: v.shape().clone(),
            });
        }
        let a = self.as_slice();
        let x = v.as_slice();
        let mut out = vec![0.0f32; m];
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            out[i] = row.iter().zip(x.iter()).map(|(&r, &xv)| r * xv).sum();
        }
        Tensor::from_vec(out, Shape::d1(m))
    }

    /// Rectified linear unit, elementwise `max(0, x)`.
    ///
    /// NaN inputs propagate to the output (Rust's `f32::max` would launder
    /// them to zero, hiding numerical blow-ups from downstream checks).
    pub fn relu(&self) -> Tensor {
        self.map(|v| if v > 0.0 || v.is_nan() { v } else { 0.0 })
    }

    /// Numerically-stable softmax along the last axis of a rank-2 tensor.
    ///
    /// Each row is shifted by its max before exponentiation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 inputs.
    pub fn softmax_rows(&self) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "softmax_rows",
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        let (m, n) = (self.shape().dim(0), self.shape().dim(1));
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &a[i * n..(i + 1) * n];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f64;
            for j in 0..n {
                let e = (row[j] - max).exp();
                out[i * n + j] = e;
                sum += e as f64;
            }
            let inv = (1.0 / sum) as f32;
            for j in 0..n {
                out[i * n + j] *= inv;
            }
        }
        Tensor::from_vec(out, Shape::d2(m, n))
    }

    /// Log-softmax along the last axis of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 inputs.
    pub fn log_softmax_rows(&self) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "log_softmax_rows",
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        let (m, n) = (self.shape().dim(0), self.shape().dim(1));
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &a[i * n..(i + 1) * n];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let log_sum: f64 = row
                .iter()
                .map(|&v| ((v - max) as f64).exp())
                .sum::<f64>()
                .ln();
            for j in 0..n {
                out[i * n + j] = row[j] - max - log_sum as f32;
            }
        }
        Tensor::from_vec(out, Shape::d2(m, n))
    }

    /// Sums a rank-2 tensor over its rows, producing a `[cols]` vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 inputs.
    pub fn sum_rows(&self) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "sum_rows",
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        let (m, n) = (self.shape().dim(0), self.shape().dim(1));
        let a = self.as_slice();
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            for j in 0..n {
                out[j] += a[i * n + j];
            }
        }
        Tensor::from_vec(out, Shape::d1(n))
    }

    /// Adds a `[cols]` bias vector to every row of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns a rank/shape error when operands are incompatible.
    pub fn add_row_bias(&self, bias: &Tensor) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "add_row_bias",
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        let (m, n) = (self.shape().dim(0), self.shape().dim(1));
        if bias.len() != n {
            return Err(TensorError::ShapeMismatch {
                op: "add_row_bias",
                lhs: self.shape().clone(),
                rhs: bias.shape().clone(),
            });
        }
        let a = self.as_slice();
        let b = bias.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] = a[i * n + j] + b[j];
            }
        }
        Tensor::from_vec(out, Shape::d2(m, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(rows: usize, cols: usize, data: &[f32]) -> Tensor {
        Tensor::from_vec(data.to_vec(), Shape::d2(rows, cols)).unwrap()
    }

    #[test]
    fn matmul_known_product() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t2(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t2(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let c = a.matmul(&Tensor::eye(2)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_validates_shapes() {
        let a = t2(2, 3, &[0.0; 6]);
        let b = t2(2, 3, &[0.0; 6]);
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros(Shape::d1(3));
        assert!(v.matmul(&b).is_err());
    }

    #[test]
    fn transpose_swaps_axes() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let at = a.transpose().unwrap();
        assert_eq!(at.shape(), &Shape::d2(3, 2));
        assert_eq!(at.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(at.transpose().unwrap(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let v = Tensor::from_vec(vec![1.0, 0.0, -1.0], Shape::d1(3)).unwrap();
        let got = a.matvec(&v).unwrap();
        assert_eq!(got.as_slice(), &[-2.0, -2.0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let a = Tensor::from_vec(vec![-1.0, 0.0, 2.0], Shape::d1(3)).unwrap();
        assert_eq!(a.relu().as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let s = a.softmax_rows().unwrap();
        for i in 0..2 {
            let row_sum: f32 = s.as_slice()[i * 3..(i + 1) * 3].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5, "row {i} sums to {row_sum}");
        }
        // The huge-logit row must not overflow to NaN.
        assert!(s.all_finite());
        // Equal logits give the uniform distribution.
        for j in 0..3 {
            assert!((s.get(&[1, j]).unwrap() - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let a = t2(1, 4, &[0.5, -0.5, 2.0, 0.0]);
        let s = a.softmax_rows().unwrap();
        let ls = a.log_softmax_rows().unwrap();
        for j in 0..4 {
            let expect = s.get(&[0, j]).unwrap().ln();
            assert!((ls.get(&[0, j]).unwrap() - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn sum_rows_and_bias() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sum_rows().unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        let bias = Tensor::from_vec(vec![10.0, 20.0, 30.0], Shape::d1(3)).unwrap();
        let c = a.add_row_bias(&bias).unwrap();
        assert_eq!(c.as_slice(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }
}
