//! Minimal data-parallel helper built on crossbeam's scoped threads.
//!
//! The workspace's training loops are embarrassingly parallel over batch
//! items; [`chunked_for`] splits an index range across the available cores.
//! On a single-core machine it degrades to a plain serial loop with no
//! thread overhead, which keeps results byte-identical regardless of core
//! count (each chunk owns disjoint output).

/// Number of worker threads to use: the machine's available parallelism,
/// capped to keep per-chunk work meaningful.
pub fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Runs `body(start, end)` over disjoint sub-ranges covering `0..n`,
/// potentially in parallel.
///
/// `body` must be safe to run concurrently on disjoint ranges (the usual
/// pattern is indexing into disjoint slices via `chunks_mut`). Because the
/// closure is `Fn` and receives only the range, interior mutability or
/// pre-split buffers are the caller's responsibility; for the common
/// slice-chunking case prefer [`for_each_chunk_mut`].
pub fn chunked_for(n: usize, body: impl Fn(usize, usize) + Sync) {
    let workers = worker_count();
    if workers <= 1 || n < 2 {
        body(0, n);
        return;
    }
    let chunk = n.div_ceil(workers);
    crossbeam::scope(|scope| {
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let body = &body;
            scope.spawn(move |_| body(start, end));
            start = end;
        }
    })
    .expect("worker thread panicked");
}

/// Applies `body` to equally-sized mutable chunks of `out`, each paired with
/// its chunk index, potentially in parallel.
///
/// # Panics
///
/// Panics if `out.len()` is not a multiple of `chunk_len`.
pub fn for_each_chunk_mut<T: Send>(
    out: &mut [T],
    chunk_len: usize,
    body: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(
        chunk_len > 0 && out.len().is_multiple_of(chunk_len),
        "output length {} must be a positive multiple of chunk length {}",
        out.len(),
        chunk_len
    );
    let workers = worker_count();
    if workers <= 1 {
        for (i, chunk) in out.chunks_mut(chunk_len).enumerate() {
            body(i, chunk);
        }
        return;
    }
    crossbeam::scope(|scope| {
        let nchunks = out.len() / chunk_len;
        let per_worker = nchunks.div_ceil(workers);
        for (wi, worker_slice) in out.chunks_mut(per_worker * chunk_len).enumerate() {
            let body = &body;
            scope.spawn(move |_| {
                for (ci, chunk) in worker_slice.chunks_mut(chunk_len).enumerate() {
                    body(wi * per_worker + ci, chunk);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunked_for_covers_range_exactly_once() {
        let counter = AtomicUsize::new(0);
        chunked_for(1000, |start, end| {
            counter.fetch_add(end - start, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn chunked_for_handles_empty_and_tiny() {
        let counter = AtomicUsize::new(0);
        chunked_for(0, |s, e| {
            counter.fetch_add(e - s, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 0);
        chunked_for(1, |s, e| {
            counter.fetch_add(e - s, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn for_each_chunk_mut_writes_all_chunks() {
        let mut out = vec![0usize; 12];
        for_each_chunk_mut(&mut out, 3, |i, chunk| {
            for v in chunk {
                *v = i + 1;
            }
        });
        assert_eq!(out, vec![1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn for_each_chunk_mut_rejects_ragged() {
        let mut out = vec![0usize; 10];
        for_each_chunk_mut(&mut out, 3, |_, _| {});
    }
}
