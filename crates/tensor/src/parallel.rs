//! Minimal data-parallel helpers built on `std::thread::scope`.
//!
//! The workspace's hot loops — the blocked matmul kernels, Monte-Carlo
//! sampling and batch training — are embarrassingly parallel;
//! [`chunked_for`] splits an index range across the available cores and
//! [`for_each_chunk_mut`] hands out disjoint mutable chunks of an output
//! buffer. On a single-core machine (or with `NDS_THREADS=1`) both degrade
//! to plain serial loops with no thread overhead, and because each chunk
//! owns disjoint output, results are byte-identical regardless of core
//! count.
//!
//! # Thread-count configuration
//!
//! The worker count is read once from the `NDS_THREADS` environment
//! variable: unset, empty, `0`, or unparsable values mean "use the
//! machine's available parallelism"; any positive integer pins the pool to
//! exactly that many workers. `NDS_THREADS=1` forces fully serial
//! execution, which is useful for profiling and for bit-exactness
//! comparisons.

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    /// Set while the current thread is executing inside one of this
    /// module's worker scopes (or a higher-level fan-out that opted in
    /// via [`enter_worker`]).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// `true` when the calling thread is already a data-parallel worker.
///
/// Nested fan-outs check this to degrade to serial execution instead of
/// multiplying thread counts: a population-evaluation worker running an
/// MC sample whose forwards call the parallel matmul would otherwise
/// stand up `W³` threads.
pub fn in_parallel_worker() -> bool {
    IN_WORKER.with(|flag| flag.get())
}

/// Marks the current thread as a data-parallel worker for the duration
/// of `f`. Higher-level fan-outs (the MC engine, the population
/// evaluator) wrap their worker bodies with this so nested kernels run
/// serially.
pub fn enter_worker<R>(f: impl FnOnce() -> R) -> R {
    IN_WORKER.with(|flag| {
        let previous = flag.replace(true);
        let result = f();
        flag.set(previous);
        result
    })
}

/// Degrades a requested worker count to 1 when already inside a
/// parallel region.
pub fn effective_workers(requested: usize) -> usize {
    if in_parallel_worker() {
        1
    } else {
        requested
    }
}

/// Resolves a raw `NDS_THREADS` value against the machine's available
/// parallelism. Factored out of [`worker_count`] so the policy is unit
/// testable without mutating the process environment.
pub fn resolve_worker_count(env_value: Option<&str>, available: usize) -> usize {
    match env_value.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => available.max(1),
    }
}

/// Number of worker threads to use for data-parallel loops.
///
/// Controlled by the `NDS_THREADS` environment variable (see the module
/// docs); the value is resolved once per process and cached.
pub fn worker_count() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        resolve_worker_count(std::env::var("NDS_THREADS").ok().as_deref(), available)
    })
}

/// Runs `body(start, end)` over disjoint sub-ranges covering `0..n`,
/// potentially in parallel.
///
/// `body` must be safe to run concurrently on disjoint ranges (the usual
/// pattern is indexing into disjoint slices via `chunks_mut`). Because the
/// closure is `Fn` and receives only the range, interior mutability or
/// pre-split buffers are the caller's responsibility; for the common
/// slice-chunking case prefer [`for_each_chunk_mut`].
pub fn chunked_for(n: usize, body: impl Fn(usize, usize) + Sync) {
    chunked_for_workers(n, worker_count(), body);
}

/// [`chunked_for`] with an explicit worker count — the building block the
/// deterministic kernels expose so tests can sweep thread counts without
/// touching the process environment.
pub fn chunked_for_workers(n: usize, workers: usize, body: impl Fn(usize, usize) + Sync) {
    let workers = effective_workers(workers);
    if workers <= 1 || n < 2 {
        body(0, n);
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let body = &body;
            scope.spawn(move || enter_worker(|| body(start, end)));
            start = end;
        }
    });
}

/// Applies `body` to equally-sized mutable chunks of `out`, each paired with
/// its chunk index, potentially in parallel.
///
/// # Panics
///
/// Panics if `out.len()` is not a multiple of `chunk_len`.
pub fn for_each_chunk_mut<T: Send>(
    out: &mut [T],
    chunk_len: usize,
    body: impl Fn(usize, &mut [T]) + Sync,
) {
    for_each_chunk_mut_workers(out, chunk_len, worker_count(), body);
}

/// [`for_each_chunk_mut`] with an explicit worker count.
///
/// # Panics
///
/// Panics if `out.len()` is not a multiple of `chunk_len`.
pub fn for_each_chunk_mut_workers<T: Send>(
    out: &mut [T],
    chunk_len: usize,
    workers: usize,
    body: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(
        chunk_len > 0 && out.len().is_multiple_of(chunk_len),
        "output length {} must be a positive multiple of chunk length {}",
        out.len(),
        chunk_len
    );
    let workers = effective_workers(workers);
    let nchunks = out.len() / chunk_len;
    if workers <= 1 || nchunks <= 1 {
        for (i, chunk) in out.chunks_mut(chunk_len).enumerate() {
            body(i, chunk);
        }
        return;
    }
    std::thread::scope(|scope| {
        let per_worker = nchunks.div_ceil(workers);
        for (wi, worker_slice) in out.chunks_mut(per_worker * chunk_len).enumerate() {
            let body = &body;
            scope.spawn(move || {
                enter_worker(|| {
                    for (ci, chunk) in worker_slice.chunks_mut(chunk_len).enumerate() {
                        body(wi * per_worker + ci, chunk);
                    }
                })
            });
        }
    });
}

/// Like [`for_each_chunk_mut_workers`] but tolerates a short final chunk —
/// the row-partitioned matmul kernels use this to hand each task a block
/// of output rows even when the row count doesn't divide evenly.
///
/// # Panics
///
/// Panics if `chunk_len` is zero.
pub fn for_each_ragged_chunk_mut_workers<T: Send>(
    out: &mut [T],
    chunk_len: usize,
    workers: usize,
    body: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "chunk length must be positive");
    let workers = effective_workers(workers);
    let nchunks = out.len().div_ceil(chunk_len);
    // A single chunk gains nothing from a thread: run it inline (small
    // matmuls hit this constantly — a spawn per call would dwarf them).
    if workers <= 1 || nchunks <= 1 {
        for (i, chunk) in out.chunks_mut(chunk_len).enumerate() {
            body(i, chunk);
        }
        return;
    }
    std::thread::scope(|scope| {
        let per_worker = nchunks.div_ceil(workers);
        for (wi, worker_slice) in out.chunks_mut(per_worker * chunk_len).enumerate() {
            let body = &body;
            scope.spawn(move || {
                enter_worker(|| {
                    for (ci, chunk) in worker_slice.chunks_mut(chunk_len).enumerate() {
                        body(wi * per_worker + ci, chunk);
                    }
                })
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunked_for_covers_range_exactly_once() {
        let counter = AtomicUsize::new(0);
        chunked_for(1000, |start, end| {
            counter.fetch_add(end - start, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn chunked_for_handles_empty_and_tiny() {
        let counter = AtomicUsize::new(0);
        chunked_for(0, |s, e| {
            counter.fetch_add(e - s, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 0);
        chunked_for(1, |s, e| {
            counter.fetch_add(e - s, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn explicit_worker_counts_cover_the_range() {
        for workers in [1, 2, 3, 7, 16] {
            let counter = AtomicUsize::new(0);
            chunked_for_workers(997, workers, |s, e| {
                counter.fetch_add(e - s, Ordering::SeqCst);
            });
            assert_eq!(counter.load(Ordering::SeqCst), 997, "workers = {workers}");
        }
    }

    #[test]
    fn for_each_chunk_mut_writes_all_chunks() {
        let mut out = vec![0usize; 12];
        for_each_chunk_mut(&mut out, 3, |i, chunk| {
            for v in chunk {
                *v = i + 1;
            }
        });
        assert_eq!(out, vec![1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 4]);
    }

    #[test]
    fn chunk_indices_are_stable_across_worker_counts() {
        let mut reference = vec![0usize; 30];
        for_each_chunk_mut_workers(&mut reference, 5, 1, |i, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = i * 100 + j;
            }
        });
        for workers in [2, 3, 4, 8] {
            let mut out = vec![0usize; 30];
            for_each_chunk_mut_workers(&mut out, 5, workers, |i, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = i * 100 + j;
                }
            });
            assert_eq!(out, reference, "workers = {workers}");
        }
    }

    #[test]
    fn ragged_chunks_cover_everything_for_any_worker_count() {
        for workers in [1, 2, 3, 5, 9] {
            let mut out = vec![0usize; 17];
            for_each_ragged_chunk_mut_workers(&mut out, 5, workers, |i, chunk| {
                for v in chunk.iter_mut() {
                    *v = i + 1;
                }
            });
            let expect: Vec<usize> = (0..17).map(|j| j / 5 + 1).collect();
            assert_eq!(out, expect, "workers = {workers}");
        }
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn for_each_chunk_mut_rejects_ragged() {
        let mut out = vec![0usize; 10];
        for_each_chunk_mut(&mut out, 3, |_, _| {});
    }

    #[test]
    fn env_policy_resolution() {
        assert_eq!(resolve_worker_count(None, 12), 12);
        assert_eq!(resolve_worker_count(Some(""), 12), 12);
        assert_eq!(resolve_worker_count(Some("0"), 12), 12);
        assert_eq!(resolve_worker_count(Some("garbage"), 12), 12);
        assert_eq!(resolve_worker_count(Some("1"), 12), 1);
        assert_eq!(resolve_worker_count(Some(" 6 "), 12), 6);
        assert_eq!(resolve_worker_count(Some("32"), 4), 32);
        assert_eq!(resolve_worker_count(None, 0), 1);
    }
}
