//! Data-parallel helpers backed by a lazily-initialised persistent
//! worker pool.
//!
//! The workspace's hot loops — the blocked matmul kernels, Monte-Carlo
//! sampling and population evaluation — are embarrassingly parallel;
//! [`chunked_for`] splits an index range across the pool and
//! [`for_each_chunk_mut`] hands out disjoint mutable chunks of an output
//! buffer. On a single-core machine (or with `NDS_THREADS=1`) everything
//! degrades to plain serial loops with no thread or queue overhead, and
//! because each task owns disjoint output, results are byte-identical
//! regardless of core count.
//!
//! # The worker pool
//!
//! Earlier revisions spawned fresh threads per kernel call via
//! `std::thread::scope`; per-task work was floored at ~64k mul-adds to
//! bound the spawn overhead, but on high-core-count machines the
//! spawn/join cost still dominated small kernels. [`run_scoped`] instead
//! dispatches tasks onto `worker_count() - 1` persistent threads spawned
//! once per process (plus the submitting thread, which always
//! participates). Key properties:
//!
//! * **Sharded queues + work stealing.** Earlier revisions funnelled
//!   every batch through one mutex-guarded `VecDeque` injector, so
//!   island × MC × gemm fan-outs all contended on a single lock. Each
//!   worker now owns a shard (a deque of batches): submitters push onto
//!   their *own* shard (pool workers push nested batches locally;
//!   external threads round-robin), a worker pops its own shard LIFO
//!   (newest batch first — depth-first through nested fan-outs, which
//!   keeps the working set hot and bounds queue growth) and steals from
//!   sibling shards FIFO (oldest batch first — the fairness order).
//!   Within a batch, jobs always run front-to-back.
//! * **Nesting composes.** A population-evaluation task may fan out MC
//!   samples, whose forwards fan out gemm row-blocks — all batches land
//!   on the same shard set, so total thread count never exceeds the
//!   pool size. No fan-out level degrades to serial; idle workers steal
//!   whatever level has work.
//! * **No deadlock.** A submitter first drains every still-queued task
//!   of its *own* batch, then blocks only on tasks already claimed by
//!   other threads — which always terminate (leaf tasks run to
//!   completion; nested submitters can likewise finish their own
//!   batches unaided).
//! * **No cross-submitter starvation.** Steals take the *oldest* batch
//!   of the victim shard, and a submitter's draining is confined to its
//!   *own* batch — it never executes another submitter's queued jobs.
//!   With several concurrent submitters (the serving front-end's
//!   tenants), one tenant's nested fan-out therefore cannot push
//!   another tenant's batch back in line: an idle worker always steals
//!   the oldest waiting batch from whichever shard holds one.
//! * **Panics propagate — or surface as typed errors.** A panicking
//!   task poisons its batch; [`run_scoped`] re-raises the payload after
//!   the batch drains, matching `std::thread::scope` semantics, while
//!   [`run_scoped_checked`] converts it into a typed [`PoolError`] so
//!   serving layers can reject one request instead of unwinding. Either
//!   way the poisoned batch's outputs are discarded by the caller as a
//!   unit — no partial results ever escape — and the pool itself
//!   survives: job panics are caught per job, and a panic that escapes
//!   a worker's scheduling loop (only possible via injected faults or a
//!   runtime bug) respawns the worker in place
//!   ([`pool_respawn_count`] observes this).
//!
//! # Fault injection
//!
//! The pool hosts two `nds-fault` hooks: one inside each job's panic
//! isolation (`on_pool_task`, proving panic→`PoolError` conversion) and
//! one in the worker scheduling loop (`on_worker_tick`, proving worker
//! respawn). Both are single relaxed atomic loads when no
//! `FaultPlan` is armed — i.e. always, outside the fault suites.
//!
//! # Thread-count configuration
//!
//! The worker count is read once from the `NDS_THREADS` environment
//! variable: unset, empty, `0`, or unparsable values mean "use the
//! machine's available parallelism"; any positive integer pins the pool
//! to exactly that many workers. `NDS_THREADS=1` forces fully serial
//! execution, which is useful for profiling and for bit-exactness
//! comparisons. The `*_workers` helper variants take an explicit task
//! split so tests can sweep split factors without touching the process
//! environment; the *split* controls determinism-relevant chunk
//! boundaries while the pool size only controls how many run at once.

use std::sync::OnceLock;

/// Resolves a raw `NDS_THREADS` value against the machine's available
/// parallelism. Factored out of [`worker_count`] so the policy is unit
/// testable without mutating the process environment.
pub fn resolve_worker_count(env_value: Option<&str>, available: usize) -> usize {
    match env_value.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => available.max(1),
    }
}

/// Number of worker threads to use for data-parallel loops.
///
/// Controlled by the `NDS_THREADS` environment variable (see the module
/// docs); the value is resolved once per process and cached.
pub fn worker_count() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        resolve_worker_count(std::env::var("NDS_THREADS").ok().as_deref(), available)
    })
}

/// The persistent worker pool. The single `unsafe` in the workspace lives
/// here: erasing task lifetimes to hand borrowed closures to persistent
/// threads, sound because [`run_scoped`] never returns before every task
/// has finished and been dropped.
#[allow(unsafe_code)]
mod pool {
    use super::worker_count;
    use std::any::Any;
    use std::collections::VecDeque;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock};

    type Job = Box<dyn FnOnce() + Send + 'static>;

    /// A pool task panicked: the typed form a submitter receives from
    /// [`run_scoped_checked`] instead of an unwinding panic.
    ///
    /// Carries the panic payload rendered to a string (`&str` and
    /// `String` payloads verbatim; anything else as an opaque marker).
    /// The whole batch's outputs must be discarded on this error — the
    /// pool guarantees every task has stopped running before the error
    /// is returned, but not which tasks completed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct PoolError {
        /// The first panicking task's payload, as text.
        pub message: String,
    }

    impl PoolError {
        /// Renders a caught panic payload. Public so serial fallback
        /// paths elsewhere in the workspace (which catch pass panics
        /// themselves instead of going through the pool) produce the
        /// same typed error as the pool path.
        pub fn from_payload(payload: &(dyn Any + Send)) -> PoolError {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "opaque panic payload".to_string()
            };
            PoolError { message }
        }
    }

    impl std::fmt::Display for PoolError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "worker pool task panicked: {}", self.message)
        }
    }

    impl std::error::Error for PoolError {}

    /// Worker threads respawned after a panic escaped their scheduling
    /// loop (only injected faults or runtime bugs can do that — job
    /// panics are caught per job and never kill a worker).
    static RESPAWNS: AtomicUsize = AtomicUsize::new(0);

    /// How many pool workers have died and been respawned in place.
    pub fn pool_respawn_count() -> usize {
        RESPAWNS.load(Ordering::SeqCst)
    }

    /// One `run_scoped` call: its not-yet-claimed jobs plus completion
    /// state. Jobs live on the batch (not in a global task list) so the
    /// submitting thread drains its own batch in O(1) per job without
    /// touching — or scanning — the shared shards.
    struct Batch {
        /// Jobs submitted but not yet claimed by any thread.
        jobs: Mutex<VecDeque<Job>>,
        /// Jobs submitted but not yet finished executing.
        remaining: Mutex<usize>,
        done: Condvar,
        /// First panic payload raised by a task of this batch.
        panic: Mutex<Option<Box<dyn Any + Send>>>,
    }

    /// One worker's deque of batches, oldest first. The owning worker
    /// pops from the back (LIFO — newest batch, depth-first through
    /// nested fan-outs); thieves pop from the front (FIFO — oldest
    /// batch, so no submitter's work can be starved behind newer
    /// batches). Drained batches are removed lazily by whoever scans
    /// past them.
    struct Shard {
        queue: Mutex<VecDeque<Arc<Batch>>>,
    }

    struct Shared {
        /// Per-worker batch deques; external submitters round-robin
        /// across them, pool workers push nested batches to their own.
        shards: Vec<Shard>,
        /// Bumped on every batch push; sleepers re-scan when it moves.
        /// The snapshot-scan-recheck dance prevents lost wakeups
        /// without holding any lock across the shard scan.
        epoch: Mutex<u64>,
        work: Condvar,
        /// Round-robin cursor for submitters with no shard of their own.
        external_cursor: AtomicUsize,
    }

    std::thread_local! {
        /// The shard this thread owns, if it is a pool worker. Nested
        /// submissions from inside a pool task land on the worker's own
        /// shard, which is what makes the local LIFO pop depth-first.
        static WORKER_SLOT: std::cell::Cell<Option<usize>> =
            const { std::cell::Cell::new(None) };
    }

    fn shared() -> &'static Arc<Shared> {
        static POOL: OnceLock<Arc<Shared>> = OnceLock::new();
        POOL.get_or_init(|| {
            let nshards = worker_count().max(1);
            let shared = Arc::new(Shared {
                shards: (0..nshards)
                    .map(|_| Shard {
                        queue: Mutex::new(VecDeque::new()),
                    })
                    .collect(),
                epoch: Mutex::new(0),
                work: Condvar::new(),
                external_cursor: AtomicUsize::new(0),
            });
            // The submitting thread always participates, so the pool only
            // needs `workers - 1` threads to reach full parallelism. The
            // last shard has no dedicated worker; external submitters
            // rotate over every shard and workers steal from all of
            // them, so nothing queued there can be stranded.
            for i in 0..worker_count().saturating_sub(1) {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nds-worker-{i}"))
                    .spawn(move || {
                        WORKER_SLOT.with(|slot| slot.set(Some(i)));
                        // Self-respawning worker: a job panic never
                        // reaches here (run_job catches it), so an
                        // unwind out of the scheduling loop means the
                        // worker itself died — log it in the respawn
                        // counter and re-enter the loop with the same
                        // shared state. Unclaimed jobs are untouched
                        // (the tick hook fires before claiming), so no
                        // batch is ever stranded by a worker death.
                        while catch_unwind(AssertUnwindSafe(|| worker_loop(&shared, i))).is_err() {
                            RESPAWNS.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                    .expect("worker thread spawns");
            }
            shared
        })
    }

    fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        // Tasks never run while a pool lock is held, so poisoning cannot
        // leave the state inconsistent — recover rather than cascade.
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn worker_loop(shared: &Shared, slot: usize) {
        loop {
            // Worker-death injection point: fires before any job is
            // claimed, so a killed worker strands nothing — the job it
            // would have taken stays queued for its sibling workers (or
            // the submitter, or this worker's respawned self).
            nds_fault::on_worker_tick();
            // Snapshot the push epoch *before* scanning: if a batch
            // arrives after the scan started, the epoch moves and the
            // recheck below refuses to sleep — no lost wakeup.
            let seen = *lock(&shared.epoch);
            if let Some((batch, job)) = claim(shared, slot) {
                run_job(&batch, job);
                continue;
            }
            let guard = lock(&shared.epoch);
            if *guard == seen {
                drop(shared.work.wait(guard).unwrap_or_else(|e| e.into_inner()));
            }
        }
    }

    /// Claims one job for worker `slot`: LIFO from its own shard first
    /// (newest batch — depth-first nested work), then a FIFO steal from
    /// sibling shards (oldest batch — fairness order), scanning victims
    /// starting just after `slot` so thieves spread out.
    fn claim(shared: &Shared, slot: usize) -> Option<(Arc<Batch>, Job)> {
        if let Some(found) = take_from(&shared.shards[slot], true) {
            return Some(found);
        }
        let n = shared.shards.len();
        for offset in 1..n {
            if let Some(found) = take_from(&shared.shards[(slot + offset) % n], false) {
                return Some(found);
            }
        }
        None
    }

    /// Pops one job from a shard — from the newest batch (`lifo`) or the
    /// oldest — removing batches whose jobs are exhausted (their
    /// submitter drains them directly, so a queued batch may already be
    /// empty). Within a batch, jobs always come off the front, so job
    /// order inside a batch is submission order regardless of who runs
    /// it.
    fn take_from(shard: &Shard, lifo: bool) -> Option<(Arc<Batch>, Job)> {
        let mut queue = lock(&shard.queue);
        loop {
            let batch = if lifo { queue.back() } else { queue.front() };
            let batch = batch?;
            let mut jobs = lock(&batch.jobs);
            match jobs.pop_front() {
                Some(job) => {
                    let empty = jobs.is_empty();
                    drop(jobs);
                    let batch = Arc::clone(batch);
                    if empty {
                        if lifo {
                            queue.pop_back();
                        } else {
                            queue.pop_front();
                        }
                    }
                    return Some((batch, job));
                }
                None => {
                    drop(jobs);
                    if lifo {
                        queue.pop_back();
                    } else {
                        queue.pop_front();
                    }
                }
            }
        }
    }

    /// Enqueues a batch on the submitting thread's home shard (its own
    /// shard for pool workers, round-robin for external threads) and
    /// wakes sleeping workers via the push epoch.
    fn push_batch(shared: &Shared, batch: &Arc<Batch>) {
        let slot = WORKER_SLOT
            .with(|slot| slot.get())
            .unwrap_or_else(|| shared.external_cursor.fetch_add(1, Ordering::Relaxed))
            % shared.shards.len();
        lock(&shared.shards[slot].queue).push_back(Arc::clone(batch));
        *lock(&shared.epoch) += 1;
        shared.work.notify_all();
    }

    fn run_job(batch: &Batch, job: Job) {
        // The fault hook runs inside the job's panic isolation: an
        // injected task panic takes exactly the path a real one takes.
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
            nds_fault::on_pool_task();
            job()
        })) {
            let mut slot = lock(&batch.panic);
            slot.get_or_insert(payload);
        }
        let mut remaining = lock(&batch.remaining);
        *remaining -= 1;
        if *remaining == 0 {
            batch.done.notify_all();
        }
    }

    /// Runs every task to completion, using the persistent pool when it
    /// exists, and returns only once all tasks have finished (scoped
    /// semantics: tasks may borrow from the caller's stack).
    ///
    /// The calling thread participates: it drains its own batch's queued
    /// tasks first, then waits for any tasks claimed by pool workers.
    /// Nested calls from inside a pool task are fine — they enqueue onto
    /// the same pool and the submitter can always finish its own batch
    /// unaided, so progress is guaranteed at every nesting depth.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic raised by any task, after the whole
    /// batch has drained.
    pub fn run_scoped(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
        if let Some(payload) = run_scoped_inner(tasks) {
            resume_unwind(payload);
        }
    }

    /// [`run_scoped`] with panic-to-error conversion: the first task
    /// panic is returned as a typed [`PoolError`] after the whole batch
    /// has stopped running, instead of re-raising.
    ///
    /// On `Err` the caller must discard every output buffer the batch
    /// wrote into — completion of individual tasks is unspecified. The
    /// pool itself is unaffected and serves later batches normally.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError`] carrying the first panic's payload.
    pub fn run_scoped_checked(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) -> Result<(), PoolError> {
        match run_scoped_inner(tasks) {
            Some(payload) => Err(PoolError::from_payload(payload.as_ref())),
            None => Ok(()),
        }
    }

    /// Shared core: runs the batch to completion and hands back the
    /// first panic payload, if any, for the caller to re-raise or type.
    fn run_scoped_inner(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) -> Option<Box<dyn Any + Send>> {
        if tasks.len() <= 1 || worker_count() <= 1 {
            // Serial path: same isolation as the pool path (hook inside
            // the catch), first panic stops the batch — the remaining
            // tasks are skipped, which is fine because the caller
            // discards the whole batch's outputs on failure.
            for task in tasks {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
                    nds_fault::on_pool_task();
                    task()
                })) {
                    return Some(payload);
                }
            }
            return None;
        }
        let jobs: VecDeque<Job> = tasks
            .into_iter()
            .map(|task| {
                // SAFETY: the closure may borrow data with a non-'static
                // lifetime, but this function does not return until
                // `remaining` hits zero — i.e. every job has run (or
                // panicked) and been dropped — so no borrow is ever used
                // after the caller resumes. `Box<dyn FnOnce + Send>` has
                // the same layout for both lifetimes.
                unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + '_>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(task)
                }
            })
            .collect();
        let batch = Arc::new(Batch {
            remaining: Mutex::new(jobs.len()),
            jobs: Mutex::new(jobs),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        let shared = shared();
        push_batch(shared, &batch);
        // Drain our own batch — O(1) per job, no shared-queue traffic —
        // which guarantees completion even if every pool worker is busy
        // (or blocked submitting batches of its own).
        loop {
            let job = lock(&batch.jobs).pop_front();
            match job {
                Some(job) => run_job(&batch, job),
                None => break,
            }
        }
        let mut remaining = lock(&batch.remaining);
        while *remaining > 0 {
            remaining = batch
                .done
                .wait(remaining)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(remaining);
        let payload = lock(&batch.panic).take();
        #[allow(clippy::let_and_return)]
        payload
    }

    /// Bounded retry with exponential backoff for transient failures
    /// (worker deaths, injected faults). Deliberately dumb: attempts and
    /// base delay only, doubling per retry — enough for a serving layer
    /// to ride out a one-shot fault without hiding persistent bugs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RetryPolicy {
        /// Total attempts including the first (0 and 1 both mean "no
        /// retries").
        pub attempts: usize,
        /// Sleep before the first retry; doubles for each further one.
        pub base_backoff: std::time::Duration,
    }

    impl RetryPolicy {
        /// No retries: fail on the first error.
        pub fn none() -> RetryPolicy {
            RetryPolicy {
                attempts: 1,
                base_backoff: std::time::Duration::ZERO,
            }
        }

        /// `retries` extra attempts after the first, starting from a
        /// 1 ms backoff.
        pub fn with_retries(retries: usize) -> RetryPolicy {
            RetryPolicy {
                attempts: retries.saturating_add(1),
                base_backoff: std::time::Duration::from_millis(1),
            }
        }

        /// Backoff to sleep after failed attempt `attempt` (0-based):
        /// `base << attempt`, saturating.
        pub fn backoff_for(&self, attempt: usize) -> std::time::Duration {
            self.base_backoff
                .saturating_mul(1u32.checked_shl(attempt.min(31) as u32).unwrap_or(u32::MAX))
        }
    }

    /// Runs `op` up to `policy.attempts` times, retrying (with backoff)
    /// only while `is_transient` says the error is worth retrying. The
    /// attempt index (0-based) is passed to `op` so callers can reset
    /// caches or vary diagnostics per attempt.
    ///
    /// # Errors
    ///
    /// Returns the last error once attempts are exhausted or the error
    /// is not transient.
    pub fn retry_transient<T, E>(
        policy: RetryPolicy,
        is_transient: impl Fn(&E) -> bool,
        mut op: impl FnMut(usize) -> Result<T, E>,
    ) -> Result<T, E> {
        let attempts = policy.attempts.max(1);
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if attempt + 1 >= attempts || !is_transient(&e) {
                        return Err(e);
                    }
                    let backoff = policy.backoff_for(attempt);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    attempt += 1;
                }
            }
        }
    }
}

pub use pool::{
    pool_respawn_count, retry_transient, run_scoped, run_scoped_checked, PoolError, RetryPolicy,
};

/// Runs `body(start, end)` over disjoint sub-ranges covering `0..n`,
/// potentially in parallel.
///
/// `body` must be safe to run concurrently on disjoint ranges (the usual
/// pattern is indexing into disjoint slices via `chunks_mut`). Because the
/// closure is `Fn` and receives only the range, interior mutability or
/// pre-split buffers are the caller's responsibility; for the common
/// slice-chunking case prefer [`for_each_chunk_mut`].
pub fn chunked_for(n: usize, body: impl Fn(usize, usize) + Sync) {
    chunked_for_workers(n, worker_count(), body);
}

/// [`chunked_for`] with an explicit split factor — the building block the
/// deterministic kernels expose so tests can sweep split factors without
/// touching the process environment.
pub fn chunked_for_workers(n: usize, workers: usize, body: impl Fn(usize, usize) + Sync) {
    if workers <= 1 || n < 2 {
        body(0, n);
        return;
    }
    let chunk = n.div_ceil(workers);
    let body = &body;
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(workers);
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        tasks.push(Box::new(move || body(start, end)));
        start = end;
    }
    run_scoped(tasks);
}

/// Applies `body` to equally-sized mutable chunks of `out`, each paired with
/// its chunk index, potentially in parallel.
///
/// # Panics
///
/// Panics if `out.len()` is not a multiple of `chunk_len`.
pub fn for_each_chunk_mut<T: Send>(
    out: &mut [T],
    chunk_len: usize,
    body: impl Fn(usize, &mut [T]) + Sync,
) {
    for_each_chunk_mut_workers(out, chunk_len, worker_count(), body);
}

/// [`for_each_chunk_mut`] with an explicit split factor.
///
/// # Panics
///
/// Panics if `out.len()` is not a multiple of `chunk_len`.
pub fn for_each_chunk_mut_workers<T: Send>(
    out: &mut [T],
    chunk_len: usize,
    workers: usize,
    body: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(
        chunk_len > 0 && out.len().is_multiple_of(chunk_len),
        "output length {} must be a positive multiple of chunk length {}",
        out.len(),
        chunk_len
    );
    dispatch_chunks(out, chunk_len, workers, body);
}

/// Like [`for_each_chunk_mut_workers`] but tolerates a short final chunk —
/// the row-partitioned matmul kernels use this to hand each task a block
/// of output rows even when the row count doesn't divide evenly.
///
/// # Panics
///
/// Panics if `chunk_len` is zero.
pub fn for_each_ragged_chunk_mut_workers<T: Send>(
    out: &mut [T],
    chunk_len: usize,
    workers: usize,
    body: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "chunk length must be positive");
    dispatch_chunks(out, chunk_len, workers, body);
}

fn dispatch_chunks<T: Send>(
    out: &mut [T],
    chunk_len: usize,
    workers: usize,
    body: impl Fn(usize, &mut [T]) + Sync,
) {
    let nchunks = out.len().div_ceil(chunk_len);
    // A single chunk gains nothing from the pool: run it inline (small
    // matmuls hit this constantly — queueing per call would dwarf them).
    if workers <= 1 || nchunks <= 1 {
        for (i, chunk) in out.chunks_mut(chunk_len).enumerate() {
            body(i, chunk);
        }
        return;
    }
    let per_task = nchunks.div_ceil(workers);
    let body = &body;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
        .chunks_mut(per_task * chunk_len)
        .enumerate()
        .map(|(ti, task_slice)| {
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                for (ci, chunk) in task_slice.chunks_mut(chunk_len).enumerate() {
                    body(ti * per_task + ci, chunk);
                }
            });
            task
        })
        .collect();
    run_scoped(tasks);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunked_for_covers_range_exactly_once() {
        let counter = AtomicUsize::new(0);
        chunked_for(1000, |start, end| {
            counter.fetch_add(end - start, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn chunked_for_handles_empty_and_tiny() {
        let counter = AtomicUsize::new(0);
        chunked_for(0, |s, e| {
            counter.fetch_add(e - s, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 0);
        chunked_for(1, |s, e| {
            counter.fetch_add(e - s, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn explicit_split_factors_cover_the_range() {
        for workers in [1, 2, 3, 7, 16] {
            let counter = AtomicUsize::new(0);
            chunked_for_workers(997, workers, |s, e| {
                counter.fetch_add(e - s, Ordering::SeqCst);
            });
            assert_eq!(counter.load(Ordering::SeqCst), 997, "workers = {workers}");
        }
    }

    #[test]
    fn for_each_chunk_mut_writes_all_chunks() {
        let mut out = vec![0usize; 12];
        for_each_chunk_mut(&mut out, 3, |i, chunk| {
            for v in chunk {
                *v = i + 1;
            }
        });
        assert_eq!(out, vec![1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 4]);
    }

    #[test]
    fn chunk_indices_are_stable_across_split_factors() {
        let mut reference = vec![0usize; 30];
        for_each_chunk_mut_workers(&mut reference, 5, 1, |i, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = i * 100 + j;
            }
        });
        for workers in [2, 3, 4, 8] {
            let mut out = vec![0usize; 30];
            for_each_chunk_mut_workers(&mut out, 5, workers, |i, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = i * 100 + j;
                }
            });
            assert_eq!(out, reference, "workers = {workers}");
        }
    }

    #[test]
    fn ragged_chunks_cover_everything_for_any_split_factor() {
        for workers in [1, 2, 3, 5, 9] {
            let mut out = vec![0usize; 17];
            for_each_ragged_chunk_mut_workers(&mut out, 5, workers, |i, chunk| {
                for v in chunk.iter_mut() {
                    *v = i + 1;
                }
            });
            let expect: Vec<usize> = (0..17).map(|j| j / 5 + 1).collect();
            assert_eq!(out, expect, "workers = {workers}");
        }
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn for_each_chunk_mut_rejects_ragged() {
        let mut out = vec![0usize; 10];
        for_each_chunk_mut(&mut out, 3, |_, _| {});
    }

    #[test]
    fn run_scoped_runs_every_task() {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..37)
            .map(|i| {
                let counter = &counter;
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    counter.fetch_add(i + 1, Ordering::SeqCst);
                });
                task
            })
            .collect();
        run_scoped(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), (1..=37).sum::<usize>());
    }

    #[test]
    fn nested_fan_outs_complete() {
        // Every task fans out again: with a fixed-size pool this must
        // complete (the old scoped-thread design multiplied threads; the
        // pool just queues) and cover every (i, j) cell exactly once.
        let grid = AtomicUsize::new(0);
        chunked_for_workers(8, 4, |s, e| {
            for _i in s..e {
                chunked_for_workers(8, 4, |s2, e2| {
                    grid.fetch_add(e2 - s2, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(grid.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn deeply_nested_fan_outs_complete() {
        let count = AtomicUsize::new(0);
        chunked_for_workers(4, 2, |s, e| {
            for _ in s..e {
                chunked_for_workers(4, 2, |s2, e2| {
                    for _ in s2..e2 {
                        chunked_for_workers(4, 2, |s3, e3| {
                            count.fetch_add(e3 - s3, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn interleaved_tenant_batches_all_complete_without_starvation() {
        // Fairness regression for the serving scenario: two tenants
        // submit interleaved batches from their own threads, one of them
        // fanning out nested sub-batches. Batches are claimed
        // oldest-first and a submitter drains only its *own* batch
        // before blocking, so neither tenant's work can be starved
        // behind the other's fan-out. Each tenant's count proves every
        // one of its cells ran exactly once; the test terminating at all
        // proves no cross-tenant deadlock or starvation.
        let tenant_a = AtomicUsize::new(0);
        let tenant_b = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for _ in 0..20 {
                    chunked_for_workers(16, 4, |s, e| {
                        for _ in s..e {
                            chunked_for_workers(4, 2, |s2, e2| {
                                tenant_a.fetch_add(e2 - s2, Ordering::SeqCst);
                            });
                        }
                    });
                }
            });
            scope.spawn(|| {
                for _ in 0..20 {
                    chunked_for_workers(64, 4, |s, e| {
                        tenant_b.fetch_add(e - s, Ordering::SeqCst);
                    });
                }
            });
        });
        assert_eq!(tenant_a.load(Ordering::SeqCst), 20 * 16 * 4);
        assert_eq!(tenant_b.load(Ordering::SeqCst), 20 * 64);
    }

    #[test]
    fn stealing_under_nested_fan_out_completes_without_theft() {
        // The evaluate_many → MC → gemm shape: several external
        // submitters each drive a three-level nested fan-out through
        // the sharded queues at once. Completion of the scope proves no
        // deadlock; the per-submitter counters prove every leaf cell
        // ran exactly once; and the executor check proves the
        // no-cross-submitter-theft guarantee — every job of a
        // submitter's batch runs either on a pool worker thread or on
        // that submitter's own thread, never on another submitter's.
        use std::sync::Mutex;
        let cells: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        let foreign_executions = Mutex::new(Vec::<String>::new());
        std::thread::scope(|scope| {
            for (t, cell) in cells.iter().enumerate() {
                let foreign = &foreign_executions;
                std::thread::Builder::new()
                    .name(format!("submitter-{t}"))
                    .spawn_scoped(scope, move || {
                        let me = format!("submitter-{t}");
                        for _ in 0..8 {
                            chunked_for_workers(4, 4, |s, e| {
                                // Pool workers and this submitter may
                                // run this job; any other submitter
                                // thread here would be cross-batch
                                // theft.
                                let who = std::thread::current();
                                let name = who.name().unwrap_or("<unnamed>");
                                if !name.starts_with("nds-worker-") && name != me {
                                    foreign
                                        .lock()
                                        .unwrap()
                                        .push(format!("{name} ran {me}'s job"));
                                }
                                for _ in s..e {
                                    chunked_for_workers(4, 2, |s2, e2| {
                                        for _ in s2..e2 {
                                            chunked_for_workers(4, 2, |s3, e3| {
                                                cell.fetch_add(e3 - s3, Ordering::SeqCst);
                                            });
                                        }
                                    });
                                }
                            });
                        }
                    })
                    .expect("submitter thread spawns");
            }
        });
        for (t, cell) in cells.iter().enumerate() {
            assert_eq!(
                cell.load(Ordering::SeqCst),
                8 * 4 * 4 * 4,
                "submitter {t} lost leaf cells"
            );
        }
        let foreign = foreign_executions.into_inner().unwrap();
        assert!(
            foreign.is_empty(),
            "cross-submitter batch theft observed: {foreign:?}"
        );
    }

    #[test]
    fn panics_in_tasks_propagate_to_the_submitter() {
        let result = std::panic::catch_unwind(|| {
            chunked_for_workers(8, 4, |s, _| {
                if s == 0 {
                    panic!("task failure");
                }
            });
        });
        assert!(result.is_err(), "submitter must observe the task panic");
        // The pool survives a panicked batch: later batches still run.
        let counter = AtomicUsize::new(0);
        chunked_for_workers(100, 4, |s, e| {
            counter.fetch_add(e - s, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn checked_run_surfaces_task_panics_as_typed_errors() {
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
            .map(|i| {
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    if i == 3 {
                        panic!("boom at {i}");
                    }
                });
                task
            })
            .collect();
        let err = run_scoped_checked(tasks).expect_err("task panic must surface");
        assert!(err.message.contains("boom"), "payload text kept: {err}");
        assert!(err.to_string().contains("worker pool task panicked"));
        // Pool still serves later batches after the failure.
        let counter = AtomicUsize::new(0);
        chunked_for_workers(50, 4, |s, e| {
            counter.fetch_add(e - s, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn checked_run_is_ok_when_no_task_panics() {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..5)
            .map(|_| {
                let counter = &counter;
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
                task
            })
            .collect();
        assert!(run_scoped_checked(tasks).is_ok());
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn retry_transient_retries_until_success() {
        let policy = RetryPolicy {
            attempts: 4,
            base_backoff: std::time::Duration::ZERO,
        };
        let mut seen = Vec::new();
        let result: Result<&str, &str> = retry_transient(
            policy,
            |_| true,
            |attempt| {
                seen.push(attempt);
                if attempt < 2 {
                    Err("transient")
                } else {
                    Ok("done")
                }
            },
        );
        assert_eq!(result, Ok("done"));
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn retry_transient_stops_on_persistent_errors() {
        let calls = AtomicUsize::new(0);
        let result: Result<(), &str> = retry_transient(
            RetryPolicy::with_retries(5),
            |e| *e != "fatal",
            |_| {
                calls.fetch_add(1, Ordering::SeqCst);
                Err("fatal")
            },
        );
        assert_eq!(result, Err("fatal"));
        assert_eq!(calls.load(Ordering::SeqCst), 1, "fatal errors never retry");
    }

    #[test]
    fn retry_transient_exhausts_attempts() {
        let calls = AtomicUsize::new(0);
        let result: Result<(), &str> = retry_transient(
            RetryPolicy {
                attempts: 3,
                base_backoff: std::time::Duration::ZERO,
            },
            |_| true,
            |_| {
                calls.fetch_add(1, Ordering::SeqCst);
                Err("still broken")
            },
        );
        assert_eq!(result, Err("still broken"));
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn retry_policy_backoff_doubles() {
        let policy = RetryPolicy {
            attempts: 4,
            base_backoff: std::time::Duration::from_millis(2),
        };
        assert_eq!(policy.backoff_for(0), std::time::Duration::from_millis(2));
        assert_eq!(policy.backoff_for(1), std::time::Duration::from_millis(4));
        assert_eq!(policy.backoff_for(2), std::time::Duration::from_millis(8));
        assert_eq!(RetryPolicy::none().attempts, 1);
    }

    #[test]
    fn env_policy_resolution() {
        assert_eq!(resolve_worker_count(None, 12), 12);
        assert_eq!(resolve_worker_count(Some(""), 12), 12);
        assert_eq!(resolve_worker_count(Some("0"), 12), 12);
        assert_eq!(resolve_worker_count(Some("garbage"), 12), 12);
        assert_eq!(resolve_worker_count(Some("1"), 12), 1);
        assert_eq!(resolve_worker_count(Some(" 6 "), 12), 6);
        assert_eq!(resolve_worker_count(Some("32"), 4), 32);
        assert_eq!(resolve_worker_count(None, 0), 1);
    }
}
