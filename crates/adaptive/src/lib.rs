//! Uncertainty-gated adaptive inference policies.
//!
//! The source paper buys *reliable* uncertainty by running S Monte-Carlo
//! dropout passes per input — but most inputs do not need the full
//! budget. This crate is the policy layer that decides, per input, how
//! much inference to spend, behind one typed [`AdaptivePolicy`] with two
//! composable gates:
//!
//! * **Sample escalation** ([`EscalationPolicy`]) — the engine runs a
//!   cheap pilot round (S = 1 by default), scores every input with a
//!   confidence gate ([`GateMetric`]), and escalates only above-threshold
//!   rows to the full sampling number. The escalated samples are
//!   **byte-identical** to the corresponding samples of an unbudgeted
//!   run: every sample's masks derive only from `(seed, sample index)`,
//!   so pilot samples are the full run's first samples and escalated
//!   samples replay streams `pilot..S` exactly (the gathered-pass
//!   machinery in `nds-nn`/`nds-dropout` fast-forwards the per-item
//!   streams over rows that stayed at the pilot count).
//! * **Multi-exit heads** ([`ExitPolicy`]) — `nds_nn::layers::ExitHead`
//!   layers emit calibrated logits mid-network; a pass exits a row at
//!   the first head whose confidence clears that head's threshold, and
//!   the walk stops early once every row has exited ([`exits`]).
//!
//! Both gates are *reliability-preserving by construction*: an uncertain
//! (e.g. out-of-distribution) input fails the confidence tests, so it
//! escalates to the full sampling number and runs to the final
//! classifier — the regression suite pins exactly that (OOD inputs must
//! not exit early or stay at S = 1).
//!
//! A disabled policy ([`AdaptivePolicy::disabled`], the default) runs no
//! adaptive code at all: the engine's bytes are identical to a build
//! without the policy, pinned by the golden fixtures and a proptest.
//!
//! The scoring math here operates on raw sample slabs (`samples` rows of
//! `rows × classes` probabilities, the layout every MC harness in
//! `nds-dropout` produces) so the engine, the benches and the tests all
//! share one implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exits;

use nds_metrics::entropy_nats;
use std::error::Error as StdError;
use std::fmt;
use std::str::FromStr;

/// Errors raised by adaptive-policy validation and the exit helpers.
#[derive(Debug)]
pub enum AdaptiveError {
    /// The policy itself is malformed (non-finite threshold, zero pilot
    /// count, …). Policies are validated before any work starts — this
    /// is a *reject*, never a mid-flight fault.
    BadPolicy(String),
    /// An exit-head operation failed (bad placement, shape mismatch).
    Exit(String),
    /// An underlying network error.
    Nn(nds_nn::NnError),
}

impl fmt::Display for AdaptiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptiveError::BadPolicy(msg) => write!(f, "bad adaptive policy: {msg}"),
            AdaptiveError::Exit(msg) => write!(f, "exit-head error: {msg}"),
            AdaptiveError::Nn(e) => write!(f, "network error: {e}"),
        }
    }
}

impl StdError for AdaptiveError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            AdaptiveError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nds_nn::NnError> for AdaptiveError {
    fn from(e: nds_nn::NnError) -> Self {
        AdaptiveError::Nn(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, AdaptiveError>;

/// The per-input confidence signal the escalation gate thresholds on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateMetric {
    /// Predictive entropy (nats) of the pilot-mean distribution. Works
    /// from a single pilot sample; the natural S = 1 gate.
    PredictiveEntropy,
    /// Variance, across the pilot samples, of the probability assigned
    /// to the pilot-mean's argmax class — the `subfunctions`
    /// unreliability metric. Needs at least two pilot samples.
    TopClassVariance,
}

impl fmt::Display for GateMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateMetric::PredictiveEntropy => write!(f, "entropy"),
            GateMetric::TopClassVariance => write!(f, "top-var"),
        }
    }
}

impl FromStr for GateMetric {
    type Err = AdaptiveError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "entropy" | "predictive-entropy" => Ok(GateMetric::PredictiveEntropy),
            "top-var" | "variance" | "top-class-variance" => Ok(GateMetric::TopClassVariance),
            other => Err(AdaptiveError::BadPolicy(format!(
                "unknown gate metric `{other}` (entropy | top-var)"
            ))),
        }
    }
}

/// Sample-escalation gate: run `pilot` MC samples, escalate rows whose
/// gate score reaches `threshold` to the engine's full sampling number.
///
/// `threshold` is inclusive (`score >= threshold` escalates), so a
/// threshold of `0.0` escalates every row — the configuration the byte-
/// identity assertions use, since both gate metrics are non-negative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EscalationPolicy {
    /// The confidence signal to threshold.
    pub metric: GateMetric,
    /// Escalate rows with `score >= threshold`. Must be finite and
    /// non-negative.
    pub threshold: f64,
    /// Pilot samples to spend on every row before gating (≥ 1; the
    /// variance gate needs ≥ 2).
    pub pilot: usize,
}

impl EscalationPolicy {
    /// The paper-default gate: predictive entropy over a single pilot
    /// sample.
    pub fn entropy(threshold: f64) -> Self {
        EscalationPolicy {
            metric: GateMetric::PredictiveEntropy,
            threshold,
            pilot: 1,
        }
    }

    /// Checks the policy's own invariants.
    ///
    /// # Errors
    ///
    /// [`AdaptiveError::BadPolicy`] for non-finite or negative
    /// thresholds, a zero pilot count, or a variance gate with fewer
    /// than two pilot samples.
    pub fn validate(&self) -> Result<()> {
        if !self.threshold.is_finite() || self.threshold < 0.0 {
            return Err(AdaptiveError::BadPolicy(format!(
                "escalation threshold {} must be finite and >= 0",
                self.threshold
            )));
        }
        if self.pilot == 0 {
            return Err(AdaptiveError::BadPolicy(
                "pilot sample count must be >= 1".into(),
            ));
        }
        if self.metric == GateMetric::TopClassVariance && self.pilot < 2 {
            return Err(AdaptiveError::BadPolicy(
                "the top-class-variance gate needs at least 2 pilot samples".into(),
            ));
        }
        Ok(())
    }
}

/// Multi-exit gate: one confidence threshold per [`ExitHead`] in network
/// order. A pass exits a row at the first head whose calibrated maximum
/// class probability reaches that head's threshold.
///
/// [`ExitHead`]: nds_nn::layers::ExitHead
#[derive(Debug, Clone, PartialEq)]
pub struct ExitPolicy {
    /// Per-head exit thresholds on the calibrated max-probability, in
    /// the order the heads appear in the network. Each must lie in
    /// `(0, 1]`; a threshold of `1.0` effectively disables that head
    /// (probabilities only reach 1.0 on a degenerate one-hot output).
    pub thresholds: Vec<f64>,
}

impl ExitPolicy {
    /// The same threshold for every head.
    pub fn uniform(threshold: f64, heads: usize) -> Self {
        ExitPolicy {
            thresholds: vec![threshold; heads],
        }
    }

    /// Checks the policy's own invariants.
    ///
    /// # Errors
    ///
    /// [`AdaptiveError::BadPolicy`] when empty or when any threshold is
    /// non-finite or outside `(0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.thresholds.is_empty() {
            return Err(AdaptiveError::BadPolicy(
                "exit policy needs at least one threshold".into(),
            ));
        }
        for (i, &t) in self.thresholds.iter().enumerate() {
            if !t.is_finite() || t <= 0.0 || t > 1.0 {
                return Err(AdaptiveError::BadPolicy(format!(
                    "exit threshold {t} (head {i}) must be finite and in (0, 1]"
                )));
            }
        }
        Ok(())
    }
}

/// The one typed policy behind both gates. `Default`/[`disabled`] is the
/// inert policy: no adaptive code runs and the engine's bytes are
/// untouched.
///
/// [`disabled`]: AdaptivePolicy::disabled
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdaptivePolicy {
    /// Sample-escalation gate (None = every row gets the full S).
    pub escalation: Option<EscalationPolicy>,
    /// Multi-exit gate (None = every pass runs to the final classifier).
    pub exits: Option<ExitPolicy>,
}

impl AdaptivePolicy {
    /// The inert policy: no gating, byte-identical to no policy at all.
    pub const fn disabled() -> Self {
        AdaptivePolicy {
            escalation: None,
            exits: None,
        }
    }

    /// Escalation-only convenience constructor.
    pub fn escalate(policy: EscalationPolicy) -> Self {
        AdaptivePolicy {
            escalation: Some(policy),
            exits: None,
        }
    }

    /// `true` when either gate is configured.
    pub fn enabled(&self) -> bool {
        self.escalation.is_some() || self.exits.is_some()
    }

    /// Validates every configured gate.
    ///
    /// # Errors
    ///
    /// Propagates the first gate's [`AdaptiveError::BadPolicy`].
    pub fn validate(&self) -> Result<()> {
        if let Some(escalation) = &self.escalation {
            escalation.validate()?;
        }
        if let Some(exits) = &self.exits {
            exits.validate()?;
        }
        Ok(())
    }
}

/// Per-row gate scores over a pilot sample slab.
///
/// `slab` holds `pilot` sample rows of `rows × classes` probabilities
/// (sample-major, the layout every `nds-dropout` harness produces) and
/// may be longer than `pilot * rows * classes` — only the pilot prefix
/// is read. Scores are written into `scores` (length `rows`).
///
/// Both metrics are computed in `f64` in fixed (ascending) order, so the
/// scores — and therefore the escalation decisions — are independent of
/// thread count and execution order.
///
/// # Panics
///
/// Panics when `slab` is shorter than the pilot prefix or when
/// `scores.len() != rows` — driver programming errors.
pub fn gate_scores(
    slab: &[f32],
    pilot: usize,
    rows: usize,
    classes: usize,
    metric: GateMetric,
    scores: &mut [f64],
) {
    assert!(pilot > 0, "pilot sample count must be positive");
    let pass_len = rows * classes;
    assert!(
        slab.len() >= pilot * pass_len,
        "slab must hold the pilot prefix"
    );
    assert_eq!(scores.len(), rows, "one score per row");
    let mut mean = vec![0.0f32; classes];
    for (r, score) in scores.iter_mut().enumerate() {
        mean.fill(0.0);
        for s in 0..pilot {
            let row = &slab[s * pass_len + r * classes..s * pass_len + (r + 1) * classes];
            for (m, &p) in mean.iter_mut().zip(row) {
                *m += p;
            }
        }
        let inv = 1.0 / pilot as f32;
        for m in mean.iter_mut() {
            *m *= inv;
        }
        *score = match metric {
            GateMetric::PredictiveEntropy => entropy_nats(&mean),
            GateMetric::TopClassVariance => {
                // Argmax of the pilot mean (first maximum wins — fixed
                // tie-break), then the variance across pilot samples of
                // that class's probability.
                let top = mean
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                let mu = mean[top] as f64;
                (0..pilot)
                    .map(|s| {
                        let p = slab[s * pass_len + r * classes + top] as f64;
                        (p - mu) * (p - mu)
                    })
                    .sum::<f64>()
                    / pilot as f64
            }
        };
    }
}

/// Applies an [`EscalationPolicy`] to a pilot slab: `mask[r]` is `true`
/// when row `r` must escalate to the full sampling number
/// (`score >= threshold`, inclusive so threshold `0.0` escalates all).
///
/// # Panics
///
/// Panics on the same slab/shape violations as [`gate_scores`].
pub fn escalation_mask(
    slab: &[f32],
    pilot: usize,
    rows: usize,
    classes: usize,
    policy: &EscalationPolicy,
    mask: &mut [bool],
) {
    assert_eq!(mask.len(), rows, "one decision per row");
    let mut scores = vec![0.0f64; rows];
    gate_scores(slab, pilot, rows, classes, policy.metric, &mut scores);
    for (m, s) in mask.iter_mut().zip(&scores) {
        *m = *s >= policy.threshold;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_policy_is_inert_and_valid() {
        let policy = AdaptivePolicy::disabled();
        assert!(!policy.enabled());
        policy.validate().unwrap();
        assert_eq!(policy, AdaptivePolicy::default());
    }

    #[test]
    fn escalation_validation_rejects_bad_thresholds() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.5] {
            let policy = EscalationPolicy::entropy(bad);
            assert!(policy.validate().is_err(), "threshold {bad} must reject");
        }
        EscalationPolicy::entropy(0.0).validate().unwrap();
        let zero_pilot = EscalationPolicy {
            pilot: 0,
            ..EscalationPolicy::entropy(0.1)
        };
        assert!(zero_pilot.validate().is_err());
        let var_one_pilot = EscalationPolicy {
            metric: GateMetric::TopClassVariance,
            threshold: 0.1,
            pilot: 1,
        };
        assert!(var_one_pilot.validate().is_err());
        let var_two_pilot = EscalationPolicy {
            pilot: 2,
            ..var_one_pilot
        };
        var_two_pilot.validate().unwrap();
    }

    #[test]
    fn exit_validation_rejects_out_of_range() {
        assert!(ExitPolicy { thresholds: vec![] }.validate().is_err());
        for bad in [0.0, -0.1, 1.5, f64::NAN, f64::INFINITY] {
            let policy = ExitPolicy::uniform(bad, 2);
            assert!(policy.validate().is_err(), "threshold {bad} must reject");
        }
        ExitPolicy::uniform(0.9, 3).validate().unwrap();
        ExitPolicy::uniform(1.0, 1).validate().unwrap();
    }

    #[test]
    fn gate_metric_parses_and_displays() {
        assert_eq!(
            "entropy".parse::<GateMetric>().unwrap(),
            GateMetric::PredictiveEntropy
        );
        assert_eq!(
            "top-var".parse::<GateMetric>().unwrap(),
            GateMetric::TopClassVariance
        );
        assert!("bogus".parse::<GateMetric>().is_err());
        assert_eq!(GateMetric::PredictiveEntropy.to_string(), "entropy");
    }

    #[test]
    fn entropy_gate_ranks_uniform_above_peaked() {
        // Two rows, one pilot sample: a peaked row and a uniform row.
        let slab = [0.97f32, 0.01, 0.01, 0.01, 0.25, 0.25, 0.25, 0.25];
        let mut scores = [0.0f64; 2];
        gate_scores(&slab, 1, 2, 4, GateMetric::PredictiveEntropy, &mut scores);
        assert!(
            scores[1] > scores[0],
            "uniform {} must outscore peaked {}",
            scores[1],
            scores[0]
        );
        // A threshold between the two splits the batch.
        let policy = EscalationPolicy::entropy((scores[0] + scores[1]) / 2.0);
        let mut mask = [false; 2];
        escalation_mask(&slab, 1, 2, 4, &policy, &mut mask);
        assert_eq!(mask, [false, true]);
        // Threshold 0 escalates everything (scores are non-negative).
        escalation_mask(&slab, 1, 2, 4, &EscalationPolicy::entropy(0.0), &mut mask);
        assert_eq!(mask, [true, true]);
    }

    #[test]
    fn variance_gate_ranks_unstable_above_stable() {
        // One row, two pilot samples. Stable row: top-class prob barely
        // moves; unstable row: it swings.
        let stable = [0.9f32, 0.1, 0.88, 0.12];
        let unstable = [0.9f32, 0.1, 0.2, 0.8];
        let mut s_stable = [0.0f64];
        let mut s_unstable = [0.0f64];
        gate_scores(
            &stable,
            2,
            1,
            2,
            GateMetric::TopClassVariance,
            &mut s_stable,
        );
        gate_scores(
            &unstable,
            2,
            1,
            2,
            GateMetric::TopClassVariance,
            &mut s_unstable,
        );
        assert!(
            s_unstable[0] > s_stable[0],
            "unstable {} must outscore stable {}",
            s_unstable[0],
            s_stable[0]
        );
    }

    #[test]
    fn gate_scores_ignore_samples_past_the_pilot() {
        // The slab may hold the full S rows; only the pilot prefix may
        // influence the scores.
        let pilot_only = [0.6f32, 0.4];
        let full = [0.6f32, 0.4, 0.1, 0.9, 0.5, 0.5];
        let mut a = [0.0f64];
        let mut b = [0.0f64];
        gate_scores(&pilot_only, 1, 1, 2, GateMetric::PredictiveEntropy, &mut a);
        gate_scores(&full, 1, 1, 2, GateMetric::PredictiveEntropy, &mut b);
        assert_eq!(a, b);
    }
}
