//! Multi-exit inference: attaching, training and walking
//! [`ExitHead`] layers.
//!
//! A head is attached *between* two layers of a [`Sequential`] chain and
//! is the identity on the main path, so attachment never changes the
//! backbone's bytes (pinned by this module's tests). The exit-aware
//! walker ([`predict_probs_exits_ws`]) runs one forward pass, asks each
//! head for calibrated probabilities, retires rows whose confidence
//! clears the head's threshold, and stops walking early once every row
//! has exited — that early stop is where the latency is won.
//!
//! The walker composes with Monte-Carlo sampling: it is a *single-pass*
//! primitive, so an MC caller drives it once per sample exactly like any
//! other pass body, and the per-sample mask streams are untouched by an
//! early stop (streams are re-derived per sample from `(seed, sample)`).

use crate::{AdaptiveError, Result};
use nds_nn::layers::{ExitHead, Sequential};
use nds_nn::train::output_classes;
use nds_nn::Mode;
use nds_tensor::rng::Rng64;
use nds_tensor::{Shape, Tensor, Workspace};

/// Attaches an [`ExitHead`] of `classes` classes before each layer index
/// in `positions` (position `p` sees the out-flow of layers `0..p`).
/// Positions must be strictly ascending and at most `net.len()`;
/// insertion happens back-to-front so the given indices all refer to the
/// *original* chain.
///
/// Returns the number of heads attached.
///
/// # Errors
///
/// [`AdaptiveError::Exit`] for out-of-range or non-ascending positions,
/// or when the activation flowing at a position has a rank the head
/// cannot classify.
pub fn attach_exit_heads(
    net: &mut Sequential,
    input: &Shape,
    positions: &[usize],
    classes: usize,
    rng: &mut Rng64,
) -> Result<usize> {
    for pair in positions.windows(2) {
        if pair[1] <= pair[0] {
            return Err(AdaptiveError::Exit(format!(
                "exit positions must be strictly ascending, got {} then {}",
                pair[0], pair[1]
            )));
        }
    }
    if let Some(&last) = positions.last() {
        if last > net.len() {
            return Err(AdaptiveError::Exit(format!(
                "exit position {last} out of range for a {}-layer chain",
                net.len()
            )));
        }
    }
    // Resolve every in-flow shape first (the walk reads the unmodified
    // chain), then insert back-to-front so earlier indices stay valid.
    let mut heads = Vec::with_capacity(positions.len());
    let mut shape = input.clone();
    let mut next = 0usize;
    for (i, layer) in net.layers().iter().enumerate() {
        while next < positions.len() && positions[next] == i {
            heads.push((i, ExitHead::for_shape(&shape, classes, rng)?));
            next += 1;
        }
        shape = layer.out_shape(&shape)?;
    }
    while next < positions.len() {
        // Only position == net.len() can remain (range-checked above).
        heads.push((net.len(), ExitHead::for_shape(&shape, classes, rng)?));
        next += 1;
    }
    let attached = heads.len();
    for (pos, head) in heads.into_iter().rev() {
        net.insert(pos, Box::new(head));
    }
    Ok(attached)
}

/// Number of [`ExitHead`] layers in the chain's top level.
pub fn exit_head_count(net: &mut Sequential) -> usize {
    net.each_layer_mut()
        .filter_map(|l| l.as_exit_head())
        .count()
}

/// Walks the chain in [`Mode::Standard`], handing each head its in-flow
/// activation.
fn for_each_head_activation(
    net: &mut Sequential,
    images: &Tensor,
    mut f: impl FnMut(&mut ExitHead, &Tensor) -> Result<()>,
) -> Result<()> {
    let mut ws = Workspace::new();
    let mut t = ws.take_copy(images);
    for layer in net.each_layer_mut() {
        if let Some(head) = layer.as_exit_head() {
            f(head, &t)?;
            // The head is the identity — the in-flow continues unchanged.
            continue;
        }
        let next = layer.forward_ws(&t, Mode::Standard, &mut ws)?;
        ws.recycle_tensor(t);
        t = next;
    }
    Ok(())
}

/// Fits every head in the chain as a linear probe on the (frozen)
/// activations `images` produces in [`Mode::Standard`]. Returns each
/// head's final training loss, in network order.
///
/// # Errors
///
/// Propagates forward and shape errors.
pub fn fit_exit_heads(
    net: &mut Sequential,
    images: &Tensor,
    labels: &[usize],
    epochs: usize,
    lr: f32,
) -> Result<Vec<f64>> {
    let mut losses = Vec::new();
    for_each_head_activation(net, images, |head, t| {
        losses.push(head.fit(t, labels, epochs, lr)?);
        Ok(())
    })?;
    Ok(losses)
}

/// Temperature-calibrates every head on held-out data (see
/// [`ExitHead::calibrate`]). Returns each head's chosen temperature, in
/// network order.
///
/// # Errors
///
/// Propagates forward and shape errors.
pub fn calibrate_exit_heads(
    net: &mut Sequential,
    images: &Tensor,
    labels: &[usize],
) -> Result<Vec<f32>> {
    let mut temps = Vec::new();
    for_each_head_activation(net, images, |head, t| {
        temps.push(head.calibrate(t, labels)?);
        Ok(())
    })?;
    Ok(temps)
}

/// One exit-aware forward pass: softmax probabilities `[n, classes]`
/// where each row comes from the first exit whose calibrated confidence
/// (max class probability) reached that head's threshold, or from the
/// final classifier.
///
/// `thresholds[k]` gates the `k`-th head in network order (`>=` is an
/// exit, so `1.0` all but disables a head); heads beyond
/// `thresholds.len()` are left ungated. `exit_of[r]` records row `r`'s
/// exit: the head index, or `thresholds.len()` for the final classifier.
/// The walk **stops** at the first head where every row has exited —
/// later layers never run, which is the latency win the exit-placement
/// search measures.
///
/// The pass is full-batch (no row compaction), so layer execution and —
/// in MC modes — mask-stream consumption are identical to a plain pass;
/// only the *outputs* are taken early. One call is one pass: MC callers
/// drive it once per sample like any other pass body.
///
/// # Errors
///
/// Propagates forward errors; rejects heads whose class count differs
/// from the network's, and `exit_of.len() != n`.
pub fn predict_probs_exits_ws(
    net: &mut Sequential,
    images: &Tensor,
    mode: Mode,
    thresholds: &[f64],
    ws: &mut Workspace,
    exit_of: &mut [usize],
) -> Result<Tensor> {
    let n = images.shape().dim(0);
    let final_exit = thresholds.len();
    if exit_of.len() != n {
        return Err(AdaptiveError::Exit(format!(
            "exit_of holds {} slots for {n} rows",
            exit_of.len()
        )));
    }
    if n == 0 {
        return Ok(Tensor::from_vec(Vec::new(), Shape::d2(0, 1)).map_err(nds_nn::NnError::from)?);
    }
    let classes = output_classes(net, images.shape())?;
    let mut out = ws.take_dirty(n * classes);
    let mut done = vec![false; n];
    let mut remaining = n;
    let mut head_idx = 0usize;
    let mut t = ws.take_copy(images);
    for layer in net.each_layer_mut() {
        if let Some(head) = layer.as_exit_head() {
            let k = head_idx;
            head_idx += 1;
            if k >= thresholds.len() {
                continue; // ungated head: identity, nothing to decide
            }
            if head.classes() != classes {
                ws.recycle_tensor(t);
                ws.recycle(out);
                return Err(AdaptiveError::Exit(format!(
                    "head {k} predicts {} classes, network predicts {classes}",
                    head.classes()
                )));
            }
            let probs = head.exit_probs_ws(&t, ws)?;
            for (r, taken) in done.iter_mut().enumerate() {
                if *taken {
                    continue;
                }
                let row = &probs.as_slice()[r * classes..(r + 1) * classes];
                let top = row.iter().fold(0.0f32, |a, &b| a.max(b));
                if f64::from(top) >= thresholds[k] {
                    out[r * classes..(r + 1) * classes].copy_from_slice(row);
                    exit_of[r] = k;
                    *taken = true;
                    remaining -= 1;
                }
            }
            ws.recycle_tensor(probs);
            if remaining == 0 {
                // Every row has exited: the rest of the chain never runs.
                ws.recycle_tensor(t);
                return Ok(
                    Tensor::from_vec(out, Shape::d2(n, classes)).map_err(nds_nn::NnError::from)?
                );
            }
            continue;
        }
        let next = layer.forward_ws(&t, mode, ws)?;
        ws.recycle_tensor(t);
        t = next;
    }
    let mut probs = t;
    probs
        .softmax_rows_inplace()
        .map_err(nds_nn::NnError::from)?;
    if probs.len() != n * classes {
        ws.recycle(out);
        return Err(AdaptiveError::Exit(format!(
            "final output {} disagrees with [{n}, {classes}]",
            probs.shape()
        )));
    }
    for (r, taken) in done.iter().enumerate() {
        if !taken {
            out[r * classes..(r + 1) * classes]
                .copy_from_slice(&probs.as_slice()[r * classes..(r + 1) * classes]);
            exit_of[r] = final_exit;
        }
    }
    ws.recycle_tensor(probs);
    Ok(Tensor::from_vec(out, Shape::d2(n, classes)).map_err(nds_nn::NnError::from)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nds_nn::layers::{Linear, Relu};
    use nds_nn::Layer;

    /// One plain full-batch pass, softmaxed — the exit-free reference.
    fn plain_probs(net: &mut Sequential, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut p = net.forward_ws(x, Mode::Standard, ws).unwrap();
        p.softmax_rows_inplace().unwrap();
        p
    }

    /// Linear(4→8) → Relu → Linear(8→3).
    fn backbone(seed: u64) -> Sequential {
        let mut rng = Rng64::new(seed);
        let mut net = Sequential::new();
        net.push(Box::new(Linear::new(4, 8, true, &mut rng)))
            .push(Box::new(Relu::default()))
            .push(Box::new(Linear::new(8, 3, true, &mut rng)));
        net
    }

    /// Three separable blobs in the 4-d input space.
    fn blobs(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = Rng64::new(seed);
        let mut data = Vec::with_capacity(n * 4);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 3;
            for d in 0..4 {
                let centre = if d == label { 3.0 } else { -1.0 };
                data.push(centre + 0.3 * rng.normal() as f32);
            }
            labels.push(label);
        }
        (Tensor::from_vec(data, Shape::d2(n, 4)).unwrap(), labels)
    }

    #[test]
    fn attaching_heads_leaves_backbone_bytes_untouched() {
        let (x, _) = blobs(6, 1);
        let mut plain = backbone(7);
        let mut ws = Workspace::new();
        let want = plain_probs(&mut plain, &x, &mut ws);

        let mut rigged = backbone(7);
        let mut rng = Rng64::new(2);
        let attached = attach_exit_heads(&mut rigged, x.shape(), &[1, 2], 3, &mut rng).unwrap();
        assert_eq!(attached, 2);
        assert_eq!(exit_head_count(&mut rigged), 2);
        assert_eq!(rigged.len(), 5);
        let got = plain_probs(&mut rigged, &x, &mut ws);
        assert_eq!(got.as_slice(), want.as_slice(), "heads must be identity");
    }

    #[test]
    fn attach_rejects_bad_positions() {
        let (x, _) = blobs(2, 3);
        let mut rng = Rng64::new(4);
        let mut net = backbone(8);
        assert!(attach_exit_heads(&mut net, x.shape(), &[2, 1], 3, &mut rng).is_err());
        assert!(attach_exit_heads(&mut net, x.shape(), &[9], 3, &mut rng).is_err());
    }

    #[test]
    fn ungated_walk_matches_plain_pass_bytes() {
        let (x, _) = blobs(5, 5);
        let mut net = backbone(9);
        let mut rng = Rng64::new(6);
        attach_exit_heads(&mut net, x.shape(), &[2], 3, &mut rng).unwrap();
        let mut ws = Workspace::new();
        let want = plain_probs(&mut net, &x, &mut ws);
        // Threshold 1.0 on an untrained head: no float max-prob reaches
        // it here, so every row runs to the final classifier.
        let mut exit_of = vec![usize::MAX; 5];
        let got =
            predict_probs_exits_ws(&mut net, &x, Mode::Standard, &[1.0], &mut ws, &mut exit_of)
                .unwrap();
        assert_eq!(got.as_slice(), want.as_slice());
        assert!(exit_of.iter().all(|&e| e == 1), "all rows exit at final");
    }

    #[test]
    fn confident_rows_exit_early_after_fitting() {
        let (x, labels) = blobs(30, 7);
        let mut net = backbone(10);
        let mut rng = Rng64::new(8);
        attach_exit_heads(&mut net, x.shape(), &[2], 3, &mut rng).unwrap();
        let losses = fit_exit_heads(&mut net, &x, &labels, 300, 0.5).unwrap();
        assert_eq!(losses.len(), 1);
        assert!(
            losses[0] < 0.3,
            "probe must fit separable blobs: {losses:?}"
        );
        let temps = calibrate_exit_heads(&mut net, &x, &labels).unwrap();
        assert_eq!(temps.len(), 1);

        let mut ws = Workspace::new();
        let mut exit_of = vec![usize::MAX; 30];
        let probs =
            predict_probs_exits_ws(&mut net, &x, Mode::Standard, &[0.6], &mut ws, &mut exit_of)
                .unwrap();
        let early = exit_of.iter().filter(|&&e| e == 0).count();
        assert!(
            early > 15,
            "most separable rows should exit early: {early}/30"
        );
        // Early-exit rows carry the head's (correct) predictions.
        let correct = labels
            .iter()
            .enumerate()
            .filter(|&(r, &l)| {
                let row = &probs.as_slice()[r * 3..(r + 1) * 3];
                let top = (0..3)
                    .max_by(|&a, &b| row[a].partial_cmp(&row[b]).unwrap())
                    .unwrap();
                top == l
            })
            .count();
        assert!(correct >= 27, "exit predictions accurate: {correct}/30");
    }
}
