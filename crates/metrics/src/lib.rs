//! Algorithmic and uncertainty metrics.
//!
//! The search phase of the framework (paper §3.4) scores every candidate
//! configuration with four metrics; three of them are algorithmic and live
//! here:
//!
//! * [`accuracy`] — top-1 classification accuracy,
//! * [`ece`] — Expected Calibration Error over confidence bins,
//! * [`average_predictive_entropy`] — the paper's *aPE* (nats), computed on
//!   out-of-distribution inputs to measure how clearly a model signals "I
//!   don't know".
//!
//! [`nll`], [`brier_score`] and [`ReliabilityDiagram`] are provided as
//! supporting diagnostics. All functions take a rank-2 probability tensor
//! `[n_samples, n_classes]` (rows summing to one, e.g. the mean of several
//! Monte-Carlo softmax passes) and, where needed, integer labels.
//!
//! # Examples
//!
//! ```
//! use nds_tensor::{Tensor, Shape};
//! use nds_metrics::{accuracy, ece, EceConfig};
//!
//! let probs = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8], Shape::d2(2, 2))?;
//! let labels = [0usize, 1];
//! assert_eq!(accuracy(&probs, &labels)?, 1.0);
//! let e = ece(&probs, &labels, EceConfig::default())?;
//! assert!(e < 0.2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibration;

pub use calibration::{apply_temperature, fit_temperature};

use nds_tensor::{Shape, Tensor, TensorError};
use std::error::Error as StdError;
use std::fmt;

/// Errors produced by metric computations.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricError {
    /// Probability tensor was not rank 2, or labels mismatched row count.
    BadInput(String),
    /// A tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::BadInput(msg) => write!(f, "bad metric input: {msg}"),
            MetricError::Tensor(e) => write!(f, "tensor error in metric: {e}"),
        }
    }
}

impl StdError for MetricError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            MetricError::Tensor(e) => Some(e),
            MetricError::BadInput(_) => None,
        }
    }
}

impl From<TensorError> for MetricError {
    fn from(e: TensorError) -> Self {
        MetricError::Tensor(e)
    }
}

/// Result alias for metric computations.
pub type Result<T> = std::result::Result<T, MetricError>;

fn validate(probs: &Tensor, labels: Option<&[usize]>) -> Result<(usize, usize)> {
    if probs.shape().rank() != 2 {
        return Err(MetricError::BadInput(format!(
            "probabilities must be rank-2 [n, classes], got shape {}",
            probs.shape()
        )));
    }
    let n = probs.shape().dim(0);
    let c = probs.shape().dim(1);
    if c == 0 {
        return Err(MetricError::BadInput("zero classes".to_string()));
    }
    if let Some(labels) = labels {
        if labels.len() != n {
            return Err(MetricError::BadInput(format!(
                "{} probability rows but {} labels",
                n,
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= c) {
            return Err(MetricError::BadInput(format!(
                "label {bad} out of range for {c} classes"
            )));
        }
    }
    Ok((n, c))
}

/// Top-1 accuracy: fraction of rows whose argmax equals the label.
///
/// Returns 0 for empty inputs.
///
/// # Errors
///
/// Returns [`MetricError::BadInput`] for malformed inputs.
pub fn accuracy(probs: &Tensor, labels: &[usize]) -> Result<f64> {
    let (n, c) = validate(probs, Some(labels))?;
    if n == 0 {
        return Ok(0.0);
    }
    let data = probs.as_slice();
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = &data[i * c..(i + 1) * c];
        let mut best = 0;
        for (j, &p) in row.iter().enumerate() {
            if p > row[best] {
                best = j;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    Ok(correct as f64 / n as f64)
}

/// Configuration for [`ece`]: the number of equal-width confidence bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EceConfig {
    /// Number of confidence bins over `[0, 1]`. The paper's tooling (and
    /// most of the literature) uses 10 or 15.
    pub bins: usize,
}

impl Default for EceConfig {
    fn default() -> Self {
        EceConfig { bins: 15 }
    }
}

/// Expected Calibration Error.
///
/// Samples are binned by their confidence (max probability); the ECE is the
/// sample-weighted mean absolute gap between per-bin accuracy and per-bin
/// confidence. Reported as a fraction in `[0, 1]` (the paper's tables show
/// it in percent).
///
/// # Errors
///
/// Returns [`MetricError::BadInput`] for malformed inputs or zero bins.
pub fn ece(probs: &Tensor, labels: &[usize], config: EceConfig) -> Result<f64> {
    let diagram = ReliabilityDiagram::compute(probs, labels, config)?;
    Ok(diagram.ece())
}

/// Per-bin calibration statistics backing an ECE value — the data behind a
/// classic reliability diagram.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityDiagram {
    bins: Vec<BinStats>,
    total: usize,
}

/// Statistics of a single confidence bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinStats {
    /// Inclusive lower edge of the bin.
    pub lo: f64,
    /// Exclusive upper edge of the bin (inclusive for the last bin).
    pub hi: f64,
    /// Number of samples whose confidence fell in this bin.
    pub count: usize,
    /// Mean confidence of those samples.
    pub mean_confidence: f64,
    /// Fraction of those samples that were classified correctly.
    pub accuracy: f64,
}

impl ReliabilityDiagram {
    /// Bins predictions by confidence and records per-bin accuracy.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::BadInput`] for malformed inputs or zero bins.
    pub fn compute(probs: &Tensor, labels: &[usize], config: EceConfig) -> Result<Self> {
        let (n, c) = validate(probs, Some(labels))?;
        if config.bins == 0 {
            return Err(MetricError::BadInput(
                "ECE needs at least one bin".to_string(),
            ));
        }
        let nbins = config.bins;
        let mut counts = vec![0usize; nbins];
        let mut conf_sums = vec![0.0f64; nbins];
        let mut correct = vec![0usize; nbins];
        let data = probs.as_slice();
        for (i, &label) in labels.iter().enumerate() {
            let row = &data[i * c..(i + 1) * c];
            let mut best = 0;
            for (j, &p) in row.iter().enumerate() {
                if p > row[best] {
                    best = j;
                }
            }
            let conf = row[best] as f64;
            let mut bin = ((conf * nbins as f64) as usize).min(nbins - 1);
            if conf < 0.0 {
                bin = 0;
            }
            counts[bin] += 1;
            conf_sums[bin] += conf;
            if best == label {
                correct[bin] += 1;
            }
        }
        let bins = (0..nbins)
            .map(|b| {
                let count = counts[b];
                BinStats {
                    lo: b as f64 / nbins as f64,
                    hi: (b + 1) as f64 / nbins as f64,
                    count,
                    mean_confidence: if count > 0 {
                        conf_sums[b] / count as f64
                    } else {
                        0.0
                    },
                    accuracy: if count > 0 {
                        correct[b] as f64 / count as f64
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        Ok(ReliabilityDiagram { bins, total: n })
    }

    /// The bins in ascending confidence order.
    pub fn bins(&self) -> &[BinStats] {
        &self.bins
    }

    /// Total number of samples across all bins.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The Expected Calibration Error implied by this diagram.
    pub fn ece(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.bins
            .iter()
            .filter(|b| b.count > 0)
            .map(|b| (b.count as f64 / self.total as f64) * (b.accuracy - b.mean_confidence).abs())
            .sum()
    }

    /// Maximum Calibration Error: the worst per-bin accuracy/confidence gap.
    pub fn mce(&self) -> f64 {
        self.bins
            .iter()
            .filter(|b| b.count > 0)
            .map(|b| (b.accuracy - b.mean_confidence).abs())
            .fold(0.0, f64::max)
    }
}

/// Predictive (Shannon) entropy of one probability row, in nats.
///
/// Zero probabilities contribute zero (the `p ln p → 0` limit).
pub fn entropy_nats(row: &[f32]) -> f64 {
    row.iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| {
            let p = p as f64;
            -p * p.ln()
        })
        .sum()
}

/// Average predictive entropy (the paper's **aPE**, nats).
///
/// The paper evaluates this on synthetic out-of-distribution data (Gaussian
/// noise with the training set's mean and standard deviation); a *higher*
/// value means the model more clearly flags OOD inputs as uncertain.
///
/// # Errors
///
/// Returns [`MetricError::BadInput`] for malformed inputs.
pub fn average_predictive_entropy(probs: &Tensor) -> Result<f64> {
    let (n, c) = validate(probs, None)?;
    if n == 0 {
        return Ok(0.0);
    }
    let data = probs.as_slice();
    let sum: f64 = (0..n)
        .map(|i| entropy_nats(&data[i * c..(i + 1) * c]))
        .sum();
    Ok(sum / n as f64)
}

/// Negative log-likelihood (mean, nats). Probabilities are floored at
/// `1e-12` to keep mislabeled-with-certainty samples finite.
///
/// # Errors
///
/// Returns [`MetricError::BadInput`] for malformed inputs.
pub fn nll(probs: &Tensor, labels: &[usize]) -> Result<f64> {
    let (n, c) = validate(probs, Some(labels))?;
    if n == 0 {
        return Ok(0.0);
    }
    let data = probs.as_slice();
    let sum: f64 = labels
        .iter()
        .enumerate()
        .map(|(i, &l)| -((data[i * c + l] as f64).max(1e-12)).ln())
        .sum();
    Ok(sum / n as f64)
}

/// Mean multi-class Brier score (squared distance between the probability
/// row and the one-hot label), in `[0, 2]`.
///
/// # Errors
///
/// Returns [`MetricError::BadInput`] for malformed inputs.
pub fn brier_score(probs: &Tensor, labels: &[usize]) -> Result<f64> {
    let (n, c) = validate(probs, Some(labels))?;
    if n == 0 {
        return Ok(0.0);
    }
    let data = probs.as_slice();
    let mut total = 0.0f64;
    for (i, &label) in labels.iter().enumerate() {
        for j in 0..c {
            let target = if j == label { 1.0 } else { 0.0 };
            let d = data[i * c + j] as f64 - target;
            total += d * d;
        }
    }
    Ok(total / n as f64)
}

/// The maximum possible entropy for `classes` classes (uniform), in nats.
/// Useful as a normaliser when comparing aPE across datasets.
pub fn max_entropy_nats(classes: usize) -> f64 {
    if classes == 0 {
        0.0
    } else {
        (classes as f64).ln()
    }
}

/// Builds a uniform probability tensor (each row `1/classes`) — a handy
/// reference point in tests and calibration plots.
pub fn uniform_probs(n: usize, classes: usize) -> Tensor {
    Tensor::full(Shape::d2(n, classes), 1.0 / classes.max(1) as f32)
}

/// Fraction of rows an adaptive escalation gate promoted past the pilot
/// sample count: `row_samples` is the per-row achieved-sample vector an
/// adaptive engine response reports, `pilot` the gate's pilot count. An
/// empty batch has escalated nothing (rate 0).
pub fn escalation_rate(row_samples: &[usize], pilot: usize) -> f64 {
    if row_samples.is_empty() {
        return 0.0;
    }
    let escalated = row_samples.iter().filter(|&&s| s > pilot).count();
    escalated as f64 / row_samples.len() as f64
}

/// Histogram of exit decisions for a multi-exit pass: `exit_of[i]` is
/// the exit index row `i` took (`heads` = the final classifier), the
/// result counts rows per exit over `heads + 1` bins. Out-of-range
/// indices are clamped into the final bin, so a walker that reports the
/// final classifier as "one past the last head" needs no translation.
pub fn exit_histogram(exit_of: &[usize], heads: usize) -> Vec<usize> {
    let mut bins = vec![0usize; heads + 1];
    for &e in exit_of {
        bins[e.min(heads)] += 1;
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probs(rows: &[&[f32]]) -> Tensor {
        let c = rows[0].len();
        let flat: Vec<f32> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Tensor::from_vec(flat, Shape::d2(rows.len(), c)).unwrap()
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let p = probs(&[&[0.9, 0.1], &[0.4, 0.6], &[0.7, 0.3]]);
        assert_eq!(accuracy(&p, &[0, 1, 1]).unwrap(), 2.0 / 3.0);
        assert_eq!(accuracy(&p, &[0, 1, 0]).unwrap(), 1.0);
    }

    #[test]
    fn accuracy_validates_inputs() {
        let p = probs(&[&[0.9, 0.1]]);
        assert!(accuracy(&p, &[0, 1]).is_err()); // label count
        assert!(accuracy(&p, &[2]).is_err()); // label range
        let bad = Tensor::zeros(Shape::d1(4));
        assert!(accuracy(&bad, &[0]).is_err()); // rank
    }

    #[test]
    fn perfectly_calibrated_has_zero_ece() {
        // Confidence 1.0 predictions that are always right.
        let p = probs(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let e = ece(&p, &[0, 1], EceConfig::default()).unwrap();
        assert!(e < 1e-9, "ece = {e}");
    }

    #[test]
    fn overconfident_wrong_predictions_have_high_ece() {
        // Confidence ~1.0 but always wrong -> ECE ~1.
        let p = probs(&[&[0.99, 0.01], &[0.99, 0.01]]);
        let e = ece(&p, &[1, 1], EceConfig::default()).unwrap();
        assert!(e > 0.9, "ece = {e}");
    }

    #[test]
    fn ece_mixed_bins() {
        // Two samples at confidence 0.8: one right, one wrong -> bin accuracy
        // 0.5, confidence 0.8 -> ECE = 0.3.
        let p = probs(&[&[0.8, 0.2], &[0.8, 0.2]]);
        let e = ece(&p, &[0, 1], EceConfig { bins: 10 }).unwrap();
        assert!((e - 0.3).abs() < 1e-6, "ece = {e}");
    }

    #[test]
    fn reliability_diagram_structure() {
        let p = probs(&[&[0.95, 0.05], &[0.55, 0.45]]);
        let d = ReliabilityDiagram::compute(&p, &[0, 1], EceConfig { bins: 10 }).unwrap();
        assert_eq!(d.total(), 2);
        assert_eq!(d.bins().len(), 10);
        let occupied: Vec<_> = d.bins().iter().filter(|b| b.count > 0).collect();
        assert_eq!(occupied.len(), 2);
        assert!(d.mce() >= d.ece());
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(entropy_nats(&[1.0, 0.0]), 0.0);
        let uniform = entropy_nats(&[0.25; 4]);
        assert!((uniform - 4.0f64.ln()).abs() < 1e-9);
        // Entropy never exceeds ln(C).
        assert!(entropy_nats(&[0.7, 0.1, 0.1, 0.1]) < max_entropy_nats(4));
    }

    #[test]
    fn ape_of_uniform_is_max_entropy() {
        let p = uniform_probs(5, 10);
        let ape = average_predictive_entropy(&p).unwrap();
        assert!((ape - 10.0f64.ln()).abs() < 1e-6);
    }

    #[test]
    fn ape_of_confident_predictions_is_low() {
        let p = probs(&[&[0.999, 0.001], &[0.001, 0.999]]);
        let ape = average_predictive_entropy(&p).unwrap();
        assert!(ape < 0.01, "aPE = {ape}");
    }

    #[test]
    fn nll_matches_hand_computation() {
        let p = probs(&[&[0.5, 0.5], &[0.25, 0.75]]);
        let got = nll(&p, &[0, 1]).unwrap();
        let expect = -(0.5f64.ln() + 0.75f64.ln()) / 2.0;
        assert!((got - expect).abs() < 1e-9);
    }

    #[test]
    fn nll_is_finite_for_zero_probability() {
        let p = probs(&[&[0.0, 1.0]]);
        assert!(nll(&p, &[0]).unwrap().is_finite());
    }

    #[test]
    fn brier_extremes() {
        let perfect = probs(&[&[1.0, 0.0]]);
        assert_eq!(brier_score(&perfect, &[0]).unwrap(), 0.0);
        let worst = probs(&[&[1.0, 0.0]]);
        assert_eq!(brier_score(&worst, &[1]).unwrap(), 2.0);
        let uniform = probs(&[&[0.5, 0.5]]);
        assert!((brier_score(&uniform, &[0]).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_are_zero() {
        let p = Tensor::zeros(Shape::d2(0, 3));
        assert_eq!(accuracy(&p, &[]).unwrap(), 0.0);
        assert_eq!(average_predictive_entropy(&p).unwrap(), 0.0);
        assert_eq!(nll(&p, &[]).unwrap(), 0.0);
        assert_eq!(brier_score(&p, &[]).unwrap(), 0.0);
        assert_eq!(ece(&p, &[], EceConfig::default()).unwrap(), 0.0);
    }

    #[test]
    fn escalation_rate_counts_promoted_rows() {
        assert_eq!(escalation_rate(&[], 1), 0.0);
        assert_eq!(escalation_rate(&[1, 1, 1], 1), 0.0);
        assert_eq!(escalation_rate(&[3, 1, 3, 1], 1), 0.5);
        assert_eq!(escalation_rate(&[3, 3], 1), 1.0);
        // Rows at the pilot count are not escalations.
        assert_eq!(escalation_rate(&[2, 2, 5], 2), 1.0 / 3.0);
    }

    #[test]
    fn exit_histogram_bins_and_clamps() {
        assert_eq!(exit_histogram(&[], 2), vec![0, 0, 0]);
        assert_eq!(exit_histogram(&[0, 1, 2, 1, 0, 0], 2), vec![3, 2, 1]);
        // Indices past the head count land in the final bin.
        assert_eq!(exit_histogram(&[9, 0], 1), vec![1, 1]);
    }
}
