//! Post-hoc confidence calibration: temperature scaling.
//!
//! The paper optimises ECE by *searching dropout designs*; temperature
//! scaling (Guo et al., ICML 2017) is the standard post-hoc alternative
//! and therefore the natural baseline for judging how much calibration the
//! dropout search actually buys. A single scalar `T` rescales the logits
//! (`softmax(z / T)`); `T` is fit on validation data by minimising NLL,
//! which provably cannot change accuracy (argmax is scale-invariant).

use crate::{MetricError, Result};
use nds_tensor::Tensor;

/// Applies temperature `t` to logits and returns the softmax
/// probabilities.
///
/// # Errors
///
/// Returns [`MetricError::BadInput`] for non-rank-2 logits or a
/// non-positive temperature.
pub fn apply_temperature(logits: &Tensor, t: f64) -> Result<Tensor> {
    if logits.shape().rank() != 2 {
        return Err(MetricError::BadInput(format!(
            "temperature scaling expects rank-2 logits, got {}",
            logits.shape()
        )));
    }
    if !(t.is_finite() && t > 0.0) {
        return Err(MetricError::BadInput(format!(
            "temperature {t} must be positive"
        )));
    }
    let scaled = logits.scale((1.0 / t) as f32);
    scaled.softmax_rows().map_err(MetricError::from)
}

/// Mean NLL of temperature-scaled logits.
fn nll_at(logits: &Tensor, labels: &[usize], t: f64) -> Result<f64> {
    let probs = apply_temperature(logits, t)?;
    crate::nll(&probs, labels)
}

/// Fits the temperature minimising validation NLL by golden-section
/// search over `log T ∈ [ln 0.05, ln 20]` (NLL is unimodal in `T` for
/// fixed logits).
///
/// Returns the fitted temperature.
///
/// # Errors
///
/// Returns [`MetricError::BadInput`] for malformed inputs.
pub fn fit_temperature(logits: &Tensor, labels: &[usize], iterations: usize) -> Result<f64> {
    // Validate once up front (and handle the empty batch).
    let _ = nll_at(logits, labels, 1.0)?;
    if labels.is_empty() {
        return Ok(1.0);
    }
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    let (mut lo, mut hi) = (0.05f64.ln(), 20f64.ln());
    let mut x1 = hi - phi * (hi - lo);
    let mut x2 = lo + phi * (hi - lo);
    let mut f1 = nll_at(logits, labels, x1.exp())?;
    let mut f2 = nll_at(logits, labels, x2.exp())?;
    for _ in 0..iterations.max(8) {
        if f1 <= f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - phi * (hi - lo);
            f1 = nll_at(logits, labels, x1.exp())?;
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + phi * (hi - lo);
            f2 = nll_at(logits, labels, x2.exp())?;
        }
    }
    Ok(((lo + hi) / 2.0).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{accuracy, ece, EceConfig};
    use nds_tensor::rng::Rng64;
    use nds_tensor::Shape;

    /// Synthetic overconfident classifier: logits point at the right class
    /// but with inflated magnitude, so confidence ≫ accuracy.
    fn overconfident_logits(n: usize, classes: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = Rng64::new(seed);
        let mut data = Vec::with_capacity(n * classes);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let label = rng.below(classes);
            // The model is right only ~70% of the time but always shouts.
            let predicted = if rng.bernoulli(0.7) {
                label
            } else {
                rng.below(classes)
            };
            for j in 0..classes {
                let base = if j == predicted { 8.0 } else { 0.0 };
                data.push(base + rng.normal_with(0.0, 0.3));
            }
            labels.push(label);
        }
        (
            Tensor::from_vec(data, Shape::d2(n, classes)).unwrap(),
            labels,
        )
    }

    #[test]
    fn fitted_temperature_reduces_ece_of_overconfident_model() {
        let (logits, labels) = overconfident_logits(400, 5, 1);
        let raw = apply_temperature(&logits, 1.0).unwrap();
        let raw_ece = ece(&raw, &labels, EceConfig::default()).unwrap();
        let t = fit_temperature(&logits, &labels, 40).unwrap();
        assert!(t > 1.5, "overconfident model needs T > 1, got {t}");
        let cooled = apply_temperature(&logits, t).unwrap();
        let cooled_ece = ece(&cooled, &labels, EceConfig::default()).unwrap();
        assert!(
            cooled_ece < raw_ece / 2.0,
            "ECE should drop sharply: {raw_ece} -> {cooled_ece}"
        );
    }

    #[test]
    fn temperature_never_changes_accuracy() {
        let (logits, labels) = overconfident_logits(200, 4, 2);
        let before = accuracy(&apply_temperature(&logits, 1.0).unwrap(), &labels).unwrap();
        for t in [0.1, 0.7, 3.0, 15.0] {
            let after = accuracy(&apply_temperature(&logits, t).unwrap(), &labels).unwrap();
            assert_eq!(before, after, "T = {t}");
        }
    }

    #[test]
    fn well_calibrated_model_keeps_t_near_one() {
        // Logits whose softmax confidence matches the true correctness
        // rate: temperature should stay in a moderate band around 1.
        let mut rng = Rng64::new(3);
        let n = 500;
        let classes = 2;
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let label = rng.below(classes);
            // Confidence ~0.73 and correct ~73% of the time.
            let logit_gap = 1.0f32;
            let correct = rng.bernoulli(0.731);
            let predicted = if correct { label } else { 1 - label };
            for j in 0..classes {
                data.push(if j == predicted { logit_gap } else { 0.0 });
            }
            labels.push(label);
        }
        let logits = Tensor::from_vec(data, Shape::d2(n, classes)).unwrap();
        let t = fit_temperature(&logits, &labels, 40).unwrap();
        assert!((0.5..2.0).contains(&t), "calibrated model got T = {t}");
    }

    #[test]
    fn validation_and_edge_cases() {
        let logits = Tensor::zeros(Shape::d2(2, 3));
        assert!(apply_temperature(&logits, 0.0).is_err());
        assert!(apply_temperature(&logits, f64::NAN).is_err());
        let bad = Tensor::zeros(Shape::d1(3));
        assert!(apply_temperature(&bad, 1.0).is_err());
        // Empty batch: T defaults to 1.
        let empty = Tensor::zeros(Shape::d2(0, 3));
        assert_eq!(fit_temperature(&empty, &[], 20).unwrap(), 1.0);
    }
}
