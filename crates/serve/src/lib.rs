//! In-process serving front-end over the [`UncertaintyEngine`].
//!
//! The paper deploys its searched BayesNN as an *accelerator*: many
//! request streams share one set of trained weights, and the datapath
//! amortises per-invocation overhead by running back-to-back. This
//! crate is the software analogue for the reproduction — a [`Server`]
//! that accepts typed requests from many concurrent callers, coalesces
//! them into micro-batches on a dedicated dispatcher thread, and serves
//! each through a **multi-tenant pool** of [`UncertaintyEngine`]s that
//! all share the trained network's weights copy-on-write.
//!
//! # Dispatch policy
//!
//! Admission is a FIFO queue, **bounded by projected wait**: the
//! front-end tracks the queue depth and an EWMA of observed service
//! time, and rejects a submission with
//! [`ServeError::Overloaded`] — carrying a `retry_after_ms` hint —
//! once `(depth + 1) × observed_service_ms` exceeds the worst
//! admissible SLO ([`ServerBuilder::admission_slo_ms`]). Rejecting at
//! the door is the point: an unbounded queue converts overload into
//! unbounded latency for *every* caller, while typed backpressure lets
//! callers shed or retry. Before the first service-time observation a
//! hard depth cap ([`BOOTSTRAP_DEPTH_CAP`]) bounds the queue instead.
//! With the default (infinite) admission SLO the queue is unbounded,
//! matching the historical behaviour.
//!
//! The dispatcher collects pending requests
//! and fires a micro-batch when either trigger arrives, whichever is
//! first:
//!
//! * **Size** — [`ServerBuilder::max_batch`] requests are waiting.
//! * **Deadline** — the oldest admissible wait has expired. Each
//!   request may wait at most
//!   `min(max_wait_ms, latency_budget_ms / 2)` in the queue
//!   ([`dispatch_wait_cap_ms`]): an explicit per-request SLO halves the
//!   coalescing window so queueing can never consume the whole budget.
//!
//! Within a batch, requests are served oldest-first, and the queue wait
//! a request actually paid is subtracted from its latency budget before
//! the engine sees it ([`remaining_budget_ms`]) — the engine's
//! deadline-aware degradation then acts on the *remaining* time, so an
//! SLO covers queue + service, not service alone. A request that is
//! already overdue when dispatched is still served (with a vanishing
//! budget, so the engine degrades to its one-round minimum) rather than
//! dropped; [`ServeResponse::timing`] reports the queue wait so callers
//! can see where the time went.
//!
//! # Determinism: why coalescing never concatenates tensors
//!
//! Within one MC pass the dropout mask stream advances once per batch
//! *item*, sequentially — concatenating two callers' tensors into one
//! forward pass would shift the second caller's stream positions and
//! change its bytes. The server therefore coalesces at the **dispatch**
//! level: one wake-up of the dispatcher serves many requests
//! back-to-back, but every request runs as its own engine call on its
//! own tenant's engine. Batched execution is byte-identical to batch-1
//! *by construction* (and property-tested at the workspace root); the
//! throughput win comes from pipelining away the per-request
//! client/dispatcher handoff and keeping the engines' workspaces and
//! worker-clone caches hot across consecutive requests.
//!
//! # Tenants
//!
//! A tenant is one logical client of the shared model: its own MC
//! sample count and mask-stream seed ([`TenantSpec`]), served by its
//! own prewarmed engine. Engines clone the network copy-on-write
//! ([`nds_tensor::SharedTensor`]), so a T-tenant pool costs T × O(layers)
//! handles, not T × O(parameters) bytes — and one tenant's stream
//! position can never perturb another's (per-sample mask streams are
//! derived purely from `(seed, sample index)`). Queue fairness is
//! inherited from the worker pool: batches are claimed oldest-first and
//! no submitter drains another's jobs (regression-tested in
//! `nds-tensor`).
//!
//! # Failure handling
//!
//! The PR 6 fault policy extends through the front-end: a request that
//! fails — malformed input, non-finite datapath output, a worker-pool
//! fault that outlived its retries — fails *only itself*. The error is
//! delivered through that request's [`Ticket`] as a typed
//! [`ServeError`]; every other request in the batch, and the server
//! itself, proceed untouched. Dropping the [`Server`] performs a clean
//! shutdown: the queue is drained (every accepted request gets its
//! response or error), then the dispatcher thread is joined.
//!
//! # Example
//!
//! ```
//! use nds_nn::layers::{Flatten, Linear, Sequential};
//! use nds_serve::{ServeRequest, ServerBuilder, TenantSpec};
//! use nds_tensor::rng::Rng64;
//! use nds_tensor::{Shape, Tensor};
//!
//! let mut rng = Rng64::new(0);
//! let mut net = Sequential::new();
//! net.push(Box::new(Flatten::new()));
//! net.push(Box::new(Linear::new(4, 3, true, &mut rng)));
//!
//! let mut builder = ServerBuilder::new(net).max_batch(4).max_wait_ms(1.0);
//! let tenant = builder.tenant(TenantSpec {
//!     seed: 7,
//!     samples: 3,
//!     ..TenantSpec::default()
//! });
//! let server = builder.build();
//!
//! let images = Tensor::zeros(Shape::d4(2, 1, 2, 2));
//! let ticket = server.submit(tenant, ServeRequest::new(images))?;
//! let response = ticket.wait()?;
//! assert_eq!(response.prediction.probs.shape().dims(), &[2, 3]);
//! # Ok::<(), nds_serve::ServeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::error::Error as StdError;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nds_adaptive::AdaptivePolicy;
use nds_engine::{
    Backend, EngineBuilder, EngineError, Execution, PredictRequest, PredictResponse,
    UncertaintyEngine, UncertaintyFlags,
};
use nds_nn::layers::Sequential;
use nds_tensor::Tensor;

/// Budget floor handed to the engine when a request's queue wait has
/// already consumed its whole SLO: the engine contract requires a
/// positive budget, and this value is small enough that it always
/// degrades to the one-round minimum instead of dropping the request.
const MIN_BUDGET_MS: f64 = 1e-3;

/// Hard queue-depth cap applied while the admission controller has no
/// service-time observation yet (a finite
/// [`ServerBuilder::admission_slo_ms`] is set but nothing has been
/// served). Without it a burst ahead of the first completion would be
/// admitted unbounded — exactly the window backpressure exists for.
pub const BOOTSTRAP_DEPTH_CAP: usize = 32;

/// EWMA smoothing factor for the observed per-request service time:
/// `est ← (1 - α)·est + α·observed`. 0.2 follows a workload shift in a
/// handful of requests without letting one outlier swing admission.
const SERVICE_EWMA_ALPHA: f64 = 0.2;

/// Errors from submitting to or waiting on the serving front-end.
///
/// The reject/fault split of the engine's failure-handling policy
/// carries through: [`UnknownTenant`](ServeError::UnknownTenant) and
/// [`BadRequest`](ServeError::BadRequest) are front-end rejects caught
/// at submission, [`Engine`](ServeError::Engine) wraps whatever the
/// engine reported for this request alone, and
/// [`Shutdown`](ServeError::Shutdown) means the server went away before
/// the request could be accepted or answered.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The engine failed this request; see [`EngineError`] for the
    /// reject/fault taxonomy. Other requests in the batch are
    /// unaffected.
    Engine(EngineError),
    /// The tenant id was not registered with this server's builder.
    UnknownTenant(TenantId),
    /// The request was malformed (e.g. a non-positive latency budget);
    /// rejected at submission, before it could occupy the queue.
    BadRequest(String),
    /// The admission queue is full: the projected queue wait
    /// (`depth × observed service time`) exceeds the server's worst
    /// admissible SLO ([`ServerBuilder::admission_slo_ms`]). Rejected
    /// at submission; the request never occupied the queue.
    Overloaded {
        /// Suggested client-side backoff before retrying, in
        /// milliseconds: roughly how long the queue needs to drain back
        /// under the admission SLO at the observed service rate.
        retry_after_ms: f64,
    },
    /// The server shut down before this request was accepted or
    /// answered.
    Shutdown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::UnknownTenant(t) => {
                write!(f, "tenant {} is not registered with this server", t.index())
            }
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms:.1} ms")
            }
            ServeError::Shutdown => write!(f, "server shut down"),
        }
    }
}

impl StdError for ServeError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

impl ServeError {
    /// Whether a retry of the same request could plausibly succeed
    /// (delegates to [`EngineError::is_transient`];
    /// [`Overloaded`](ServeError::Overloaded) is transient by
    /// definition — back off for `retry_after_ms` and resubmit; other
    /// front-end rejects and shutdown are never transient).
    pub fn is_transient(&self) -> bool {
        match self {
            ServeError::Engine(e) => e.is_transient(),
            ServeError::Overloaded { .. } => true,
            _ => false,
        }
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Handle to one registered tenant, returned by
/// [`ServerBuilder::tenant`] (and recoverable later via
/// [`Server::tenant_id`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(usize);

impl TenantId {
    /// The tenant's registration index (order of
    /// [`ServerBuilder::tenant`] calls).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Per-tenant serving configuration: the knobs that must stay isolated
/// between clients of the shared model.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Mask-stream base for this tenant's engine: sample `s` draws its
    /// dropout masks from stream `seed + s`, independent of every other
    /// tenant.
    pub seed: u64,
    /// MC sampling number S for this tenant (clamped to at least 1).
    pub samples: usize,
    /// Adaptive-inference policy for this tenant's engine
    /// ([`nds_engine::EngineBuilder::adaptive`]): sample escalation and
    /// multi-exit gating, isolated per tenant like the seed and sample
    /// count. Default [`AdaptivePolicy::disabled`] — byte-identical to a
    /// tenant without the field. Requests carrying a latency SLO use
    /// deadline degradation instead (the budget wins inside the engine).
    pub adaptive: AdaptivePolicy,
}

impl Default for TenantSpec {
    /// The engine's defaults: seed 0 (the historical stream base),
    /// S = 3 samples, no adaptive gating.
    fn default() -> Self {
        TenantSpec {
            seed: 0,
            samples: 3,
            adaptive: AdaptivePolicy::disabled(),
        }
    }
}

/// One serving request: the input batch, which uncertainty diagnostics
/// to compute, and an optional end-to-end latency SLO.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Input batch, NCHW. Owned, because the request crosses into the
    /// dispatcher thread.
    pub images: Tensor,
    /// Which optional diagnostics to derive from the per-sample
    /// probabilities.
    pub outputs: UncertaintyFlags,
    /// Optional end-to-end deadline in milliseconds, covering queue
    /// wait *plus* service. When set, the coalescing window shrinks to
    /// at most half the budget, and the engine degrades gracefully
    /// inside whatever remains after queueing (see the crate docs).
    pub latency_budget_ms: Option<f64>,
}

impl ServeRequest {
    /// A request for the mean probabilities only.
    pub fn new(images: Tensor) -> Self {
        ServeRequest {
            images,
            outputs: UncertaintyFlags::NONE,
            latency_budget_ms: None,
        }
    }

    /// Adds uncertainty diagnostics to the request.
    pub fn with_outputs(mut self, outputs: UncertaintyFlags) -> Self {
        self.outputs = outputs;
        self
    }

    /// Sets an end-to-end latency SLO (milliseconds); see
    /// [`ServeRequest::latency_budget_ms`].
    pub fn with_latency_budget(mut self, budget_ms: f64) -> Self {
        self.latency_budget_ms = Some(budget_ms);
        self
    }
}

/// Front-end timing of one served request, alongside the engine's own
/// [`nds_engine::PredictTiming`] inside the prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeTiming {
    /// Milliseconds the request spent in the admission queue before its
    /// batch dispatched.
    pub queue_wait_ms: f64,
    /// Milliseconds the engine spent serving the request once
    /// dispatched.
    pub service_ms: f64,
    /// How many requests the dispatching micro-batch contained (1 =
    /// the request went out alone).
    pub batch_size: usize,
}

/// The response to a [`ServeRequest`]: the engine's prediction plus
/// front-end timing.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The tenant that served the request.
    pub tenant: TenantId,
    /// The engine's full response — probabilities, requested
    /// diagnostics, achieved samples, degradation flag and engine
    /// timing.
    pub prediction: PredictResponse,
    /// Queue and service timing observed by the front-end.
    pub timing: ServeTiming,
}

/// A claim on one in-flight request, returned by [`Server::submit`].
///
/// Dropping the ticket abandons the response (the server still serves
/// the request and discards the result); [`Ticket::wait`] blocks until
/// the response or error arrives.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<ServeResponse>>,
}

impl Ticket {
    /// Blocks until this request's response (or its typed error)
    /// arrives. Returns [`ServeError::Shutdown`] if the server went
    /// away without answering.
    pub fn wait(self) -> Result<ServeResponse> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }
}

/// Shared admission state: queue depth and the observed service-time
/// EWMA, updated lock-free from both sides (submitters increment depth
/// and read the estimate; the dispatcher decrements depth and feeds the
/// estimate after each served request).
#[derive(Debug)]
struct Admission {
    /// Requests admitted but not yet served to completion.
    depth: AtomicUsize,
    /// EWMA of per-request service time in milliseconds, stored as
    /// `f64` bits. `0` (the bits of `+0.0`) means "no observation yet"
    /// — real observations are floored just above zero so the sentinel
    /// is unambiguous.
    service_ewma_bits: AtomicU64,
}

impl Admission {
    fn new() -> Self {
        Admission {
            depth: AtomicUsize::new(0),
            service_ewma_bits: AtomicU64::new(0),
        }
    }

    /// The current service-time estimate, if at least one request has
    /// completed.
    fn service_estimate_ms(&self) -> Option<f64> {
        let bits = self.service_ewma_bits.load(Ordering::Relaxed);
        (bits != 0).then(|| f64::from_bits(bits))
    }

    /// Folds one observed service time into the EWMA. The first
    /// observation seeds the estimate directly.
    fn observe_service_ms(&self, observed_ms: f64) {
        // Floor just above zero: 0.0 bits are the "no estimate"
        // sentinel, and a zero estimate would disable backpressure.
        let observed = observed_ms.max(MIN_BUDGET_MS);
        let next = match self.service_estimate_ms() {
            Some(est) => (1.0 - SERVICE_EWMA_ALPHA) * est + SERVICE_EWMA_ALPHA * observed,
            None => observed,
        };
        self.service_ewma_bits
            .store(next.to_bits(), Ordering::Relaxed);
    }

    /// Admission decision for one more request against `slo_ms` (the
    /// worst admissible SLO). `Ok` reserves a queue slot (depth is
    /// already incremented on return); `Err` carries the backoff hint.
    /// Concurrent submitters may transiently overshoot the projection
    /// by their own count — backpressure is a bound on expected wait,
    /// not a semaphore — but depth itself is reserved atomically, so
    /// the bootstrap cap is never exceeded.
    fn try_admit(&self, slo_ms: f64) -> std::result::Result<(), ServeError> {
        if slo_ms.is_infinite() {
            self.depth.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        match self.service_estimate_ms() {
            Some(est) => {
                let depth = self.depth.load(Ordering::Relaxed);
                let projected_ms = (depth + 1) as f64 * est;
                if projected_ms > slo_ms {
                    return Err(ServeError::Overloaded {
                        // Time for the excess queue to drain at the
                        // observed rate, floored at one service slot so
                        // the hint is never a busy-loop invitation.
                        retry_after_ms: (projected_ms - slo_ms).max(est),
                    });
                }
                self.depth.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            None => {
                // No throughput observation yet: bound the queue by
                // depth alone. CAS-reserve so a burst cannot race past
                // the cap.
                let mut depth = self.depth.load(Ordering::Relaxed);
                loop {
                    if depth >= BOOTSTRAP_DEPTH_CAP {
                        return Err(ServeError::Overloaded {
                            // No rate estimate to derive a hint from;
                            // suggest the admission SLO itself — the
                            // longest wait the server considers
                            // serviceable.
                            retry_after_ms: slo_ms,
                        });
                    }
                    match self.depth.compare_exchange_weak(
                        depth,
                        depth + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return Ok(()),
                        Err(actual) => depth = actual,
                    }
                }
            }
        }
    }

    /// Releases the queue slot of a completed (or undeliverable)
    /// request.
    fn release(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One queued request inside the dispatcher.
struct Job {
    tenant: TenantId,
    images: Tensor,
    outputs: UncertaintyFlags,
    budget_ms: Option<f64>,
    enqueued: Instant,
    reply: Sender<Result<ServeResponse>>,
}

/// Builder for [`Server`].
///
/// Chain the policy knobs, register tenants with
/// [`ServerBuilder::tenant`] (at least one; a default tenant is added
/// when none is registered), then [`ServerBuilder::build`].
#[derive(Debug)]
pub struct ServerBuilder {
    net: Sequential,
    backend: Backend,
    execution: Execution,
    max_batch: usize,
    max_wait_ms: f64,
    workers: usize,
    transient_retries: usize,
    admission_slo_ms: f64,
    tenants: Vec<TenantSpec>,
}

impl ServerBuilder {
    /// Starts a builder around the trained network with the default
    /// policy: float backend, micro-batches of up to 8, a 2 ms
    /// coalescing window, pool-sized engine workers, fail-fast on
    /// transient faults.
    pub fn new(net: Sequential) -> Self {
        ServerBuilder {
            net,
            backend: Backend::Float32,
            execution: Execution::default(),
            max_batch: 8,
            max_wait_ms: 2.0,
            workers: 0,
            transient_retries: 0,
            admission_slo_ms: f64::INFINITY,
            tenants: Vec::new(),
        }
    }

    /// Selects the datapath every tenant engine serves through.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the MC execution order of every tenant engine —
    /// round-major (default) or sample-major fused. Response bytes are
    /// identical either way; see [`nds_engine::Execution`].
    pub fn execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }

    /// Worst admissible SLO for the admission controller: a submission
    /// is rejected with [`ServeError::Overloaded`] once
    /// `(depth + 1) × observed_service_ms` exceeds this many
    /// milliseconds. Non-finite or non-positive values (the default is
    /// `+∞`) disable backpressure — the queue is unbounded, the
    /// historical behaviour.
    pub fn admission_slo_ms(mut self, slo_ms: f64) -> Self {
        self.admission_slo_ms = if slo_ms.is_finite() && slo_ms > 0.0 {
            slo_ms
        } else {
            f64::INFINITY
        };
        self
    }

    /// Dispatch-size trigger: a micro-batch fires as soon as this many
    /// requests are waiting (clamped to at least 1).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Dispatch-deadline trigger: no request waits in the queue longer
    /// than this many milliseconds (clamped to at least 0; a request's
    /// own latency budget can shorten its wait further, never extend
    /// it).
    pub fn max_wait_ms(mut self, max_wait_ms: f64) -> Self {
        self.max_wait_ms = if max_wait_ms.is_finite() {
            max_wait_ms.max(0.0)
        } else {
            0.0
        };
        self
    }

    /// Pins the worker split of every tenant engine (0 = the pool size
    /// from [`nds_tensor::parallel::worker_count`]). Response bytes are
    /// identical for every value.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Per-request transient-fault retries, forwarded to
    /// [`EngineBuilder::transient_retries`] on every tenant engine.
    pub fn transient_retries(mut self, retries: usize) -> Self {
        self.transient_retries = retries;
        self
    }

    /// Registers a tenant and returns its id. Ids are assigned in
    /// registration order, starting at 0.
    pub fn tenant(&mut self, spec: TenantSpec) -> TenantId {
        self.tenants.push(spec);
        TenantId(self.tenants.len() - 1)
    }

    /// Builds the server: constructs and prewarms one engine per tenant
    /// on a dedicated dispatcher thread, then opens the admission
    /// queue. When no tenant was registered, a single
    /// [`TenantSpec::default`] tenant (id 0) is added so the server is
    /// usable out of the box.
    pub fn build(self) -> Server {
        let max_batch = self.max_batch.max(1);
        let max_wait_ms = self.max_wait_ms;
        let mut tenants = self.tenants;
        if tenants.is_empty() {
            tenants.push(TenantSpec::default());
        }
        let tenant_count = tenants.len();
        let (tx, rx) = mpsc::channel::<Job>();
        let net = self.net;
        let backend = self.backend;
        let execution = self.execution;
        let workers = self.workers;
        let retries = self.transient_retries;
        let admission = Arc::new(Admission::new());
        let admission_for_dispatch = Arc::clone(&admission);
        let dispatcher = std::thread::Builder::new()
            .name("nds-serve-dispatch".to_string())
            .spawn(move || {
                let mut engines: Vec<UncertaintyEngine> = tenants
                    .iter()
                    .map(|spec| {
                        let mut engine = EngineBuilder::new(net.clone())
                            .backend(backend.clone())
                            .execution(execution)
                            .samples(spec.samples.max(1))
                            .seed(spec.seed)
                            .workers(workers)
                            .transient_retries(retries)
                            .adaptive(spec.adaptive.clone())
                            .build();
                        engine.prewarm();
                        engine
                    })
                    .collect();
                dispatch_loop(
                    &rx,
                    &mut engines,
                    max_batch,
                    max_wait_ms,
                    &admission_for_dispatch,
                );
            })
            // Panic-audit: invariant-only. `spawn` fails only when the OS
            // refuses a thread, which no input to this crate can cause.
            .expect("spawn the nds-serve dispatcher thread");
        Server {
            tx: Some(tx),
            dispatcher: Some(dispatcher),
            tenant_count,
            max_batch,
            max_wait_ms,
            admission,
            admission_slo_ms: self.admission_slo_ms,
        }
    }
}

/// The serving front-end: accepts requests from any thread, coalesces
/// them into micro-batches on its dispatcher thread, and answers each
/// through its [`Ticket`]. See the crate docs for the dispatch policy
/// and determinism guarantees.
#[derive(Debug)]
pub struct Server {
    tx: Option<Sender<Job>>,
    dispatcher: Option<JoinHandle<()>>,
    tenant_count: usize,
    max_batch: usize,
    max_wait_ms: f64,
    admission: Arc<Admission>,
    admission_slo_ms: f64,
}

impl Server {
    /// Submits a request on behalf of `tenant` and returns the ticket
    /// to wait on. Cheap and non-blocking; callable concurrently from
    /// any number of threads. With a finite
    /// [`ServerBuilder::admission_slo_ms`] the queue is bounded and a
    /// submission that would overload it is rejected here, before it
    /// occupies a slot.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] for an id this server never
    /// registered, [`ServeError::BadRequest`] for a non-positive or
    /// non-finite latency budget, [`ServeError::Overloaded`] when the
    /// projected queue wait exceeds the admission SLO (carries a
    /// `retry_after_ms` backoff hint), [`ServeError::Shutdown`] when
    /// the dispatcher is gone.
    pub fn submit(&self, tenant: TenantId, request: ServeRequest) -> Result<Ticket> {
        if tenant.0 >= self.tenant_count {
            return Err(ServeError::UnknownTenant(tenant));
        }
        if let Some(budget) = request.latency_budget_ms {
            if !budget.is_finite() || budget <= 0.0 {
                return Err(ServeError::BadRequest(format!(
                    "latency budget must be positive and finite, got {budget}"
                )));
            }
        }
        self.admission.try_admit(self.admission_slo_ms)?;
        let (reply, rx) = mpsc::channel();
        let job = Job {
            tenant,
            images: request.images,
            outputs: request.outputs,
            budget_ms: request.latency_budget_ms,
            enqueued: Instant::now(),
            reply,
        };
        let sent = match &self.tx {
            Some(tx) => tx.send(job).map_err(|_| ServeError::Shutdown),
            None => Err(ServeError::Shutdown),
        };
        if let Err(e) = sent {
            // The slot was reserved but the request never entered the
            // queue; give it back so shutdown races don't leak depth.
            self.admission.release();
            return Err(e);
        }
        Ok(Ticket { rx })
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenant_count
    }

    /// Recovers the [`TenantId`] for a registration index, when it
    /// exists (ids are assigned in [`ServerBuilder::tenant`] order).
    pub fn tenant_id(&self, index: usize) -> Option<TenantId> {
        (index < self.tenant_count).then_some(TenantId(index))
    }

    /// The dispatch-size trigger.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The dispatch-deadline trigger (milliseconds).
    pub fn max_wait_ms(&self) -> f64 {
        self.max_wait_ms
    }

    /// The worst admissible SLO bounding the queue (`+∞` = unbounded).
    pub fn admission_slo_ms(&self) -> f64 {
        self.admission_slo_ms
    }

    /// Requests currently admitted but not yet served (a point-in-time
    /// observation; concurrent submitters move it immediately).
    pub fn queue_depth(&self) -> usize {
        self.admission.depth.load(Ordering::Relaxed)
    }

    /// Shuts the server down cleanly: closes admission, drains every
    /// already-accepted request (each still receives its response or
    /// error), then joins the dispatcher thread. Dropping the server
    /// does the same; this method just makes the point explicit.
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.dispatcher.take() {
            // A dispatcher panic would already have failed the run's
            // requests; surfacing it here would abort the caller's
            // unwinding, so a best-effort join is the right teardown.
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.finish();
    }
}

/// How long a request may sit in the admission queue: the server-wide
/// coalescing window, halved to the request's own latency budget when
/// that is tighter — queueing must never consume a whole SLO before the
/// engine gets a chance to serve within it.
fn dispatch_wait_cap_ms(max_wait_ms: f64, budget_ms: Option<f64>) -> f64 {
    match budget_ms {
        Some(budget) => max_wait_ms.min(budget * 0.5),
        None => max_wait_ms,
    }
}

/// The budget forwarded to the engine after queueing: the request's SLO
/// minus the queue wait it already paid, floored at [`MIN_BUDGET_MS`]
/// so an overdue request degrades to the engine's one-round minimum
/// instead of being rejected.
fn remaining_budget_ms(budget_ms: f64, queue_wait_ms: f64) -> f64 {
    (budget_ms - queue_wait_ms).max(MIN_BUDGET_MS)
}

/// The dispatcher: collects jobs until a size or deadline trigger,
/// then serves the oldest `max_batch` jobs back-to-back. Returns when
/// every [`Server`] sender is gone *and* the queue is drained.
fn dispatch_loop(
    rx: &Receiver<Job>,
    engines: &mut [UncertaintyEngine],
    max_batch: usize,
    max_wait_ms: f64,
    admission: &Admission,
) {
    let mut pending: VecDeque<Job> = VecDeque::new();
    loop {
        if pending.is_empty() {
            match rx.recv() {
                Ok(job) => pending.push_back(job),
                // Admission closed and nothing left to drain: clean exit.
                Err(_) => return,
            }
        }
        // First pull everything already queued, without consulting the
        // clock: requests that arrived while the previous batch was
        // being served coalesce immediately instead of trickling out
        // one per dispatch (their wait caps are typically long expired,
        // which would otherwise cut every saturated batch to size 1).
        while pending.len() < max_batch {
            match rx.try_recv() {
                Ok(job) => pending.push_back(job),
                Err(_) => break,
            }
        }
        // Then coalesce until the batch is full or the earliest
        // per-request wait cap expires. Disconnection stops coalescing
        // but not serving — the drain continues through the outer loop.
        while pending.len() < max_batch {
            let deadline = pending
                .iter()
                .map(|job| {
                    job.enqueued
                        + Duration::from_secs_f64(
                            dispatch_wait_cap_ms(max_wait_ms, job.budget_ms) / 1e3,
                        )
                })
                .min()
                // Panic-audit: invariant-only. The outer loop guarantees
                // `pending` is non-empty on entry.
                .expect("pending queue is non-empty while coalescing");
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => pending.push_back(job),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        let batch_size = pending.len().min(max_batch);
        for _ in 0..batch_size {
            // Panic-audit: invariant-only. `batch_size <= pending.len()`.
            let job = pending.pop_front().expect("batched job present");
            serve_one(engines, job, batch_size, admission);
        }
    }
}

/// Serves one job on its tenant's engine and delivers the result
/// through the job's reply channel. A failure is delivered as this
/// request's typed error and touches nothing else (the PR 6 policy); a
/// dropped ticket makes delivery a no-op.
fn serve_one(
    engines: &mut [UncertaintyEngine],
    job: Job,
    batch_size: usize,
    admission: &Admission,
) {
    let started = Instant::now();
    let queue_wait_ms = started.duration_since(job.enqueued).as_secs_f64() * 1e3;
    let engine = &mut engines[job.tenant.0];
    let mut request = PredictRequest::new(&job.images).with_outputs(job.outputs);
    if let Some(budget) = job.budget_ms {
        request = request.with_latency_budget(remaining_budget_ms(budget, queue_wait_ms));
    }
    let result = engine
        .predict(&request)
        .map(|prediction| ServeResponse {
            tenant: job.tenant,
            prediction,
            timing: ServeTiming {
                queue_wait_ms,
                service_ms: started.elapsed().as_secs_f64() * 1e3,
                batch_size,
            },
        })
        .map_err(ServeError::Engine);
    // Feed the admission controller before delivery: the slot frees and
    // the EWMA learns even when the caller dropped its ticket. Failed
    // requests count too — a failing request occupied the engine just
    // the same.
    admission.observe_service_ms(started.elapsed().as_secs_f64() * 1e3);
    admission.release();
    let _ = job.reply.send(result);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nds_dropout::{DropoutKind, DropoutLayer, DropoutSettings};
    use nds_nn::arch::{FeatureShape, SlotInfo, SlotPosition};
    use nds_nn::layers::{Flatten, Linear};
    use nds_tensor::rng::Rng64;
    use nds_tensor::Shape;

    /// A tiny network with a live dropout layer, so per-tenant seeds
    /// actually change bytes.
    fn stochastic_net(seed: u64) -> Sequential {
        let mut rng = Rng64::new(seed);
        let mut net = Sequential::new();
        net.push(Box::new(Flatten::new()));
        net.push(Box::new(Linear::new(16, 12, true, &mut rng)));
        let slot = SlotInfo {
            id: 0,
            shape: FeatureShape::Vector { features: 12 },
            position: SlotPosition::FullyConnected,
        };
        net.push(Box::new(
            DropoutLayer::for_slot(
                DropoutKind::Bernoulli,
                &slot,
                &DropoutSettings {
                    rate: 0.4,
                    ..DropoutSettings::default()
                },
                seed,
            )
            .unwrap(),
        ));
        net.push(Box::new(Linear::new(12, 4, true, &mut rng)));
        net
    }

    fn images(seed: u64, n: usize) -> Tensor {
        let mut rng = Rng64::new(seed);
        Tensor::rand_normal(Shape::d4(n, 1, 4, 4), 0.0, 1.0, &mut rng)
    }

    #[test]
    fn wait_cap_is_halved_by_a_tighter_budget() {
        assert_eq!(dispatch_wait_cap_ms(2.0, None), 2.0);
        assert_eq!(dispatch_wait_cap_ms(2.0, Some(100.0)), 2.0);
        assert_eq!(dispatch_wait_cap_ms(2.0, Some(1.0)), 0.5);
        assert_eq!(dispatch_wait_cap_ms(0.0, Some(1.0)), 0.0);
    }

    #[test]
    fn remaining_budget_subtracts_queue_wait_and_never_hits_zero() {
        assert_eq!(remaining_budget_ms(10.0, 4.0), 6.0);
        assert_eq!(remaining_budget_ms(10.0, 10.0), MIN_BUDGET_MS);
        assert_eq!(remaining_budget_ms(10.0, 25.0), MIN_BUDGET_MS);
    }

    #[test]
    fn round_trip_serves_probabilities_with_timing() {
        let mut builder = ServerBuilder::new(stochastic_net(1)).max_batch(4);
        let tenant = builder.tenant(TenantSpec {
            seed: 3,
            samples: 2,
            ..TenantSpec::default()
        });
        let server = builder.build();
        let ticket = server
            .submit(
                tenant,
                ServeRequest::new(images(2, 5)).with_outputs(UncertaintyFlags::ENTROPY),
            )
            .unwrap();
        let response = ticket.wait().unwrap();
        assert_eq!(response.tenant, tenant);
        assert_eq!(response.prediction.probs.shape(), &Shape::d2(5, 4));
        assert_eq!(response.prediction.entropy.as_ref().map(Vec::len), Some(5));
        assert_eq!(response.prediction.achieved_samples, 2);
        assert!(!response.prediction.degraded);
        assert!(response.timing.batch_size >= 1);
        assert!(response.timing.queue_wait_ms >= 0.0);
        assert!(response.timing.service_ms >= 0.0);
    }

    #[test]
    fn server_bytes_match_a_standalone_engine() {
        let net = stochastic_net(7);
        let mut engine = EngineBuilder::new(net.clone()).samples(3).seed(11).build();
        let x = images(8, 6);
        let direct = engine.predict(&PredictRequest::new(&x)).unwrap();

        let mut builder = ServerBuilder::new(net);
        let tenant = builder.tenant(TenantSpec {
            seed: 11,
            samples: 3,
            ..TenantSpec::default()
        });
        let server = builder.build();
        let served = server
            .submit(tenant, ServeRequest::new(x.clone()))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(
            served.prediction.probs.as_slice(),
            direct.probs.as_slice(),
            "front-end must add zero numeric surface over the engine"
        );
    }

    #[test]
    fn tenants_are_isolated_by_seed_and_sample_count() {
        let mut builder = ServerBuilder::new(stochastic_net(4)).max_batch(4);
        let a = builder.tenant(TenantSpec {
            seed: 0,
            samples: 3,
            ..TenantSpec::default()
        });
        let b = builder.tenant(TenantSpec {
            seed: 99,
            samples: 3,
            ..TenantSpec::default()
        });
        let c = builder.tenant(TenantSpec {
            seed: 0,
            samples: 3,
            ..TenantSpec::default()
        });
        let server = builder.build();
        let x = images(5, 4);
        let ta = server.submit(a, ServeRequest::new(x.clone())).unwrap();
        let tb = server.submit(b, ServeRequest::new(x.clone())).unwrap();
        let tc = server.submit(c, ServeRequest::new(x.clone())).unwrap();
        let ra = ta.wait().unwrap();
        let rb = tb.wait().unwrap();
        let rc = tc.wait().unwrap();
        assert_ne!(
            ra.prediction.probs.as_slice(),
            rb.prediction.probs.as_slice(),
            "different seeds must draw different mask streams"
        );
        assert_eq!(
            ra.prediction.probs.as_slice(),
            rc.prediction.probs.as_slice(),
            "identical tenant specs must serve identical bytes"
        );
    }

    #[test]
    fn adaptive_policy_is_isolated_per_tenant() {
        use nds_adaptive::EscalationPolicy;
        let net = stochastic_net(13);
        let mut builder = ServerBuilder::new(net.clone()).max_batch(4);
        let gated = builder.tenant(TenantSpec {
            seed: 21,
            samples: 3,
            adaptive: AdaptivePolicy::escalate(EscalationPolicy::entropy(0.0)),
        });
        let plain = builder.tenant(TenantSpec {
            seed: 21,
            samples: 3,
            ..TenantSpec::default()
        });
        let server = builder.build();
        let x = images(6, 5);
        let tg = server.submit(gated, ServeRequest::new(x.clone())).unwrap();
        let tp = server.submit(plain, ServeRequest::new(x.clone())).unwrap();
        let rg = tg.wait().unwrap();
        let rp = tp.wait().unwrap();
        assert_eq!(
            rg.prediction.row_samples,
            Some(vec![3; 5]),
            "escalate-all tenant must promote every row to full S"
        );
        assert_eq!(
            rp.prediction.row_samples, None,
            "a disabled-policy tenant must not report per-row sampling"
        );
        assert_eq!(
            rg.prediction.probs.as_slice(),
            rp.prediction.probs.as_slice(),
            "escalate-all gating must serve the exact full-S bytes"
        );
    }

    #[test]
    fn a_poisoned_request_fails_alone() {
        let mut builder = ServerBuilder::new(stochastic_net(6)).max_batch(4);
        let tenant = builder.tenant(TenantSpec::default());
        let server = builder.build();
        let good = images(9, 3);
        let mut bad = images(9, 3);
        bad.as_mut_slice()[5] = f32::NAN;
        let t1 = server
            .submit(tenant, ServeRequest::new(good.clone()))
            .unwrap();
        let t2 = server.submit(tenant, ServeRequest::new(bad)).unwrap();
        let t3 = server.submit(tenant, ServeRequest::new(good)).unwrap();
        assert!(t1.wait().is_ok());
        match t2.wait() {
            Err(ServeError::Engine(EngineError::NonFiniteInput { index })) => {
                assert_eq!(index, 5)
            }
            other => panic!("expected a NonFiniteInput reject, got {other:?}"),
        }
        assert!(
            t3.wait().is_ok(),
            "a poisoned batch-mate must not fail this request"
        );
    }

    #[test]
    fn submission_rejects_unknown_tenants_and_bad_budgets() {
        let server = ServerBuilder::new(stochastic_net(2)).build();
        assert_eq!(server.tenant_count(), 1, "default tenant when none given");
        let tenant = server.tenant_id(0).unwrap();
        assert!(server.tenant_id(1).is_none());
        match server.submit(TenantId(3), ServeRequest::new(images(1, 2))) {
            Err(ServeError::UnknownTenant(t)) => assert_eq!(t.index(), 3),
            other => panic!("expected UnknownTenant, got {other:?}"),
        }
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            match server.submit(
                tenant,
                ServeRequest::new(images(1, 2)).with_latency_budget(bad),
            ) {
                Err(ServeError::BadRequest(_)) => {}
                other => panic!("budget {bad} should be rejected, got {other:?}"),
            }
        }
    }

    #[test]
    fn an_slo_degrades_instead_of_dropping() {
        // A budget far below one round's cost: the engine must still
        // answer (one-round minimum) and flag the degradation.
        let mut builder = ServerBuilder::new(stochastic_net(3)).max_batch(1);
        let tenant = builder.tenant(TenantSpec {
            seed: 0,
            samples: 8,
            ..TenantSpec::default()
        });
        let server = builder.build();
        let response = server
            .submit(
                tenant,
                ServeRequest::new(images(4, 16)).with_latency_budget(0.005),
            )
            .unwrap()
            .wait()
            .unwrap();
        assert!(response.prediction.achieved_samples >= 1);
        assert!(response.prediction.achieved_samples <= 8);
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let mut builder = ServerBuilder::new(stochastic_net(5)).max_batch(2);
        let tenant = builder.tenant(TenantSpec {
            seed: 1,
            samples: 2,
            ..TenantSpec::default()
        });
        let server = builder.build();
        let tickets: Vec<Ticket> = (0..5)
            .map(|i| {
                server
                    .submit(tenant, ServeRequest::new(images(10 + i, 2)))
                    .unwrap()
            })
            .collect();
        server.shutdown();
        for ticket in tickets {
            assert!(
                ticket.wait().is_ok(),
                "every accepted request must be answered before the dispatcher exits"
            );
        }
    }

    #[test]
    fn admission_controller_math() {
        let admission = Admission::new();
        // Bootstrap: no estimate yet, depth-capped.
        for _ in 0..BOOTSTRAP_DEPTH_CAP {
            assert!(admission.try_admit(10.0).is_ok());
        }
        match admission.try_admit(10.0) {
            Err(ServeError::Overloaded { retry_after_ms }) => assert_eq!(retry_after_ms, 10.0),
            other => panic!("expected bootstrap-cap rejection, got {other:?}"),
        }
        for _ in 0..BOOTSTRAP_DEPTH_CAP {
            admission.release();
        }
        // With an estimate: (depth + 1) × est against the SLO.
        admission.observe_service_ms(2.0);
        assert_eq!(admission.service_estimate_ms(), Some(2.0));
        for _ in 0..5 {
            assert!(admission.try_admit(10.0).is_ok(), "5 × 2 ms fits 10 ms");
        }
        match admission.try_admit(10.0) {
            Err(ServeError::Overloaded { retry_after_ms }) => {
                assert_eq!(retry_after_ms, 2.0, "6 × 2 − 10 = 2, floored at est");
            }
            other => panic!("expected projection rejection, got {other:?}"),
        }
        // An infinite SLO never rejects, regardless of depth.
        assert!(admission.try_admit(f64::INFINITY).is_ok());
        // The EWMA folds new observations toward the new level.
        admission.observe_service_ms(12.0);
        let est = admission.service_estimate_ms().unwrap();
        assert!((est - 4.0).abs() < 1e-9, "0.8·2 + 0.2·12 = 4, got {est}");
        assert!(ServeError::Overloaded {
            retry_after_ms: 1.0
        }
        .is_transient());
    }

    #[test]
    fn overload_hammer_rejects_with_retry_hint_and_serves_the_rest() {
        // An admission SLO far below one request's service time: a
        // burst must be bounded (bootstrap depth cap, then the
        // service-time projection) and every rejection must carry a
        // positive backoff hint, while every *admitted* request is
        // still served to completion.
        let mut builder = ServerBuilder::new(stochastic_net(12)).admission_slo_ms(0.01);
        let tenant = builder.tenant(TenantSpec {
            seed: 5,
            samples: 4,
            ..TenantSpec::default()
        });
        let server = builder.build();
        assert_eq!(server.admission_slo_ms(), 0.01);

        let mut admitted = Vec::new();
        let mut rejected = 0usize;
        let total = 8 * BOOTSTRAP_DEPTH_CAP;
        for i in 0..total {
            match server.submit(tenant, ServeRequest::new(images(100 + i as u64, 32))) {
                Ok(ticket) => admitted.push(ticket),
                Err(ServeError::Overloaded { retry_after_ms }) => {
                    assert!(
                        retry_after_ms > 0.0 && retry_after_ms.is_finite(),
                        "backoff hint must be a positive finite wait, got {retry_after_ms}"
                    );
                    rejected += 1;
                }
                Err(other) => panic!("only Overloaded is expected here, got {other:?}"),
            }
        }
        assert!(rejected > 0, "the hammer must trip backpressure");
        assert!(
            !admitted.is_empty(),
            "the first submission is always admissible"
        );
        assert!(
            admitted.len() <= total - rejected,
            "accounting: every submission is admitted or rejected"
        );
        let count = admitted.len();
        for ticket in admitted {
            assert!(
                ticket.wait().is_ok(),
                "an admitted request must be served despite the overload"
            );
        }
        server.shutdown();
        assert!(count + rejected == total);
    }

    #[test]
    fn default_admission_is_unbounded() {
        let mut builder = ServerBuilder::new(stochastic_net(13)).max_batch(2);
        let tenant = builder.tenant(TenantSpec::default());
        let server = builder.build();
        assert!(server.admission_slo_ms().is_infinite());
        let tickets: Vec<Ticket> = (0..2 * BOOTSTRAP_DEPTH_CAP)
            .map(|i| {
                server
                    .submit(tenant, ServeRequest::new(images(200 + i as u64, 1)))
                    .expect("unbounded admission never rejects")
            })
            .collect();
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
        assert_eq!(server.queue_depth(), 0, "all slots released after serving");
    }

    #[test]
    fn sample_major_server_bytes_match_round_major() {
        let net = stochastic_net(14);
        let x = images(15, 6);
        let mut responses = Vec::new();
        for execution in [Execution::RoundMajor, Execution::SampleMajor] {
            let mut builder = ServerBuilder::new(net.clone()).execution(execution);
            let tenant = builder.tenant(TenantSpec {
                seed: 21,
                samples: 3,
                ..TenantSpec::default()
            });
            let server = builder.build();
            let response = server
                .submit(tenant, ServeRequest::new(x.clone()))
                .unwrap()
                .wait()
                .unwrap();
            responses.push(response.prediction.probs);
        }
        assert_eq!(
            responses[0].as_slice(),
            responses[1].as_slice(),
            "execution order must not change served bytes"
        );
    }

    #[test]
    fn dropped_tickets_do_not_wedge_the_server() {
        let mut builder = ServerBuilder::new(stochastic_net(8)).max_batch(2);
        let tenant = builder.tenant(TenantSpec::default());
        let server = builder.build();
        drop(
            server
                .submit(tenant, ServeRequest::new(images(3, 2)))
                .unwrap(),
        );
        let kept = server
            .submit(tenant, ServeRequest::new(images(4, 2)))
            .unwrap();
        assert!(kept.wait().is_ok());
        server.shutdown();
    }
}
