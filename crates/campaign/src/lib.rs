//! Distributed search campaigns: island-model evolution over
//! deterministic archive merging.
//!
//! The paper's dropout search (Phase 3) is the compute-hungry phase of
//! the pipeline; the classic way to scale evolutionary NAS beyond one
//! population is the **island model** — N independent searches with
//! periodic elite exchange. This crate runs N
//! [`nds_search::SearchSession`] islands (distinct seeds derived with
//! [`nds_tensor::rng::Rng64::derive`], typically over copy-on-write
//! forks of one trained supernet), and every `migrate_every` steps
//! folds their archives together through the commutative, canonically
//! ordered [`ParetoArchive::merge`] and adopts the merged Pareto front
//! back into every island ([`nds_search::SearchSession::adopt_elites`]).
//!
//! # Determinism contract
//!
//! A campaign with a fixed spec and seed produces **byte-identical**
//! final state across repeated runs, worker counts and stop/resume
//! cycles:
//!
//! * island steps are byte-exact already (the per-session guarantee);
//! * [`ParetoArchive::merge`] re-orders its union canonically, so *any*
//!   fold order over island archives yields identical bytes
//!   (commutative + associative + idempotent — pinned by the merge-law
//!   proptests in `tests/campaign.rs`);
//! * elite adoption is RNG-neutral: it consumes no random draws and no
//!   budget, so migration cannot perturb an island's own search stream;
//! * the epoch barrier is synchronous — every island completes the same
//!   number of steps between exchanges regardless of thread count.
//!
//! # Checkpointing
//!
//! [`Campaign::save`] writes one [`nds_search::SearchCheckpoint`] per
//! island plus a [`CampaignManifest`], all through the crash-safe
//! atomic-write protocol; the manifest is written last and is the
//! commit point. [`load_campaign`] heals a crash *between* those writes
//! from the `.bak` rotations (see [`manifest`] for the layout and the
//! exact crash-window argument).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Same rationale as nds-search (whose error type this crate reuses):
// `SearchError` is a few bytes past clippy's 128-byte heuristic on the
// cold path only.
#![allow(clippy::result_large_err)]

pub mod manifest;

pub use manifest::{
    island_path, load_campaign, manifest_path, strategy_progress, CampaignManifest, CampaignResume,
    CAMPAIGN_FORMAT, CAMPAIGN_VERSION,
};

use nds_search::pareto::ParetoArchive;
use nds_search::{Candidate, Result, SearchError, SearchEvent, SearchSession, StepStats};
use nds_tensor::rng::Rng64;
use std::path::Path;

/// Builds a typed campaign error (the campaign shares `nds-search`'s
/// checkpoint error channel rather than growing a parallel enum).
pub(crate) fn campaign_err(msg: impl Into<String>) -> SearchError {
    SearchError::Checkpoint(msg.into())
}

/// The seed for island `index` of a campaign with base seed `base`:
/// a documented [`Rng64::derive`] split, so island streams are
/// statistically independent without ad-hoc seed arithmetic.
pub fn island_seed(base: u64, index: usize) -> u64 {
    Rng64::derive(base, index as u64)
}

/// Progress of a running [`Campaign`], streamed to observers.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignEvent {
    /// One island completed one search step.
    IslandStep {
        /// Which island stepped (0-based).
        island: usize,
        /// The island's own [`StepStats`] for the step.
        stats: StepStats,
    },
    /// An epoch barrier completed: archives were merged and the merged
    /// front adopted back into every island.
    Migration {
        /// The 1-based epoch that just completed.
        epoch: usize,
        /// Size of the merged archive at the barrier.
        merged_len: usize,
        /// Size of the merged front — the elites exchanged.
        elites: usize,
        /// Front candidates newly archived across all islands (0 once
        /// the islands have converged on a shared front).
        adopted: usize,
    },
}

/// The final state of a finished (or stopped) campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The best candidate by aim score over the merged archive, ties
    /// broken toward canonical (merge) order.
    pub best: Candidate,
    /// The canonically ordered merge of every island's archive.
    pub archive: ParetoArchive,
    /// Migration epochs completed.
    pub epochs: usize,
    /// Fresh evaluations spent, summed over islands.
    pub budget_spent: usize,
}

/// An island-model search campaign over caller-built sessions.
///
/// The campaign borrows its islands rather than owning them so the
/// caller controls their construction (supernet forks, evaluators,
/// resume state) and can snapshot or inspect them afterwards.
pub struct Campaign<'c, 'a> {
    islands: &'c mut [SearchSession<'a>],
    migrate_every: usize,
    epoch: usize,
}

impl<'c, 'a> Campaign<'c, 'a> {
    /// A fresh campaign over `islands`, exchanging elites every
    /// `migrate_every` steps.
    ///
    /// # Errors
    ///
    /// Returns a typed error when `islands` is empty, `migrate_every`
    /// is zero, or the islands disagree on their objective set or aim
    /// (their archives could not be merged / their scores compared).
    pub fn new(islands: &'c mut [SearchSession<'a>], migrate_every: usize) -> Result<Self> {
        Self::resumed(islands, migrate_every, 0)
    }

    /// A campaign resumed at `epoch` completed migration epochs — the
    /// entry point [`load_campaign`] feeds after rebuilding the island
    /// sessions from their checkpoints.
    ///
    /// # Errors
    ///
    /// As [`Campaign::new`].
    pub fn resumed(
        islands: &'c mut [SearchSession<'a>],
        migrate_every: usize,
        epoch: usize,
    ) -> Result<Self> {
        if islands.is_empty() {
            return Err(campaign_err("a campaign needs at least one island"));
        }
        if migrate_every == 0 {
            return Err(campaign_err("migrate_every must be at least 1"));
        }
        let objectives = islands[0].archive().objective_set();
        let aim = islands[0].aim().clone();
        for (index, island) in islands.iter().enumerate().skip(1) {
            if island.archive().objective_set() != objectives {
                return Err(campaign_err(format!(
                    "island {index} searches objective set {} but island 0 searches {}",
                    island.archive().objective_set().code(),
                    objectives.code()
                )));
            }
            if island.aim() != &aim {
                return Err(campaign_err(format!(
                    "island {index} scores aim `{}` but island 0 scores `{}`",
                    island.aim().name,
                    aim.name
                )));
            }
        }
        Ok(Campaign {
            islands,
            migrate_every,
            epoch,
        })
    }

    /// Read access to the islands as they stand.
    pub fn islands(&self) -> &[SearchSession<'a>] {
        self.islands
    }

    /// Steps per island between elite exchanges.
    pub fn migrate_every(&self) -> usize {
        self.migrate_every
    }

    /// Completed migration epochs.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// `true` once every island's strategy budget is exhausted.
    pub fn is_finished(&self) -> bool {
        self.islands.iter().all(SearchSession::is_finished)
    }

    /// Fresh evaluations spent so far, summed over islands.
    pub fn budget_spent(&self) -> usize {
        self.islands.iter().map(SearchSession::budget_spent).sum()
    }

    /// The canonically ordered merge of every island's archive — the
    /// campaign's global view. Folding left over island order, but any
    /// order produces identical bytes ([`ParetoArchive::merge`]).
    ///
    /// # Errors
    ///
    /// Propagates merge errors (impossible for a validated campaign,
    /// whose islands share one objective set).
    pub fn merged_archive(&self) -> Result<ParetoArchive> {
        let mut merged = ParetoArchive::new(self.islands[0].archive().objective_set());
        for island in self.islands.iter() {
            merged = merged.merge(island.archive())?;
        }
        Ok(merged)
    }

    /// Runs one migration epoch: every unfinished island takes
    /// `migrate_every` steps, then the merged Pareto front is adopted
    /// back into every island. Steps round-robin across islands so an
    /// observer sees interleaved progress, but the epoch barrier is
    /// synchronous — determinism never depends on interleaving.
    ///
    /// # Errors
    ///
    /// Propagates the first island evaluation error; the campaign stays
    /// at the failed epoch and can be retried or checkpointed.
    pub fn run_epoch(&mut self, mut observer: impl FnMut(&CampaignEvent)) -> Result<()> {
        for _ in 0..self.migrate_every {
            for (index, island) in self.islands.iter_mut().enumerate() {
                if island.is_finished() {
                    continue;
                }
                if let SearchEvent::Step(stats) = island.step()? {
                    observer(&CampaignEvent::IslandStep {
                        island: index,
                        stats,
                    });
                }
            }
        }
        let merged = self.merged_archive()?;
        let elites: Vec<Candidate> = merged.front().into_iter().cloned().collect();
        let mut adopted = 0;
        for island in self.islands.iter_mut() {
            adopted += island.adopt_elites(&elites);
        }
        self.epoch += 1;
        observer(&CampaignEvent::Migration {
            epoch: self.epoch,
            merged_len: merged.len(),
            elites: elites.len(),
            adopted,
        });
        Ok(())
    }

    /// Runs epochs until every island is finished, then returns the
    /// outcome.
    ///
    /// # Errors
    ///
    /// As [`Campaign::run_epoch`] / [`Campaign::outcome`].
    pub fn run_with(
        &mut self,
        mut observer: impl FnMut(&CampaignEvent),
    ) -> Result<CampaignOutcome> {
        while !self.is_finished() {
            self.run_epoch(&mut observer)?;
        }
        self.outcome()
    }

    /// Runs to completion without observation.
    ///
    /// # Errors
    ///
    /// As [`Campaign::run_with`].
    pub fn run(&mut self) -> Result<CampaignOutcome> {
        self.run_with(|_| {})
    }

    /// The campaign's outcome as it stands: the globally best candidate
    /// by aim score over the merged archive (first in canonical order
    /// on ties, so the result is interleaving-independent), the merged
    /// archive itself, and the spent budget.
    ///
    /// # Errors
    ///
    /// Returns a typed error when no island has evaluated anything yet.
    pub fn outcome(&self) -> Result<CampaignOutcome> {
        let archive = self.merged_archive()?;
        let aim = self.islands[0].aim();
        let mut best: Option<(f64, &Candidate)> = None;
        for candidate in archive.candidates() {
            let score = aim.score(candidate);
            if best.map(|(incumbent, _)| score > incumbent).unwrap_or(true) {
                best = Some((score, candidate));
            }
        }
        let (_, best) =
            best.ok_or_else(|| campaign_err("campaign has no evaluated candidates yet"))?;
        Ok(CampaignOutcome {
            best: best.clone(),
            archive: self.merged_archive()?,
            epochs: self.epoch,
            budget_spent: self.budget_spent(),
        })
    }

    /// Checkpoints the whole campaign into `dir`: every island's
    /// [`nds_search::SearchCheckpoint`] first, the [`CampaignManifest`]
    /// last (the commit point) — all through the crash-safe atomic
    /// protocol. See [`manifest`] for the layout and crash-window
    /// reasoning.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Checkpoint`] on I/O failure.
    pub fn save(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir).map_err(|e| {
            campaign_err(format!(
                "cannot create campaign directory {}: {e}",
                dir.display()
            ))
        })?;
        let mut progress = Vec::with_capacity(self.islands.len());
        for (index, island) in self.islands.iter().enumerate() {
            let snapshot = island.snapshot();
            snapshot.save(&island_path(dir, index))?;
            progress.push(strategy_progress(&snapshot));
        }
        let manifest = CampaignManifest {
            version: CAMPAIGN_VERSION,
            islands: self.islands.len(),
            migrate_every: self.migrate_every,
            epoch: self.epoch,
            progress,
        };
        manifest.validate()?;
        manifest.save(&manifest_path(dir))
    }
}
