//! The campaign manifest: the versioned-JSON commit record of a
//! checkpointed campaign.
//!
//! # Checkpoint layout
//!
//! A campaign checkpoints into a *directory*:
//!
//! ```text
//! <dir>/island_0.json      per-island SearchCheckpoint (+ .bak rotation)
//! <dir>/island_1.json
//! <dir>/...
//! <dir>/campaign.json      CampaignManifest (+ .bak rotation)  ← commit point
//! ```
//!
//! Island files are written **first** (each through the crash-safe
//! [`nds_search::checkpoint::atomic_write`] protocol, which rotates the
//! previous save to `.bak`), and the manifest is written **last**: the
//! manifest rename is the campaign's commit point. The manifest records
//! each island's expected strategy progress (generation / draw cursor),
//! so [`load_campaign`] can detect the one crash window the per-file
//! protocol cannot — a `kill -9` *between* island saves and the
//! manifest save — and heal it from the islands' `.bak` rotations,
//! which still hold the state the (old) manifest committed.

use crate::{campaign_err, Result};
use nds_search::checkpoint::{atomic_write, Json, StrategyProgress};
use nds_search::{SearchCheckpoint, SearchError};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Current campaign-manifest schema version. Bump on any schema change.
pub const CAMPAIGN_VERSION: u64 = 1;

/// The `format` marker distinguishing campaign manifests from the
/// per-island search checkpoints that share the directory.
pub const CAMPAIGN_FORMAT: &str = "nds-campaign-manifest";

/// The manifest file inside a campaign checkpoint directory.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("campaign.json")
}

/// The checkpoint file of island `index` inside a campaign directory.
pub fn island_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("island_{index}.json"))
}

/// A single scalar summarising how far a checkpointed strategy has
/// advanced: the generation for evolution, the cursor for the
/// baselines. The manifest pins one per island so resume can tell a
/// committed island save from one written *after* the manifest's
/// commit point (see the [module docs](self)).
pub fn strategy_progress(checkpoint: &SearchCheckpoint) -> u64 {
    match &checkpoint.strategy {
        StrategyProgress::Evolution { generation, .. } => *generation as u64,
        StrategyProgress::Random { cursor, .. } => *cursor as u64,
        StrategyProgress::Exhaustive { cursor } => *cursor as u64,
    }
}

/// The campaign-level half of a campaign checkpoint: topology, epoch
/// counter and the per-island progress fingerprints that make resume
/// crash-consistent. Serialises through the same minimal
/// unsigned-integer JSON subset as [`SearchCheckpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignManifest {
    /// Schema version ([`CAMPAIGN_VERSION`] when produced by this
    /// build).
    pub version: u64,
    /// Number of islands (and of `island_<i>.json` files).
    pub islands: usize,
    /// Steps per island between elite exchanges.
    pub migrate_every: usize,
    /// Completed migration epochs at the time of the save.
    pub epoch: usize,
    /// Per-island [`strategy_progress`] fingerprint, in island order.
    pub progress: Vec<u64>,
}

impl CampaignManifest {
    /// Serialises the manifest to its versioned JSON format.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"format\": {},",
            nds_search::checkpoint::json_str(CAMPAIGN_FORMAT)
        );
        let _ = writeln!(out, "  \"version\": {},", self.version);
        let _ = writeln!(out, "  \"islands\": {},", self.islands);
        let _ = writeln!(out, "  \"migrate_every\": {},", self.migrate_every);
        let _ = writeln!(out, "  \"epoch\": {},", self.epoch);
        out.push_str("  \"progress\": [");
        for (i, p) in self.progress.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{p}");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a manifest from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Checkpoint`] for malformed JSON, an
    /// unknown format marker, a version mismatch, or an inconsistent
    /// island count — never panics on untrusted input.
    pub fn from_json(text: &str) -> Result<Self> {
        let value = Json::parse(text)?;
        let obj = value.as_obj("campaign manifest root")?;
        let format = obj.get_str("format")?;
        if format != CAMPAIGN_FORMAT {
            return Err(campaign_err(format!(
                "not a campaign manifest (format marker `{format}`)"
            )));
        }
        let version = obj.get_u64("version")?;
        if version != CAMPAIGN_VERSION {
            return Err(campaign_err(format!(
                "campaign manifest version {version} is not supported (this build \
                 reads version {CAMPAIGN_VERSION})"
            )));
        }
        let manifest = CampaignManifest {
            version,
            islands: obj.get_usize("islands")?,
            migrate_every: obj.get_usize("migrate_every")?,
            epoch: obj.get_usize("epoch")?,
            progress: obj
                .get("progress")?
                .as_arr("progress")?
                .iter()
                .map(|v| v.as_u64("progress entry"))
                .collect::<Result<Vec<_>>>()?,
        };
        manifest.validate()?;
        Ok(manifest)
    }

    /// Internal-consistency checks shared by the loader and the saver.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Checkpoint`] when the topology is
    /// degenerate or the progress list disagrees with the island count.
    pub fn validate(&self) -> Result<()> {
        if self.islands == 0 {
            return Err(campaign_err("campaign manifest has zero islands"));
        }
        if self.migrate_every == 0 {
            return Err(campaign_err("campaign manifest has migrate_every == 0"));
        }
        if self.progress.len() != self.islands {
            return Err(campaign_err(format!(
                "campaign manifest lists {} progress entries for {} islands",
                self.progress.len(),
                self.islands
            )));
        }
        Ok(())
    }

    /// Writes the manifest to `path` through the shared crash-safe
    /// [`atomic_write`] protocol (tmp + fsync + `.bak` rotation +
    /// rename).
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Checkpoint`] on I/O failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        atomic_write(path, &self.to_json())
    }

    /// Loads a manifest, falling back to its `.bak` rotation when the
    /// primary is missing or corrupted.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Checkpoint`] when both files fail.
    pub fn load(path: &Path) -> Result<Self> {
        let read = |p: &Path| -> Result<Self> {
            let text = std::fs::read_to_string(p).map_err(|e| {
                campaign_err(format!(
                    "cannot read campaign manifest {}: {e}",
                    p.display()
                ))
            })?;
            Self::from_json(&text)
        };
        let primary_error = match read(path) {
            Ok(manifest) => return Ok(manifest),
            Err(SearchError::Checkpoint(msg)) => msg,
            Err(other) => return Err(other),
        };
        match read(&SearchCheckpoint::backup_path(path)) {
            Ok(manifest) => Ok(manifest),
            Err(SearchError::Checkpoint(backup_error)) => Err(campaign_err(format!(
                "campaign manifest unrecoverable: primary failed ({primary_error}); \
                 backup failed ({backup_error})"
            ))),
            Err(other) => Err(other),
        }
    }
}

/// A campaign checkpoint directory loaded back into memory, with any
/// backup-fallback healing that happened on the way.
#[derive(Debug, Clone)]
pub struct CampaignResume {
    /// The committed campaign manifest.
    pub manifest: CampaignManifest,
    /// One resumable checkpoint per island, in island order, each
    /// consistent with the manifest's progress fingerprint.
    pub islands: Vec<SearchCheckpoint>,
    /// Operator-facing notes about files healed from `.bak` rotations;
    /// empty on a clean load.
    pub warnings: Vec<String>,
}

/// Loads a whole campaign checkpoint directory, healing the
/// island-saved-but-manifest-not-committed crash window from `.bak`
/// rotations (see the [module docs](self) for why that window exists).
///
/// # Errors
///
/// Returns [`SearchError::Checkpoint`] when the manifest is
/// unrecoverable or any island has no saved state consistent with the
/// manifest's committed progress.
pub fn load_campaign(dir: &Path) -> Result<CampaignResume> {
    let manifest = CampaignManifest::load(&manifest_path(dir))?;
    let mut islands = Vec::with_capacity(manifest.islands);
    let mut warnings = Vec::new();
    for index in 0..manifest.islands {
        let expected = manifest.progress[index];
        let path = island_path(dir, index);
        let primary_error = match SearchCheckpoint::load(&path) {
            Ok(ckpt) if strategy_progress(&ckpt) == expected => {
                islands.push(ckpt);
                continue;
            }
            Ok(ckpt) => format!(
                "progress {} does not match the manifest's committed {expected} \
                 (crash between island saves and the manifest commit)",
                strategy_progress(&ckpt)
            ),
            Err(SearchError::Checkpoint(msg)) => msg,
            Err(other) => return Err(other),
        };
        match SearchCheckpoint::load(&SearchCheckpoint::backup_path(&path)) {
            Ok(ckpt) if strategy_progress(&ckpt) == expected => {
                warnings.push(format!(
                    "island {index}: primary checkpoint rejected ({primary_error}); \
                     resumed from its .bak rotation"
                ));
                islands.push(ckpt);
            }
            Ok(ckpt) => {
                return Err(campaign_err(format!(
                    "island {index} unrecoverable: primary rejected ({primary_error}); \
                     backup progress {} also differs from the committed {expected}",
                    strategy_progress(&ckpt)
                )))
            }
            Err(SearchError::Checkpoint(backup_error)) => {
                return Err(campaign_err(format!(
                    "island {index} unrecoverable: primary rejected ({primary_error}); \
                     backup failed ({backup_error})"
                )))
            }
            Err(other) => return Err(other),
        }
    }
    Ok(CampaignResume {
        manifest,
        islands,
        warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nds_search::checkpoint::CHECKPOINT_VERSION;
    use nds_search::pareto::ObjectiveSet;
    use nds_search::{EvolutionConfig, SearchAim};

    fn island_checkpoint(generation: usize) -> SearchCheckpoint {
        SearchCheckpoint {
            version: CHECKPOINT_VERSION,
            aim: SearchAim::weighted("test", 1.0, 0.5, 0.25, 0.1),
            objectives: ObjectiveSet::Figure4,
            rng: [1, 2, 3, 4],
            strategy: StrategyProgress::Evolution {
                config: EvolutionConfig::default(),
                population: vec!["BBB".parse().unwrap()],
                generation,
            },
            memo: Vec::new(),
            archive: Vec::new(),
            history: Vec::new(),
            best: None,
            budget_spent: 0,
            ood_seed: 7,
        }
    }

    fn sample_manifest() -> CampaignManifest {
        CampaignManifest {
            version: CAMPAIGN_VERSION,
            islands: 2,
            migrate_every: 3,
            epoch: 4,
            progress: vec![12, 12],
        }
    }

    fn temp_campaign_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nds_campaign_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_json_round_trips() {
        let manifest = sample_manifest();
        let back = CampaignManifest::from_json(&manifest.to_json()).unwrap();
        assert_eq!(manifest, back);
    }

    #[test]
    fn manifest_rejects_foreign_and_inconsistent_json() {
        let version_bumped = sample_manifest()
            .to_json()
            .replace("\"version\": 1", "\"version\": 99");
        for bad in [
            "",
            "{\"format\": \"something-else\", \"version\": 1}",
            version_bumped.as_str(),
        ] {
            assert!(CampaignManifest::from_json(bad).is_err(), "input {bad:?}");
        }
        let mut short = sample_manifest();
        short.progress.pop();
        assert!(short.validate().is_err());
        let mut degenerate = sample_manifest();
        degenerate.migrate_every = 0;
        assert!(degenerate.validate().is_err());
    }

    #[test]
    fn manifest_load_falls_back_to_backup() {
        let dir = temp_campaign_dir("manifest_bak");
        let path = manifest_path(&dir);
        let old = sample_manifest();
        old.save(&path).unwrap();
        let mut new = sample_manifest();
        new.epoch += 1;
        new.save(&path).unwrap(); // rotates `old` to .bak
        std::fs::write(&path, "torn{").unwrap();
        assert_eq!(CampaignManifest::load(&path).unwrap(), old);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_campaign_heals_the_island_manifest_crash_window() {
        let dir = temp_campaign_dir("crash_window");
        // Epoch N committed: island files + manifest agree at progress 2.
        island_checkpoint(2).save(&island_path(&dir, 0)).unwrap();
        CampaignManifest {
            version: CAMPAIGN_VERSION,
            islands: 1,
            migrate_every: 1,
            epoch: 2,
            progress: vec![2],
        }
        .save(&manifest_path(&dir))
        .unwrap();
        // Crash window: epoch N+1 island save landed (rotating the old
        // primary to .bak), manifest commit did not.
        island_checkpoint(3).save(&island_path(&dir, 0)).unwrap();
        let resumed = load_campaign(&dir).unwrap();
        assert_eq!(resumed.manifest.epoch, 2);
        assert_eq!(strategy_progress(&resumed.islands[0]), 2);
        assert_eq!(resumed.warnings.len(), 1, "{:?}", resumed.warnings);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_campaign_rejects_an_unrecoverable_island() {
        let dir = temp_campaign_dir("unrecoverable");
        island_checkpoint(5).save(&island_path(&dir, 0)).unwrap();
        CampaignManifest {
            version: CAMPAIGN_VERSION,
            islands: 1,
            migrate_every: 1,
            epoch: 1,
            progress: vec![4],
        }
        .save(&manifest_path(&dir))
        .unwrap();
        // Primary disagrees with the committed progress and there is no
        // backup: resume must fail with a typed error, not guess.
        let err = load_campaign(&dir).unwrap_err();
        assert!(matches!(err, SearchError::Checkpoint(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
