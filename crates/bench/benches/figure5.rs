//! **Figure 5** — Power breakdown of the Accuracy-Optimal and ECE-Optimal
//! searched designs (static plus IO / Logic&Signal / DSP / Clocking /
//! BRAM), post-place-and-route in the paper, post-model here.
//!
//! Reproduction: the two configurations come from the exhaustive ResNet
//! archive when available (falling back to the paper's published configs
//! K-M-B-M and M-M-M-M); the breakdown comes from the calibrated power
//! model of the paper-scale ResNet-18 design point.
//!
//! Run with: `cargo bench --bench figure5`

use nds_bench::{resnet_space, write_csv};
use nds_hw::accel::{AcceleratorConfig, AcceleratorModel};
use nds_hw::power::PowerBreakdown;
use nds_nn::zoo;
use nds_search::SearchAim;
use nds_supernet::DropoutConfig;

fn main() {
    println!("=== Figure 5: power breakdown of the searched designs ===\n");
    let space = resnet_space(2024);
    let accuracy_config = space
        .archive
        .iter()
        .max_by(|a, b| a.metrics.accuracy.total_cmp(&b.metrics.accuracy))
        .map(|c| c.config.clone())
        .unwrap_or_else(|| "KMBM".parse().expect("valid fallback"));
    let ece_config = space
        .archive
        .iter()
        .min_by(|a, b| a.metrics.ece.total_cmp(&b.metrics.ece))
        .map(|c| c.config.clone())
        .unwrap_or_else(|| "MMMM".parse().expect("valid fallback"));
    let _ = SearchAim::table1_presets(); // documents the aim provenance

    let model = AcceleratorModel::new(AcceleratorConfig::resnet_paper());
    let arch = zoo::resnet18_paper();
    let mut csv = Vec::new();
    let mut breakdowns: Vec<(String, DropoutConfig, PowerBreakdown)> = Vec::new();
    for (label, config) in [
        ("Accuracy Optimal", accuracy_config),
        ("ECE Optimal", ece_config),
    ] {
        let report = model.analyze(&arch, &config).expect("analysis succeeds");
        breakdowns.push((label.to_string(), config, report.power));
    }

    for (label, config, power) in &breakdowns {
        println!("-- {label} ({config}) --");
        println!("{power}");
        println!();
        csv.push(format!(
            "{},{},{},{},{},{},{},{},{}",
            label,
            config.compact(),
            power.static_w,
            power.clocking_w,
            power.logic_signal_w,
            power.bram_w,
            power.dsp_w,
            power.io_w,
            power.total_w()
        ));
    }
    write_csv(
        "figure5.csv",
        "design,config,static_w,clocking_w,logic_signal_w,bram_w,dsp_w,io_w,total_w",
        &csv,
    );

    let (_, _, acc_power) = &breakdowns[0];
    let (_, _, ece_power) = &breakdowns[1];
    println!("-- structural checks against the paper's Figure 5 --");
    println!(
        "Logic&Signal share: accuracy-opt {:.1}% vs ECE-opt {:.1}%   [paper: 39.2% vs 31.7%]",
        100.0 * acc_power.share(acc_power.logic_signal_w),
        100.0 * ece_power.share(ece_power.logic_signal_w)
    );
    println!(
        "totals: accuracy-opt {:.3} W vs ECE-opt {:.3} W   [paper: 4.378 W vs 3.905 W]",
        acc_power.total_w(),
        ece_power.total_w()
    );
    println!(
        "BRAM share: accuracy-opt {:.1}% vs ECE-opt {:.1}%   [paper: 11.3% vs 12.1%]",
        100.0 * acc_power.share(acc_power.bram_w),
        100.0 * ece_power.share(ece_power.bram_w)
    );
    if acc_power.total_w() > ece_power.total_w() {
        println!("\nresult: dynamic-dropout design costs more power than the static-mask design (matches §4.3:");
        println!("\"The high consumption is due to the comparing operations in dynamic dropout layers.\")");
    } else {
        println!("\nresult: power ordering differs from the paper — the searched accuracy optimum used no dynamic dropout");
        println!("(possible on synthetic data; the mechanism is still visible in the per-config model, see ablation bench)");
    }
}
