//! **Table 1** — Algorithm and hardware results of optimized configurations
//! obtained from search (ResNet18 on CIFAR-10).
//!
//! Reproduction: a width-4 ResNet-18 supernet trained with SPOS on the
//! CIFAR-like set; all 256 configurations evaluated exhaustively on the
//! validation set (the paper's own protocol for its reference results);
//! hardware columns from the paper-scale ResNet-18 design point on the
//! modelled XCKU115. The four "searched" rows are the per-aim optima, and
//! the evolutionary algorithm is run per aim to confirm it recovers them.
//!
//! Run with: `cargo bench --bench table1`

use nds_bench::{pct, resnet_space, write_csv};
use nds_dropout::DropoutKind;
use nds_hw::accel::{AcceleratorConfig, AcceleratorModel};
use nds_nn::zoo;
use nds_search::{Candidate, EvolutionConfig, SearchAim, SearchBuilder, Strategy};
use nds_supernet::DropoutConfig;

fn main() {
    println!("=== Table 1: optimized ResNet configurations (paper §4.1) ===\n");
    let space = resnet_space(2024);
    let hw_model = AcceleratorModel::new(AcceleratorConfig::resnet_paper());
    let hw_arch = zoo::resnet18_paper();

    let mut rows: Vec<(String, Candidate)> = Vec::new();
    for kind in DropoutKind::all() {
        let config = DropoutConfig::uniform(kind, 4);
        rows.push((format!("All {kind}"), space.candidate(&config).clone()));
    }
    // Searched rows: per-aim optimum over the exhaustive archive (the
    // paper's iterate-all protocol).
    let aims = SearchAim::table1_presets();
    for aim in &aims {
        let best = space
            .archive
            .iter()
            .max_by(|a, b| aim.score(a).total_cmp(&aim.score(b)))
            .expect("non-empty archive");
        rows.push((aim.name.clone(), best.clone()));
    }

    println!(
        "{:<22} {:>8} {:>9} {:>6} {:>6} {:>11} {:>6} {:>5} {:>5}",
        "ResNet configuration",
        "config",
        "Acc(%)",
        "ECE(%)",
        "aPE",
        "Latency(ms)",
        "BRAM",
        "DSP",
        "FF"
    );
    let mut csv = Vec::new();
    for (name, candidate) in &rows {
        let report = hw_model
            .analyze(&hw_arch, &candidate.config)
            .expect("paper-scale analysis succeeds");
        println!(
            "{:<22} {:>8} {:>9} {:>6} {:>6.3} {:>11.3} {:>5.0}% {:>4.0}% {:>4.0}%",
            name,
            candidate.config.to_string(),
            pct(candidate.metrics.accuracy),
            pct(candidate.metrics.ece),
            candidate.metrics.ape,
            candidate.latency_ms,
            report.bram.percent(),
            report.dsp.percent(),
            report.ff.percent()
        );
        csv.push(format!(
            "{},{},{},{},{},{},{},{},{}",
            name,
            candidate.config.compact(),
            candidate.metrics.accuracy,
            candidate.metrics.ece,
            candidate.metrics.ape,
            candidate.latency_ms,
            report.bram.percent(),
            report.dsp.percent(),
            report.ff.percent()
        ));
    }
    write_csv(
        "table1.csv",
        "row,config,accuracy,ece,ape,latency_ms,bram_pct,dsp_pct,ff_pct",
        &csv,
    );

    // Sanity: the EA (Figure 3) should recover the same per-aim scores
    // when run against the memoised archive-backed evaluator.
    println!("\n-- evolutionary search cross-check (population 16, 8 generations) --");
    struct ArchiveEvaluator<'a> {
        archive: &'a [Candidate],
        fresh: usize,
    }
    impl nds_search::Evaluator for ArchiveEvaluator<'_> {
        fn evaluate(&mut self, config: &DropoutConfig) -> nds_search::Result<Candidate> {
            self.fresh += 1;
            Ok(self
                .archive
                .iter()
                .find(|c| &c.config == config)
                .expect("exhaustive archive covers the space")
                .clone())
        }
        fn fresh_evaluations(&self) -> usize {
            self.fresh
        }
    }
    for aim in &aims {
        let mut evaluator = ArchiveEvaluator {
            archive: &space.archive,
            fresh: 0,
        };
        let result = SearchBuilder::with_evaluator(&mut evaluator, space.spec.clone())
            .strategy(Strategy::Evolution(EvolutionConfig {
                seed: 7,
                ..EvolutionConfig::default()
            }))
            .aim(aim.clone())
            .build()
            .expect("session builds")
            .run()
            .expect("EA runs");
        let exhaustive_best = space
            .archive
            .iter()
            .map(|c| aim.score(c))
            .fold(f64::NEG_INFINITY, f64::max);
        let gap = exhaustive_best - aim.score(&result.best);
        println!(
            "{:<18} EA found {} (score gap to exhaustive optimum: {:+.4})",
            aim.name, result.best.config, gap
        );
    }

    println!("\npaper reference (Table 1): all-B 91.205%/7.4/0.989/15.401ms, all-K 91.276%/5.9/0.887/18.674ms,");
    println!("all-R 90.635%/5.8/0.773/18.396ms, all-M 91.316%/3.6/0.626/15.401ms; resources 82% BRAM / 5% DSP / 39-40% FF.");
    println!("(absolute accuracy differs — CPU-scale synthetic data — but the orderings are the reproduction target; see EXPERIMENTS.md)");
}
