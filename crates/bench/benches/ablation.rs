//! **Ablations** — the design choices DESIGN.md calls out:
//!
//! 1. GP latency surrogate vs the exact accelerator model (accuracy of the
//!    paper's §3.5.1 shortcut: RMSE, rank correlation, argmin agreement),
//! 2. the dataflow-bottleneck latency law vs a naive additive law (why a
//!    hybrid design is dragged to its slowest dropout unit — Table 1's
//!    shape),
//! 3. datapath precision: float vs Q11.4 / Q7.8 / Q3.12 accuracy through
//!    the functional simulator,
//! 4. Masksembles overlap scale: mask overlap, ROM bits and the
//!    latency-free hardware footprint.
//!
//! Run with: `cargo bench --bench ablation`

// Every MC evaluation here routes through the serving engine (the
// supernet's own `UncertaintyEngine`, or a standalone `EngineBuilder`
// engine) — byte-identical to the retired free-function wrappers, with
// persistent clone caches across the sweeps.

use nds_bench::{dataset_splits, spearman, write_csv, BenchScale};
use nds_data::DatasetKind;
use nds_dropout::masksembles::MaskSet;
use nds_engine::{Backend, EngineBuilder, PredictRequest};
use nds_hw::accel::{AcceleratorConfig, AcceleratorModel};
use nds_hw::simulator::quantize_network;
use nds_metrics::accuracy;
use nds_nn::optim::LrSchedule;
use nds_nn::train::TrainConfig;
use nds_nn::zoo;
use nds_quant::{FixedFormat, Q11_4, Q3_12, Q7_8};
use nds_search::{encode_config, fit_latency_gp};
use nds_supernet::{Supernet, SupernetSpec};
use nds_tensor::rng::Rng64;

fn main() {
    gp_vs_exact();
    latency_law();
    precision_sweep();
    masksembles_scale();
    mc_mapping();
    sampling_number_sweep();
    ea_vs_random_search();
    ranking_fidelity();
    sparsity_codesign();
    transformer_space();
    aim_weight_sweep();
}

/// Ablation 1: how good is the GP surrogate the paper puts in the loop?
fn gp_vs_exact() {
    println!("=== Ablation 1: GP latency surrogate vs exact model (ResNet space) ===\n");
    let spec = SupernetSpec::paper_default(zoo::resnet18(4), 9).expect("valid");
    let arch = zoo::resnet18_paper();
    let model = AcceleratorModel::new(AcceleratorConfig::resnet_paper());
    let mut csv = Vec::new();
    for train_points in [8usize, 16, 32, 64] {
        let (gp, rmse) =
            fit_latency_gp(&model, &arch, &spec, train_points, 32, 17).expect("GP fits");
        // Evaluate over the full space: exact vs predicted.
        let slots = spec.slots().to_vec();
        let mut exact = Vec::new();
        let mut predicted = Vec::new();
        for config in spec.enumerate() {
            exact.push(model.latency_ms(&arch, &config).expect("analysis runs"));
            predicted.push(gp.predict(&encode_config(&config, &slots)).0);
        }
        let rho = spearman(&exact, &predicted);
        let argmin_exact = (0..exact.len())
            .min_by(|&a, &b| exact[a].total_cmp(&exact[b]))
            .expect("non-empty");
        let argmin_gp = (0..predicted.len())
            .min_by(|&a, &b| predicted[a].total_cmp(&predicted[b]))
            .expect("non-empty");
        let agree = exact[argmin_gp] <= exact.iter().cloned().fold(f64::INFINITY, f64::min) + 1e-9;
        println!(
            "{train_points:>3} training points: held-out RMSE {rmse:.4} ms, Spearman rho {rho:.3}, GP argmin {} exact-optimal",
            if agree { "IS" } else { "IS NOT" }
        );
        csv.push(format!("{train_points},{rmse},{rho},{agree}"));
        let _ = argmin_exact;
    }
    write_csv(
        "ablation_gp.csv",
        "train_points,rmse_ms,spearman,argmin_agrees",
        &csv,
    );
    println!();
}

/// Ablation 2: the latency law. The dataflow model pins a hybrid design to
/// its slowest dropout stage; an additive model would spread the cost.
fn latency_law() {
    println!("=== Ablation 2: dataflow-bottleneck vs additive latency law ===\n");
    let arch = zoo::resnet18_paper();
    let spec = SupernetSpec::paper_default(zoo::resnet18(4), 9).expect("valid");
    let model = AcceleratorModel::new(AcceleratorConfig::resnet_paper());
    let mut csv = Vec::new();
    println!(
        "{:<10} {:>14} {:>16}",
        "config", "dataflow (ms)", "additive (ms)"
    );
    for code in ["BBBB", "MMMM", "RRRR", "KKKK", "KMBM", "BMMM", "MKMM"] {
        let config = code.parse().expect("valid code");
        let report = model.analyze(&arch, &config).expect("analysis runs");
        // Additive law: fill + S * (sum of per-stage totals) / stages — a
        // model without a pipeline, every stage serialised.
        let sum: f64 = report.stages.iter().map(|s| s.total_cycles()).sum();
        let additive_cycles = report.samples as f64 * sum;
        let additive_ms = additive_cycles / (report.clock_mhz * 1e3);
        println!(
            "{code:<10} {:>14.3} {:>16.3}",
            report.latency_ms, additive_ms
        );
        csv.push(format!("{code},{},{}", report.latency_ms, additive_ms));
    }
    write_csv(
        "ablation_latency_law.csv",
        "config,dataflow_ms,additive_ms",
        &csv,
    );
    let hybrid = model
        .analyze(&arch, &"KMBM".parse().expect("valid"))
        .expect("runs");
    let all_block = model
        .analyze(&arch, &"KKKK".parse().expect("valid"))
        .expect("runs");
    println!(
        "\nhybrid K-M-B-M sits at {:.1}% of all-Block latency under the dataflow law (paper: 18.671/18.674 = 99.98%)",
        100.0 * hybrid.latency_ms / all_block.latency_ms
    );
    let _ = spec;
    println!();
}

/// Ablation 3: precision sweep through the functional simulator.
fn precision_sweep() {
    println!("=== Ablation 3: datapath precision (LeNet, MC-3) ===\n");
    let scale = BenchScale {
        train: 1024,
        val: 64,
        ood: 64,
        epochs: 4,
    };
    let splits = dataset_splits(DatasetKind::MnistLike, scale, 31);
    let spec = SupernetSpec::paper_default(zoo::lenet(), 31).expect("valid");
    let mut supernet = Supernet::build(&spec).expect("builds");
    let mut rng = Rng64::new(31);
    supernet
        .train_spos(
            &splits.train,
            &TrainConfig {
                epochs: scale.epochs,
                batch_size: 32,
                schedule: LrSchedule::Cosine {
                    base: 0.05,
                    floor: 0.005,
                    total: scale.epochs,
                },
                momentum: 0.9,
                weight_decay: 5e-4,
                ..TrainConfig::default()
            },
            &mut rng,
        )
        .expect("training succeeds");
    supernet
        .set_config(&"BBB".parse().expect("valid"))
        .expect("in space");

    let (images, labels) = splits.test.full_batch();
    let float_engine = supernet.engine_mut();
    float_engine.set_chunk_size(64);
    let float_pred = float_engine
        .predict(&PredictRequest::new(&images))
        .expect("runs");
    let float_acc = accuracy(&float_pred.probs, &labels).expect("valid");
    println!("{:<8} {:>10} {:>12}", "format", "accuracy", "drop vs f32");
    println!("{:<8} {:>9.2}% {:>12}", "float32", 100.0 * float_acc, "-");
    let mut csv = vec![format!("float32,{float_acc},0")];
    for (name, format) in [("Q11.4", Q11_4), ("Q7.8", Q7_8), ("Q3.12", Q3_12)] {
        // Fresh copy of the trained weights per format: re-quantising an
        // already-quantised net would compound errors.
        let mut clone_net = Supernet::build(&spec).expect("builds");
        copy_params(&mut supernet, &mut clone_net);
        clone_net
            .set_config(&"BBB".parse().expect("valid"))
            .expect("in space");
        let _ = quantize_network(clone_net.net_mut(), format);
        let engine = clone_net.engine_mut();
        engine.set_backend(Backend::Quantized { format });
        let probs = engine
            .predict(&PredictRequest::new(&images))
            .expect("runs")
            .probs;
        let acc = accuracy(&probs, &labels).expect("valid");
        println!(
            "{:<8} {:>9.2}% {:>11.2}pp",
            name,
            100.0 * acc,
            100.0 * (float_acc - acc)
        );
        csv.push(format!("{name},{acc},{}", float_acc - acc));
        format_marker(format);
    }
    write_csv(
        "ablation_precision.csv",
        "format,accuracy,drop_vs_float",
        &csv,
    );
    println!("\n(the paper deploys at Q7.8; the reproduction target is a small gap at Q7.8 and a");
    println!(" larger one at the 4-fraction-bit format)\n");
}

fn format_marker(_: FixedFormat) {}

fn copy_params(from: &mut Supernet, to: &mut Supernet) {
    use nds_nn::Layer as _;
    let values: Vec<_> = from
        .net_mut()
        .params()
        .iter()
        .map(|p| p.value.clone())
        .collect();
    for (dst, src) in to.net_mut().params_mut().into_iter().zip(values) {
        dst.value = src;
    }
}

/// Ablation 4: the Masksembles overlap scale.
fn masksembles_scale() {
    println!("=== Ablation 4: Masksembles overlap scale (64-channel slot, S=3) ===\n");
    let mut csv = Vec::new();
    println!("{:<7} {:>13} {:>10}", "scale", "mean overlap", "ROM bits");
    for scale in [1.0, 1.5, 2.0, 3.0, 4.0] {
        let mut rng = Rng64::new(5);
        let set = MaskSet::generate(3, 64, scale, &mut rng);
        println!(
            "{scale:<7} {:>13.3} {:>10}",
            set.mean_overlap(),
            set.rom_bits()
        );
        csv.push(format!("{scale},{},{}", set.mean_overlap(), set.rom_bits()));
    }
    write_csv(
        "ablation_masksembles.csv",
        "scale,mean_overlap,rom_bits",
        &csv,
    );
    println!(
        "\n(overlap falls with scale — more diverse ensemble members — while the BRAM ROM cost"
    );
    println!(" stays fixed at S x features bits; the paper fixes S = 3)");
}

/// Ablation 5 (extension): temporal vs spatial Monte-Carlo mapping — the
/// optimisation direction of the paper's reference [7], modelled on top of
/// the same accelerator.
fn mc_mapping() {
    use nds_hw::accel::McMapping;
    println!("\n=== Ablation 5: temporal vs spatial MC mapping (ResNet-18, S=3) ===\n");
    let arch = zoo::resnet18_paper();
    let mut csv = Vec::new();
    println!(
        "{:<10} {:>9} {:>13} {:>8} {:>8} {:>10} {:>12}",
        "config", "mapping", "latency (ms)", "DSP %", "BRAM %", "power (W)", "energy (mJ)"
    );
    for code in ["BBBB", "KKKK"] {
        let config = code.parse().expect("valid code");
        for mapping in [McMapping::Temporal, McMapping::Spatial] {
            let mut accel = AcceleratorConfig::resnet_paper();
            accel.mapping = mapping;
            let model = AcceleratorModel::new(accel);
            let report = model.analyze(&arch, &config).expect("analysis runs");
            println!(
                "{:<10} {:>9} {:>13.3} {:>7.1}% {:>7.1}% {:>10.3} {:>12.3}",
                code,
                format!("{mapping:?}"),
                report.latency_ms,
                report.dsp.percent(),
                report.bram.percent(),
                report.power.total_w(),
                1000.0 * report.energy_per_image_j()
            );
            csv.push(format!(
                "{code},{mapping:?},{},{},{},{},{}",
                report.latency_ms,
                report.dsp.percent(),
                report.bram.percent(),
                report.power.total_w(),
                report.energy_per_image_j()
            ));
        }
    }
    write_csv(
        "ablation_mc_mapping.csv",
        "config,mapping,latency_ms,dsp_pct,bram_pct,power_w,energy_j",
        &csv,
    );
    println!("\n(spatial mapping replicates the engines: ~S x DSP for ~S x throughput — the");
    println!(" paper's temporal designs fit the 5% DSP budget instead; both obey the same");
    println!(" dropout stall model, so Block still costs latency under either mapping)");
}

/// Ablation 6 (extension): the MC sampling number S. The paper fixes
/// S = 3; this sweep shows the algorithmic return (aPE stabilises) against
/// the hardware cost (latency grows as fill + S x bottleneck).
fn sampling_number_sweep() {
    use nds_metrics::average_predictive_entropy;
    println!("\n=== Ablation 6: MC sampling number S (LeNet, all-Bernoulli) ===\n");
    let scale = BenchScale {
        train: 1024,
        val: 64,
        ood: 128,
        epochs: 3,
    };
    let splits = dataset_splits(DatasetKind::MnistLike, scale, 61);
    let spec = SupernetSpec::paper_default(zoo::lenet(), 61).expect("valid");
    let mut supernet = Supernet::build(&spec).expect("builds");
    let mut rng = Rng64::new(61);
    supernet
        .train_spos(
            &splits.train,
            &TrainConfig {
                epochs: scale.epochs,
                batch_size: 32,
                schedule: LrSchedule::Cosine {
                    base: 0.05,
                    floor: 0.005,
                    total: scale.epochs,
                },
                momentum: 0.9,
                weight_decay: 5e-4,
                ..TrainConfig::default()
            },
            &mut rng,
        )
        .expect("training succeeds");
    supernet
        .set_config(&"BBB".parse().expect("valid"))
        .expect("in space");
    let (images, labels) = splits.test.full_batch();
    let ood = splits.train.ood_noise(128, &mut rng);

    let mut csv = Vec::new();
    println!(
        "{:<4} {:>10} {:>12} {:>14}",
        "S", "accuracy", "aPE (nats)", "latency (ms)"
    );
    for samples in [1usize, 2, 3, 5, 8] {
        supernet.set_sampling_number(samples);
        let engine = supernet.engine_mut();
        engine.set_chunk_size(64);
        let pred = engine.predict(&PredictRequest::new(&images)).expect("runs");
        let acc = accuracy(&pred.probs, &labels).expect("valid");
        let ood_pred = engine.predict(&PredictRequest::new(&ood)).expect("runs");
        let ape = average_predictive_entropy(&ood_pred.probs).expect("valid");
        let mut accel = AcceleratorConfig::lenet_paper();
        accel.samples = samples;
        let model = AcceleratorModel::new(accel);
        let latency = model
            .latency_ms(&zoo::lenet(), &"BBB".parse().expect("valid"))
            .expect("analysis runs");
        println!(
            "{samples:<4} {:>9.2}% {:>12.3} {:>14.3}",
            100.0 * acc,
            ape,
            latency
        );
        csv.push(format!("{samples},{acc},{ape},{latency}"));
    }
    write_csv(
        "ablation_sampling.csv",
        "samples,accuracy,ape,latency_ms",
        &csv,
    );
    println!("\n(the paper fixes S = 3: the knee where extra samples stop buying aPE but keep");
    println!(" buying latency — visible as the latency column growing ~linearly in S)");
}

/// Ablation 7 (extension): the evolutionary algorithm vs uniform random
/// search at equal evaluation budgets, replayed over the exhaustively
/// evaluated ResNet space (so both strategies see identical ground truth).
fn ea_vs_random_search() {
    use nds_bench::{resnet_space, ReplayEvaluator};
    use nds_search::pareto::{figure4_objectives, hypervolume};
    use nds_search::{
        EvolutionConfig, EvolutionResult, RandomSearchConfig, SearchAim, SearchBuilder, Strategy,
    };

    println!("\n=== Ablation 7: evolutionary search vs random search (ResNet space, replay) ===\n");
    let space = resnet_space(2024);
    let aim = SearchAim::weighted("balanced", 1.0, 1.0, 0.5, 0.02);
    let objectives = figure4_objectives();
    // Reference point: the worst value of each objective over the space.
    let reference = [
        space
            .archive
            .iter()
            .map(|c| c.metrics.accuracy)
            .fold(f64::INFINITY, f64::min),
        space
            .archive
            .iter()
            .map(|c| c.metrics.ece)
            .fold(f64::NEG_INFINITY, f64::max),
        space
            .archive
            .iter()
            .map(|c| c.metrics.ape)
            .fold(f64::INFINITY, f64::min),
    ];
    let exhaustive_best = space
        .archive
        .iter()
        .map(|c| aim.score(c))
        .fold(f64::NEG_INFINITY, f64::max);

    let mut csv = Vec::new();
    println!(
        "{:<8} {:>6} {:>6} {:>12} {:>12} {:>10}",
        "strategy", "seed", "evals", "best score", "regret", "hypervol"
    );
    for seed in [1u64, 2, 3, 4, 5] {
        // EA first; its fresh-evaluation count sets the random budget.
        let mut ea_eval = ReplayEvaluator::new(&space.archive);
        let ea: EvolutionResult = SearchBuilder::with_evaluator(&mut ea_eval, space.spec.clone())
            .strategy(Strategy::Evolution(EvolutionConfig {
                population: 12,
                generations: 5,
                parents: 4,
                seed,
                ..Default::default()
            }))
            .aim(aim.clone())
            .build()
            .expect("EA session builds")
            .run()
            .expect("EA runs")
            .into();
        let budget = nds_search::Evaluator::fresh_evaluations(&ea_eval);
        let mut rs_eval = ReplayEvaluator::new(&space.archive);
        let rs: EvolutionResult = SearchBuilder::with_evaluator(&mut rs_eval, space.spec.clone())
            .strategy(Strategy::Random(RandomSearchConfig { budget, seed }))
            .aim(aim.clone())
            .build()
            .expect("random session builds")
            .run()
            .expect("random search runs")
            .into();
        for (name, result) in [("EA", &ea), ("random", &rs)] {
            let best = aim.score(&result.best);
            let hv = hypervolume(&result.archive, &objectives, &reference);
            println!(
                "{name:<8} {seed:>6} {budget:>6} {best:>12.4} {:>12.4} {hv:>10.4}",
                exhaustive_best - best
            );
            csv.push(format!(
                "{name},{seed},{budget},{best},{},{hv}",
                exhaustive_best - best
            ));
        }
    }
    write_csv(
        "ablation_ea_vs_random.csv",
        "strategy,seed,budget,best_score,regret,hypervolume",
        &csv,
    );
    println!("\n(regret = exhaustive-optimal aim score minus the strategy's best; the EA should");
    println!(" match or beat random search at equal budget, with lower variance across seeds)");
}

/// Ablation 8 (extension): is the one-shot supernet a faithful proxy?
/// Correlates shared-weight evaluation against dedicated per-config
/// training (the ground truth the SPOS paradigm approximates).
fn ranking_fidelity() {
    use nds_data::{mnist_like, DatasetConfig};
    use nds_dropout::DropoutSettings;
    use nds_supernet::{train_standalone, Supernet};

    println!("\n=== Ablation 8: supernet ranking fidelity (LeNet, 8 configs) ===\n");
    // A deliberately unsaturated operating point: at the 4-epoch benchmark
    // scale every config hits ~100% accuracy and ranks degenerate to
    // tie-break noise, so this experiment trains shorter on noisier data.
    let splits = mnist_like(&DatasetConfig {
        train: 768,
        val: 256,
        test: 64,
        seed: 0x8A,
        noise: 0.20,
    });
    let mut rng = Rng64::new(0xF1DE);
    let ood = splits.train.ood_noise(128, &mut rng);
    let train_config = TrainConfig {
        epochs: 2,
        batch_size: 32,
        schedule: LrSchedule::Cosine {
            base: 0.05,
            floor: 0.005,
            total: 2,
        },
        momentum: 0.9,
        weight_decay: 5e-4,
        ..TrainConfig::default()
    };
    let spec = SupernetSpec::paper_default(zoo::lenet(), 0x8A).expect("valid");
    let mut supernet = Supernet::build(&spec).expect("builds");
    supernet
        .train_spos(&splits.train, &train_config, &mut rng)
        .expect("training succeeds");
    supernet.set_calibration_from(&splits.train, 4, 64, &mut rng);
    // A spread of uniform and hybrid configurations.
    let probes = ["BBB", "RRB", "KKM", "MMM", "BKB", "MRB", "KMM", "RMB"];

    let mut csv = Vec::new();
    let mut supernet_acc = Vec::new();
    let mut standalone_acc = Vec::new();
    let mut supernet_ape = Vec::new();
    let mut standalone_ape = Vec::new();
    println!(
        "{:<6} {:>14} {:>16} {:>12} {:>14}",
        "config", "supernet acc%", "standalone acc%", "supernet aPE", "standalone aPE"
    );
    for code in probes {
        let config = code.parse().expect("valid code");
        let proxy = supernet
            .evaluate(&config, &splits.val, &ood, 64)
            .expect("supernet evaluation runs");
        // Average two dedicated trainings per config: single-run seed
        // variance at this scale would otherwise drown the ranking signal.
        let mut truth = nds_supernet::CandidateMetrics {
            accuracy: 0.0,
            ece: 0.0,
            ape: 0.0,
        };
        let runs = 3u32;
        for run in 0..runs {
            let seed = code.bytes().fold(0xBEEFu64 ^ u64::from(run), |h, b| {
                h.wrapping_mul(31).wrapping_add(b as u64)
            });
            let m = train_standalone(
                &zoo::lenet(),
                &config,
                &DropoutSettings::default(),
                &splits.train,
                &splits.val,
                &ood,
                &train_config,
                3,
                64,
                seed,
            )
            .expect("standalone training runs")
            .metrics;
            truth.accuracy += m.accuracy / f64::from(runs);
            truth.ece += m.ece / f64::from(runs);
            truth.ape += m.ape / f64::from(runs);
        }
        println!(
            "{code:<6} {:>13.2}% {:>15.2}% {:>12.3} {:>14.3}",
            100.0 * proxy.accuracy,
            100.0 * truth.accuracy,
            proxy.ape,
            truth.ape
        );
        csv.push(format!(
            "{code},{},{},{},{},{},{}",
            proxy.accuracy, truth.accuracy, proxy.ece, truth.ece, proxy.ape, truth.ape
        ));
        supernet_acc.push(proxy.accuracy);
        standalone_acc.push(truth.accuracy);
        supernet_ape.push(proxy.ape);
        standalone_ape.push(truth.ape);
    }
    let rho_acc = spearman(&supernet_acc, &standalone_acc);
    let rho_ape = spearman(&supernet_ape, &standalone_ape);
    println!("\nSpearman rho: accuracy {rho_acc:.3}, aPE {rho_ape:.3}");
    csv.push(format!("spearman,{rho_acc},,,,{rho_ape},"));
    write_csv(
        "ablation_ranking.csv",
        "config,supernet_acc,standalone_acc,supernet_ece,standalone_ece,supernet_ape,standalone_ape",
        &csv,
    );
    // The coarse uncertainty contrast the search exploits: the static
    // mask set (all-Masksembles) sits at the entropy bottom in both worlds.
    let rank_of = |xs: &[f64], target: usize| 1 + xs.iter().filter(|&&v| v < xs[target]).count();
    let mmm = probes.iter().position(|&c| c == "MMM").expect("MMM probed");
    println!(
        "all-Masksembles aPE rank (1 = lowest entropy of {}): supernet #{} / standalone #{}",
        probes.len(),
        rank_of(&supernet_ape, mmm),
        rank_of(&standalone_ape, mmm)
    );
    println!("(the SPOS proxy preserves accuracy ranks moderately (positive rho) and the");
    println!(" coarse uncertainty contrast — the static mask set lands at or near the");
    println!(" entropy bottom in both worlds — while fine aPE ranks inside the stochastic");
    println!(" cluster are noise-dominated; the same caveat is reported for one-shot NAS");
    println!(" proxies generally)");
}

/// Ablation 9 (extension): sparsity co-design — the paper's future-work
/// item. Magnitude/channel pruning of a trained standalone LeNet against
/// the sparse accelerator model's latency and memory.
fn sparsity_codesign() {
    use nds_dropout::DropoutSettings;
    use nds_hw::accel::SparsitySupport;
    use nds_nn::loss::softmax_cross_entropy;
    use nds_nn::optim::Sgd;
    use nds_nn::prune::{measured_sparsity, prune_channels, prune_magnitude, PruneMask};
    use nds_nn::Layer as _;
    use nds_supernet::train_standalone;

    println!("\n=== Ablation 9: sparsity co-design (LeNet all-Bernoulli, Q7.8 design point) ===\n");
    let scale = BenchScale {
        train: 1536,
        epochs: 4,
        ..BenchScale::default()
    };
    let splits = dataset_splits(DatasetKind::MnistLike, scale, 91);
    let mut rng = Rng64::new(91);
    let ood = splits.train.ood_noise(scale.ood, &mut rng);
    let config: nds_supernet::DropoutConfig = "BBB".parse().expect("valid");
    let result = train_standalone(
        &zoo::lenet(),
        &config,
        &DropoutSettings::default(),
        &splits.train,
        &splits.val,
        &ood,
        &TrainConfig {
            epochs: scale.epochs,
            batch_size: 32,
            schedule: LrSchedule::Cosine {
                base: 0.05,
                floor: 0.005,
                total: scale.epochs,
            },
            momentum: 0.9,
            weight_decay: 5e-4,
            ..TrainConfig::default()
        },
        3,
        64,
        91,
    )
    .expect("standalone training runs");
    let dense_acc = result.metrics.accuracy;
    let snapshot: Vec<_> = result
        .net
        .params()
        .iter()
        .map(|p| p.value.clone())
        .collect();
    let (test_images, test_labels) = splits.test.full_batch();
    // One serving engine owns the net for the whole sweep: weight
    // restores/prunes/fine-tunes below are detected by its clone-cache
    // fingerprint, so every MC measurement sees the current weights.
    let mut engine = EngineBuilder::new(result.net)
        .samples(3)
        .chunk_size(64)
        .build();

    let mut csv = Vec::new();
    println!(
        "{:<13} {:>9} {:>10} {:>10} {:>13} {:>8}",
        "scheme", "sparsity", "raw acc%", "tuned acc%", "latency (ms)", "BRAM %"
    );
    for structured in [false, true] {
        let scheme = if structured {
            "structured"
        } else {
            "unstructured"
        };
        for target in [0.0, 0.25, 0.5, 0.75, 0.9] {
            // Restore the dense weights, prune, measure, fine-tune, measure.
            for (dst, src) in engine.net_mut().params_mut().into_iter().zip(&snapshot) {
                dst.value = src.clone();
            }
            if structured {
                prune_channels(engine.net_mut(), target);
            } else {
                prune_magnitude(engine.net_mut(), target);
            }
            let sparsity = measured_sparsity(engine.net());
            let raw = engine
                .predict(&PredictRequest::new(&test_images))
                .expect("runs");
            let raw_acc = accuracy(&raw.probs, &test_labels).expect("valid");
            // One fine-tuning epoch with the mask re-applied per step.
            let mask = PruneMask::capture(engine.net());
            let sgd = Sgd::with_momentum(0.01, 0.9, 5e-4);
            let mut tune_rng = rng.fork(0x7E * (1 + (target * 100.0) as u64));
            for (images, labels) in splits.train.iter_batches(32, &mut tune_rng) {
                let net = engine.net_mut();
                let logits = net.forward(&images, nds_nn::Mode::Train).expect("runs");
                let (_, dlogits) = softmax_cross_entropy(&logits, &labels).expect("runs");
                net.backward(&dlogits).expect("runs");
                let mut params = net.params_mut();
                sgd.step(&mut params);
                sgd.zero_grad(&mut params);
                mask.reapply(net);
            }
            let tuned = engine
                .predict(&PredictRequest::new(&test_images))
                .expect("runs");
            let tuned_acc = accuracy(&tuned.probs, &test_labels).expect("valid");
            // Hardware side: the sparse accelerator at this operating point.
            let mut accel = AcceleratorConfig::lenet_paper();
            accel.sparsity = if structured {
                SparsitySupport::structured(sparsity)
            } else {
                SparsitySupport::unstructured(sparsity)
            };
            let report = AcceleratorModel::new(accel)
                .analyze(&zoo::lenet(), &config)
                .expect("analysis runs");
            println!(
                "{scheme:<13} {sparsity:>9.2} {:>9.2}% {:>9.2}% {:>13.3} {:>7.1}%",
                100.0 * raw_acc,
                100.0 * tuned_acc,
                report.latency_ms,
                report.bram.percent()
            );
            csv.push(format!(
                "{scheme},{sparsity},{raw_acc},{tuned_acc},{},{}",
                report.latency_ms,
                report.bram.percent()
            ));
        }
    }
    write_csv(
        "ablation_sparsity.csv",
        "scheme,sparsity,raw_accuracy,finetuned_accuracy,latency_ms,bram_pct",
        &csv,
    );
    println!(
        "\n(dense accuracy {:.2}%; the co-design story: structured pruning buys",
        100.0 * dense_acc
    );
    println!(" proportional latency, unstructured buys less per zero and pays index BRAM —");
    println!(" while fine-tuning recovers most of the accuracy at moderate sparsity)");
}

/// Ablation 10 (extension): the framework generalised to a transformer —
/// the paper's future-work item. Exhaustively evaluates the tiny-ViT
/// dropout space (2 slots × 4 kinds) and reports the per-kind structure.
fn transformer_space() {
    use nds_data::mnist_like;
    use nds_data::DatasetConfig;
    use nds_hw::accel::{AcceleratorConfig as AC, AcceleratorModel as AM};
    use nds_search::{LatencyProvider, SearchBuilder, Strategy};
    use nds_supernet::Supernet;

    println!("\n=== Ablation 10: dropout search over a tiny vision transformer ===\n");
    let arch = zoo::tiny_vit(16, 4, 2);
    let spec = SupernetSpec::paper_default(arch.clone(), 101).expect("valid");
    let splits = mnist_like(&DatasetConfig {
        train: 1024,
        val: 192,
        test: 64,
        seed: 101,
        noise: 0.08,
    });
    let mut supernet = Supernet::build(&spec).expect("builds");
    let mut rng = Rng64::new(101);
    supernet
        .train_spos(
            &splits.train,
            &TrainConfig {
                epochs: 6,
                batch_size: 32,
                schedule: LrSchedule::Cosine {
                    base: 0.08,
                    floor: 0.008,
                    total: 6,
                },
                momentum: 0.9,
                weight_decay: 1e-4,
                ..TrainConfig::default()
            },
            &mut rng,
        )
        .expect("training succeeds");
    let ood = splits.train.ood_noise(96, &mut rng);
    let model = AM::new(AC::lenet_paper());
    let latency = LatencyProvider::Exact {
        model,
        arch: arch.clone(),
    };
    let archive = SearchBuilder::new(&mut supernet)
        .strategy(Strategy::Exhaustive)
        .validation(&splits.val)
        .ood(ood)
        .latency(latency)
        .batch_size(64)
        .build()
        .expect("session builds")
        .run()
        .expect("evaluation runs")
        .archive
        .into_candidates();

    let mut csv = Vec::new();
    println!(
        "{:<8} {:>9} {:>8} {:>11} {:>13}",
        "config", "acc%", "ECE%", "aPE (nats)", "latency (ms)"
    );
    for candidate in &archive {
        println!(
            "{:<8} {:>8.1}% {:>7.1}% {:>11.3} {:>13.3}",
            candidate.config.compact(),
            100.0 * candidate.metrics.accuracy,
            100.0 * candidate.metrics.ece,
            candidate.metrics.ape,
            candidate.latency_ms
        );
        csv.push(format!(
            "{},{},{},{},{}",
            candidate.config.compact(),
            candidate.metrics.accuracy,
            candidate.metrics.ece,
            candidate.metrics.ape,
            candidate.latency_ms
        ));
    }
    write_csv(
        "ablation_transformer.csv",
        "config,accuracy,ece,ape,latency_ms",
        &csv,
    );

    // Structure checks mirroring the CNN experiments.
    let by = |code: &str| {
        archive
            .iter()
            .find(|c| c.config.compact() == code)
            .unwrap_or_else(|| panic!("{code} missing"))
    };
    let (bb, mm, kk, rr) = (by("BB"), by("MM"), by("KK"), by("RR"));
    println!(
        "\nlatency: BB {:.3} = MM {:.3} < RR {:.3} <= KK {:.3} ms (stall-free vs stalling kinds)",
        bb.latency_ms, mm.latency_ms, rr.latency_ms, kk.latency_ms
    );
    let acc_best = archive
        .iter()
        .max_by(|a, b| a.metrics.accuracy.total_cmp(&b.metrics.accuracy))
        .expect("non-empty");
    println!(
        "accuracy-optimal config: {} ({:.1}%), uniform: {}",
        acc_best.config,
        100.0 * acc_best.metrics.accuracy,
        acc_best.config.is_uniform()
    );
    println!("(token-granular dropout: Masksembles drops whole tokens, Block drops");
    println!(" embedding spans — the same search machinery, metrics and latency law");
    println!(" apply unchanged, which is the claim behind the paper's future-work item)");
}

/// Ablation 11 (extension): aim-weight sensitivity. The paper states that
/// adjusting the Eq.-2 weights recovers different Pareto-optimal designs;
/// this sweeps a grid of weightings over the exhaustively-evaluated ResNet
/// space and verifies every scalarised optimum lands on the reference
/// frontier (and that distinct weightings reach distinct frontier points).
fn aim_weight_sweep() {
    use nds_bench::resnet_space;
    use nds_search::pareto::{figure4_objectives, on_frontier};
    use nds_search::SearchAim;
    use std::collections::HashSet;

    println!("\n=== Ablation 11: aim-weight sensitivity (replayed ResNet space) ===\n");
    let space = resnet_space(2024);
    let objectives = figure4_objectives();
    let mut csv = Vec::new();
    let mut winners: HashSet<String> = HashSet::new();
    let mut all_on_frontier = true;
    println!(
        "{:<24} {:>8} {:>9} {:>7} {:>11} {:>9}",
        "aim (eta,mu,beta)", "winner", "acc%", "ECE%", "aPE (nats)", "frontier"
    );
    for eta in [0.0, 1.0, 4.0] {
        for mu in [0.0, 1.0, 4.0] {
            for beta in [0.0, 0.5, 2.0] {
                if eta == 0.0 && mu == 0.0 && beta == 0.0 {
                    continue; // degenerate constant aim
                }
                let aim = SearchAim::weighted(format!("{eta}/{mu}/{beta}"), eta, mu, beta, 0.0);
                let best = space.best_by(|c| aim.score(c));
                let on = on_frontier(best, &space.archive, &objectives);
                all_on_frontier &= on;
                winners.insert(best.config.compact());
                println!(
                    "{:<24} {:>8} {:>8.1}% {:>6.1}% {:>11.3} {:>9}",
                    format!("({eta}, {mu}, {beta})"),
                    best.config.compact(),
                    100.0 * best.metrics.accuracy,
                    100.0 * best.metrics.ece,
                    best.metrics.ape,
                    if on { "ON" } else { "OFF" }
                );
                csv.push(format!(
                    "{eta},{mu},{beta},{},{},{},{},{on}",
                    best.config.compact(),
                    best.metrics.accuracy,
                    best.metrics.ece,
                    best.metrics.ape
                ));
            }
        }
    }
    write_csv(
        "ablation_aim_weights.csv",
        "eta,mu,beta,winner,accuracy,ece,ape,on_frontier",
        &csv,
    );
    println!(
        "\n{} distinct weightings -> {} distinct frontier designs; all on the reference frontier: {}",
        csv.len(),
        winners.len(),
        all_on_frontier
    );
    println!("(positively-weighted scalarisation is Pareto-optimal by construction; the sweep");
    println!(
        " shows the practical flexibility claim of Section 4.1 — different priorities recover"
    );
    println!(" genuinely different designs, not one point relabelled)");
}
