//! Criterion micro-benchmarks for the performance-critical kernels:
//! convolution, matmul, the four mask generators, MC inference through
//! the serving engine, the GP surrogate, the accelerator analyzer and
//! the fixed-point datapath.
//!
//! Run with: `cargo bench --bench micro`
//!
//! The `mc_predict_*` bench IDs keep their historical names (the PR 1-3
//! trajectory) but measure through the `UncertaintyEngine`, which runs
//! the same MC harness byte for byte — the deprecated free-function
//! wrappers are no longer exercised here.

use criterion::{criterion_group, criterion_main, Criterion};
use nds_dropout::masks::{bernoulli_mask, block_mask, random_mask};
use nds_dropout::masksembles::MaskSet;
use nds_engine::{EngineBuilder, PredictRequest};
use nds_gp::{GpRegressor, Kernel};
use nds_hw::accel::{AcceleratorConfig, AcceleratorModel};
use nds_hw::lfsr::Lfsr16;
use nds_metrics::{ece, EceConfig};
use nds_nn::zoo;
use nds_quant::{Fixed, MacUnit, Q7_8};
use nds_supernet::{Supernet, SupernetSpec};
use nds_tensor::conv::{conv2d, ConvGeometry};
use nds_tensor::rng::Rng64;
use nds_tensor::{Shape, Tensor};
use std::hint::black_box;

fn bench_tensor_kernels(c: &mut Criterion) {
    let mut rng = Rng64::new(1);
    let a = Tensor::rand_normal(Shape::d2(128, 128), 0.0, 1.0, &mut rng);
    let b = Tensor::rand_normal(Shape::d2(128, 128), 0.0, 1.0, &mut rng);
    c.bench_function("matmul_128x128", |bench| {
        bench.iter(|| black_box(a.matmul(&b).unwrap()))
    });

    // The perf-trajectory headliner: 256³, optimised vs the seed kernel.
    let a256 = Tensor::rand_normal(Shape::d2(256, 256), 0.0, 1.0, &mut rng);
    let b256 = Tensor::rand_normal(Shape::d2(256, 256), 0.0, 1.0, &mut rng);
    let bt256 = b256.transpose().unwrap();
    c.bench_function("matmul_256x256", |bench| {
        bench.iter(|| black_box(a256.matmul(&b256).unwrap()))
    });
    c.bench_function("matmul_naive_256x256", |bench| {
        bench.iter(|| black_box(a256.matmul_naive(&b256).unwrap()))
    });
    c.bench_function("matmul_transb_256x256", |bench| {
        bench.iter(|| black_box(a256.matmul_transb(&bt256).unwrap()))
    });

    let input = Tensor::rand_normal(Shape::d4(1, 16, 32, 32), 0.0, 1.0, &mut rng);
    let weight = Tensor::rand_normal(Shape::d4(16, 16, 3, 3), 0.0, 0.1, &mut rng);
    c.bench_function("conv2d_16x32x32_3x3", |bench| {
        bench.iter(|| black_box(conv2d(&input, &weight, None, ConvGeometry::new(3, 1, 1)).unwrap()))
    });
}

fn bench_mask_generators(c: &mut Criterion) {
    const N: usize = 16 * 32 * 32;
    c.bench_function("mask_bernoulli_16k", |bench| {
        let mut rng = Rng64::new(2);
        bench.iter(|| black_box(bernoulli_mask(N, 0.25, &mut rng)))
    });
    c.bench_function("mask_random_16k", |bench| {
        let mut rng = Rng64::new(3);
        bench.iter(|| black_box(random_mask(N, 0.25, &mut rng)))
    });
    c.bench_function("mask_block_32x32", |bench| {
        let mut rng = Rng64::new(4);
        bench.iter(|| black_box(block_mask(32, 32, 0.25, 3, &mut rng)))
    });
    c.bench_function("masksembles_generate_3x256", |bench| {
        bench.iter(|| {
            let mut rng = Rng64::new(5);
            black_box(MaskSet::generate(3, 256, 2.0, &mut rng))
        })
    });
    c.bench_function("lfsr16_step_x1024", |bench| {
        let mut lfsr = Lfsr16::new(0xACE1);
        bench.iter(|| {
            let mut acc = 0u32;
            for _ in 0..1024 {
                acc = acc.wrapping_add(lfsr.next_word() as u32);
            }
            black_box(acc)
        })
    });
}

fn bench_inference(c: &mut Criterion) {
    let spec = SupernetSpec::paper_default(zoo::lenet(), 6).expect("valid");
    let mut supernet = Supernet::build(&spec).expect("builds");
    supernet
        .set_config(&"BBB".parse().expect("valid"))
        .expect("in space");
    let mut rng = Rng64::new(7);
    let images = Tensor::rand_normal(Shape::d4(8, 1, 28, 28), 0.0, 1.0, &mut rng);
    // Small-batch MC prediction through the engine (pool-wide workers,
    // chunk 8 — the settings the historical mc_predict wrapper used).
    let mut small_engine = EngineBuilder::new(supernet.net().clone())
        .samples(3)
        .chunk_size(8)
        .build();
    c.bench_function("mc_predict_lenet_s3_b8", |bench| {
        bench.iter(|| {
            let resp = small_engine.predict(&PredictRequest::new(&images)).unwrap();
            let n = resp.probs.shape().dim(0);
            small_engine.recycle(resp);
            black_box(n)
        })
    });

    // End-to-end MC throughput at a heavier batch — the shape of the
    // supernet-evaluation inner loop. The engine's persistent clone
    // cache and warm workspace make steady-state rounds allocation-free
    // even on the parallel path.
    let big = Tensor::rand_normal(Shape::d4(32, 1, 28, 28), 0.0, 1.0, &mut rng);
    let workers = nds_tensor::parallel::worker_count();
    let mut pooled_engine = EngineBuilder::new(supernet.net().clone())
        .samples(3)
        .workers(workers)
        .chunk_size(32)
        .build();
    c.bench_function("mc_predict_lenet_s3_b32_pooled", |bench| {
        bench.iter(|| {
            let resp = pooled_engine.predict(&PredictRequest::new(&big)).unwrap();
            let n = resp.probs.shape().dim(0);
            pooled_engine.recycle(resp);
            black_box(n)
        })
    });

    // Engine-default scheduling on the same workload (the serving shape).
    let mut engine = EngineBuilder::new(supernet.net().clone())
        .samples(3)
        .build();
    c.bench_function("engine_predict_lenet_s3_b32", |bench| {
        bench.iter(|| {
            let resp = engine.predict(&PredictRequest::new(&big)).unwrap();
            let n = resp.probs.shape().dim(0);
            engine.recycle(resp);
            black_box(n)
        })
    });
}

fn bench_models(c: &mut Criterion) {
    // GP surrogate: fit and predict.
    let mut rng = Rng64::new(8);
    let xs: Vec<Vec<f64>> = (0..32)
        .map(|_| (0..12).map(|_| rng.uniform()).collect())
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<f64>()).collect();
    c.bench_function("gp_fit_32pts", |bench| {
        bench.iter(|| {
            black_box(
                GpRegressor::fit(
                    &xs,
                    &ys,
                    Kernel::Matern52 {
                        lengthscale: 2.0,
                        variance: 1.0,
                    },
                    1e-6,
                )
                .unwrap(),
            )
        })
    });
    let gp = GpRegressor::fit(
        &xs,
        &ys,
        Kernel::Matern52 {
            lengthscale: 2.0,
            variance: 1.0,
        },
        1e-6,
    )
    .unwrap();
    let query: Vec<f64> = (0..12).map(|i| i as f64 / 12.0).collect();
    c.bench_function("gp_predict", |bench| {
        bench.iter(|| black_box(gp.predict(&query)))
    });

    // Accelerator analysis: the call the search loop amortises via the GP.
    let model = AcceleratorModel::new(AcceleratorConfig::resnet_paper());
    let arch = zoo::resnet18_paper();
    let config = "KMBM".parse().expect("valid");
    c.bench_function("accel_analyze_resnet18", |bench| {
        bench.iter(|| black_box(model.analyze(&arch, &config).unwrap()))
    });
}

fn bench_fixed_point(c: &mut Criterion) {
    let a = Fixed::from_f32(1.25, Q7_8);
    let b = Fixed::from_f32(-0.5, Q7_8);
    c.bench_function("fixed_mul_x1024", |bench| {
        bench.iter(|| {
            let mut acc = Fixed::zero(Q7_8);
            for _ in 0..1024 {
                acc = acc + a * b;
            }
            black_box(acc)
        })
    });
    c.bench_function("mac_unit_dot_1024", |bench| {
        bench.iter(|| {
            let mut mac = MacUnit::new(Q7_8);
            for _ in 0..1024 {
                mac.mac(a, b);
            }
            black_box(mac.readout())
        })
    });
}

fn bench_attention(c: &mut Criterion) {
    use nds_nn::layers::{MultiHeadAttention, PatchEmbed};
    use nds_nn::{Layer, Mode};
    let mut rng = Rng64::new(11);
    let mut attn = MultiHeadAttention::new(16, 4, &mut rng);
    let tokens = Tensor::rand_normal(Shape::d4(8, 16, 1, 16), 0.0, 1.0, &mut rng);
    c.bench_function("attention_fwd_8x16x16", |bench| {
        bench.iter(|| black_box(attn.forward(&tokens, Mode::Train).unwrap()))
    });
    let mut embed = PatchEmbed::new(1, 7, 16, &mut rng);
    let images = Tensor::rand_normal(Shape::d4(8, 1, 28, 28), 0.0, 1.0, &mut rng);
    c.bench_function("patch_embed_fwd_8x28x28", |bench| {
        bench.iter(|| black_box(embed.forward(&images, Mode::Train).unwrap()))
    });
}

fn bench_metrics(c: &mut Criterion) {
    let mut rng = Rng64::new(9);
    let n = 512;
    let classes = 10;
    let mut data = Vec::with_capacity(n * classes);
    for _ in 0..n {
        let mut row: Vec<f32> = (0..classes).map(|_| rng.uniform_f32() + 1e-3).collect();
        let sum: f32 = row.iter().sum();
        row.iter_mut().for_each(|v| *v /= sum);
        data.extend(row);
    }
    let probs = Tensor::from_vec(data, Shape::d2(n, classes)).unwrap();
    let labels: Vec<usize> = (0..n).map(|_| rng.below(classes)).collect();
    c.bench_function("ece_512x10", |bench| {
        bench.iter(|| black_box(ece(&probs, &labels, EceConfig::default()).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_tensor_kernels, bench_mask_generators, bench_inference, bench_models, bench_fixed_point, bench_metrics, bench_attention
}
criterion_main!(benches);
