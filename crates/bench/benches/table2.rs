//! **Table 2** — Search costs and resultant configurations on three
//! networks (LeNet, VGG, ResNet).
//!
//! Reproduction: for each network the supernet is trained once with SPOS,
//! then the evolutionary search runs four times (one per single-metric
//! aim). We report wall-clock search cost — the analogue of the paper's
//! GPU-hours — and the resulting configurations in the paper's `B - K - M`
//! notation.
//!
//! Run with: `cargo bench --bench table2`

use nds_bench::{dataset_splits, write_csv, BenchScale};
use nds_data::DatasetKind;
use nds_hw::accel::{AcceleratorConfig, AcceleratorModel};
use nds_nn::arch::Architecture;
use nds_nn::optim::LrSchedule;
use nds_nn::train::TrainConfig;
use nds_nn::zoo;
use nds_search::{
    EvolutionConfig, LatencyProvider, SearchAim, SearchBuilder, Strategy, SupernetEvaluator,
};
use nds_supernet::{Supernet, SupernetSpec};
use nds_tensor::rng::Rng64;
use std::time::Instant;

struct NetworkCase {
    label: &'static str,
    train_arch: Architecture,
    hw_arch: Architecture,
    dataset: DatasetKind,
    accel: AcceleratorConfig,
    paper_cost: &'static str,
}

fn main() {
    println!("=== Table 2: search costs and resultant configurations ===\n");
    let cases = [
        NetworkCase {
            label: "LeNet",
            train_arch: zoo::lenet(),
            hw_arch: zoo::lenet(),
            dataset: DatasetKind::MnistLike,
            accel: AcceleratorConfig::lenet_paper(),
            paper_cost: "~2 GPU-hours",
        },
        NetworkCase {
            label: "VGG",
            train_arch: zoo::vgg11(4),
            hw_arch: zoo::vgg11_paper(),
            dataset: DatasetKind::SvhnLike,
            accel: AcceleratorConfig::resnet_paper(),
            paper_cost: "~6 GPU-hours",
        },
        NetworkCase {
            label: "ResNet",
            train_arch: zoo::resnet18(4),
            hw_arch: zoo::resnet18_paper(),
            dataset: DatasetKind::CifarLike,
            accel: AcceleratorConfig::resnet_paper(),
            paper_cost: "~10 GPU-hours",
        },
    ];

    let scale = BenchScale {
        train: 1024,
        val: 64,
        ood: 64,
        epochs: 3,
    };
    let mut csv = Vec::new();
    for case in cases {
        let seed = 4242;
        let spec = SupernetSpec::paper_default(case.train_arch.clone(), seed)
            .expect("zoo architectures are valid");
        let splits = dataset_splits(case.dataset, scale, seed);
        let mut supernet = Supernet::build(&spec).expect("supernet builds");
        let mut rng = Rng64::new(seed);
        let t0 = Instant::now();
        supernet
            .train_spos(
                &splits.train,
                &TrainConfig {
                    epochs: scale.epochs,
                    batch_size: 32,
                    schedule: LrSchedule::Cosine {
                        base: 0.05,
                        floor: 0.005,
                        total: scale.epochs,
                    },
                    momentum: 0.9,
                    weight_decay: 5e-4,
                    ..TrainConfig::default()
                },
                &mut rng,
            )
            .expect("training succeeds");
        let train_s = t0.elapsed().as_secs_f64();

        let val = splits
            .val
            .subset(&(0..scale.val.min(splits.val.len())).collect::<Vec<_>>());
        let ood = splits.train.ood_noise(scale.ood, &mut rng);
        let model = AcceleratorModel::new(case.accel.clone());
        let latency = LatencyProvider::Exact {
            model,
            arch: case.hw_arch.clone(),
        };
        // One evaluator shared by all four per-aim sessions: candidate
        // metrics are aim-independent, so its memo cache carries
        // evaluations from one aim's search to the next.
        let mut evaluator = SupernetEvaluator::new(&mut supernet, &val, ood, latency, 64);

        let t0 = Instant::now();
        let mut configs = Vec::new();
        for aim in SearchAim::table1_presets() {
            let result = SearchBuilder::with_evaluator(&mut evaluator, spec.clone())
                .strategy(Strategy::Evolution(EvolutionConfig {
                    population: 12,
                    generations: 5,
                    parents: 5,
                    seed: seed ^ 0xA1,
                    ..EvolutionConfig::default()
                }))
                .aim(aim.clone())
                .build()
                .expect("session builds")
                .run()
                .expect("search runs");
            configs.push((aim.name.clone(), result.best.config.clone()));
        }
        let search_s = t0.elapsed().as_secs_f64();

        println!(
            "{:<8} search cost {:.1}s wall (train {:.1}s) [paper: {} on a GTX 2080 Ti]",
            case.label, search_s, train_s, case.paper_cost
        );
        for (aim, config) in &configs {
            println!("         {:<18} {}", format!("{aim}:"), config);
            csv.push(format!(
                "{},{},{},{:.2},{:.2}",
                case.label,
                aim,
                config.compact(),
                train_s,
                search_s
            ));
        }
        println!();
    }
    write_csv("table2.csv", "network,aim,config,train_s,search_s", &csv);
    println!("paper reference (Table 2): LeNet acc B-B-M / ECE M-M-B / aPE R-R-B / latency M-M-M;");
    println!("VGG acc R-B-B-R / ECE R-K-R-M / aPE R-R-R-R / latency M-M-M-M;");
    println!("ResNet acc K-M-B-M / ECE M-M-M-M / aPE B-B-B-B / latency M-M-M-M.");
    println!("(configs are stochastic functions of training; the structural claims — hybrid accuracy optima,");
    println!(" all-Masksembles latency optima — are the reproduction target; see EXPERIMENTS.md)");
}
