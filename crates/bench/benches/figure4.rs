//! **Figure 4** — Search results: every configuration plotted in
//! (ECE, aPE) space coloured by accuracy, with the uniform baselines
//! highlighted and the searched designs shown to lie on the reference
//! Pareto frontier.
//!
//! Reproduction: the exhaustively-evaluated ResNet space (shared with the
//! Table-1 harness via the on-disk cache). Emits `results/figure4.csv`
//! with one row per configuration plus frontier/baseline flags, and prints
//! an ASCII rendition of the scatter.
//!
//! Run with: `cargo bench --bench figure4`

use nds_bench::{ascii_scatter, resnet_space, write_csv};
use nds_dropout::DropoutKind;
use nds_search::pareto::{figure4_objectives, on_frontier, pareto_front};
use nds_search::SearchAim;
use nds_supernet::DropoutConfig;

fn main() {
    println!("=== Figure 4: ECE vs aPE vs accuracy over the full ResNet space ===\n");
    let space = resnet_space(2024);
    let objectives = figure4_objectives();
    let frontier = pareto_front(&space.archive, &objectives);
    let uniforms: Vec<DropoutConfig> = DropoutKind::all()
        .into_iter()
        .map(|kind| DropoutConfig::uniform(kind, 4))
        .collect();
    // The paper adjusts the *algorithmic* aim weights to trace out
    // different Pareto-optimal designs; latency is not a Figure-4 axis.
    // Single-metric aims carry epsilon weights on the other two metrics:
    // with a finite validation set metric ties are common, and the epsilon
    // tie-breaker keeps every positively-weighted optimum Pareto-optimal.
    let eps = 1e-6;
    let search_aims = [
        SearchAim::weighted("Accuracy Optimal", 1.0, eps, eps, 0.0),
        SearchAim::weighted("ECE Optimal", eps, 1.0, eps, 0.0),
        SearchAim::weighted("aPE Optimal", eps, eps, 1.0, 0.0),
        SearchAim::weighted("Acc+ECE blend", 1.0, 2.0, eps, 0.0),
        SearchAim::weighted("ECE+aPE blend", eps, 1.0, 0.5, 0.0),
        SearchAim::weighted("Acc+aPE blend", 1.0, eps, 0.3, 0.0),
    ];
    let searched: Vec<DropoutConfig> = search_aims
        .iter()
        .map(|aim| {
            space
                .archive
                .iter()
                .max_by(|a, b| aim.score(a).total_cmp(&aim.score(b)))
                .expect("non-empty archive")
                .config
                .clone()
        })
        .collect();

    let mut csv = Vec::new();
    for candidate in &space.archive {
        csv.push(format!(
            "{},{},{},{},{},{},{}",
            candidate.config.compact(),
            candidate.metrics.ece,
            candidate.metrics.ape,
            candidate.metrics.accuracy,
            uniforms.contains(&candidate.config),
            searched.contains(&candidate.config),
            on_frontier(candidate, &space.archive, &objectives)
        ));
    }
    write_csv(
        "figure4.csv",
        "config,ece,ape,accuracy,uniform_baseline,searched,on_pareto_frontier",
        &csv,
    );

    // ASCII scatter: '·' = ordinary config, 'U' = uniform baseline,
    // 'S' = searched optimum, '*' = searched AND uniform.
    let points: Vec<(f64, f64, char)> = space
        .archive
        .iter()
        .map(|c| {
            let is_uniform = uniforms.contains(&c.config);
            let is_searched = searched.contains(&c.config);
            let glyph = match (is_uniform, is_searched) {
                (true, true) => '*',
                (false, true) => 'S',
                (true, false) => 'U',
                (false, false) => '·',
            };
            (c.metrics.ece, c.metrics.ape, glyph)
        })
        .collect();
    println!(
        "{}",
        ascii_scatter(&points, 68, 20, "ECE (fraction)", "aPE (nats)")
    );
    println!("legend: '·' config, 'U' uniform baseline, 'S' searched optimum, '*' both\n");

    println!(
        "Pareto frontier size: {} / {} configurations",
        frontier.len(),
        space.archive.len()
    );
    println!("\n-- the paper's claim: all searched results lie on the reference frontier --");
    let mut all_on = true;
    for (aim, config) in search_aims.iter().zip(&searched) {
        let candidate = space.candidate(config);
        let on = on_frontier(candidate, &space.archive, &objectives);
        all_on &= on;
        println!(
            "{:<18} {}  acc {:.1}% ece {:.1}% ape {:.3}  -> {}",
            aim.name,
            config,
            100.0 * candidate.metrics.accuracy,
            100.0 * candidate.metrics.ece,
            candidate.metrics.ape,
            if on { "ON frontier" } else { "OFF frontier" }
        );
    }
    println!(
        "\nresult: {}",
        if all_on {
            "all searched configurations lie on the reference Pareto frontier (matches Figure 4)"
        } else {
            "some searched configuration fell off the frontier (differs from the paper; see EXPERIMENTS.md)"
        }
    );
}
