//! **Table 3** — Comparison with CPU, GPU and related FPGA work (LeNet on
//! MNIST, aPE-optimal design, S = 3).
//!
//! Reproduction: the LeNet supernet is trained and exhaustively evaluated;
//! the aPE-optimal configuration becomes "Our Work", analyzed on the
//! modelled XCKU115. The CPU/GPU rows use the analytical platform models
//! (dropout-based BayesNN with uniform Bernoulli dropout, as the paper
//! specifies); the three related-work rows are quoted constants, exactly
//! as the paper quotes them. The §4.2 ratio claims (1.4× CPU speedup,
//! 52.6×/60.5× power, 65×/33× energy efficiency) are derived at the end.
//!
//! Run with: `cargo bench --bench table3`

use nds_bench::{lenet_space, write_csv};
use nds_dropout::DropoutKind;
use nds_hw::accel::{AcceleratorConfig, AcceleratorModel};
use nds_hw::platform::{related_work_rows, ComputePlatform, PlatformResult, PlatformRow};
use nds_nn::zoo;
use nds_supernet::DropoutConfig;

fn main() {
    println!("=== Table 3: comparison with CPU, GPU and related work ===\n");
    let space = lenet_space(3003);

    // "Our Work": the aPE-optimal searched design.
    let ape_best = space.best_by(|c| c.metrics.ape);
    // CPU/GPU run the hand-crafted uniform-Bernoulli BayesNN (§4.2).
    let bernoulli = space.candidate(&DropoutConfig::uniform(DropoutKind::Bernoulli, 3));

    let model = AcceleratorModel::new(AcceleratorConfig::lenet_paper());
    let report = model
        .analyze(&zoo::lenet(), &ape_best.config)
        .expect("LeNet analysis succeeds");

    let mut rows: Vec<PlatformResult> = vec![
        ComputePlatform::cpu_i9_9900k()
            .result(&zoo::lenet(), 3, Some(bernoulli.metrics.ape))
            .expect("CPU model runs"),
        ComputePlatform::gpu_rtx2080()
            .result(&zoo::lenet(), 3, Some(bernoulli.metrics.ape))
            .expect("GPU model runs"),
    ];
    rows.extend(related_work_rows());
    rows.push(PlatformResult {
        name: format!("Our Work ({})", ape_best.config),
        platform: "XCKU115".to_string(),
        frequency_mhz: report.clock_mhz,
        technology_nm: 20,
        power_w: report.power.total_w(),
        latency_ms: Some(report.latency_ms),
        ape_nats: Some(ape_best.metrics.ape),
        provenance: PlatformRow::Modelled,
    });

    println!(
        "{:<28} {:<20} {:>9} {:>6} {:>8} {:>9} {:>12} {:>14}  src",
        "-", "Platform", "Freq(MHz)", "Tech", "Power(W)", "aPE", "Latency(ms)", "Energy(J/img)"
    );
    let mut csv = Vec::new();
    for row in &rows {
        let ape = row
            .ape_nats
            .map(|v| format!("{v:.3}"))
            .unwrap_or_else(|| "-".to_string());
        let latency = row
            .latency_ms
            .map(|v| format!("{v:.3}"))
            .unwrap_or_else(|| "-".to_string());
        let energy = row
            .energy_per_image_j()
            .map(|v| format!("{v:.4}"))
            .unwrap_or_else(|| "-".to_string());
        let src = match row.provenance {
            PlatformRow::Modelled => "modelled",
            PlatformRow::Quoted => "quoted",
        };
        println!(
            "{:<28} {:<20} {:>9.0} {:>5}nm {:>8.2} {:>9} {:>12} {:>14}  {src}",
            row.name,
            row.platform,
            row.frequency_mhz,
            row.technology_nm,
            row.power_w,
            ape,
            latency,
            energy
        );
        csv.push(format!(
            "{},{},{},{},{},{},{},{},{}",
            row.name.replace(',', ";"),
            row.platform,
            row.frequency_mhz,
            row.technology_nm,
            row.power_w,
            row.ape_nats.unwrap_or(f64::NAN),
            row.latency_ms.unwrap_or(f64::NAN),
            row.energy_per_image_j().unwrap_or(f64::NAN),
            src
        ));
    }
    write_csv(
        "table3.csv",
        "name,platform,frequency_mhz,technology_nm,power_w,ape_nats,latency_ms,energy_j_per_image,provenance",
        &csv,
    );

    // §4.2 derived claims.
    let cpu = &rows[0];
    let gpu = &rows[1];
    let ours = rows.last().expect("our row exists");
    let speedup_cpu = cpu.latency_ms.unwrap() / ours.latency_ms.unwrap();
    let power_cpu = cpu.power_w / ours.power_w;
    let power_gpu = gpu.power_w / ours.power_w;
    let energy_cpu = cpu.energy_per_image_j().unwrap() / ours.energy_per_image_j().unwrap();
    let energy_gpu = gpu.energy_per_image_j().unwrap() / ours.energy_per_image_j().unwrap();
    println!("\n-- derived §4.2 claims (paper values in brackets) --");
    println!("speedup vs CPU     : {speedup_cpu:.1}x   [1.4x]");
    println!("power vs CPU       : {power_cpu:.1}x lower   [52.6x]");
    println!("power vs GPU       : {power_gpu:.1}x lower   [60.5x]");
    println!("energy vs CPU      : {energy_cpu:.0}x higher efficiency   [65x]");
    println!("energy vs GPU      : {energy_gpu:.0}x higher efficiency   [33x]");
    println!(
        "aPE vs uniform Bernoulli on CPU/GPU: {:.3} vs {:.3} nats (searched design should win) [0.65 vs 0.27]",
        ape_best.metrics.ape, bernoulli.metrics.ape
    );
}
