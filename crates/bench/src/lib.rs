//! Shared infrastructure for the table/figure regeneration harnesses.
//!
//! Each `[[bench]]` target in this crate regenerates one table or figure
//! of the paper (see `DESIGN.md` for the index). Training-based artefacts
//! (the exhaustively-evaluated ResNet/LeNet archives) are cached under
//! `results/.cache/` so that re-running one harness does not re-train the
//! supernet; delete that directory to force a fresh run.

use nds_data::{generate, DatasetConfig, DatasetKind, Splits};
use nds_hw::accel::{AcceleratorConfig, AcceleratorModel};
use nds_nn::arch::Architecture;
use nds_nn::optim::LrSchedule;
use nds_nn::train::TrainConfig;
use nds_nn::zoo;
use nds_search::{Candidate, LatencyProvider, SearchBuilder, Strategy};
use nds_supernet::{CandidateMetrics, DropoutConfig, Supernet, SupernetSpec};
use nds_tensor::rng::Rng64;
use std::fs;
use std::path::{Path, PathBuf};

/// Workspace-level `results/` directory (created on first use).
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    fs::create_dir_all(&dir).expect("results directory is creatable");
    dir
}

fn cache_dir() -> PathBuf {
    let dir = results_dir().join(".cache");
    fs::create_dir_all(&dir).expect("cache directory is creatable");
    dir
}

/// Locates the workspace root by walking up from the crate dir.
fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    while !dir.join("Cargo.toml").exists()
        || !fs::read_to_string(dir.join("Cargo.toml"))
            .map(|s| s.contains("[workspace]"))
            .unwrap_or(false)
    {
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
    dir
}

/// Writes a CSV file into `results/` and reports the path on stdout.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = results_dir().join(name);
    let mut contents = String::from(header);
    contents.push('\n');
    for row in rows {
        contents.push_str(row);
        contents.push('\n');
    }
    fs::write(&path, contents).expect("results CSV is writable");
    println!("[csv] wrote {}", path.display());
}

/// One experiment context: a supernet spec plus the exhaustively-evaluated
/// archive of its whole search space.
#[derive(Debug)]
pub struct EvaluatedSpace {
    /// The spec whose space was evaluated.
    pub spec: SupernetSpec,
    /// Every configuration with its metrics (validation set + OOD + HW).
    pub archive: Vec<Candidate>,
    /// Wall-clock seconds spent training the supernet (0 when cached).
    pub train_seconds: f64,
    /// Wall-clock seconds spent evaluating the space (0 when cached).
    pub eval_seconds: f64,
}

impl EvaluatedSpace {
    /// The candidate for an exact configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not in the archive.
    pub fn candidate(&self, config: &DropoutConfig) -> &Candidate {
        self.archive
            .iter()
            .find(|c| &c.config == config)
            .unwrap_or_else(|| panic!("config {config} missing from archive"))
    }

    /// The archive candidate maximising `key` (use negation to minimise).
    pub fn best_by(&self, key: impl Fn(&Candidate) -> f64) -> &Candidate {
        self.archive
            .iter()
            .max_by(|a, b| key(a).total_cmp(&key(b)))
            .expect("archive is non-empty")
    }
}

/// Experiment scale shared by the harnesses: small enough for one core,
/// large enough for stable metric orderings.
#[derive(Debug, Clone, Copy)]
pub struct BenchScale {
    /// Training set size.
    pub train: usize,
    /// Validation subset used for candidate scoring.
    pub val: usize,
    /// OOD probe size.
    pub ood: usize,
    /// Supernet training epochs.
    pub epochs: usize,
}

impl Default for BenchScale {
    fn default() -> Self {
        BenchScale {
            train: 1280,
            val: 96,
            ood: 96,
            epochs: 3,
        }
    }
}

/// Trains the ResNet experiment supernet (width-4 ResNet-18 on the
/// CIFAR-like set, the paper's §4.1 pairing) and exhaustively evaluates
/// all 256 configurations, with hardware numbers from the *paper-scale*
/// ResNet-18 design point. Cached on disk.
pub fn resnet_space(seed: u64) -> EvaluatedSpace {
    evaluated_space(
        "resnet",
        zoo::resnet18(4),
        zoo::resnet18_paper(),
        DatasetKind::CifarLike,
        AcceleratorConfig::resnet_paper(),
        BenchScale::default(),
        seed,
    )
}

/// Trains the LeNet experiment supernet on the MNIST-like set and
/// exhaustively evaluates all 32 configurations. Cached on disk.
pub fn lenet_space(seed: u64) -> EvaluatedSpace {
    evaluated_space(
        "lenet",
        zoo::lenet(),
        zoo::lenet(),
        DatasetKind::MnistLike,
        AcceleratorConfig::lenet_paper(),
        BenchScale {
            train: 1536,
            epochs: 4,
            ..BenchScale::default()
        },
        seed,
    )
}

/// Generic cached space evaluation.
pub fn evaluated_space(
    tag: &str,
    train_arch: Architecture,
    hw_arch: Architecture,
    dataset: DatasetKind,
    accel: AcceleratorConfig,
    scale: BenchScale,
    seed: u64,
) -> EvaluatedSpace {
    let spec = SupernetSpec::paper_default(train_arch, seed).expect("zoo architectures are valid");
    // v2: per-candidate batch-norm recalibration (SPOS) before evaluation.
    let cache = cache_dir().join(format!("space_{tag}_s{seed}_v2.csv"));
    if let Some(archive) = load_archive(&cache, &spec) {
        println!(
            "[cache] loaded {} candidates from {}",
            archive.len(),
            cache.display()
        );
        return EvaluatedSpace {
            spec,
            archive,
            train_seconds: 0.0,
            eval_seconds: 0.0,
        };
    }

    let splits = dataset_splits(dataset, scale, seed);
    let mut supernet = Supernet::build(&spec).expect("supernet builds");
    let mut rng = Rng64::new(seed);
    let train_config = TrainConfig {
        epochs: scale.epochs,
        batch_size: 32,
        schedule: LrSchedule::Cosine {
            base: 0.05,
            floor: 0.005,
            total: scale.epochs,
        },
        momentum: 0.9,
        weight_decay: 5e-4,
        ..TrainConfig::default()
    };
    println!(
        "[train] SPOS on {} ({} images, {} epochs)…",
        spec.arch.name, scale.train, scale.epochs
    );
    let t0 = std::time::Instant::now();
    let history = supernet
        .train_spos(&splits.train, &train_config, &mut rng)
        .expect("training succeeds");
    let train_seconds = t0.elapsed().as_secs_f64();
    if let Some(last) = history.last() {
        println!(
            "[train] done in {train_seconds:.1}s (final loss {:.4}, accuracy {:.1}%)",
            last.loss,
            100.0 * last.accuracy
        );
    }

    // SPOS batch-norm recalibration: per-candidate statistics re-estimated
    // from these batches before every evaluation (Guo et al., 2020).
    supernet.set_calibration_from(&splits.train, 4, 64, &mut rng);
    let val = splits
        .val
        .subset(&(0..scale.val.min(splits.val.len())).collect::<Vec<_>>());
    let ood = splits.train.ood_noise(scale.ood, &mut rng);
    let model = AcceleratorModel::new(accel);
    let latency = LatencyProvider::Exact {
        model,
        arch: hw_arch,
    };
    println!(
        "[eval] exhaustively evaluating {} configurations…",
        spec.space_size()
    );
    let t0 = std::time::Instant::now();
    let mut session = SearchBuilder::new(&mut supernet)
        .strategy(Strategy::Exhaustive)
        .validation(&val)
        .ood(ood)
        .latency(latency)
        .batch_size(64)
        .build()
        .expect("session builds");
    let outcome = session.run().expect("evaluation succeeds");
    drop(session);
    let archive = outcome.archive.into_candidates();
    let eval_seconds = t0.elapsed().as_secs_f64();
    println!("[eval] done in {eval_seconds:.1}s");

    store_archive(&cache, &archive);
    EvaluatedSpace {
        spec,
        archive,
        train_seconds,
        eval_seconds,
    }
}

/// Regenerates the dataset splits a harness uses (deterministic).
pub fn dataset_splits(dataset: DatasetKind, scale: BenchScale, seed: u64) -> Splits {
    generate(
        dataset,
        &DatasetConfig {
            train: scale.train,
            val: scale.val.max(64),
            test: 256,
            seed: seed ^ 0xDA7A,
            noise: 0.08,
        },
    )
}

fn store_archive(path: &Path, archive: &[Candidate]) {
    let mut contents = String::from("config,accuracy,ece,ape,latency_ms\n");
    for candidate in archive {
        contents.push_str(&format!(
            "{},{},{},{},{}\n",
            candidate.config.compact(),
            candidate.metrics.accuracy,
            candidate.metrics.ece,
            candidate.metrics.ape,
            candidate.latency_ms
        ));
    }
    fs::write(path, contents).expect("cache is writable");
}

fn load_archive(path: &Path, spec: &SupernetSpec) -> Option<Vec<Candidate>> {
    let contents = fs::read_to_string(path).ok()?;
    let mut archive = Vec::new();
    for line in contents.lines().skip(1) {
        let mut parts = line.split(',');
        let config: DropoutConfig = parts.next()?.parse().ok()?;
        let accuracy: f64 = parts.next()?.parse().ok()?;
        let ece: f64 = parts.next()?.parse().ok()?;
        let ape: f64 = parts.next()?.parse().ok()?;
        let latency_ms: f64 = parts.next()?.parse().ok()?;
        archive.push(Candidate {
            config,
            metrics: CandidateMetrics { accuracy, ece, ape },
            latency_ms,
        });
    }
    if archive.len() == spec.space_size() {
        Some(archive)
    } else {
        None
    }
}

/// An [`Evaluator`](nds_search::Evaluator) that replays a pre-computed
/// archive (e.g. the exhaustively-evaluated spaces cached by
/// [`resnet_space`]) — lets search-strategy experiments run thousands of
/// "evaluations" without touching the supernet.
#[derive(Debug)]
pub struct ReplayEvaluator {
    table: std::collections::HashMap<String, Candidate>,
    fresh: std::collections::HashSet<String>,
}

impl ReplayEvaluator {
    /// Wraps an archive for replay.
    pub fn new(archive: &[Candidate]) -> Self {
        ReplayEvaluator {
            table: archive
                .iter()
                .map(|c| (c.config.compact(), c.clone()))
                .collect(),
            fresh: std::collections::HashSet::new(),
        }
    }
}

impl nds_search::Evaluator for ReplayEvaluator {
    fn evaluate(&mut self, config: &DropoutConfig) -> nds_search::Result<Candidate> {
        let key = config.compact();
        let hit = self.table.get(&key).cloned().ok_or_else(|| {
            nds_search::SearchError::BadConfig(format!("config {config} not in replay archive"))
        })?;
        self.fresh.insert(key);
        Ok(hit)
    }

    fn fresh_evaluations(&self) -> usize {
        self.fresh.len()
    }
}

/// Spearman rank correlation between two equally-long samples.
///
/// # Panics
///
/// Panics if lengths differ or fewer than two points are supplied.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "spearman needs paired samples");
    assert!(a.len() >= 2, "spearman needs at least two points");
    let rank = |xs: &[f64]| -> Vec<f64> {
        let mut order: Vec<usize> = (0..xs.len()).collect();
        order.sort_by(|&i, &j| xs[i].total_cmp(&xs[j]));
        let mut ranks = vec![0.0; xs.len()];
        for (r, &i) in order.iter().enumerate() {
            ranks[i] = r as f64;
        }
        ranks
    };
    let ra = rank(a);
    let rb = rank(b);
    let n = a.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for i in 0..a.len() {
        let da = ra[i] - mean;
        let db = rb[i] - mean;
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    if var_a == 0.0 || var_b == 0.0 {
        0.0
    } else {
        cov / (var_a.sqrt() * var_b.sqrt())
    }
}

/// A minimal ASCII scatter plot (x right, y up) for terminal figures.
pub fn ascii_scatter(
    points: &[(f64, f64, char)],
    width: usize,
    height: usize,
    x_label: &str,
    y_label: &str,
) -> String {
    if points.is_empty() {
        return String::from("(no points)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y, _) in points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    let x_span = (x_max - x_min).max(1e-12);
    let y_span = (y_max - y_min).max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for &(x, y, glyph) in points {
        let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
        let row = (((y - y_min) / y_span) * (height - 1) as f64).round() as usize;
        let row = height - 1 - row;
        // Searched markers win over baseline markers on collisions.
        if grid[row][col] == ' ' || glyph != '·' {
            grid[row][col] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{y_label}\n"));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        " {x_label}: {x_min:.3} .. {x_max:.3}   (y: {y_min:.3} .. {y_max:.3})\n"
    ));
    out
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}", 100.0 * fraction)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spearman_detects_monotone_relations() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&a, &up) - 1.0).abs() < 1e-12);
        assert!((spearman(&a, &down) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ascii_scatter_places_points() {
        let plot = ascii_scatter(&[(0.0, 0.0, 'A'), (1.0, 1.0, 'B')], 20, 10, "x", "y");
        assert!(plot.contains('A'));
        assert!(plot.contains('B'));
    }

    #[test]
    fn workspace_root_has_results() {
        let dir = results_dir();
        assert!(dir.ends_with("results"));
        assert!(dir.exists());
    }

    #[test]
    fn replay_evaluator_replays_and_rejects_unknowns() {
        use nds_search::Evaluator as _;
        let config: DropoutConfig = "BBB".parse().unwrap();
        let candidate = Candidate {
            config: config.clone(),
            metrics: CandidateMetrics {
                accuracy: 0.9,
                ece: 0.1,
                ape: 0.5,
            },
            latency_ms: 1.0,
        };
        let mut replay = ReplayEvaluator::new(std::slice::from_ref(&candidate));
        let hit = replay.evaluate(&config).unwrap();
        assert_eq!(hit.metrics.accuracy, 0.9);
        // Re-evaluating the same config does not inflate the budget count.
        let _ = replay.evaluate(&config).unwrap();
        assert_eq!(replay.fresh_evaluations(), 1);
        let missing: DropoutConfig = "MMM".parse().unwrap();
        let err = replay.evaluate(&missing).unwrap_err().to_string();
        assert!(err.contains("not in replay archive"), "{err}");
    }
}
