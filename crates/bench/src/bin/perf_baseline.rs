//! Emits `BENCH_inference.json` — the inference-engine perf baseline.
//!
//! Times the kernels the high-throughput inference engine optimises
//! (blocked/parallel matmul, fused transposed matmul, end-to-end
//! MC-dropout prediction) against the retained naive reference kernel,
//! and writes the numbers as JSON at the workspace root so future PRs
//! can track the perf trajectory.
//!
//! Run with: `cargo run --release -p nds-bench --bin perf_baseline`

use nds_dropout::mc::mc_predict_with_workers;
use nds_supernet::{Supernet, SupernetSpec};
use nds_tensor::parallel::worker_count;
use nds_tensor::rng::Rng64;
use nds_tensor::{Shape, Tensor, Workspace};
use std::hint::black_box;
use std::time::Instant;

/// Median seconds per call over `reps` calls, after one warm-up call.
fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    black_box(f());
    let mut samples: Vec<f64> = (0..reps.max(3))
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    samples[samples.len() / 2]
}

fn main() {
    let workers = worker_count();
    let mut rng = Rng64::new(1);
    let a = Tensor::rand_normal(Shape::d2(256, 256), 0.0, 1.0, &mut rng);
    let b = Tensor::rand_normal(Shape::d2(256, 256), 0.0, 1.0, &mut rng);
    let bt = b.transpose().unwrap();

    let naive = time_median(15, || a.matmul_naive(&b).unwrap());
    let blocked = time_median(15, || a.matmul(&b).unwrap());
    let transb = time_median(15, || a.matmul_transb(&bt).unwrap());

    let spec = SupernetSpec::paper_default(nds_nn::zoo::lenet(), 6).expect("valid spec");
    let mut supernet = Supernet::build(&spec).expect("builds");
    supernet
        .set_config(&"BBB".parse().expect("valid"))
        .expect("in space");
    let images = Tensor::rand_normal(Shape::d4(32, 1, 28, 28), 0.0, 1.0, &mut rng);
    let mut ws = Workspace::new();
    let mc_serial = time_median(5, || {
        mc_predict_with_workers(supernet.net_mut(), &images, 3, 32, 1, &mut ws).unwrap()
    });
    let mc_parallel = time_median(5, || {
        mc_predict_with_workers(supernet.net_mut(), &images, 3, 32, workers, &mut ws).unwrap()
    });

    let json = format!(
        "{{\n  \
         \"bench\": \"inference-engine baseline\",\n  \
         \"workers\": {workers},\n  \
         \"matmul_256\": {{\n    \
         \"naive_ms\": {:.4},\n    \
         \"blocked_ms\": {:.4},\n    \
         \"transb_ms\": {:.4},\n    \
         \"speedup_blocked\": {:.3},\n    \
         \"speedup_transb\": {:.3}\n  }},\n  \
         \"mc_predict_lenet_s3_b32\": {{\n    \
         \"serial_ms\": {:.3},\n    \
         \"parallel_ms\": {:.3},\n    \
         \"speedup\": {:.3},\n    \
         \"images_per_sec\": {:.1}\n  }}\n}}\n",
        naive * 1e3,
        blocked * 1e3,
        transb * 1e3,
        naive / blocked,
        naive / transb,
        mc_serial * 1e3,
        mc_parallel * 1e3,
        mc_serial / mc_parallel,
        32.0 / mc_parallel,
    );
    let path = nds_bench::results_dir()
        .parent()
        .expect("results dir has a parent")
        .join("BENCH_inference.json");
    std::fs::write(&path, &json).expect("baseline file is writable");
    println!("{json}");
    println!("wrote {}", path.display());
}
