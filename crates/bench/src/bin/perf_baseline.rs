//! Emits `BENCH_inference.json` — the inference-engine perf baseline.
//!
//! Times the kernels the high-throughput inference engine optimises
//! (blocked/parallel matmul, fused transposed matmul, gemm-lowered
//! conv2d, end-to-end MC-dropout prediction at LeNet and ResNet scale)
//! against the retained naive reference kernels, and writes the numbers
//! as JSON at the workspace root so future PRs can track the perf
//! trajectory.
//!
//! Run with: `cargo run --release -p nds-bench --bin perf_baseline`
//!
//! Pass `--smoke` for the CI smoke mode: the same code paths at tiny
//! shapes with minimal repetitions, printing the JSON without touching
//! `BENCH_inference.json`. It exists so the bench binary is exercised
//! (and fails on panic) in every CI leg, keeping this code from
//! bit-rotting between perf-focused PRs.
//!
//! Pass `--execution <round-major|sample-major>` to run every
//! engine-served row under that MC execution order (bytes are
//! identical; only the schedule differs). The dedicated
//! `mask_bank_lenet_s3` row always measures *both* orders head-to-head
//! — serial round-major vs the fused sample-major path — and asserts
//! their byte identity before timing.
//!
//! The `mc_predict_*` rows keep their historical names (the PR 1-3
//! trajectory series) but measure through the `UncertaintyEngine` since
//! the deprecated free-function wrappers were retired from the benches:
//! the engine runs the identical MC harness (byte-identical output) with
//! its persistent clone cache. The `search_smoke` row times the
//! `SearchSession` end to end (tiny supernet, 2 generations).

use nds_adaptive::{AdaptivePolicy, EscalationPolicy, GateMetric};
use nds_campaign::{island_seed, Campaign};
use nds_engine::{Backend, EngineBuilder, Execution, PredictRequest, UncertaintyEngine};
use nds_metrics::{accuracy, ece, escalation_rate, EceConfig};
use nds_search::{EvolutionConfig, SearchBuilder, Strategy};
use nds_serve::{ServeRequest, ServerBuilder, TenantSpec};
use nds_supernet::{Supernet, SupernetSpec};
use nds_tensor::conv::{conv2d_direct, conv2d_ws, ConvGeometry};
use nds_tensor::parallel::worker_count;
use nds_tensor::rng::Rng64;
use nds_tensor::{Shape, Tensor, Workspace};
use std::hint::black_box;
use std::time::Instant;

/// Median seconds per call over `reps` calls, after one warm-up call.
fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    black_box(f());
    let mut samples: Vec<f64> = (0..reps.max(3))
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    samples[samples.len() / 2]
}

fn main() {
    // Smoke mode: same code paths, tiny shapes, no baseline-file write —
    // CI runs this in every NDS_THREADS leg so the bench cannot rot.
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    // Execution order for every engine-served row; the mask_bank row
    // below ignores it and always measures both orders head-to-head.
    let execution: Execution = argv
        .iter()
        .position(|a| a == "--execution")
        .and_then(|i| argv.get(i + 1))
        .map(|v| {
            v.parse()
                .expect("--execution is round-major or sample-major")
        })
        .unwrap_or(Execution::RoundMajor);
    let workers = worker_count();
    let mut rng = Rng64::new(1);
    let (mm_dim, reps) = if smoke { (48, 3) } else { (256, 15) };
    let a = Tensor::rand_normal(Shape::d2(mm_dim, mm_dim), 0.0, 1.0, &mut rng);
    let b = Tensor::rand_normal(Shape::d2(mm_dim, mm_dim), 0.0, 1.0, &mut rng);
    let bt = b.transpose().unwrap();

    let naive = time_median(reps, || a.matmul_naive(&b).unwrap());
    let blocked = time_median(reps, || a.matmul(&b).unwrap());
    let transb = time_median(reps, || a.matmul_transb(&bt).unwrap());

    // Gemm-lowered conv2d at ResNet-block scale (64 -> 64 channels,
    // 3x3/s1p1 over 16x16 maps, batch 4) against the direct oracle.
    let (conv_c, conv_hw, conv_n) = if smoke { (8, 8, 1) } else { (64, 16, 4) };
    let conv_input = Tensor::rand_normal(
        Shape::d4(conv_n, conv_c, conv_hw, conv_hw),
        0.0,
        1.0,
        &mut rng,
    );
    let conv_weight = Tensor::rand_normal(Shape::d4(conv_c, conv_c, 3, 3), 0.0, 0.1, &mut rng);
    let conv_bias = Tensor::rand_normal(Shape::d1(conv_c), 0.0, 0.1, &mut rng);
    let g = ConvGeometry::new(3, 1, 1);
    let mut conv_ws = Workspace::new();
    let conv_direct = time_median(if smoke { 2 } else { 5 }, || {
        conv2d_direct(&conv_input, &conv_weight, Some(&conv_bias), g).unwrap()
    });
    let conv_gemm = time_median(reps, || {
        conv2d_ws(&conv_input, &conv_weight, Some(&conv_bias), g, &mut conv_ws).unwrap()
    });

    let spec = SupernetSpec::paper_default(nds_nn::zoo::lenet(), 6).expect("valid spec");
    let mut supernet = Supernet::build(&spec).expect("builds");
    supernet
        .set_config(&"BBB".parse().expect("valid"))
        .expect("in space");
    let (mc_batch, mc_samples) = if smoke { (4, 2) } else { (32, 3) };
    let images = Tensor::rand_normal(Shape::d4(mc_batch, 1, 28, 28), 0.0, 1.0, &mut rng);
    // Engine-served MC prediction at an explicit serial vs pool-wide
    // worker split (byte-identical outputs; only scheduling differs).
    let mc_engine = |net: &Supernet, w: usize, chunk: usize| -> UncertaintyEngine {
        EngineBuilder::new(net.net().clone())
            .samples(mc_samples)
            .workers(w)
            .chunk_size(chunk)
            .execution(execution)
            .build()
    };
    let time_engine = |engine: &mut UncertaintyEngine, images: &Tensor, reps: usize| {
        time_median(reps, || {
            let resp = engine.predict(&PredictRequest::new(images)).unwrap();
            engine.recycle(resp);
        })
    };
    let mut serial_engine = mc_engine(&supernet, 1, mc_batch);
    let mut parallel_engine = mc_engine(&supernet, workers, mc_batch);
    let mc_serial = time_engine(&mut serial_engine, &images, if smoke { 2 } else { 5 });
    let mc_parallel = time_engine(&mut parallel_engine, &images, if smoke { 2 } else { 5 });

    // ------------------------------------------------------------------
    // Sample-major fused MC (PR 8): serial round-major S passes vs one
    // fused (S·B)-row pass per layer with the precomputed mask bank.
    // Both engines run serial workers on the same chunking, so the gap
    // is purely the execution order (batched gemm efficiency + the
    // cached mask bank). Byte identity is asserted before timing — the
    // row is meaningless if the fused path changed the bytes.
    // ------------------------------------------------------------------
    let order_engine = |net: &Supernet, order: Execution| -> UncertaintyEngine {
        EngineBuilder::new(net.net().clone())
            .samples(mc_samples)
            .workers(1)
            .chunk_size(mc_batch)
            .execution(order)
            .build()
    };
    let mut bank_round_engine = order_engine(&supernet, Execution::RoundMajor);
    let mut bank_fused_engine = order_engine(&supernet, Execution::SampleMajor);
    {
        let round = bank_round_engine
            .predict(&PredictRequest::new(&images))
            .unwrap();
        let fused = bank_fused_engine
            .predict(&PredictRequest::new(&images))
            .unwrap();
        assert_eq!(
            round.probs.as_slice(),
            fused.probs.as_slice(),
            "sample-major must be byte-identical to round-major"
        );
        bank_round_engine.recycle(round);
        bank_fused_engine.recycle(fused);
    }
    let bank_round = time_engine(&mut bank_round_engine, &images, if smoke { 2 } else { 5 });
    let bank_fused = time_engine(&mut bank_fused_engine, &images, if smoke { 2 } else { 5 });

    // ResNet-scale MC prediction: width-8 ResNet18 supernet over
    // CIFAR-shaped inputs — the configuration the zero-copy weight
    // sharing and the gemm-lowered conv path are aimed at. Smoke mode
    // shrinks the width and batch but still walks the full residual
    // topology (batch-norm, shortcuts, all four slots).
    let (resnet_width, resnet_batch) = if smoke { (2, 2) } else { (8, 16) };
    let resnet_spec =
        SupernetSpec::paper_default(nds_nn::zoo::resnet18(resnet_width), 7).expect("valid spec");
    let mut resnet = Supernet::build(&resnet_spec).expect("builds");
    resnet
        .set_config(&"BBBB".parse().expect("valid"))
        .expect("in space");
    let cifar = Tensor::rand_normal(Shape::d4(resnet_batch, 3, 32, 32), 0.0, 1.0, &mut rng);
    let mut resnet_serial_engine = mc_engine(&resnet, 1, resnet_batch);
    let mut resnet_parallel_engine = mc_engine(&resnet, workers, resnet_batch);
    let resnet_serial = time_engine(&mut resnet_serial_engine, &cifar, if smoke { 2 } else { 3 });
    let resnet_parallel = time_engine(
        &mut resnet_parallel_engine,
        &cifar,
        if smoke { 2 } else { 3 },
    );

    // ------------------------------------------------------------------
    // Engine throughput: the unified serving facade end to end, per
    // backend, at a small and a large request batch. The float backend
    // runs the same passes as mc_predict (plus the persistent clone
    // cache); the quantized backend adds the fake-quantisation of every
    // inter-layer activation.
    // ------------------------------------------------------------------
    let (eng_small, eng_large) = if smoke { (4, 8) } else { (32, 256) };
    let small_images = Tensor::rand_normal(Shape::d4(eng_small, 1, 28, 28), 0.0, 1.0, &mut rng);
    let large_images = Tensor::rand_normal(Shape::d4(eng_large, 1, 28, 28), 0.0, 1.0, &mut rng);
    let mut engine_ips = |backend: Backend| -> (f64, f64) {
        let mut engine = EngineBuilder::new(supernet.net_mut().clone())
            .backend(backend)
            .samples(mc_samples)
            .execution(execution)
            .build();
        let mut ips = |images: &Tensor, batch: usize| {
            let secs = time_median(if smoke { 2 } else { 5 }, || {
                let resp = engine.predict(&PredictRequest::new(images)).unwrap();
                engine.recycle(resp);
            });
            batch as f64 / secs
        };
        (ips(&small_images, eng_small), ips(&large_images, eng_large))
    };
    let (float_small_ips, float_large_ips) = engine_ips(Backend::Float32);
    let (quant_small_ips, quant_large_ips) = engine_ips(Backend::quantized_q78());

    // ------------------------------------------------------------------
    // Deadline-aware degradation: the float engine against a latency
    // budget of roughly half its unbudgeted p50, serial workers (the
    // budgeted path runs rounds serially). Reports how many MC samples
    // the engine got inside the budget and the resulting p50 — the cost
    // model for trading samples against tail latency.
    // ------------------------------------------------------------------
    let deg_samples = if smoke { 4 } else { 8 };
    let mut deg_engine = EngineBuilder::new(supernet.net_mut().clone())
        .samples(deg_samples)
        .workers(1)
        .build();
    let deg_full_secs = time_median(if smoke { 2 } else { 5 }, || {
        let resp = deg_engine
            .predict(&PredictRequest::new(&small_images))
            .unwrap();
        deg_engine.recycle(resp);
    });
    let deg_budget_ms = (deg_full_secs * 1e3 / 2.0).max(0.01);
    let mut deg_achieved = deg_samples;
    let mut deg_degraded = false;
    let deg_budgeted_secs = time_median(if smoke { 2 } else { 5 }, || {
        let resp = deg_engine
            .predict(&PredictRequest::new(&small_images).with_latency_budget(deg_budget_ms))
            .unwrap();
        deg_achieved = resp.achieved_samples;
        deg_degraded = resp.degraded;
        deg_engine.recycle(resp);
    });

    // ------------------------------------------------------------------
    // Uncertainty-gated sample escalation: a pilot S=1 entropy gate in
    // front of the full S=3 budget, on labelled MNIST-like validation
    // rows. The escalate-everything policy is asserted byte-identical
    // to the unbudgeted engine *before* any timing — the row is
    // meaningless if gating changed escalated bytes. The reported
    // configuration then gates at the batch's median pilot entropy, so
    // roughly half the rows stay at the pilot budget; the row records
    // the escalation rate, the accuracy/ECE deltas vs the full-S run,
    // and the measured expected-latency speedup.
    // ------------------------------------------------------------------
    let adapt_val = if smoke { 8 } else { 32 };
    let adapt_splits = nds_data::mnist_like(&nds_data::DatasetConfig {
        train: 16,
        val: adapt_val,
        test: 8,
        seed: 0xADA9,
        noise: 0.05,
    });
    let (adapt_images, adapt_labels) = adapt_splits.val.full_batch();
    let mut adapt_full_engine = EngineBuilder::new(supernet.net_mut().clone())
        .samples(mc_samples)
        .workers(1)
        .execution(execution)
        .build();
    let adapt_full_resp = adapt_full_engine
        .predict(&PredictRequest::new(&adapt_images))
        .unwrap();
    {
        let mut all_engine = EngineBuilder::new(supernet.net_mut().clone())
            .samples(mc_samples)
            .workers(1)
            .execution(execution)
            .adaptive(AdaptivePolicy::escalate(EscalationPolicy::entropy(0.0)))
            .build();
        let all = all_engine
            .predict(&PredictRequest::new(&adapt_images))
            .unwrap();
        assert_eq!(
            all.probs.as_slice(),
            adapt_full_resp.probs.as_slice(),
            "escalate-all must be byte-identical to the unbudgeted engine"
        );
        all_engine.recycle(all);
    }
    let adapt_threshold = {
        let mut pilot_engine = EngineBuilder::new(supernet.net_mut().clone())
            .samples(1)
            .workers(1)
            .execution(execution)
            .build();
        let pilot = pilot_engine
            .predict(&PredictRequest::new(&adapt_images))
            .unwrap();
        let classes = pilot.probs.shape().dim(1);
        let mut scores: Vec<f64> = pilot
            .probs
            .as_slice()
            .chunks(classes)
            .map(|row| {
                -row.iter()
                    .map(|&p| {
                        let p = f64::from(p);
                        if p > 0.0 {
                            p * p.ln()
                        } else {
                            0.0
                        }
                    })
                    .sum::<f64>()
            })
            .collect();
        pilot_engine.recycle(pilot);
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        scores[scores.len() / 2]
    };
    let mut adapt_engine = EngineBuilder::new(supernet.net_mut().clone())
        .samples(mc_samples)
        .workers(1)
        .execution(execution)
        .adaptive(AdaptivePolicy::escalate(EscalationPolicy {
            metric: GateMetric::PredictiveEntropy,
            threshold: adapt_threshold,
            pilot: 1,
        }))
        .build();
    let adapt_resp = adapt_engine
        .predict(&PredictRequest::new(&adapt_images))
        .unwrap();
    let adapt_rate = escalation_rate(adapt_resp.row_samples.as_ref().unwrap(), 1);
    let adapt_full_acc = accuracy(&adapt_full_resp.probs, &adapt_labels).unwrap();
    let adapt_full_ece = ece(&adapt_full_resp.probs, &adapt_labels, EceConfig::default()).unwrap();
    let adapt_acc = accuracy(&adapt_resp.probs, &adapt_labels).unwrap();
    let adapt_ece = ece(&adapt_resp.probs, &adapt_labels, EceConfig::default()).unwrap();
    adapt_full_engine.recycle(adapt_full_resp);
    adapt_engine.recycle(adapt_resp);
    let adapt_full_secs = time_engine(
        &mut adapt_full_engine,
        &adapt_images,
        if smoke { 2 } else { 5 },
    );
    let adapt_gated_secs = time_engine(&mut adapt_engine, &adapt_images, if smoke { 2 } else { 5 });

    // ------------------------------------------------------------------
    // Serving front-end: deadline-aware dynamic batching over the
    // engine. Batch-1 serial = submit one request, wait, repeat — every
    // request pays the client/dispatcher handoff plus a coalescing
    // window that never fills. Saturation = submit the whole request
    // set up front, then collect — the size trigger fires full
    // micro-batches and the dispatch pipeline stays busy. Response
    // bytes are identical in both phases (pinned by tests/serving.rs);
    // only scheduling differs, and the gap between the two rows is the
    // price/payoff of dynamic batching.
    // ------------------------------------------------------------------
    let (serve_serial_reqs, serve_sat_reqs, serve_max_batch) =
        if smoke { (6, 12, 4) } else { (48, 192, 32) };
    let serve_image = |i: u64| {
        let mut r = Rng64::new(0x5E21 + i);
        Tensor::rand_normal(Shape::d4(1, 1, 28, 28), 0.0, 1.0, &mut r)
    };
    let mut serve_builder = ServerBuilder::new(supernet.net_mut().clone())
        .max_batch(serve_max_batch)
        .max_wait_ms(0.5)
        .execution(execution);
    let serve_tenant = serve_builder.tenant(TenantSpec {
        seed: 0,
        samples: mc_samples,
        ..TenantSpec::default()
    });
    let server = serve_builder.build();
    // Warm-up: the first request populates the caches on the dispatch path.
    server
        .submit(serve_tenant, ServeRequest::new(serve_image(0)))
        .unwrap()
        .wait()
        .unwrap();
    let mut serve_lat_ms: Vec<f64> = Vec::with_capacity(serve_serial_reqs);
    let serve_serial_t0 = Instant::now();
    for i in 0..serve_serial_reqs {
        let t = Instant::now();
        server
            .submit(serve_tenant, ServeRequest::new(serve_image(1 + i as u64)))
            .unwrap()
            .wait()
            .unwrap();
        serve_lat_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let serve_serial_elapsed = serve_serial_t0.elapsed().as_secs_f64();
    serve_lat_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let serve_p50 = serve_lat_ms[serve_lat_ms.len() / 2];
    let serve_p99 = serve_lat_ms
        [((serve_lat_ms.len() as f64 * 0.99).ceil() as usize).clamp(1, serve_lat_ms.len()) - 1];
    let serve_serial_rps = serve_serial_reqs as f64 / serve_serial_elapsed;
    let serve_sat_t0 = Instant::now();
    let serve_tickets: Vec<_> = (0..serve_sat_reqs)
        .map(|i| {
            server
                .submit(
                    serve_tenant,
                    ServeRequest::new(serve_image(1000 + i as u64)),
                )
                .unwrap()
        })
        .collect();
    let mut serve_batch_sum = 0usize;
    for ticket in serve_tickets {
        serve_batch_sum += ticket.wait().unwrap().timing.batch_size;
    }
    let serve_sat_elapsed = serve_sat_t0.elapsed().as_secs_f64();
    let serve_sat_rps = serve_sat_reqs as f64 / serve_sat_elapsed;
    let serve_mean_batch = serve_batch_sum as f64 / serve_sat_reqs as f64;
    server.shutdown();

    // ------------------------------------------------------------------
    // Search-session throughput: the Phase-3 `SearchSession` end to end
    // on a tiny LeNet supernet (untrained weights — the per-candidate
    // evaluation cost is identical), 2 evolutionary generations. Reported
    // as fresh candidate evaluations per second.
    // ------------------------------------------------------------------
    let (search_pop, search_val) = if smoke { (4, 16) } else { (8, 64) };
    let search_generations = 2usize;
    let splits = nds_data::mnist_like(&nds_data::DatasetConfig {
        train: 32,
        val: search_val,
        test: 8,
        seed: 0x5EA2C4,
        noise: 0.05,
    });
    let search_spec = SupernetSpec::paper_default(nds_nn::zoo::lenet(), 8).expect("valid spec");
    let mut search_supernet = Supernet::build(&search_spec).expect("builds");
    let search_t0 = Instant::now();
    let mut session = SearchBuilder::new(&mut search_supernet)
        .strategy(Strategy::Evolution(EvolutionConfig {
            population: search_pop,
            generations: search_generations,
            parents: search_pop.div_ceil(2),
            ..EvolutionConfig::default()
        }))
        .validation(&splits.val)
        .build()
        .expect("session builds");
    let search_outcome = session.run().expect("search runs");
    let search_elapsed = search_t0.elapsed().as_secs_f64();
    drop(session);
    let search_evals = search_outcome.budget_spent;
    let search_cps = search_evals as f64 / search_elapsed;

    // ------------------------------------------------------------------
    // Island-model campaign throughput: the same Phase-3 search split
    // across N islands at a fixed total generation budget (so every row
    // spends comparable evaluation work), elites exchanged every epoch.
    // Caveat: this container is single-core, so islands time-slice one
    // worker and candidates/sec stays near-flat with island count; the
    // row exists to track per-island overhead (merge + migration), not
    // parallel speedup.
    // ------------------------------------------------------------------
    let campaign_total_generations = 4usize;
    let mut island_rows = String::new();
    for &islands in &[1usize, 2, 4] {
        let per_island = campaign_total_generations / islands;
        let mut nets: Vec<Supernet> = (0..islands)
            .map(|_| Supernet::build(&search_spec).expect("island supernet builds"))
            .collect();
        let t0 = Instant::now();
        let mut sessions: Vec<_> = nets
            .iter_mut()
            .enumerate()
            .map(|(index, net)| {
                SearchBuilder::new(net)
                    .strategy(Strategy::Evolution(EvolutionConfig {
                        population: search_pop,
                        generations: per_island,
                        parents: search_pop.div_ceil(2),
                        seed: island_seed(0x15_1A2D, index),
                        ..EvolutionConfig::default()
                    }))
                    .validation(&splits.val)
                    .build()
                    .expect("island session builds")
            })
            .collect();
        let mut campaign = Campaign::new(&mut sessions, 1).expect("campaign builds");
        let outcome = campaign.run().expect("campaign runs");
        let elapsed = t0.elapsed().as_secs_f64();
        island_rows.push_str(&format!(
            "    \"islands_{islands}\": {{ \"fresh_evaluations\": {}, \
             \"elapsed_ms\": {:.3}, \"candidates_per_sec\": {:.2} }},\n",
            outcome.budget_spent,
            elapsed * 1e3,
            outcome.budget_spent as f64 / elapsed,
        ));
    }

    let json = format!(
        "{{\n  \
         \"bench\": \"inference-engine baseline\",\n  \
         \"workers\": {workers},\n  \
         \"matmul_256\": {{\n    \
         \"naive_ms\": {:.4},\n    \
         \"blocked_ms\": {:.4},\n    \
         \"transb_ms\": {:.4},\n    \
         \"speedup_blocked\": {:.3},\n    \
         \"speedup_transb\": {:.3}\n  }},\n  \
         \"conv2d_64x64_3x3_b4_16x16\": {{\n    \
         \"direct_ms\": {:.3},\n    \
         \"gemm_ms\": {:.3},\n    \
         \"speedup_vs_direct\": {:.3}\n  }},\n  \
         \"mc_predict_lenet_s3_b32\": {{\n    \
         \"serial_ms\": {:.3},\n    \
         \"parallel_ms\": {:.3},\n    \
         \"speedup\": {:.3},\n    \
         \"images_per_sec\": {:.1}\n  }},\n  \
         \"mask_bank_lenet_s3\": {{\n    \
         \"round_major_ms\": {:.3},\n    \
         \"sample_major_ms\": {:.3},\n    \
         \"speedup\": {:.3},\n    \
         \"images_per_sec\": {:.1},\n    \
         \"byte_identical\": true\n  }},\n  \
         \"mc_predict_resnet18w8_s3_b16\": {{\n    \
         \"serial_ms\": {:.3},\n    \
         \"parallel_ms\": {:.3},\n    \
         \"speedup\": {:.3},\n    \
         \"images_per_sec\": {:.1}\n  }},\n  \
         \"engine_throughput_lenet_s3\": {{\n    \
         \"float32_b32_images_per_sec\": {:.1},\n    \
         \"float32_b256_images_per_sec\": {:.1},\n    \
         \"quantized_q78_b32_images_per_sec\": {:.1},\n    \
         \"quantized_q78_b256_images_per_sec\": {:.1}\n  }},\n  \
         \"degraded_latency_lenet_b32\": {{\n    \
         \"requested_samples\": {deg_samples},\n    \
         \"unbudgeted_ms\": {:.3},\n    \
         \"budget_ms\": {:.3},\n    \
         \"budgeted_ms\": {:.3},\n    \
         \"achieved_samples\": {deg_achieved},\n    \
         \"degraded\": {deg_degraded}\n  }},\n  \
         \"adaptive_lenet_s3\": {{\n    \
         \"pilot\": 1,\n    \
         \"gate\": \"entropy\",\n    \
         \"threshold\": {:.4},\n    \
         \"escalation_rate\": {:.3},\n    \
         \"full_ms\": {:.3},\n    \
         \"gated_ms\": {:.3},\n    \
         \"expected_latency_speedup\": {:.3},\n    \
         \"accuracy_delta\": {:.4},\n    \
         \"ece_delta\": {:.4},\n    \
         \"byte_identical_escalate_all\": true\n  }},\n  \
         \"serving_lenet_s3\": {{\n    \
         \"max_batch\": {serve_max_batch},\n    \
         \"batch1_requests\": {serve_serial_reqs},\n    \
         \"batch1_p50_ms\": {:.3},\n    \
         \"batch1_p99_ms\": {:.3},\n    \
         \"batch1_requests_per_sec\": {:.1},\n    \
         \"saturation_requests\": {serve_sat_reqs},\n    \
         \"saturated_requests_per_sec\": {:.1},\n    \
         \"saturated_mean_batch\": {:.2},\n    \
         \"speedup_vs_batch1\": {:.3}\n  }},\n  \
         \"search_smoke\": {{\n    \
         \"generations\": {search_generations},\n    \
         \"population\": {search_pop},\n    \
         \"fresh_evaluations\": {search_evals},\n    \
         \"elapsed_ms\": {:.3},\n    \
         \"candidates_per_sec\": {:.2}\n  }},\n  \
         \"search_islands\": {{\n    \
         \"total_generations\": {campaign_total_generations},\n    \
         \"population\": {search_pop},\n    \
         \"migrate_every\": 1,\n    \
         \"note\": \"single-core container: islands time-slice one worker, so near-flat candidates/sec with island count is expected\",\n\
{island_rows}    \
         \"islands\": [1, 2, 4]\n  }}\n}}\n",
        naive * 1e3,
        blocked * 1e3,
        transb * 1e3,
        naive / blocked,
        naive / transb,
        conv_direct * 1e3,
        conv_gemm * 1e3,
        conv_direct / conv_gemm,
        mc_serial * 1e3,
        mc_parallel * 1e3,
        mc_serial / mc_parallel,
        mc_batch as f64 / mc_parallel,
        bank_round * 1e3,
        bank_fused * 1e3,
        bank_round / bank_fused,
        mc_batch as f64 / bank_fused,
        resnet_serial * 1e3,
        resnet_parallel * 1e3,
        resnet_serial / resnet_parallel,
        resnet_batch as f64 / resnet_parallel,
        float_small_ips,
        float_large_ips,
        quant_small_ips,
        quant_large_ips,
        deg_full_secs * 1e3,
        deg_budget_ms,
        deg_budgeted_secs * 1e3,
        adapt_threshold,
        adapt_rate,
        adapt_full_secs * 1e3,
        adapt_gated_secs * 1e3,
        adapt_full_secs / adapt_gated_secs,
        adapt_acc - adapt_full_acc,
        adapt_ece - adapt_full_ece,
        serve_p50,
        serve_p99,
        serve_serial_rps,
        serve_sat_rps,
        serve_mean_batch,
        serve_sat_rps / serve_serial_rps,
        search_elapsed * 1e3,
        search_cps,
    );
    if smoke {
        // Smoke runs exist to catch panics/bit-rot, not to record
        // numbers: print and leave the committed baseline untouched.
        println!("{json}");
        println!("smoke mode: skipped writing BENCH_inference.json");
        return;
    }
    let path = nds_bench::results_dir()
        .parent()
        .expect("results dir has a parent")
        .join("BENCH_inference.json");
    std::fs::write(&path, &json).expect("baseline file is writable");
    println!("{json}");
    println!("wrote {}", path.display());
}
