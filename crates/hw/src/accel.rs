//! The accelerator analyzer: latency, resources and power for one
//! (architecture, dropout-configuration) design point.
//!
//! # Model
//!
//! The design is an hls4ml-style **dataflow pipeline**: one engine per
//! conv/linear layer (norm/activation/pooling fuse into the preceding
//! engine), with every dropout unit fused into the stage whose activations
//! it masks. DSPs are allocated to engines proportionally to their MAC
//! counts, which balances stage intervals — the standard hls4ml tuning.
//!
//! Latency for S Monte-Carlo samples streaming through the pipeline:
//!
//! ```text
//! latency = fill + S × bottleneck
//! fill       = max_i compute_cycles_i            (pipeline ramp-in)
//! bottleneck = max_i (compute_cycles_i + dropout_stall_i)
//! ```
//!
//! A dropout unit with initiation interval 1 (Bernoulli, Masksembles)
//! hides behind the pipeline (`stall = 0`); Random and Block stall their
//! stage by `elements × (II − 1)` cycles. This single mechanism reproduces
//! the paper's Table-1 latency structure: uniform Bernoulli/Masksembles
//! tie at the bottom, Random and Block cost ~3 ms more, and a *hybrid*
//! design is dragged to the latency of its slowest dropout unit (the
//! dataflow bottleneck), which is why Accuracy-Optimal `K-M-B-M` lands at
//! all-Block latency.
//!
//! # Calibration
//!
//! [`Calibration`] constants are fitted once against the paper's published
//! numbers and documented field by field. The model's *guarantees* are the
//! orderings and ratios; the absolute match (±a few %) is a convenience.

use crate::device::{FpgaDevice, Utilization};
use crate::dropout_unit::{mask_rom_bits, stall_cycles, unit_profile};
use crate::power::{estimate_power, PowerCoefficients, PowerInputs};
use crate::report::{CsynthReport, StageReport};
use crate::{HwError, Result};
use nds_nn::arch::{Architecture, LayerKind, SlotInfo};
use nds_quant::{FixedFormat, Q7_8};
use nds_supernet::DropoutConfig;

/// Calibrated model constants.
///
/// Fitted against the paper's XCKU115 @ 181 MHz results; see each field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Effective MACs per allocated DSP per cycle. Above 1.0 reflects
    /// operand packing and LUT-mapped multipliers; below 1.0 reflects
    /// memory stalls. (ResNet preset 3.0 reproduces Table 1's 15.401 ms;
    /// LeNet preset 1.1 reproduces Table 3's 0.905 ms.)
    pub mac_throughput_factor: f64,
    /// On-chip weight buffering as a multiple of the largest layer's
    /// weights (weight streaming with prefetch; 1.7 lands the ResNet
    /// design at Table 1's ≈82 % BRAM).
    pub weight_buffer_factor: f64,
    /// Pipeline/control flip-flops per allocated DSP (1900 lands ≈40 % FF).
    pub ff_per_dsp: u64,
    /// Datapath LUTs per allocated DSP.
    pub lut_per_dsp: u64,
    /// Fixed control-logic flip-flops.
    pub ff_base: u64,
    /// Fixed control-logic LUTs.
    pub lut_base: u64,
    /// Unattributed fabric power absorbed by calibration (W); non-zero
    /// only for the small LeNet-class design whose paper-reported 3.9 W
    /// exceeds what its components account for.
    pub baseline_dynamic_w: f64,
    /// Power-model coefficients (see [`PowerCoefficients`]).
    pub power: PowerCoefficients,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            mac_throughput_factor: 3.0,
            weight_buffer_factor: 1.7,
            ff_per_dsp: 1900,
            lut_per_dsp: 600,
            ff_base: 20_000,
            lut_base: 40_000,
            baseline_dynamic_w: 0.0,
            power: PowerCoefficients::default(),
        }
    }
}

/// How the accelerator exploits weight sparsity — the paper's stated
/// future-work item ("providing sparsity support for hardware design"),
/// modelled here so the `ablation` bench can sweep the trade-off against
/// the accuracy cost measured by `nds-nn`'s pruning.
///
/// # Model
///
/// * **Compute** — zero weights are skipped, but skipping is only worth
///   `mac_efficiency()` of the ideal: structured (channel) sparsity shrinks
///   the dense engine directly (efficiency 1.0); unstructured zero-skipping
///   suffers pipeline bubbles and load imbalance (efficiency 0.55, the
///   ballpark reported for CSR-style HLS MAC arrays).
/// * **Memory** — stored weight bits scale by `(1 − s)`; unstructured
///   storage additionally pays an index per surviving weight
///   (8-bit index per Q7.8 datum → 1.5× per-nonzero footprint).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsitySupport {
    /// Fraction of weights that are zero, in `[0, 1)`.
    pub weight_sparsity: f64,
    /// `true` when the zeros form whole channels (structured pruning).
    pub structured: bool,
}

impl SparsitySupport {
    /// No sparsity: the dense design of the paper.
    pub fn dense() -> Self {
        SparsitySupport {
            weight_sparsity: 0.0,
            structured: false,
        }
    }

    /// Unstructured (per-weight) sparsity at fraction `s`.
    pub fn unstructured(s: f64) -> Self {
        SparsitySupport {
            weight_sparsity: s.clamp(0.0, 0.99),
            structured: false,
        }
    }

    /// Structured (channel) sparsity at fraction `s`.
    pub fn structured(s: f64) -> Self {
        SparsitySupport {
            weight_sparsity: s.clamp(0.0, 0.99),
            structured: true,
        }
    }

    /// The fraction of ideal zero-skip speedup the hardware realises.
    pub fn mac_efficiency(&self) -> f64 {
        if self.structured {
            1.0
        } else {
            0.55
        }
    }

    /// Multiplier on effective MAC work: `1 − s·efficiency`.
    pub fn mac_factor(&self) -> f64 {
        (1.0 - self.weight_sparsity * self.mac_efficiency()).max(0.01)
    }

    /// Multiplier on stored weight bits (index overhead included for
    /// unstructured storage; a zero-sparsity design stays in the dense
    /// format and pays nothing).
    pub fn weight_bits_factor(&self) -> f64 {
        if self.weight_sparsity == 0.0 {
            return 1.0;
        }
        let survivors = 1.0 - self.weight_sparsity;
        if self.structured {
            survivors
        } else {
            // 16-bit datum + 8-bit index per surviving weight.
            survivors * 1.5
        }
    }
}

impl Default for SparsitySupport {
    fn default() -> Self {
        SparsitySupport::dense()
    }
}

/// How the S Monte-Carlo samples map onto the accelerator.
///
/// The paper's designs stream samples through one pipeline (temporal
/// mapping). Fan et al. (DAC'23, the paper's reference [7]) explore
/// *spatial* mapping — replicating the engines so samples run
/// concurrently — which the paper lists as an orthogonal optimisation;
/// both are modelled here so the trade-off can be studied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum McMapping {
    /// One pipeline, samples streamed back to back:
    /// `latency = fill + S × bottleneck` (the paper's designs).
    #[default]
    Temporal,
    /// S replicated pipelines, one sample each:
    /// `latency = fill + bottleneck`, at ~S× the compute resources.
    Spatial,
}

/// Full configuration of the modelled accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    /// Target device.
    pub device: FpgaDevice,
    /// Clock frequency in MHz (the paper's designs close timing at 181).
    pub clock_mhz: f64,
    /// Datapath precision (Q7.8 in the paper).
    pub precision: FixedFormat,
    /// Monte-Carlo sampling number S (3 in the paper).
    pub samples: usize,
    /// DSP slices granted to MAC engines.
    pub dsp_budget: u64,
    /// Parallel lanes per dropout unit.
    pub dropout_lanes: u64,
    /// Temporal (paper) or spatial (replicated-engine) MC mapping.
    pub mapping: McMapping,
    /// Weight-sparsity support (dense in the paper's designs).
    pub sparsity: SparsitySupport,
    /// Calibration constants.
    pub calibration: Calibration,
}

impl AcceleratorConfig {
    /// The ResNet18/VGG11-class design point of the paper: XCKU115,
    /// 181 MHz, Q7.8, S = 3, 276 DSPs (5 % of the device).
    pub fn resnet_paper() -> Self {
        AcceleratorConfig {
            device: FpgaDevice::xcku115(),
            clock_mhz: 181.0,
            precision: Q7_8,
            samples: 3,
            dsp_budget: 276,
            dropout_lanes: 1,
            mapping: McMapping::Temporal,
            sparsity: SparsitySupport::dense(),
            calibration: Calibration::default(),
        }
    }

    /// The LeNet-class design point behind Table 3's "Our Work" column
    /// (0.905 ms at 3.9 W).
    pub fn lenet_paper() -> Self {
        AcceleratorConfig {
            device: FpgaDevice::xcku115(),
            clock_mhz: 181.0,
            precision: Q7_8,
            samples: 3,
            dsp_budget: 8,
            dropout_lanes: 1,
            mapping: McMapping::Temporal,
            sparsity: SparsitySupport::dense(),
            calibration: Calibration {
                mac_throughput_factor: 1.1,
                baseline_dynamic_w: 1.65,
                ..Calibration::default()
            },
        }
    }

    /// Chooses a preset from the architecture name (`lenet` → the small
    /// design point, everything else → the ResNet-class point).
    pub fn for_arch(arch: &Architecture) -> Self {
        if arch.name.starts_with("lenet") {
            AcceleratorConfig::lenet_paper()
        } else {
            AcceleratorConfig::resnet_paper()
        }
    }
}

/// The analyzer.
#[derive(Debug, Clone)]
pub struct AcceleratorModel {
    config: AcceleratorConfig,
}

struct Stage {
    name: String,
    macs: u64,
    slot: Option<(SlotInfo, char, f64)>, // slot, code, stall cycles
}

impl AcceleratorModel {
    /// Creates an analyzer with the given configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        AcceleratorModel { config }
    }

    /// The analyzer's configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Analyzes one design point, returning a full csynth-style report.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::BadDesign`] when the configuration's slot count
    /// does not match the architecture, and propagates shape-inference
    /// errors.
    pub fn analyze(&self, arch: &Architecture, config: &DropoutConfig) -> Result<CsynthReport> {
        let slots = arch.slots()?;
        if slots.len() != config.len() {
            return Err(HwError::BadDesign(format!(
                "{} dropout kinds for {} slots in {}",
                config.len(),
                slots.len(),
                arch.name
            )));
        }
        let profile = arch.profile()?;
        let cal = &self.config.calibration;

        // --- Stage construction -----------------------------------------
        let mut stages: Vec<Stage> = Vec::new();
        let mut current = Stage {
            name: "input".to_string(),
            macs: 0,
            slot: None,
        };
        for entry in &profile {
            match entry.kind {
                LayerKind::Conv | LayerKind::Linear | LayerKind::Attention => {
                    if current.macs > 0 || current.slot.is_some() {
                        stages.push(current);
                    }
                    current = Stage {
                        name: entry.name.clone(),
                        macs: entry.macs,
                        slot: None,
                    };
                }
                LayerKind::Slot => {
                    let id = entry.slot.expect("slot entries carry their id");
                    let slot = slots
                        .iter()
                        .find(|s| s.id == id)
                        .expect("profile slots come from the same architecture");
                    let kind = config.kind_at(id).expect("length verified above");
                    let stall = stall_cycles(kind, slot) / self.config.dropout_lanes as f64;
                    current.slot = Some((slot.clone(), kind.code(), stall));
                }
                // Norm / activation / pooling / joins fuse into the stage.
                _ => current.macs += entry.macs,
            }
        }
        if current.macs > 0 || current.slot.is_some() {
            stages.push(current);
        }

        // --- DSP allocation & stage cycles --------------------------------
        let total_macs: u64 = stages.iter().map(|s| s.macs).sum();
        let budget = self.config.dsp_budget.max(1);
        let throughput = cal.mac_throughput_factor.max(1e-9);
        let mut stage_reports = Vec::with_capacity(stages.len());
        let mut dsp_used = 0u64;
        for stage in &stages {
            let share = if total_macs > 0 {
                (budget as f64 * stage.macs as f64 / total_macs as f64).floor() as u64
            } else {
                0
            };
            let alloc = share.max(if stage.macs > 0 { 1 } else { 0 });
            dsp_used += alloc;
            let compute = if stage.macs > 0 {
                stage.macs as f64 * self.config.sparsity.mac_factor() / (alloc as f64 * throughput)
            } else {
                0.0
            };
            let (stall, code) = match &stage.slot {
                Some((_, code, stall)) => (*stall, Some(*code)),
                None => (0.0, None),
            };
            stage_reports.push(StageReport {
                name: stage.name.clone(),
                compute_cycles: compute,
                dropout_stall_cycles: stall,
                dropout: code,
            });
        }

        // --- Latency -------------------------------------------------------
        let fill = stage_reports
            .iter()
            .map(|s| s.compute_cycles)
            .fold(0.0, f64::max);
        let bottleneck = stage_reports
            .iter()
            .map(StageReport::total_cycles)
            .fold(0.0, f64::max);
        let samples = self.config.samples.max(1);
        let replicas = match self.config.mapping {
            McMapping::Temporal => 1,
            McMapping::Spatial => samples,
        };
        let streamed_samples = samples.div_ceil(replicas);
        let latency_cycles = fill + streamed_samples as f64 * bottleneck;
        let latency_ms = latency_cycles / (self.config.clock_mhz * 1e3);

        // --- Resources -------------------------------------------------------
        let bits = self.config.precision.total_bits() as u64;
        let weight_scale = self.config.sparsity.weight_bits_factor();
        let total_weight_bits: u64 = (profile.iter().map(|p| p.params).sum::<u64>() as f64
            * bits as f64
            * weight_scale) as u64;
        let max_layer_bits = (profile.iter().map(|p| p.params).max().unwrap_or(0) as f64
            * bits as f64
            * weight_scale) as u64;
        let max_activation = profile
            .iter()
            .map(|p| p.out_shape.len() as u64)
            .max()
            .unwrap_or(0);
        let mut extra_bram_bits = 0u64;
        let mut lane_lut = 0u64;
        let mut lane_ff = 0u64;
        let max_slot_elems = slots.iter().map(|s| s.shape.len()).max().unwrap_or(1) as f64;
        let mut activity = 1.0f64;
        for slot in &slots {
            let kind = config.kind_at(slot.id).expect("length verified above");
            let unit = unit_profile(kind);
            extra_bram_bits += unit.fixed_bram_bits;
            extra_bram_bits += mask_rom_bits(kind, slot, samples);
            lane_lut += unit.lut_per_lane * self.config.dropout_lanes;
            lane_ff += unit.ff_per_lane * self.config.dropout_lanes;
            if unit.uses_rng {
                let share = slot.shape.len() as f64 / max_slot_elems;
                activity += 0.12 + 0.14 * share;
            }
        }
        let buffered_weight_bits =
            total_weight_bits.min((cal.weight_buffer_factor * max_layer_bits as f64) as u64);
        // Spatial mapping replicates the datapath (weights can be shared
        // through multi-ported buffers, activations and dropout units
        // cannot).
        let r = replicas as u64;
        let dsp_used = dsp_used * r;
        let bram_bits = buffered_weight_bits + r * (2 * max_activation * bits + extra_bram_bits);
        let bram_used = bram_bits.div_ceil(18 * 1024);
        let ff_used = dsp_used * cal.ff_per_dsp + r * lane_ff + cal.ff_base;
        let lut_used = dsp_used * cal.lut_per_dsp + r * lane_lut + cal.lut_base;

        // --- Power -----------------------------------------------------------
        let (c, h, w) = arch.input;
        let bytes_per_image = (c * h * w) as f64 * (bits as f64 / 8.0)
            + (arch.classes * samples) as f64 * (bits as f64 / 8.0);
        let throughput_img_s = if latency_ms > 0.0 {
            1000.0 / latency_ms
        } else {
            0.0
        };
        let power = estimate_power(
            &PowerInputs {
                static_w: self.config.device.static_power_w,
                clock_mhz: self.config.clock_mhz,
                ff_used,
                ff_total: self.config.device.ff,
                lut_used,
                bram_used,
                dsp_used,
                dynamic_dropout_activity: activity,
                throughput_img_s,
                bytes_per_image,
                baseline_dynamic_w: cal.baseline_dynamic_w,
            },
            &cal.power,
        );

        Ok(CsynthReport {
            design: format!("{}/{}", arch.name, config.compact()),
            clock_mhz: self.config.clock_mhz,
            samples,
            latency_cycles,
            latency_ms,
            bottleneck_cycles: bottleneck,
            stages: stage_reports,
            bram: Utilization::new(bram_used, self.config.device.bram_18k),
            dsp: Utilization::new(dsp_used, self.config.device.dsp),
            ff: Utilization::new(ff_used, self.config.device.ff),
            lut: Utilization::new(lut_used, self.config.device.lut),
            power,
        })
    }

    /// Latency-only shortcut (milliseconds) — what the evolutionary search
    /// queries when it bypasses the GP model.
    ///
    /// # Errors
    ///
    /// Same as [`AcceleratorModel::analyze`].
    pub fn latency_ms(&self, arch: &Architecture, config: &DropoutConfig) -> Result<f64> {
        Ok(self.analyze(arch, config)?.latency_ms)
    }

    /// Batch latency query: one modelled figure per configuration, in
    /// input order — the adapter the search layer's GP-surrogate fitting
    /// and exhaustive latency sweeps use so they make one call per
    /// design-point set instead of hand-rolling the loop.
    ///
    /// # Errors
    ///
    /// Fails on the first configuration [`AcceleratorModel::analyze`]
    /// rejects.
    pub fn latency_ms_batch(
        &self,
        arch: &Architecture,
        configs: &[DropoutConfig],
    ) -> Result<Vec<f64>> {
        configs
            .iter()
            .map(|config| self.latency_ms(arch, config))
            .collect()
    }

    /// Adapts this accelerator design point into an `nds-engine` hw-sim
    /// backend descriptor: the datapath emulated at the design's
    /// precision, with the modelled FPGA latency for `(arch, config)`
    /// reported in the response timing. Feed the result to
    /// `nds_engine::Backend::HwSim` — the serving engine then *is* the
    /// software twin of this accelerator.
    ///
    /// # Errors
    ///
    /// Same as [`AcceleratorModel::analyze`].
    pub fn sim_platform(
        &self,
        arch: &Architecture,
        config: &DropoutConfig,
    ) -> Result<nds_engine::SimPlatform> {
        Ok(nds_engine::SimPlatform {
            name: format!(
                "{} @ {:.0} MHz ({config})",
                self.config.device.name, self.config.clock_mhz
            ),
            format: self.config.precision,
            latency_ms_per_image: self.latency_ms(arch, config)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nds_dropout::DropoutKind;
    use nds_nn::zoo;

    fn uniform(kind: DropoutKind) -> DropoutConfig {
        DropoutConfig::uniform(kind, 4)
    }

    fn resnet_report(config: &DropoutConfig) -> CsynthReport {
        let model = AcceleratorModel::new(AcceleratorConfig::resnet_paper());
        model.analyze(&zoo::resnet18_paper(), config).unwrap()
    }

    #[test]
    fn table1_latency_values_within_tolerance() {
        // Paper Table 1 (ResNet18, XCKU115, S = 3):
        //   all Bernoulli 15.401 ms, all Block 18.674 ms,
        //   all Random 18.396 ms, all Masksembles 15.401 ms.
        let cases = [
            (DropoutKind::Bernoulli, 15.401),
            (DropoutKind::Block, 18.674),
            (DropoutKind::Random, 18.396),
            (DropoutKind::Masksembles, 15.401),
        ];
        for (kind, expected) in cases {
            let got = resnet_report(&uniform(kind)).latency_ms;
            let err = (got - expected).abs() / expected;
            assert!(
                err < 0.08,
                "{kind}: modelled {got:.3} ms vs paper {expected} ms ({:.1}% off)",
                100.0 * err
            );
        }
    }

    #[test]
    fn table1_latency_ordering() {
        let b = resnet_report(&uniform(DropoutKind::Bernoulli)).latency_ms;
        let m = resnet_report(&uniform(DropoutKind::Masksembles)).latency_ms;
        let r = resnet_report(&uniform(DropoutKind::Random)).latency_ms;
        let k = resnet_report(&uniform(DropoutKind::Block)).latency_ms;
        assert!((b - m).abs() < 1e-9, "Bernoulli and Masksembles tie");
        assert!(r > b, "Random slower than Bernoulli");
        assert!(k > r, "Block slowest");
    }

    #[test]
    fn hybrid_is_dragged_to_its_slowest_unit() {
        // Accuracy-Optimal K-M-B-M (paper: 18.671 ms ≈ all-Block 18.674 ms).
        let hybrid: DropoutConfig = "KMBM".parse().unwrap();
        let hybrid_ms = resnet_report(&hybrid).latency_ms;
        let all_block_ms = resnet_report(&uniform(DropoutKind::Block)).latency_ms;
        let rel = (hybrid_ms - all_block_ms).abs() / all_block_ms;
        assert!(
            rel < 0.02,
            "hybrid {hybrid_ms:.3} ms should sit at all-Block {all_block_ms:.3} ms"
        );
    }

    #[test]
    fn resnet_resources_match_table1_ballpark() {
        // Paper: BRAM 82%, DSP 5%, FF 39-40%.
        let r = resnet_report(&uniform(DropoutKind::Bernoulli));
        assert!(
            (70.0..92.0).contains(&r.bram.percent()),
            "BRAM {:.1}%",
            r.bram.percent()
        );
        assert!(
            (3.0..8.0).contains(&r.dsp.percent()),
            "DSP {:.1}%",
            r.dsp.percent()
        );
        assert!(
            (32.0..48.0).contains(&r.ff.percent()),
            "FF {:.1}%",
            r.ff.percent()
        );
        assert!(r.fits_device());
    }

    #[test]
    fn resnet_power_matches_figure5_ballpark() {
        // ECE-Optimal (all Masksembles): 3.905 W; Accuracy-Optimal
        // (K-M-B-M): 4.378 W.
        let ece = resnet_report(&uniform(DropoutKind::Masksembles))
            .power
            .total_w();
        let acc = resnet_report(&"KMBM".parse().unwrap()).power.total_w();
        assert!((3.5..4.3).contains(&ece), "ECE-optimal power {ece:.3} W");
        assert!(
            (4.0..4.8).contains(&acc),
            "Accuracy-optimal power {acc:.3} W"
        );
        assert!(acc > ece, "dynamic units must cost power");
    }

    #[test]
    fn masksembles_uses_more_bram_than_bernoulli() {
        let m = resnet_report(&uniform(DropoutKind::Masksembles));
        let b = resnet_report(&uniform(DropoutKind::Bernoulli));
        // Mask ROMs add BRAM bits (§4.3: "The implementation of
        // Masksembles consumes more BRAM resources").
        let m_net = m.bram.used as i64 - 2; // subtract nothing material
        assert!(
            m_net >= b.bram.used as i64 - 4,
            "masksembles {} vs bernoulli {}",
            m.bram.used,
            b.bram.used
        );
    }

    #[test]
    fn lenet_latency_matches_table3() {
        // Table 3 "Our Work": 0.905 ms for the aPE-optimal LeNet (R-R-B).
        let model = AcceleratorModel::new(AcceleratorConfig::lenet_paper());
        let report = model
            .analyze(&zoo::lenet(), &"RRB".parse().unwrap())
            .unwrap();
        let got = report.latency_ms;
        assert!(
            (got - 0.905).abs() / 0.905 < 0.10,
            "LeNet latency {got:.3} ms vs paper 0.905 ms"
        );
        // Power ≈ 3.9 W, energy ≈ 0.004 J/image.
        let p = report.power.total_w();
        assert!((3.4..4.4).contains(&p), "LeNet power {p:.2} W");
        let e = report.energy_per_image_j();
        assert!((0.003..0.005).contains(&e), "energy {e:.4} J/image");
    }

    #[test]
    fn sampling_number_scales_latency() {
        let mut config = AcceleratorConfig::resnet_paper();
        config.samples = 6;
        let model6 = AcceleratorModel::new(config);
        let model3 = AcceleratorModel::new(AcceleratorConfig::resnet_paper());
        let arch = zoo::resnet18_paper();
        let c = uniform(DropoutKind::Bernoulli);
        let l3 = model3.analyze(&arch, &c).unwrap().latency_ms;
        let l6 = model6.analyze(&arch, &c).unwrap().latency_ms;
        // fill + S*bottleneck: doubling S slightly less than doubles latency.
        assert!(l6 > 1.6 * l3 && l6 < 2.0 * l3, "{l3} -> {l6}");
    }

    #[test]
    fn slot_count_mismatch_is_rejected() {
        let model = AcceleratorModel::new(AcceleratorConfig::resnet_paper());
        let short: DropoutConfig = "BB".parse().unwrap();
        assert!(model.analyze(&zoo::resnet18_paper(), &short).is_err());
    }

    #[test]
    fn width_scaled_model_preserves_ordering() {
        // The search runs on width-8 models: orderings must survive.
        let model = AcceleratorModel::new(AcceleratorConfig::resnet_paper());
        let arch = zoo::resnet18(8);
        let b = model
            .analyze(&arch, &uniform(DropoutKind::Bernoulli))
            .unwrap();
        let k = model.analyze(&arch, &uniform(DropoutKind::Block)).unwrap();
        assert!(k.latency_ms > b.latency_ms);
    }

    #[test]
    fn spatial_mapping_trades_resources_for_latency() {
        let mut spatial_config = AcceleratorConfig::resnet_paper();
        spatial_config.mapping = McMapping::Spatial;
        let spatial = AcceleratorModel::new(spatial_config);
        let temporal = AcceleratorModel::new(AcceleratorConfig::resnet_paper());
        let arch = zoo::resnet18_paper();
        let c = uniform(DropoutKind::Bernoulli);
        let t = temporal.analyze(&arch, &c).unwrap();
        let s = spatial.analyze(&arch, &c).unwrap();
        // Latency: fill + S*b vs fill + b -> exactly (1 + S) / 2 ratio at
        // S = 3 with fill = b.
        assert!(
            s.latency_ms < t.latency_ms / 1.8,
            "spatial {:.3} ms should be well under temporal {:.3} ms",
            s.latency_ms,
            t.latency_ms
        );
        // Resources: S replicas of the MAC engines.
        assert_eq!(s.dsp.used, 3 * t.dsp.used);
        assert!(s.ff.used > 2 * t.ff.used);
        // Throughput per device grows: (fill + 3b) / (fill + b) = 2.0 at
        // fill = b, so the ratio is exactly 2x here.
        assert!(s.throughput_img_s() >= 1.95 * t.throughput_img_s());
    }

    #[test]
    fn spatial_mapping_keeps_dropout_orderings() {
        let mut config = AcceleratorConfig::resnet_paper();
        config.mapping = McMapping::Spatial;
        let model = AcceleratorModel::new(config);
        let arch = zoo::resnet18_paper();
        let b = model
            .analyze(&arch, &uniform(DropoutKind::Bernoulli))
            .unwrap();
        let k = model.analyze(&arch, &uniform(DropoutKind::Block)).unwrap();
        assert!(
            k.latency_ms > b.latency_ms,
            "Block still stalls its replica"
        );
    }

    #[test]
    fn for_arch_picks_presets() {
        assert_eq!(
            AcceleratorConfig::for_arch(&zoo::lenet()).dsp_budget,
            AcceleratorConfig::lenet_paper().dsp_budget
        );
        assert_eq!(
            AcceleratorConfig::for_arch(&zoo::resnet18(8)).dsp_budget,
            AcceleratorConfig::resnet_paper().dsp_budget
        );
    }

    fn sparse_report(sparsity: SparsitySupport) -> CsynthReport {
        let mut config = AcceleratorConfig::resnet_paper();
        config.sparsity = sparsity;
        AcceleratorModel::new(config)
            .analyze(&zoo::resnet18_paper(), &uniform(DropoutKind::Bernoulli))
            .unwrap()
    }

    #[test]
    fn dense_sparsity_support_changes_nothing() {
        let dense = resnet_report(&uniform(DropoutKind::Bernoulli));
        let explicit = sparse_report(SparsitySupport::dense());
        assert_eq!(dense.latency_ms, explicit.latency_ms);
        assert_eq!(dense.bram.used, explicit.bram.used);
    }

    #[test]
    fn structured_sparsity_cuts_latency_proportionally() {
        let dense = sparse_report(SparsitySupport::dense());
        let half = sparse_report(SparsitySupport::structured(0.5));
        // Compute-bound dataflow: halving MAC work halves stage cycles.
        let ratio = half.latency_ms / dense.latency_ms;
        assert!(
            (ratio - 0.5).abs() < 0.05,
            "structured 50% sparsity should ~halve latency, ratio {ratio:.3}"
        );
    }

    #[test]
    fn unstructured_sparsity_is_less_effective_than_structured() {
        let structured = sparse_report(SparsitySupport::structured(0.5));
        let unstructured = sparse_report(SparsitySupport::unstructured(0.5));
        assert!(
            unstructured.latency_ms > structured.latency_ms,
            "zero-skip bubbles must cost latency: {} vs {}",
            unstructured.latency_ms,
            structured.latency_ms
        );
        // And the index overhead must cost memory.
        assert!(unstructured.bram.used > structured.bram.used);
    }

    #[test]
    fn structured_sparsity_shrinks_weight_memory() {
        let dense = sparse_report(SparsitySupport::dense());
        let sparse = sparse_report(SparsitySupport::structured(0.75));
        assert!(
            sparse.bram.used < dense.bram.used,
            "pruned weights must shrink BRAM: {} vs {}",
            sparse.bram.used,
            dense.bram.used
        );
    }

    #[test]
    fn transformer_design_analyzes_with_attention_stages() {
        let model = AcceleratorModel::new(AcceleratorConfig::lenet_paper());
        let arch = zoo::tiny_vit(16, 4, 2);
        let config = DropoutConfig::uniform(DropoutKind::Bernoulli, 2);
        let report = model.analyze(&arch, &config).unwrap();
        assert!(report.latency_ms > 0.0);
        // Encoder blocks are their own pipeline stages: patch embed + 2
        // attention + 2 MLP + classifier = at least 6 compute stages.
        let compute_stages = report
            .stages
            .iter()
            .filter(|s| s.compute_cycles > 0.0)
            .count();
        assert!(compute_stages >= 6, "{compute_stages} stages");
        // Dropout ordering carries over: Block-stalled vit is slower.
        let block = model
            .analyze(&arch, &DropoutConfig::uniform(DropoutKind::Block, 2))
            .unwrap();
        assert!(block.latency_ms > report.latency_ms);
    }

    #[test]
    fn sparsity_factors_are_clamped_and_monotone() {
        assert_eq!(SparsitySupport::unstructured(-0.5).weight_sparsity, 0.0);
        assert!(SparsitySupport::structured(2.0).weight_sparsity <= 0.99);
        let mut last = f64::INFINITY;
        for s in [0.0, 0.25, 0.5, 0.75] {
            let factor = SparsitySupport::unstructured(s).mac_factor();
            assert!(factor < last, "mac factor must fall with sparsity");
            assert!(factor > 0.0);
            last = factor;
        }
    }
}
