//! Hardware profiles of the four dropout units.
//!
//! Each dropout design maps to a different micro-architecture, and the
//! differences drive everything the search cares about:
//!
//! | Unit | Mask source | II (cycles/elem) | Extra resources |
//! |------|-------------|------------------|-----------------|
//! | Bernoulli | LFSR + comparator per lane | 1 (fully pipelined, hidden) | comparator LUTs |
//! | Random | LFSR + index queue + two-pass apply | ≈ 3.5 | comparator + index FIFO |
//! | Block | LFSR + line buffer + patch expander | ≈ 3.8 | comparators + line-buffer BRAM |
//! | Masksembles | mask ROM in BRAM | 1 (ROM read, hidden) | mask ROM BRAM |
//!
//! An II of 1 means mask application hides completely behind the
//! surrounding dataflow pipeline, so Bernoulli and Masksembles add no
//! latency — exactly the Table-1 pattern (both at 15.401 ms, Random
//! 18.396 ms, Block 18.674 ms).

use nds_dropout::DropoutKind;
use nds_nn::arch::{FeatureShape, SlotInfo};

/// The hardware cost profile of one dropout unit design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropoutUnitProfile {
    /// Initiation interval in cycles per activation element. Values above
    /// 1.0 stall the dataflow stage the unit is fused into.
    pub ii: f64,
    /// Whether the unit instantiates the LFSR + comparator chain
    /// (dynamic designs) — drives Logic&Signal power.
    pub uses_rng: bool,
    /// LUTs per parallel lane for mask generation/application logic.
    pub lut_per_lane: u64,
    /// FFs per parallel lane.
    pub ff_per_lane: u64,
    /// Fixed BRAM bits needed beyond per-lane logic (line buffers).
    pub fixed_bram_bits: u64,
}

/// Returns the profile of a dropout unit for the given design.
///
/// II values are calibrated against Table 1 of the paper: with S = 3
/// samples on the ResNet design, Block's stall over the conv bottleneck
/// reproduces the 18.674 vs 15.401 ms split (see `accel` tests).
pub fn unit_profile(kind: DropoutKind) -> DropoutUnitProfile {
    match kind {
        DropoutKind::Bernoulli => DropoutUnitProfile {
            ii: 1.0,
            uses_rng: true,
            // LFSR (16 FF) + 16-bit comparator + AND gate per lane.
            lut_per_lane: 24,
            ff_per_lane: 20,
            fixed_bram_bits: 0,
        },
        DropoutKind::Random => DropoutUnitProfile {
            // Two-pass: draw/sort indices, then apply. Effective stall ~3.5
            // cycles per element at one lane (calibrated to Table 1's
            // 18.396 ms all-Random row).
            ii: 3.5,
            uses_rng: true,
            lut_per_lane: 64,
            ff_per_lane: 48,
            // Index FIFO sized for the largest masked tile.
            fixed_bram_bits: 16 * 1024,
        },
        DropoutKind::Block => DropoutUnitProfile {
            // Patch expansion needs a (block-1)-row line buffer and
            // serialises patch writes (calibrated to Table 1's 18.674 ms
            // all-Block row).
            ii: 3.8,
            uses_rng: true,
            lut_per_lane: 96,
            ff_per_lane: 64,
            fixed_bram_bits: 32 * 1024,
        },
        DropoutKind::Masksembles => DropoutUnitProfile {
            // Pure ROM lookup, fully pipelined.
            ii: 1.0,
            uses_rng: false,
            lut_per_lane: 8,
            ff_per_lane: 8,
            fixed_bram_bits: 0, // ROM sized separately from the mask set
        },
        DropoutKind::Gaussian => DropoutUnitProfile {
            // CLT noise generator (sum of LFSR words) + one multiplier per
            // lane; fully pipelined like Bernoulli, but with a wider
            // datapath (extension design, not in the paper).
            ii: 1.0,
            uses_rng: true,
            lut_per_lane: 140,
            ff_per_lane: 96,
            fixed_bram_bits: 0,
        },
    }
}

/// BRAM bits needed to store the Masksembles mask ROM for a slot:
/// `S × features` bits (features = channels after conv, units after FC).
/// Zero for the dynamic designs.
pub fn mask_rom_bits(kind: DropoutKind, slot: &SlotInfo, samples: usize) -> u64 {
    if kind != DropoutKind::Masksembles {
        return 0;
    }
    let features = match slot.shape {
        FeatureShape::Map { c, .. } => c,
        FeatureShape::Vector { features } => features,
    };
    (samples * features) as u64
}

/// Stall cycles the unit adds to its dataflow stage for one sample:
/// `elements × (II − 1)` — an II of 1 hides entirely behind the pipeline.
pub fn stall_cycles(kind: DropoutKind, slot: &SlotInfo) -> f64 {
    let profile = unit_profile(kind);
    let elements = slot.shape.len() as f64;
    elements * (profile.ii - 1.0).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nds_nn::arch::SlotPosition;

    fn conv_slot(c: usize, h: usize, w: usize) -> SlotInfo {
        SlotInfo {
            id: 0,
            shape: FeatureShape::Map { c, h, w },
            position: SlotPosition::Conv,
        }
    }

    #[test]
    fn pipelined_units_add_no_stall() {
        let slot = conv_slot(64, 32, 32);
        assert_eq!(stall_cycles(DropoutKind::Bernoulli, &slot), 0.0);
        assert_eq!(stall_cycles(DropoutKind::Masksembles, &slot), 0.0);
    }

    #[test]
    fn stall_ordering_matches_table1() {
        let slot = conv_slot(64, 32, 32);
        let random = stall_cycles(DropoutKind::Random, &slot);
        let block = stall_cycles(DropoutKind::Block, &slot);
        assert!(
            block > random,
            "block {block} should stall more than random {random}"
        );
        assert!(random > 0.0);
    }

    #[test]
    fn only_dynamic_units_use_rng() {
        assert!(unit_profile(DropoutKind::Bernoulli).uses_rng);
        assert!(unit_profile(DropoutKind::Random).uses_rng);
        assert!(unit_profile(DropoutKind::Block).uses_rng);
        assert!(!unit_profile(DropoutKind::Masksembles).uses_rng);
        assert!(unit_profile(DropoutKind::Gaussian).uses_rng);
    }

    #[test]
    fn gaussian_unit_is_pipelined_but_heavier_than_bernoulli() {
        let slot = conv_slot(64, 32, 32);
        assert_eq!(stall_cycles(DropoutKind::Gaussian, &slot), 0.0);
        let g = unit_profile(DropoutKind::Gaussian);
        let b = unit_profile(DropoutKind::Bernoulli);
        assert!(g.lut_per_lane > b.lut_per_lane);
        assert_eq!(mask_rom_bits(DropoutKind::Gaussian, &slot, 3), 0);
    }

    #[test]
    fn mask_rom_only_for_masksembles() {
        let slot = conv_slot(64, 32, 32);
        assert_eq!(mask_rom_bits(DropoutKind::Bernoulli, &slot, 3), 0);
        // Channel-granular: 3 masks x 64 channels.
        assert_eq!(mask_rom_bits(DropoutKind::Masksembles, &slot, 3), 192);
        let fc = SlotInfo {
            id: 1,
            shape: FeatureShape::Vector { features: 120 },
            position: SlotPosition::FullyConnected,
        };
        assert_eq!(mask_rom_bits(DropoutKind::Masksembles, &fc, 3), 360);
    }
}
