//! The on-chip pseudo-random number generator block.
//!
//! Dynamic dropout units generate their masks in hardware from a linear
//! feedback shift register: one 16-bit Fibonacci LFSR per lane, compared
//! against a drop-rate threshold each cycle. This module implements that
//! block *functionally* so the simulator's dynamic masks come from the same
//! bitstream a real design would produce, and so the comparator activity
//! feeding the power model is grounded in an actual circuit.

/// A 16-bit Fibonacci LFSR with taps (16, 15, 13, 4) — a maximal-length
/// polynomial giving a period of 2¹⁶ − 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lfsr16 {
    state: u16,
}

impl Lfsr16 {
    /// Creates an LFSR from a non-zero seed (zero is the lock-up state and
    /// is mapped to 1).
    pub fn new(seed: u16) -> Self {
        Lfsr16 {
            state: if seed == 0 { 1 } else { seed },
        }
    }

    /// Advances one cycle and returns the new 16-bit state.
    #[inline]
    pub fn next_word(&mut self) -> u16 {
        let s = self.state;
        let bit = ((s >> 15) ^ (s >> 14) ^ (s >> 12) ^ (s >> 3)) & 1;
        self.state = (s << 1) | bit;
        self.state
    }

    /// The current state.
    pub fn state(&self) -> u16 {
        self.state
    }

    /// One hardware dropout decision: advance and compare against a 16-bit
    /// threshold. Returns `true` when the unit drops the value (state below
    /// threshold, i.e. drop with probability `threshold / 65536`).
    #[inline]
    pub fn drop_decision(&mut self, threshold: u16) -> bool {
        self.next_word() < threshold
    }

    /// The threshold word for a drop probability.
    pub fn threshold_for_rate(rate: f32) -> u16 {
        (rate.clamp(0.0, 1.0) * 65536.0).round().min(65535.0) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let l = Lfsr16::new(0);
        assert_ne!(l.state(), 0);
    }

    #[test]
    fn never_reaches_zero() {
        let mut l = Lfsr16::new(0xACE1);
        for _ in 0..100_000 {
            assert_ne!(l.next_word(), 0);
        }
    }

    #[test]
    fn full_period() {
        // Maximal-length 16-bit LFSR: revisits the seed after 2^16 - 1 steps
        // and not before (checked via set cardinality).
        let seed = 0x1u16;
        let mut l = Lfsr16::new(seed);
        let mut seen = std::collections::HashSet::with_capacity(1 << 16);
        seen.insert(l.state());
        for _ in 0..(65535 - 1) {
            assert!(seen.insert(l.next_word()), "state repeated early");
        }
        assert_eq!(l.next_word(), seed, "period must be exactly 2^16 - 1");
    }

    #[test]
    fn drop_rate_tracks_threshold() {
        let mut l = Lfsr16::new(0xBEEF);
        let threshold = Lfsr16::threshold_for_rate(0.25);
        let n = 65_535;
        let drops = (0..n).filter(|_| l.drop_decision(threshold)).count();
        let rate = drops as f64 / n as f64;
        // Over a full period the rate is within one LSB of the target.
        assert!((rate - 0.25).abs() < 0.01, "observed drop rate {rate}");
    }

    #[test]
    fn threshold_mapping_edges() {
        assert_eq!(Lfsr16::threshold_for_rate(0.0), 0);
        assert_eq!(Lfsr16::threshold_for_rate(1.0), 65535);
        assert_eq!(Lfsr16::threshold_for_rate(-3.0), 0);
    }
}
