//! FPGA accelerator model: latency, resources and power for dropout-based
//! BayesNN accelerators, plus CPU/GPU reference platforms.
//!
//! The paper implements its accelerators in Vivado-HLS 2020.1 and reports
//! C-synthesis latency/resources and post-place-and-route power on a Xilinx
//! Kintex **XCKU115** at 181 MHz with Q7.8 fixed point (§4). No FPGA
//! toolchain exists in this reproduction, so this crate models the same
//! design analytically — and encodes the *mechanisms* the paper's numbers
//! come from:
//!
//! * a dataflow pipeline of per-layer engines; S Monte-Carlo samples stream
//!   through it, so `latency = fill + (S−1) × bottleneck_stage` — which is
//!   why a single Block-dropout slot drags a hybrid design to all-Block
//!   latency in Table 1,
//! * dynamic dropout units (Bernoulli / Random / Block) built from an
//!   on-chip [`lfsr::Lfsr16`] plus comparators — extra Logic&Signal power,
//! * the static Masksembles unit reading pre-generated masks from BRAM —
//!   extra BRAM, no comparator tree (Figure 5's power split),
//! * Q7.8 datapath emulation ([`simulator`]) for quantised-accuracy checks.
//!
//! Calibration constants are tuned so the paper-scale designs land near the
//! published numbers (documented per-constant in [`accel::Calibration`]);
//! the *orderings and ratios* are what the model guarantees.
//!
//! # Examples
//!
//! ```
//! use nds_hw::accel::{AcceleratorConfig, AcceleratorModel};
//! use nds_hw::device::FpgaDevice;
//! use nds_nn::zoo;
//! use nds_supernet::DropoutConfig;
//! use nds_dropout::DropoutKind;
//!
//! let model = AcceleratorModel::new(AcceleratorConfig::resnet_paper());
//! let arch = zoo::resnet18_paper();
//! let all_bernoulli = DropoutConfig::uniform(DropoutKind::Bernoulli, 4);
//! let all_block = DropoutConfig::uniform(DropoutKind::Block, 4);
//! let fast = model.analyze(&arch, &all_bernoulli)?;
//! let slow = model.analyze(&arch, &all_block)?;
//! assert!(fast.latency_ms < slow.latency_ms); // Table 1 ordering
//! # Ok::<(), nds_hw::HwError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accel;
pub mod device;
pub mod dropout_unit;
pub mod lfsr;
pub mod platform;
pub mod power;
pub mod report;
pub mod simulator;

use nds_nn::NnError;
use std::error::Error as StdError;
use std::fmt;

/// Errors from hardware modelling.
#[derive(Debug, Clone, PartialEq)]
pub enum HwError {
    /// The architecture/config pair was inconsistent (e.g. wrong slot count).
    BadDesign(String),
    /// An underlying network error (shape inference, execution).
    Nn(NnError),
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::BadDesign(msg) => write!(f, "bad accelerator design: {msg}"),
            HwError::Nn(e) => write!(f, "network error: {e}"),
        }
    }
}

impl StdError for HwError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            HwError::Nn(e) => Some(e),
            HwError::BadDesign(_) => None,
        }
    }
}

impl From<NnError> for HwError {
    fn from(e: NnError) -> Self {
        HwError::Nn(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, HwError>;
