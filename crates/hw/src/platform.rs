//! Reference platforms for the Table-3 comparison.
//!
//! The paper compares its FPGA designs against an Intel i9-9900K CPU, an
//! NVIDIA RTX 2080 GPU, and three published accelerators. The CPU/GPU
//! entries are modelled analytically (effective MAC throughput + published
//! power-class figures, calibrated to the paper's measured LeNet
//! latencies); the related-work entries are **quoted constants** from the
//! papers the authors themselves quote — there is nothing executable to
//! reproduce there, and each row says so via [`PlatformRow::Quoted`].

use nds_nn::arch::Architecture;

/// How a comparison row was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformRow {
    /// Computed by this crate's analytical model.
    Modelled,
    /// Quoted verbatim from the cited publication (as the paper does).
    Quoted,
}

/// One row of the Table-3 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformResult {
    /// Platform name as printed in the table.
    pub name: String,
    /// Hardware part.
    pub platform: String,
    /// Clock frequency (MHz).
    pub frequency_mhz: f64,
    /// Process node (nm).
    pub technology_nm: u32,
    /// Power (W).
    pub power_w: f64,
    /// Latency per prediction (ms); `None` when the source does not report
    /// a comparable figure.
    pub latency_ms: Option<f64>,
    /// aPE in nats; `None` when not reported.
    pub ape_nats: Option<f64>,
    /// Provenance of this row.
    pub provenance: PlatformRow,
}

impl PlatformResult {
    /// Energy per image in joules (power × latency).
    pub fn energy_per_image_j(&self) -> Option<f64> {
        self.latency_ms.map(|l| self.power_w * l / 1000.0)
    }
}

/// An analytical CPU/GPU execution model.
///
/// Latency = `S × MACs / effective_throughput + framework_overhead`. The
/// effective throughput for small-batch single-image MC-dropout inference
/// is far below peak (framework dispatch dominates) — the constants are
/// calibrated so LeNet S=3 lands on the paper's measured 1.26 ms (CPU) and
/// 0.57 ms (GPU).
#[derive(Debug, Clone, PartialEq)]
pub struct ComputePlatform {
    /// Display name.
    pub name: String,
    /// Part name.
    pub platform: String,
    /// Clock (MHz).
    pub frequency_mhz: f64,
    /// Process node (nm).
    pub technology_nm: u32,
    /// Board/package power under inference load (W).
    pub power_w: f64,
    /// Effective MAC/s under MC-dropout inference.
    pub effective_macs_per_s: f64,
    /// Per-forward-pass dispatch overhead (ms).
    pub overhead_ms_per_pass: f64,
}

impl ComputePlatform {
    /// The paper's CPU baseline: Intel Core i9-9900K, 14 nm, 205 W under
    /// load, measured 1.26 ms for LeNet MC-3.
    pub fn cpu_i9_9900k() -> Self {
        ComputePlatform {
            name: "CPU".to_string(),
            platform: "Intel Core i9-9900K".to_string(),
            frequency_mhz: 3600.0,
            technology_nm: 14,
            power_w: 205.0,
            effective_macs_per_s: 1.05e9,
            overhead_ms_per_pass: 0.15,
        }
    }

    /// The paper's GPU baseline: NVIDIA RTX 2080, 12 nm, 236 W under load,
    /// measured 0.57 ms for LeNet MC-3 (kernel-launch bound).
    pub fn gpu_rtx2080() -> Self {
        ComputePlatform {
            name: "GPU".to_string(),
            platform: "NVIDIA RTX 2080".to_string(),
            frequency_mhz: 1545.0,
            technology_nm: 12,
            power_w: 236.0,
            effective_macs_per_s: 6.5e9,
            overhead_ms_per_pass: 0.145,
        }
    }

    /// Latency for S MC samples of the given architecture (ms).
    ///
    /// # Errors
    ///
    /// Propagates architecture shape-inference errors.
    pub fn latency_ms(&self, arch: &Architecture, samples: usize) -> crate::Result<f64> {
        Ok(self.latency_ms_for_macs(arch.total_macs()? as f64, samples))
    }

    /// [`ComputePlatform::latency_ms`] for a known MAC count.
    pub fn latency_ms_for_macs(&self, macs: f64, samples: usize) -> f64 {
        let samples = samples.max(1) as f64;
        samples * (macs / self.effective_macs_per_s * 1e3 + self.overhead_ms_per_pass)
    }

    /// Adapts this platform into an `nds-engine` hw-sim backend
    /// descriptor: the quantised datapath emulated at `format`, with
    /// this platform's modelled S-sample latency reported in the
    /// response timing. Feed the result to
    /// `nds_engine::Backend::HwSim`.
    ///
    /// # Errors
    ///
    /// Propagates architecture shape-inference errors.
    pub fn sim_platform(
        &self,
        format: nds_quant::FixedFormat,
        arch: &Architecture,
        samples: usize,
    ) -> crate::Result<nds_engine::SimPlatform> {
        Ok(nds_engine::SimPlatform {
            name: format!("{} ({})", self.name, self.platform),
            format,
            latency_ms_per_image: self.latency_ms(arch, samples)?,
        })
    }

    /// A Table-3 row for this platform running the given workload.
    ///
    /// # Errors
    ///
    /// Propagates architecture shape-inference errors.
    pub fn result(
        &self,
        arch: &Architecture,
        samples: usize,
        ape_nats: Option<f64>,
    ) -> crate::Result<PlatformResult> {
        Ok(PlatformResult {
            name: self.name.clone(),
            platform: self.platform.clone(),
            frequency_mhz: self.frequency_mhz,
            technology_nm: self.technology_nm,
            power_w: self.power_w,
            latency_ms: Some(self.latency_ms(arch, samples)?),
            ape_nats,
            provenance: PlatformRow::Modelled,
        })
    }
}

/// The related-work rows of Table 3, quoted from the respective papers
/// exactly as the paper quotes them.
pub fn related_work_rows() -> Vec<PlatformResult> {
    vec![
        PlatformResult {
            name: "ASPLOS'18 [3] (VIBNN)".to_string(),
            platform: "Altera Cyclone V".to_string(),
            frequency_mhz: 213.0,
            technology_nm: 28,
            power_w: 6.11,
            latency_ms: Some(5.5),
            ape_nats: None,
            provenance: PlatformRow::Quoted,
        },
        PlatformResult {
            name: "DATE'20 [1] (BYNQNet)".to_string(),
            platform: "Zynq XC7Z020".to_string(),
            frequency_mhz: 200.0,
            technology_nm: 28,
            power_w: 2.76,
            latency_ms: Some(4.5),
            ape_nats: None,
            provenance: PlatformRow::Quoted,
        },
        PlatformResult {
            name: "TPDS'22 [10]".to_string(),
            platform: "Arria 10 GX1150".to_string(),
            frequency_mhz: 220.0,
            technology_nm: 20,
            power_w: 43.6,
            latency_ms: Some(0.32),
            ape_nats: Some(0.45),
            provenance: PlatformRow::Quoted,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nds_nn::zoo;

    #[test]
    fn cpu_latency_matches_paper_lenet_measurement() {
        let cpu = ComputePlatform::cpu_i9_9900k();
        let got = cpu.latency_ms(&zoo::lenet(), 3).unwrap();
        assert!(
            (got - 1.26).abs() / 1.26 < 0.10,
            "CPU LeNet MC-3 latency {got:.3} ms vs paper 1.26 ms"
        );
    }

    #[test]
    fn gpu_latency_matches_paper_lenet_measurement() {
        let gpu = ComputePlatform::gpu_rtx2080();
        let got = gpu.latency_ms(&zoo::lenet(), 3).unwrap();
        assert!(
            (got - 0.57).abs() / 0.57 < 0.10,
            "GPU LeNet MC-3 latency {got:.3} ms vs paper 0.57 ms"
        );
    }

    #[test]
    fn energy_ratios_match_table3() {
        // Paper: CPU 0.258 J/image, GPU 0.134 J/image.
        let cpu = ComputePlatform::cpu_i9_9900k()
            .result(&zoo::lenet(), 3, Some(0.27))
            .unwrap();
        let gpu = ComputePlatform::gpu_rtx2080()
            .result(&zoo::lenet(), 3, Some(0.27))
            .unwrap();
        let e_cpu = cpu.energy_per_image_j().unwrap();
        let e_gpu = gpu.energy_per_image_j().unwrap();
        assert!(
            (e_cpu - 0.258).abs() / 0.258 < 0.12,
            "CPU energy {e_cpu:.3}"
        );
        assert!(
            (e_gpu - 0.134).abs() / 0.134 < 0.12,
            "GPU energy {e_gpu:.3}"
        );
    }

    #[test]
    fn latency_scales_with_samples() {
        let cpu = ComputePlatform::cpu_i9_9900k();
        let one = cpu.latency_ms(&zoo::lenet(), 1).unwrap();
        let three = cpu.latency_ms(&zoo::lenet(), 3).unwrap();
        assert!((three / one - 3.0).abs() < 1e-9, "linear in S on CPU");
    }

    #[test]
    fn related_work_rows_are_quoted() {
        let rows = related_work_rows();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.provenance == PlatformRow::Quoted));
        // Spot-check the TPDS row the paper compares aPE against.
        let tpds = rows.iter().find(|r| r.name.contains("TPDS")).unwrap();
        assert_eq!(tpds.ape_nats, Some(0.45));
        assert_eq!(tpds.latency_ms, Some(0.32));
        assert!((tpds.energy_per_image_j().unwrap() - 0.0139).abs() < 5e-4);
    }
}
