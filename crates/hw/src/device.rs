//! FPGA device descriptors.

use std::fmt;

/// Static description of an FPGA part.
///
/// Resource counts follow vendor datasheets; `static_power_w` is the
/// post-route static figure the paper's Figure 5 reports for the chosen
/// part.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaDevice {
    /// Part name (e.g. `XCKU115`).
    pub name: String,
    /// Number of 18 Kb block-RAM units.
    pub bram_18k: u64,
    /// Number of DSP48 slices.
    pub dsp: u64,
    /// Number of flip-flops.
    pub ff: u64,
    /// Number of LUTs.
    pub lut: u64,
    /// Process technology in nanometres.
    pub technology_nm: u32,
    /// Static power at nominal conditions (W).
    pub static_power_w: f64,
}

impl FpgaDevice {
    /// Xilinx Kintex UltraScale **XCKU115** — the paper's target (§4).
    ///
    /// 4320 × 18 Kb BRAM, 5520 DSP48E2, ~1.33 M FF, ~663 k LUT, 20 nm.
    /// Static power ≈ 1.29 W per the paper's Figure 5.
    pub fn xcku115() -> Self {
        FpgaDevice {
            name: "XCKU115".to_string(),
            bram_18k: 4320,
            dsp: 5520,
            ff: 1_326_720,
            lut: 663_360,
            technology_nm: 20,
            static_power_w: 1.29,
        }
    }

    /// Xilinx Zynq **XC7Z020** (PYNQ-Z1) — the BYNQNet [1] target, used by
    /// the related-work comparison.
    pub fn xc7z020() -> Self {
        FpgaDevice {
            name: "XC7Z020".to_string(),
            bram_18k: 280,
            dsp: 220,
            ff: 106_400,
            lut: 53_200,
            technology_nm: 28,
            static_power_w: 0.2,
        }
    }

    /// Total BRAM capacity in bits.
    pub fn bram_bits(&self) -> u64 {
        self.bram_18k * 18 * 1024
    }
}

impl fmt::Display for FpgaDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} nm): {} BRAM18K, {} DSP, {} FF, {} LUT",
            self.name, self.technology_nm, self.bram_18k, self.dsp, self.ff, self.lut
        )
    }
}

/// Utilisation of one resource class: used units out of available.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// Units in use.
    pub used: u64,
    /// Units available on the device.
    pub available: u64,
}

impl Utilization {
    /// Creates a utilisation record.
    pub fn new(used: u64, available: u64) -> Self {
        Utilization { used, available }
    }

    /// Percentage used (may exceed 100 for infeasible designs).
    pub fn percent(&self) -> f64 {
        if self.available == 0 {
            0.0
        } else {
            100.0 * self.used as f64 / self.available as f64
        }
    }

    /// Whether the design fits the device for this resource.
    pub fn fits(&self) -> bool {
        self.used <= self.available
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ({:.0}%)",
            self.used,
            self.available,
            self.percent()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xcku115_matches_datasheet() {
        let d = FpgaDevice::xcku115();
        assert_eq!(d.bram_18k, 4320);
        assert_eq!(d.dsp, 5520);
        assert_eq!(d.technology_nm, 20);
        // 4320 x 18Kb = 75.9 Mb total BRAM.
        assert_eq!(d.bram_bits(), 4320 * 18 * 1024);
    }

    #[test]
    fn utilization_math() {
        let u = Utilization::new(50, 200);
        assert_eq!(u.percent(), 25.0);
        assert!(u.fits());
        let over = Utilization::new(300, 200);
        assert!(!over.fits());
        assert_eq!(over.percent(), 150.0);
        let none = Utilization::new(0, 0);
        assert_eq!(none.percent(), 0.0);
    }
}
