//! C-synthesis-style design reports.

use crate::device::Utilization;
use crate::power::PowerBreakdown;
use std::fmt;

/// A per-stage latency entry of the dataflow pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Engine name (e.g. `conv2d(64->64, 3x3/s1 p1)`).
    pub name: String,
    /// Compute cycles for one MC sample.
    pub compute_cycles: f64,
    /// Extra stall cycles from a fused dropout unit (0 when hidden).
    pub dropout_stall_cycles: f64,
    /// Dropout design fused into this stage, as a Table-2 code letter.
    pub dropout: Option<char>,
}

impl StageReport {
    /// Total cycles this stage occupies per sample.
    pub fn total_cycles(&self) -> f64 {
        self.compute_cycles + self.dropout_stall_cycles
    }
}

/// The analyzer's output for one (architecture, dropout-config) design —
/// the analogue of a Vivado-HLS C-synthesis report plus post-route power.
#[derive(Debug, Clone, PartialEq)]
pub struct CsynthReport {
    /// Design name (`<arch>/<config>`).
    pub design: String,
    /// Clock frequency (MHz).
    pub clock_mhz: f64,
    /// Number of MC samples per prediction (S).
    pub samples: usize,
    /// End-to-end latency per prediction, in cycles.
    pub latency_cycles: f64,
    /// End-to-end latency per prediction, in milliseconds.
    pub latency_ms: f64,
    /// The bottleneck stage interval (cycles) — the dataflow II.
    pub bottleneck_cycles: f64,
    /// Per-stage detail.
    pub stages: Vec<StageReport>,
    /// BRAM utilisation.
    pub bram: Utilization,
    /// DSP utilisation.
    pub dsp: Utilization,
    /// FF utilisation.
    pub ff: Utilization,
    /// LUT utilisation.
    pub lut: Utilization,
    /// Power estimate with the Figure-5 breakdown.
    pub power: PowerBreakdown,
}

impl CsynthReport {
    /// Throughput in images per second.
    pub fn throughput_img_s(&self) -> f64 {
        if self.latency_ms > 0.0 {
            1000.0 / self.latency_ms
        } else {
            0.0
        }
    }

    /// Energy per image in joules (the paper's Table-3 efficiency metric).
    pub fn energy_per_image_j(&self) -> f64 {
        self.power.total_w() * self.latency_ms / 1000.0
    }

    /// Whether the design fits the device in every resource class.
    pub fn fits_device(&self) -> bool {
        self.bram.fits() && self.dsp.fits() && self.ff.fits() && self.lut.fits()
    }
}

impl fmt::Display for CsynthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== C-synthesis report: {} ==", self.design)?;
        writeln!(
            f,
            "clock {:.0} MHz | S = {} samples | latency {:.3} ms ({:.0} cycles, bottleneck {:.0})",
            self.clock_mhz,
            self.samples,
            self.latency_ms,
            self.latency_cycles,
            self.bottleneck_cycles
        )?;
        writeln!(
            f,
            "resources: BRAM {} | DSP {} | FF {} | LUT {}",
            self.bram, self.dsp, self.ff, self.lut
        )?;
        writeln!(
            f,
            "throughput {:.1} img/s | energy {:.4} J/image",
            self.throughput_img_s(),
            self.energy_per_image_j()
        )?;
        writeln!(f, "{}", self.power)?;
        writeln!(f, "stages:")?;
        for stage in &self.stages {
            write!(
                f,
                "  {:<44} {:>12.0} cycles",
                stage.name, stage.compute_cycles
            )?;
            if let Some(code) = stage.dropout {
                write!(f, "  [dropout {} +{:.0}]", code, stage.dropout_stall_cycles)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_report() -> CsynthReport {
        CsynthReport {
            design: "test/BB".to_string(),
            clock_mhz: 181.0,
            samples: 3,
            latency_cycles: 181_000.0,
            latency_ms: 1.0,
            bottleneck_cycles: 50_000.0,
            stages: vec![StageReport {
                name: "conv".to_string(),
                compute_cycles: 50_000.0,
                dropout_stall_cycles: 100.0,
                dropout: Some('B'),
            }],
            bram: Utilization::new(100, 4320),
            dsp: Utilization::new(276, 5520),
            ff: Utilization::new(1000, 1_326_720),
            lut: Utilization::new(1000, 663_360),
            power: PowerBreakdown {
                static_w: 1.29,
                clocking_w: 0.4,
                logic_signal_w: 1.5,
                bram_w: 0.5,
                dsp_w: 0.2,
                io_w: 0.2,
            },
        }
    }

    #[test]
    fn derived_quantities() {
        let r = dummy_report();
        assert!((r.throughput_img_s() - 1000.0).abs() < 1e-9);
        // 4.09 W x 1 ms = 4.09 mJ.
        assert!((r.energy_per_image_j() - 0.00409).abs() < 1e-6);
        assert!(r.fits_device());
    }

    #[test]
    fn display_includes_key_sections() {
        let s = dummy_report().to_string();
        assert!(s.contains("C-synthesis report"));
        assert!(s.contains("latency 1.000 ms"));
        assert!(s.contains("dropout B"));
        assert!(s.contains("Total power"));
    }

    #[test]
    fn overflowing_design_does_not_fit() {
        let mut r = dummy_report();
        r.dsp = Utilization::new(9999, 5520);
        assert!(!r.fits_device());
    }
}
