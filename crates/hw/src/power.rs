//! Post-route power model with the Figure-5 component breakdown.
//!
//! The paper's Figure 5 splits power into **static** plus five dynamic
//! components: IO, Logic & Signal, DSP, Clocking and BRAM. This module
//! reproduces that breakdown from the design's resource usage and
//! activity:
//!
//! * dynamic dropout units toggle comparator/mask nets every cycle, which
//!   the paper attributes the high Logic&Signal share to ("the comparing
//!   operations in dynamic dropout layers", §4.3) — modelled as an
//!   activity factor per dynamic slot weighted by its element share,
//! * Masksembles mask ROMs sit in BRAM; dynamic designs re-read activation
//!   buffers during stalls — both mild BRAM-activity effects,
//! * IO power tracks achieved throughput (faster designs move more data
//!   per second).

use std::fmt;

/// Per-component power figures in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// Device static power.
    pub static_w: f64,
    /// Clock-tree dynamic power.
    pub clocking_w: f64,
    /// LUT/routing ("Logic & Signal") dynamic power.
    pub logic_signal_w: f64,
    /// Block-RAM dynamic power.
    pub bram_w: f64,
    /// DSP-slice dynamic power.
    pub dsp_w: f64,
    /// I/O bank dynamic power.
    pub io_w: f64,
}

impl PowerBreakdown {
    /// Total dynamic power (everything but static).
    pub fn dynamic_w(&self) -> f64 {
        self.clocking_w + self.logic_signal_w + self.bram_w + self.dsp_w + self.io_w
    }

    /// Total power.
    pub fn total_w(&self) -> f64 {
        self.static_w + self.dynamic_w()
    }

    /// Share of a component within the total, as a fraction.
    pub fn share(&self, component_w: f64) -> f64 {
        let total = self.total_w();
        if total > 0.0 {
            component_w / total
        } else {
            0.0
        }
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Total power: {:.3} W", self.total_w())?;
        writeln!(
            f,
            "  Static   {:.3} W ({:.1}%)",
            self.static_w,
            100.0 * self.share(self.static_w)
        )?;
        writeln!(f, "  Dynamic  {:.3} W", self.dynamic_w())?;
        writeln!(
            f,
            "    Clocking     {:.3} W ({:.1}%)",
            self.clocking_w,
            100.0 * self.share(self.clocking_w)
        )?;
        writeln!(
            f,
            "    Logic&Signal {:.3} W ({:.1}%)",
            self.logic_signal_w,
            100.0 * self.share(self.logic_signal_w)
        )?;
        writeln!(
            f,
            "    BRAM         {:.3} W ({:.1}%)",
            self.bram_w,
            100.0 * self.share(self.bram_w)
        )?;
        writeln!(
            f,
            "    DSP          {:.3} W ({:.1}%)",
            self.dsp_w,
            100.0 * self.share(self.dsp_w)
        )?;
        write!(
            f,
            "    IO           {:.3} W ({:.1}%)",
            self.io_w,
            100.0 * self.share(self.io_w)
        )
    }
}

/// Inputs to the power model, produced by the accelerator analyzer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerInputs {
    /// Device static power (W).
    pub static_w: f64,
    /// Clock frequency (MHz).
    pub clock_mhz: f64,
    /// Flip-flops in use.
    pub ff_used: u64,
    /// Flip-flops available.
    pub ff_total: u64,
    /// LUTs in use.
    pub lut_used: u64,
    /// BRAM-18K units in use.
    pub bram_used: u64,
    /// DSP slices in use.
    pub dsp_used: u64,
    /// Activity multiplier from dynamic dropout units (1.0 = none), each
    /// dynamic slot contributing proportionally to its element share.
    pub dynamic_dropout_activity: f64,
    /// Images per second achieved (drives IO power).
    pub throughput_img_s: f64,
    /// Bytes transferred per image (input + output).
    pub bytes_per_image: f64,
    /// Constant fabric overhead absorbed by calibration (W).
    pub baseline_dynamic_w: f64,
}

/// Calibrated coefficients of the power model.
///
/// Fitted once against the paper's Figure 5 (ResNet designs on XCKU115 at
/// 181 MHz): clocking ≈ 0.43 W, DSP ≈ 0.22 W at 276 slices, BRAM ≈ 0.47 W
/// at ~3500 units, Logic&Signal 1.24 W (static masks) to 1.72 W (dynamic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerCoefficients {
    /// W per MHz of clock, scaled by FF occupancy.
    pub clk_per_mhz: f64,
    /// W per LUT per MHz.
    pub ls_per_lut_mhz: f64,
    /// W per BRAM18K per MHz.
    pub bram_per_unit_mhz: f64,
    /// W per DSP per MHz.
    pub dsp_per_unit_mhz: f64,
    /// W per (MB/s) of IO traffic.
    pub io_per_mb_s: f64,
    /// IO bank baseline (W).
    pub io_base_w: f64,
}

impl Default for PowerCoefficients {
    fn default() -> Self {
        PowerCoefficients {
            clk_per_mhz: 0.00175,
            ls_per_lut_mhz: 3.35e-8,
            bram_per_unit_mhz: 7.4e-7,
            dsp_per_unit_mhz: 4.4e-6,
            io_per_mb_s: 0.004,
            io_base_w: 0.20,
        }
    }
}

/// Evaluates the power model.
pub fn estimate_power(inputs: &PowerInputs, coeff: &PowerCoefficients) -> PowerBreakdown {
    let ff_occupancy = if inputs.ff_total > 0 {
        inputs.ff_used as f64 / inputs.ff_total as f64
    } else {
        0.0
    };
    let clocking_w = coeff.clk_per_mhz * inputs.clock_mhz * (1.0 + ff_occupancy);
    let logic_signal_w = coeff.ls_per_lut_mhz
        * inputs.lut_used as f64
        * inputs.clock_mhz
        * inputs.dynamic_dropout_activity
        + inputs.baseline_dynamic_w * 0.5;
    let bram_w = coeff.bram_per_unit_mhz
        * inputs.bram_used as f64
        * inputs.clock_mhz
        * (1.0 + 0.05 * (inputs.dynamic_dropout_activity - 1.0) / 0.13);
    let dsp_w = coeff.dsp_per_unit_mhz * inputs.dsp_used as f64 * inputs.clock_mhz;
    let mb_per_s = inputs.throughput_img_s * inputs.bytes_per_image / 1e6;
    let io_w = coeff.io_base_w + coeff.io_per_mb_s * mb_per_s + inputs.baseline_dynamic_w * 0.5;
    PowerBreakdown {
        static_w: inputs.static_w,
        clocking_w,
        logic_signal_w,
        bram_w,
        dsp_w,
        io_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resnet_like_inputs(activity: f64) -> PowerInputs {
        PowerInputs {
            static_w: 1.29,
            clock_mhz: 181.0,
            ff_used: 525_000,
            ff_total: 1_326_720,
            lut_used: 205_000,
            bram_used: 3_540,
            dsp_used: 276,
            dynamic_dropout_activity: activity,
            throughput_img_s: 65.0,
            bytes_per_image: 3.0 * 32.0 * 32.0 * 2.0,
            baseline_dynamic_w: 0.0,
        }
    }

    #[test]
    fn static_masks_total_near_ece_optimal() {
        // All-Masksembles (no dynamic units): paper total 3.905 W.
        let p = estimate_power(&resnet_like_inputs(1.0), &PowerCoefficients::default());
        let total = p.total_w();
        assert!(
            (3.5..4.3).contains(&total),
            "ECE-optimal-like total {total} W should be near 3.9 W"
        );
    }

    #[test]
    fn dynamic_masks_total_near_accuracy_optimal() {
        // Two dynamic slots incl. the largest: paper total 4.378 W.
        let p = estimate_power(&resnet_like_inputs(1.39), &PowerCoefficients::default());
        let total = p.total_w();
        assert!(
            (4.0..4.8).contains(&total),
            "Accuracy-optimal-like total {total} W should be near 4.4 W"
        );
    }

    #[test]
    fn dynamic_activity_raises_logic_share() {
        let coeff = PowerCoefficients::default();
        let static_design = estimate_power(&resnet_like_inputs(1.0), &coeff);
        let dynamic_design = estimate_power(&resnet_like_inputs(1.39), &coeff);
        assert!(dynamic_design.logic_signal_w > static_design.logic_signal_w * 1.25);
        // Figure-5 shape: Logic&Signal is the largest dynamic component.
        for p in [static_design, dynamic_design] {
            assert!(p.logic_signal_w > p.bram_w);
            assert!(p.logic_signal_w > p.clocking_w);
            assert!(p.bram_w > p.dsp_w);
        }
    }

    #[test]
    fn component_shares_match_figure5_ballpark() {
        // ECE-optimal: Logic&Signal 31.7%, BRAM 12.1%, Clocking 10.7%,
        // DSP 5.7%, IO 6.9%, static 33%.
        let p = estimate_power(&resnet_like_inputs(1.0), &PowerCoefficients::default());
        let pct = |w: f64| 100.0 * p.share(w);
        assert!(
            (25.0..40.0).contains(&pct(p.logic_signal_w)),
            "L&S {}",
            pct(p.logic_signal_w)
        );
        assert!(
            (8.0..16.0).contains(&pct(p.bram_w)),
            "BRAM {}",
            pct(p.bram_w)
        );
        assert!(
            (7.0..15.0).contains(&pct(p.clocking_w)),
            "clk {}",
            pct(p.clocking_w)
        );
        assert!((3.0..9.0).contains(&pct(p.dsp_w)), "DSP {}", pct(p.dsp_w));
        assert!(
            (28.0..38.0).contains(&pct(p.static_w)),
            "static {}",
            pct(p.static_w)
        );
    }

    #[test]
    fn totals_add_up() {
        let p = estimate_power(&resnet_like_inputs(1.2), &PowerCoefficients::default());
        let sum = p.static_w + p.clocking_w + p.logic_signal_w + p.bram_w + p.dsp_w + p.io_w;
        assert!((p.total_w() - sum).abs() < 1e-12);
        assert!(p.dynamic_w() < p.total_w());
    }

    #[test]
    fn display_mentions_every_component() {
        let p = estimate_power(&resnet_like_inputs(1.0), &PowerCoefficients::default());
        let s = p.to_string();
        for needle in ["Static", "Clocking", "Logic&Signal", "BRAM", "DSP", "IO"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }
}
