//! Functional Q7.8 datapath emulation.
//!
//! The accelerator computes in 16-bit fixed point (1 sign + 7 integer + 8
//! fraction bits, §4). This module emulates that datapath on a trained
//! network so the quantised accuracy drop can be measured without an FPGA:
//!
//! * [`quantize_network`] rounds every weight to the target format in
//!   place (what loading weights into on-chip memory does),
//! * [`quantized_forward`] additionally rounds the activations flowing
//!   between layer engines to the same format — the standard
//!   fake-quantisation emulation of a fixed-point pipeline. (Inside one
//!   engine, accumulation is wide — see [`nds_quant::MacUnit`] — so only
//!   inter-engine activations quantise, which is what this models.)

use crate::Result;
use nds_nn::layers::Sequential;
use nds_nn::{Layer, Mode};
use nds_quant::{fake_quantize, FixedFormat};
use nds_tensor::{Shape, Tensor};

/// Quantises every parameter of the network to `format`, in place.
/// Returns the number of scalars that changed value.
pub fn quantize_network(net: &mut Sequential, format: FixedFormat) -> usize {
    let mut changed = 0;
    for param in net.params_mut() {
        let before = param.value.as_slice().to_vec();
        let quant = fake_quantize(&before, format);
        for (b, q) in before.iter().zip(quant.iter()) {
            if b != q {
                changed += 1;
            }
        }
        param.value = Tensor::from_vec(quant, param.value.shape().clone())
            .expect("quantisation preserves shape")
            .into();
    }
    changed
}

/// Runs a forward pass with activations rounded to `format` between
/// layers, returning softmax probabilities `[n, classes]`.
///
/// Weights should already be quantised (see [`quantize_network`]) for a
/// faithful emulation.
///
/// # Errors
///
/// Propagates network execution errors.
pub fn quantized_forward(
    net: &mut Sequential,
    images: &Tensor,
    format: FixedFormat,
    mode: Mode,
) -> Result<Tensor> {
    let mut x = Tensor::from_vec(
        fake_quantize(images.as_slice(), format),
        images.shape().clone(),
    )
    .expect("quantisation preserves shape");
    let n_layers = net.layers_mut().len();
    for i in 0..n_layers {
        let layer = &mut net.layers_mut()[i];
        let y = layer.forward(&x, mode)?;
        x = Tensor::from_vec(fake_quantize(y.as_slice(), format), y.shape().clone())
            .expect("quantisation preserves shape");
    }
    // Softmax runs at full precision on the host/output stage.
    let (n, c) = (x.shape().dim(0), x.shape().dim(1));
    let probs = x.reshape(Shape::d2(n, c)).map_err(nds_nn::NnError::from)?;
    Ok(probs.softmax_rows().map_err(nds_nn::NnError::from)?)
}

/// Convenience: Monte-Carlo prediction through the quantised datapath
/// (S stochastic passes, mean probabilities).
///
/// # Errors
///
/// Propagates network execution errors.
pub fn quantized_mc_predict(
    net: &mut Sequential,
    images: &Tensor,
    format: FixedFormat,
    samples: usize,
) -> Result<Tensor> {
    let samples = samples.max(1);
    net.begin_mc_round();
    let n = images.shape().dim(0);
    let mut mean: Option<Vec<f32>> = None;
    let mut classes = 0;
    for _ in 0..samples {
        let probs = quantized_forward(net, images, format, Mode::McInference)?;
        classes = probs.shape().dim(1);
        match &mut mean {
            None => mean = Some(probs.as_slice().to_vec()),
            Some(m) => {
                for (a, &b) in m.iter_mut().zip(probs.as_slice()) {
                    *a += b;
                }
            }
        }
    }
    let mut mean = mean.expect("at least one sample");
    let inv = 1.0 / samples as f32;
    for v in &mut mean {
        *v *= inv;
    }
    Ok(Tensor::from_vec(mean, Shape::d2(n, classes)).expect("shape-consistent by construction"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nds_nn::layers::{Flatten, Linear, Relu};
    use nds_quant::{Q3_12, Q7_8};
    use nds_tensor::rng::Rng64;

    fn toy_net(rng: &mut Rng64) -> Sequential {
        let mut net = Sequential::new();
        net.push(Box::new(Flatten::new()));
        net.push(Box::new(Linear::new(8, 16, true, rng)));
        net.push(Box::new(Relu::new()));
        net.push(Box::new(Linear::new(16, 4, true, rng)));
        net
    }

    #[test]
    fn quantize_network_reports_changes() {
        let mut rng = Rng64::new(1);
        let mut net = toy_net(&mut rng);
        let changed = quantize_network(&mut net, Q7_8);
        assert!(changed > 0, "random weights rarely sit on the Q7.8 grid");
        // Second quantisation is a fixed point (idempotent).
        let changed_again = quantize_network(&mut net, Q7_8);
        assert_eq!(changed_again, 0);
    }

    #[test]
    fn quantized_forward_is_close_to_float() {
        let mut rng = Rng64::new(2);
        let mut net = toy_net(&mut rng);
        let x = Tensor::rand_normal(Shape::d4(5, 2, 2, 2), 0.0, 1.0, &mut rng);
        let float_probs = {
            let logits = net.forward(&x, Mode::Standard).unwrap();
            logits.softmax_rows().unwrap()
        };
        quantize_network(&mut net, Q7_8);
        let q_probs = quantized_forward(&mut net, &x, Q7_8, Mode::Standard).unwrap();
        // Probabilities should agree to within a few percent.
        let max_err = float_probs
            .as_slice()
            .iter()
            .zip(q_probs.as_slice())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 0.06, "max prob deviation {max_err}");
    }

    #[test]
    fn finer_format_is_closer() {
        let mut rng = Rng64::new(3);
        let x = Tensor::rand_normal(Shape::d4(8, 2, 2, 2), 0.0, 1.0, &mut rng);
        let probs_for = |format| {
            let mut rng = Rng64::new(3); // fresh identical net
            let mut net = toy_net(&mut rng);
            let float = {
                let logits = net.forward(&x, Mode::Standard).unwrap();
                logits.softmax_rows().unwrap()
            };
            quantize_network(&mut net, format);
            let q = quantized_forward(&mut net, &x, format, Mode::Standard).unwrap();
            let err: f32 = float
                .as_slice()
                .iter()
                .zip(q.as_slice())
                .map(|(&a, &b)| (a - b).abs())
                .sum();
            err
        };
        let coarse = probs_for(Q7_8);
        let fine = probs_for(Q3_12);
        assert!(
            fine < coarse,
            "Q3.12 error {fine} should beat Q7.8 {coarse}"
        );
    }

    #[test]
    fn quantized_mc_rows_sum_to_one() {
        let mut rng = Rng64::new(4);
        let mut net = toy_net(&mut rng);
        quantize_network(&mut net, Q7_8);
        let x = Tensor::rand_normal(Shape::d4(3, 2, 2, 2), 0.0, 1.0, &mut rng);
        let probs = quantized_mc_predict(&mut net, &x, Q7_8, 3).unwrap();
        assert_eq!(probs.shape(), &Shape::d2(3, 4));
        for i in 0..3 {
            let s: f32 = probs.as_slice()[i * 4..(i + 1) * 4].iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }
}
