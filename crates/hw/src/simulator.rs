//! Functional Q7.8 datapath emulation.
//!
//! The accelerator computes in 16-bit fixed point (1 sign + 7 integer + 8
//! fraction bits, §4). This module emulates that datapath on a trained
//! network so the quantised accuracy drop can be measured without an FPGA:
//!
//! * [`quantize_network`] rounds every weight to the target format in
//!   place (what loading weights into on-chip memory does),
//! * [`quantized_forward`] additionally rounds the activations flowing
//!   between layer engines to the same format — the standard
//!   fake-quantisation emulation of a fixed-point pipeline. (Inside one
//!   engine, accumulation is wide — see [`nds_quant::MacUnit`] — so only
//!   inter-engine activations quantise, which is what this models.)
//!
//! The datapath itself lives in [`nds_engine::quantized`] — the engine's
//! `Backend::Quantized`/`Backend::HwSim` serve it behind the unified
//! request/response API — and the functions here are compatibility
//! shims over that single implementation, so the two crates cannot
//! drift apart numerically.

use crate::Result;
use nds_dropout::mc::{mc_sample_rounds_into, mean_over_samples, McCloneCache};
use nds_engine::quantized::quantized_predict_probs_ws;
use nds_nn::layers::Sequential;
use nds_nn::train::output_classes;
use nds_nn::{Layer, Mode};
use nds_quant::{fake_quantize, FixedFormat};
use nds_tensor::parallel::worker_count;
use nds_tensor::{Shape, Tensor, Workspace};

/// Quantises every parameter of the network to `format`, in place.
/// Returns the number of scalars that changed value.
pub fn quantize_network(net: &mut Sequential, format: FixedFormat) -> usize {
    let mut changed = 0;
    for param in net.params_mut() {
        let before = param.value.as_slice().to_vec();
        let quant = fake_quantize(&before, format);
        for (b, q) in before.iter().zip(quant.iter()) {
            if b != q {
                changed += 1;
            }
        }
        param.value = Tensor::from_vec(quant, param.value.shape().clone())
            .expect("quantisation preserves shape")
            .into();
    }
    changed
}

/// Runs a forward pass with activations rounded to `format` between
/// layers, returning softmax probabilities `[n, classes]`.
///
/// Weights should already be quantised (see [`quantize_network`]) for a
/// faithful emulation. Delegates to the engine's pooled
/// [`nds_engine::quantized::quantized_forward_ws`] (the single
/// implementation of the datapath) with a throwaway [`Workspace`].
///
/// # Errors
///
/// Propagates network execution errors.
pub fn quantized_forward(
    net: &mut Sequential,
    images: &Tensor,
    format: FixedFormat,
    mode: Mode,
) -> Result<Tensor> {
    Ok(nds_engine::quantized::quantized_forward_ws(
        net,
        images,
        format,
        mode,
        &mut Workspace::new(),
    )?)
}

/// Convenience: Monte-Carlo prediction through the quantised datapath
/// (S stochastic passes, mean probabilities).
///
/// Equivalent to [`quantized_mc_predict_with_workers`] with the pool
/// size from [`worker_count`].
///
/// Deprecated for serving: build an `nds_engine::UncertaintyEngine` with
/// `Backend::Quantized` (or `Backend::HwSim`) instead — same datapath,
/// same bytes, plus the persistent clone cache, chunked streaming and
/// typed uncertainty outputs.
///
/// # Errors
///
/// Propagates network execution errors.
#[deprecated(
    since = "0.1.0",
    note = "route through nds_engine::UncertaintyEngine with Backend::Quantized"
)]
pub fn quantized_mc_predict(
    net: &mut Sequential,
    images: &Tensor,
    format: FixedFormat,
    samples: usize,
) -> Result<Tensor> {
    #[allow(deprecated)]
    quantized_mc_predict_with_workers(net, images, format, samples, worker_count())
}

/// Monte-Carlo prediction through the quantised datapath with an
/// explicit worker count.
///
/// Runs the exact harness the float path runs
/// ([`nds_dropout::mc::mc_sample_rounds_into`]): every pass draws its
/// dropout masks from a stream derived purely from the sample index via
/// [`Layer::begin_mc_sample`], so the masks are independent of execution
/// order and **bit-identical for any `workers` value** — the
/// quantisation-error comparison isolates quantisation from mask drift.
/// The caller's network comes back with its stochastic state untouched.
///
/// Deprecated for serving: `nds_engine::UncertaintyEngine` with
/// `Backend::Quantized` is the same code path with a persistent clone
/// cache; this wrapper re-clones per call.
///
/// # Errors
///
/// Propagates network execution errors.
#[deprecated(
    since = "0.1.0",
    note = "route through nds_engine::UncertaintyEngine with Backend::Quantized"
)]
pub fn quantized_mc_predict_with_workers(
    net: &mut Sequential,
    images: &Tensor,
    format: FixedFormat,
    samples: usize,
    workers: usize,
) -> Result<Tensor> {
    let samples = samples.max(1);
    let n = images.shape().dim(0);
    let classes = output_classes(net, images.shape()).map_err(crate::HwError::Nn)?;
    let pass_len = n * classes;
    let mut ws = Workspace::new();
    let mut cache = McCloneCache::new();
    let mut slab = ws.take_dirty(samples * pass_len);
    mc_sample_rounds_into(
        net,
        samples,
        workers,
        0,
        &mut cache,
        &mut ws,
        pass_len,
        &mut slab,
        // Whole batch in one micro-batch, like the historical
        // whole-images `quantized_forward` pass (chunking would be
        // byte-identical anyway).
        &|net, ws| quantized_predict_probs_ws(net, images, format, Mode::McInference, n.max(1), ws),
    )
    .map_err(crate::HwError::Nn)?;
    let mut mean = vec![0.0f32; pass_len];
    mean_over_samples(&slab, samples, &mut mean);
    Ok(Tensor::from_vec(mean, Shape::d2(n, classes)).expect("shape-consistent by construction"))
}

#[cfg(test)]
// The deprecated wrappers stay under test until removal: they are the
// byte-identity reference the engine's quantized backend is checked
// against.
#[allow(deprecated)]
mod tests {
    use super::*;
    use nds_nn::layers::{Flatten, Linear, Relu};
    use nds_quant::{Q3_12, Q7_8};
    use nds_tensor::rng::Rng64;

    fn toy_net(rng: &mut Rng64) -> Sequential {
        let mut net = Sequential::new();
        net.push(Box::new(Flatten::new()));
        net.push(Box::new(Linear::new(8, 16, true, rng)));
        net.push(Box::new(Relu::new()));
        net.push(Box::new(Linear::new(16, 4, true, rng)));
        net
    }

    #[test]
    fn quantize_network_reports_changes() {
        let mut rng = Rng64::new(1);
        let mut net = toy_net(&mut rng);
        let changed = quantize_network(&mut net, Q7_8);
        assert!(changed > 0, "random weights rarely sit on the Q7.8 grid");
        // Second quantisation is a fixed point (idempotent).
        let changed_again = quantize_network(&mut net, Q7_8);
        assert_eq!(changed_again, 0);
    }

    #[test]
    fn quantized_forward_is_close_to_float() {
        let mut rng = Rng64::new(2);
        let mut net = toy_net(&mut rng);
        let x = Tensor::rand_normal(Shape::d4(5, 2, 2, 2), 0.0, 1.0, &mut rng);
        let float_probs = {
            let logits = net.forward(&x, Mode::Standard).unwrap();
            logits.softmax_rows().unwrap()
        };
        quantize_network(&mut net, Q7_8);
        let q_probs = quantized_forward(&mut net, &x, Q7_8, Mode::Standard).unwrap();
        // Probabilities should agree to within a few percent.
        let max_err = float_probs
            .as_slice()
            .iter()
            .zip(q_probs.as_slice())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 0.06, "max prob deviation {max_err}");
    }

    #[test]
    fn finer_format_is_closer() {
        let mut rng = Rng64::new(3);
        let x = Tensor::rand_normal(Shape::d4(8, 2, 2, 2), 0.0, 1.0, &mut rng);
        let probs_for = |format| {
            let mut rng = Rng64::new(3); // fresh identical net
            let mut net = toy_net(&mut rng);
            let float = {
                let logits = net.forward(&x, Mode::Standard).unwrap();
                logits.softmax_rows().unwrap()
            };
            quantize_network(&mut net, format);
            let q = quantized_forward(&mut net, &x, format, Mode::Standard).unwrap();
            let err: f32 = float
                .as_slice()
                .iter()
                .zip(q.as_slice())
                .map(|(&a, &b)| (a - b).abs())
                .sum();
            err
        };
        let coarse = probs_for(Q7_8);
        let fine = probs_for(Q3_12);
        assert!(
            fine < coarse,
            "Q3.12 error {fine} should beat Q7.8 {coarse}"
        );
    }

    fn stochastic_net(rng: &mut Rng64) -> Sequential {
        use nds_nn::arch::{FeatureShape, SlotInfo, SlotPosition};
        let mut net = Sequential::new();
        net.push(Box::new(Flatten::new()));
        net.push(Box::new(Linear::new(8, 16, true, rng)));
        let slot = SlotInfo {
            id: 0,
            shape: FeatureShape::Vector { features: 16 },
            position: SlotPosition::FullyConnected,
        };
        net.push(Box::new(
            nds_dropout::DropoutLayer::for_slot(
                nds_dropout::DropoutKind::Bernoulli,
                &slot,
                &nds_dropout::DropoutSettings {
                    rate: 0.5,
                    ..nds_dropout::DropoutSettings::default()
                },
                9,
            )
            .unwrap(),
        ));
        net.push(Box::new(Linear::new(16, 4, true, rng)));
        net
    }

    #[test]
    fn quantized_mc_is_byte_identical_across_worker_counts() {
        // Per-sample streams make the quantised MC path independent of
        // execution order, mirroring the float path's golden guarantee.
        let mut rng = Rng64::new(5);
        let mut net = stochastic_net(&mut rng);
        quantize_network(&mut net, Q7_8);
        let x = Tensor::rand_normal(Shape::d4(5, 2, 2, 2), 0.0, 1.0, &mut rng);
        let serial = quantized_mc_predict_with_workers(&mut net, &x, Q7_8, 4, 1).unwrap();
        for workers in [2, 3, 4, 8] {
            let parallel =
                quantized_mc_predict_with_workers(&mut net, &x, Q7_8, 4, workers).unwrap();
            assert_eq!(
                serial.as_slice(),
                parallel.as_slice(),
                "quantized MC bytes diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn quantized_mc_does_not_advance_caller_rng() {
        // A quantised MC round must leave the caller's stochastic state
        // untouched, exactly like the float mc_predict: a Train-mode
        // forward afterwards draws the same masks either way.
        let mut rng = Rng64::new(6);
        let mut with_mc = stochastic_net(&mut rng);
        let mut rng2 = Rng64::new(6);
        let mut without_mc = stochastic_net(&mut rng2);
        let x = Tensor::rand_normal(Shape::d4(3, 2, 2, 2), 0.0, 1.0, &mut rng);
        let _ = quantized_mc_predict(&mut with_mc, &x, Q7_8, 3).unwrap();
        let a = with_mc.forward(&x, Mode::Train).unwrap();
        let b = without_mc.forward(&x, Mode::Train).unwrap();
        assert_eq!(
            a, b,
            "quantized MC round must not advance the caller's RNG state"
        );
    }

    #[test]
    fn quantized_mc_rows_sum_to_one() {
        let mut rng = Rng64::new(4);
        let mut net = toy_net(&mut rng);
        quantize_network(&mut net, Q7_8);
        let x = Tensor::rand_normal(Shape::d4(3, 2, 2, 2), 0.0, 1.0, &mut rng);
        let probs = quantized_mc_predict(&mut net, &x, Q7_8, 3).unwrap();
        assert_eq!(probs.shape(), &Shape::d2(3, 4));
        for i in 0..3 {
            let s: f32 = probs.as_slice()[i * 4..(i + 1) * 4].iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }
}
