//! Functional Q7.8 datapath emulation.
//!
//! The accelerator computes in 16-bit fixed point (1 sign + 7 integer + 8
//! fraction bits, §4). This module emulates that datapath on a trained
//! network so the quantised accuracy drop can be measured without an FPGA:
//!
//! * [`quantize_network`] rounds every weight to the target format in
//!   place (what loading weights into on-chip memory does),
//! * [`quantized_forward`] additionally rounds the activations flowing
//!   between layer engines to the same format — the standard
//!   fake-quantisation emulation of a fixed-point pipeline. (Inside one
//!   engine, accumulation is wide — see [`nds_quant::MacUnit`] — so only
//!   inter-engine activations quantise, which is what this models.)
//!
//! The datapath itself lives in [`nds_engine::quantized`] — the engine's
//! `Backend::Quantized`/`Backend::HwSim` serve it behind the unified
//! request/response API — and the functions here are compatibility
//! shims over that single implementation, so the two crates cannot
//! drift apart numerically.

use crate::Result;
use nds_nn::layers::Sequential;
use nds_nn::{Layer, Mode};
use nds_quant::{fake_quantize, FixedFormat};
use nds_tensor::{Tensor, Workspace};

/// Quantises every parameter of the network to `format`, in place.
/// Returns the number of scalars that changed value.
pub fn quantize_network(net: &mut Sequential, format: FixedFormat) -> usize {
    let mut changed = 0;
    for param in net.params_mut() {
        let before = param.value.as_slice().to_vec();
        let quant = fake_quantize(&before, format);
        for (b, q) in before.iter().zip(quant.iter()) {
            if b != q {
                changed += 1;
            }
        }
        param.value = Tensor::from_vec(quant, param.value.shape().clone())
            .expect("quantisation preserves shape")
            .into();
    }
    changed
}

/// Runs a forward pass with activations rounded to `format` between
/// layers, returning softmax probabilities `[n, classes]`.
///
/// Weights should already be quantised (see [`quantize_network`]) for a
/// faithful emulation. Delegates to the engine's pooled
/// [`nds_engine::quantized::quantized_forward_ws`] (the single
/// implementation of the datapath) with a throwaway [`Workspace`].
///
/// # Errors
///
/// Propagates network execution errors.
pub fn quantized_forward(
    net: &mut Sequential,
    images: &Tensor,
    format: FixedFormat,
    mode: Mode,
) -> Result<Tensor> {
    Ok(nds_engine::quantized::quantized_forward_ws(
        net,
        images,
        format,
        mode,
        &mut Workspace::new(),
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nds_engine::{Backend, EngineBuilder};
    use nds_nn::layers::{Flatten, Linear, Relu};
    use nds_quant::{Q3_12, Q7_8};
    use nds_tensor::rng::Rng64;
    use nds_tensor::Shape;

    fn toy_net(rng: &mut Rng64) -> Sequential {
        let mut net = Sequential::new();
        net.push(Box::new(Flatten::new()));
        net.push(Box::new(Linear::new(8, 16, true, rng)));
        net.push(Box::new(Relu::new()));
        net.push(Box::new(Linear::new(16, 4, true, rng)));
        net
    }

    #[test]
    fn quantize_network_reports_changes() {
        let mut rng = Rng64::new(1);
        let mut net = toy_net(&mut rng);
        let changed = quantize_network(&mut net, Q7_8);
        assert!(changed > 0, "random weights rarely sit on the Q7.8 grid");
        // Second quantisation is a fixed point (idempotent).
        let changed_again = quantize_network(&mut net, Q7_8);
        assert_eq!(changed_again, 0);
    }

    #[test]
    fn quantized_forward_is_close_to_float() {
        let mut rng = Rng64::new(2);
        let mut net = toy_net(&mut rng);
        let x = Tensor::rand_normal(Shape::d4(5, 2, 2, 2), 0.0, 1.0, &mut rng);
        let float_probs = {
            let logits = net.forward(&x, Mode::Standard).unwrap();
            logits.softmax_rows().unwrap()
        };
        quantize_network(&mut net, Q7_8);
        let q_probs = quantized_forward(&mut net, &x, Q7_8, Mode::Standard).unwrap();
        // Probabilities should agree to within a few percent.
        let max_err = float_probs
            .as_slice()
            .iter()
            .zip(q_probs.as_slice())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 0.06, "max prob deviation {max_err}");
    }

    #[test]
    fn finer_format_is_closer() {
        let mut rng = Rng64::new(3);
        let x = Tensor::rand_normal(Shape::d4(8, 2, 2, 2), 0.0, 1.0, &mut rng);
        let probs_for = |format| {
            let mut rng = Rng64::new(3); // fresh identical net
            let mut net = toy_net(&mut rng);
            let float = {
                let logits = net.forward(&x, Mode::Standard).unwrap();
                logits.softmax_rows().unwrap()
            };
            quantize_network(&mut net, format);
            let q = quantized_forward(&mut net, &x, format, Mode::Standard).unwrap();
            let err: f32 = float
                .as_slice()
                .iter()
                .zip(q.as_slice())
                .map(|(&a, &b)| (a - b).abs())
                .sum();
            err
        };
        let coarse = probs_for(Q7_8);
        let fine = probs_for(Q3_12);
        assert!(
            fine < coarse,
            "Q3.12 error {fine} should beat Q7.8 {coarse}"
        );
    }

    fn stochastic_net(rng: &mut Rng64) -> Sequential {
        use nds_nn::arch::{FeatureShape, SlotInfo, SlotPosition};
        let mut net = Sequential::new();
        net.push(Box::new(Flatten::new()));
        net.push(Box::new(Linear::new(8, 16, true, rng)));
        let slot = SlotInfo {
            id: 0,
            shape: FeatureShape::Vector { features: 16 },
            position: SlotPosition::FullyConnected,
        };
        net.push(Box::new(
            nds_dropout::DropoutLayer::for_slot(
                nds_dropout::DropoutKind::Bernoulli,
                &slot,
                &nds_dropout::DropoutSettings {
                    rate: 0.5,
                    ..nds_dropout::DropoutSettings::default()
                },
                9,
            )
            .unwrap(),
        ));
        net.push(Box::new(Linear::new(16, 4, true, rng)));
        net
    }

    #[test]
    fn quantized_mc_is_byte_identical_across_worker_counts() {
        // Per-sample streams make the quantised MC path independent of
        // execution order, mirroring the float path's golden guarantee.
        let mut rng = Rng64::new(5);
        let mut net = stochastic_net(&mut rng);
        quantize_network(&mut net, Q7_8);
        let x = Tensor::rand_normal(Shape::d4(5, 2, 2, 2), 0.0, 1.0, &mut rng);
        let request = nds_engine::PredictRequest::new(&x);
        let mut serial_engine = EngineBuilder::new(net.clone())
            .backend(Backend::quantized_q78())
            .samples(4)
            .workers(1)
            .build();
        let serial = serial_engine.predict(&request).unwrap();
        for workers in [2, 3, 4, 8] {
            let mut engine = EngineBuilder::new(net.clone())
                .backend(Backend::quantized_q78())
                .samples(4)
                .workers(workers)
                .build();
            let parallel = engine.predict(&request).unwrap();
            assert_eq!(
                serial.probs.as_slice(),
                parallel.probs.as_slice(),
                "quantized MC bytes diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn quantized_mc_does_not_advance_caller_rng() {
        // A quantised MC round must leave the caller's stochastic state
        // untouched: the engine runs on its own clone of the network, so
        // a Train-mode forward afterwards draws the same masks either way.
        let mut rng = Rng64::new(6);
        let mut with_mc = stochastic_net(&mut rng);
        let mut rng2 = Rng64::new(6);
        let mut without_mc = stochastic_net(&mut rng2);
        let x = Tensor::rand_normal(Shape::d4(3, 2, 2, 2), 0.0, 1.0, &mut rng);
        let mut engine = EngineBuilder::new(with_mc.clone())
            .backend(Backend::quantized_q78())
            .samples(3)
            .build();
        let _ = engine
            .predict(&nds_engine::PredictRequest::new(&x))
            .unwrap();
        let a = with_mc.forward(&x, Mode::Train).unwrap();
        let b = without_mc.forward(&x, Mode::Train).unwrap();
        assert_eq!(
            a, b,
            "quantized MC round must not advance the caller's RNG state"
        );
    }

    #[test]
    fn quantized_mc_rows_sum_to_one() {
        let mut rng = Rng64::new(4);
        let mut net = toy_net(&mut rng);
        quantize_network(&mut net, Q7_8);
        let x = Tensor::rand_normal(Shape::d4(3, 2, 2, 2), 0.0, 1.0, &mut rng);
        let mut engine = EngineBuilder::new(net)
            .backend(Backend::quantized_q78())
            .samples(3)
            .build();
        let response = engine
            .predict(&nds_engine::PredictRequest::new(&x))
            .unwrap();
        assert_eq!(response.probs.shape(), &Shape::d2(3, 4));
        for i in 0..3 {
            let s: f32 = response.probs.as_slice()[i * 4..(i + 1) * 4].iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }
}
