//! The unified search session API.
//!
//! PR 4 folded float, quantised and parallel MC inference behind one
//! `UncertaintyEngine`; this module does the same for the search phase.
//! One builder configures *what* to search (strategy + aim + latency
//! source) over *which* evaluation backend (a trained [`Supernet`] — all
//! candidate scoring then routes through its `UncertaintyEngine` — or
//! any custom [`Evaluator`]), and the resulting [`SearchSession`] owns
//! everything the loose free functions used to scatter:
//!
//! * a first-class [`ParetoArchive`] (non-dominated set + hypervolume),
//! * a memoised evaluation cache keyed by encoded configuration,
//! * the strategy state machine ([`Strategy::Evolution`] /
//!   [`Strategy::Random`] / [`Strategy::Exhaustive`]) and its RNG,
//! * deterministic [`SearchSession::snapshot`] /
//!   [`SearchBuilder::resume`] checkpointing: resuming mid-run
//!   reproduces the uninterrupted run **byte for byte**.
//!
//! ```no_run
//! use nds_search::{SearchAim, SearchBuilder, Strategy, EvolutionConfig};
//! # fn main() -> nds_search::Result<()> {
//! # let spec = nds_supernet::SupernetSpec::paper_default(nds_nn::zoo::lenet(), 1).unwrap();
//! # let mut supernet = nds_supernet::Supernet::build(&spec).unwrap();
//! # let splits = nds_data::mnist_like(&nds_data::DatasetConfig::experiment(1));
//! let mut session = SearchBuilder::new(&mut supernet)
//!     .strategy(Strategy::Evolution(EvolutionConfig::default()))
//!     .aim(SearchAim::ece_optimal())
//!     .validation(&splits.val)
//!     .build()?;
//! let outcome = session.run_with(|event| println!("{event:?}"))?;
//! println!("best: {} (front {})", outcome.best.config, outcome.archive.front_len());
//! # Ok(()) }
//! ```
//!
//! The legacy `evolve` / `random_search` / `evaluate_all` free functions
//! have been removed; this session produces their exact bytes (strategy
//! RNG streams are unchanged, pinned by `tests/search_session.rs`).

use crate::checkpoint::{SearchCheckpoint, StrategyProgress, CHECKPOINT_VERSION};
use crate::evolution::{breed_next_population, sample_distinct};
use crate::pareto::{ObjectiveSet, ParetoArchive};
use crate::{
    Candidate, Evaluator, EvolutionConfig, EvolutionResult, GenerationStats, LatencyProvider,
    RandomSearchConfig, Result, SearchAim, SearchError, SupernetEvaluator,
};
use nds_data::Dataset;
use nds_supernet::{DropoutConfig, Supernet, SupernetSpec};
use nds_tensor::rng::Rng64;
use nds_tensor::Tensor;
use std::collections::HashMap;

/// How many draws a [`Strategy::Random`] or [`Strategy::Exhaustive`]
/// session evaluates per [`SearchSession::step`]. Purely a progress /
/// checkpoint granularity — results are identical for any value because
/// candidate evaluation is memoised and order-preserving.
const BASELINE_STEP_CHUNK: usize = 16;

/// Default number of OOD probe images when a supernet-backed builder is
/// given a validation set but no explicit probe tensor.
const DEFAULT_OOD_PROBES: usize = 64;

/// Which search algorithm a [`SearchSession`] runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// The paper's evolutionary loop (Figure 3).
    Evolution(EvolutionConfig),
    /// The budget-matched uniform random baseline.
    Random(RandomSearchConfig),
    /// Exhaustive enumeration of the space (the Figure-4 reference).
    Exhaustive,
}

impl Default for Strategy {
    fn default() -> Self {
        Strategy::Evolution(EvolutionConfig::default())
    }
}

/// What [`SearchSession::step`] reports back.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchEvent {
    /// One step (a generation, or a baseline chunk) completed.
    Step(StepStats),
    /// The strategy's budget is exhausted; [`SearchSession::outcome`]
    /// is final. Further `step` calls keep returning this.
    Finished,
}

/// Progress of one completed [`SearchSession::step`], streamed to
/// [`SearchSession::run_with`] observers.
#[derive(Debug, Clone, PartialEq)]
pub struct StepStats {
    /// The step's [`GenerationStats`] (for baselines: the last candidate
    /// evaluated this chunk).
    pub stats: GenerationStats,
    /// Distinct candidates this step added to the archive.
    pub archive_added: usize,
    /// Archive size after the step.
    pub archive_len: usize,
    /// Non-dominated front size after the step.
    pub front_len: usize,
    /// Archive hypervolume after the step (see
    /// [`ParetoArchive::hypervolume`]).
    pub hypervolume: f64,
    /// Fresh (memo-missing) evaluations spent so far, across the whole
    /// session — the search budget consumed.
    pub budget_spent: usize,
}

/// The final state of a finished (or stopped) session: the winning
/// candidate plus the full archive and progress history.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best candidate by aim score.
    pub best: Candidate,
    /// Every distinct candidate evaluated, with Pareto bookkeeping.
    pub archive: ParetoArchive,
    /// Per-step progress.
    pub history: Vec<GenerationStats>,
    /// Fresh evaluations spent.
    pub budget_spent: usize,
}

impl From<SearchOutcome> for EvolutionResult {
    /// Collapses the outcome into the legacy result shape (archive in
    /// first-evaluation order).
    fn from(outcome: SearchOutcome) -> EvolutionResult {
        EvolutionResult {
            best: outcome.best,
            archive: outcome.archive.into_candidates(),
            history: outcome.history,
        }
    }
}

/// The evaluation backend a session drives.
enum SessionEvaluator<'a> {
    /// A supernet the session wraps in a [`SupernetEvaluator`]; every
    /// candidate scoring runs through the supernet's
    /// `UncertaintyEngine` (warm workspaces, persistent clone caches,
    /// serial/parallel byte identity).
    Supernet(Box<SupernetEvaluator<'a>>),
    /// A caller-provided evaluator (tests, replay archives).
    External(&'a mut dyn Evaluator),
}

impl SessionEvaluator<'_> {
    fn evaluate_many(
        &mut self,
        configs: &[DropoutConfig],
        workers: usize,
    ) -> Result<Vec<Candidate>> {
        match self {
            SessionEvaluator::Supernet(evaluator) => {
                if workers > 0 {
                    evaluator.evaluate_many_with_workers(configs, workers)
                } else {
                    evaluator.evaluate_many(configs)
                }
            }
            SessionEvaluator::External(evaluator) => evaluator.evaluate_many(configs),
        }
    }
}

/// Strategy-specific progress (the mutable half of the state machine;
/// serialised verbatim into checkpoints).
#[derive(Debug, Clone)]
enum StrategyState {
    Evolution {
        config: EvolutionConfig,
        population: Vec<DropoutConfig>,
        generation: usize,
    },
    Random {
        config: RandomSearchConfig,
        draws: Vec<DropoutConfig>,
        cursor: usize,
    },
    Exhaustive {
        /// The full enumeration, materialised once per session (it is
        /// deterministic, so checkpoints serialise only the cursor).
        configs: Vec<DropoutConfig>,
        cursor: usize,
    },
}

/// Builder for [`SearchSession`] — the search-phase mirror of
/// `EngineBuilder`.
///
/// Two entry points:
///
/// * [`SearchBuilder::new`] over a trained [`Supernet`] — requires
///   [`SearchBuilder::validation`]; candidate metrics then come from the
///   supernet's engine, latency from [`SearchBuilder::latency`].
/// * [`SearchBuilder::with_evaluator`] over any [`Evaluator`] — the
///   evaluator owns metric *and* latency production; the
///   validation/ood/latency/batch-size knobs are ignored.
pub struct SearchBuilder<'a> {
    source: Source<'a>,
    strategy: Strategy,
    aim: SearchAim,
    objectives: ObjectiveSet,
    latency: Option<LatencyProvider>,
    val: Option<&'a Dataset>,
    ood: Option<Tensor>,
    batch_size: usize,
    workers: usize,
    seed: Option<u64>,
    checkpoint: Option<SearchCheckpoint>,
}

enum Source<'a> {
    Supernet(&'a mut Supernet),
    Evaluator {
        evaluator: &'a mut dyn Evaluator,
        spec: SupernetSpec,
    },
}

impl<'a> SearchBuilder<'a> {
    /// Starts a builder over a trained supernet. The search space comes
    /// from the supernet's spec; candidate scoring routes through the
    /// supernet's `UncertaintyEngine`.
    pub fn new(supernet: &'a mut Supernet) -> Self {
        SearchBuilder {
            source: Source::Supernet(supernet),
            strategy: Strategy::default(),
            aim: SearchAim::accuracy_optimal(),
            objectives: ObjectiveSet::Figure4,
            latency: None,
            val: None,
            ood: None,
            batch_size: 64,
            workers: 0,
            seed: None,
            checkpoint: None,
        }
    }

    /// Starts a builder over a custom evaluator and an explicit search
    /// space.
    pub fn with_evaluator(evaluator: &'a mut dyn Evaluator, spec: SupernetSpec) -> Self {
        SearchBuilder {
            source: Source::Evaluator { evaluator, spec },
            strategy: Strategy::default(),
            aim: SearchAim::accuracy_optimal(),
            objectives: ObjectiveSet::Figure4,
            latency: None,
            val: None,
            ood: None,
            batch_size: 64,
            workers: 0,
            seed: None,
            checkpoint: None,
        }
    }

    /// Selects the search strategy (default:
    /// [`Strategy::Evolution`] with [`EvolutionConfig::default`]).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the scalarised search aim (default: accuracy-optimal).
    pub fn aim(mut self, aim: SearchAim) -> Self {
        self.aim = aim;
        self
    }

    /// Selects the archive's objective set (default: the paper's
    /// Figure-4 objectives).
    pub fn objectives(mut self, objectives: ObjectiveSet) -> Self {
        self.objectives = objectives;
        self
    }

    /// Installs the latency source for supernet-backed sessions
    /// (default: [`LatencyProvider::Constant`] 0 ms — latency plays no
    /// role in the aim). Ignored for [`SearchBuilder::with_evaluator`]
    /// sessions, whose evaluator produces latency itself.
    pub fn latency(mut self, latency: LatencyProvider) -> Self {
        self.latency = Some(latency);
        self
    }

    /// Installs the validation split candidate metrics are computed on.
    /// **Required** for supernet-backed sessions.
    pub fn validation(mut self, val: &'a Dataset) -> Self {
        self.val = Some(val);
        self
    }

    /// Installs the OOD probe tensor for the aPE metric. Defaults to
    /// [`DEFAULT_OOD_PROBES`] Gaussian-noise probes drawn from the
    /// validation split with a stream derived from the search seed.
    pub fn ood(mut self, ood: Tensor) -> Self {
        self.ood = Some(ood);
        self
    }

    /// Evaluation batch size for supernet-backed sessions (default 64).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Pins the worker split for population evaluation (0 = the worker
    /// pool size). Results are byte-identical for every value.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the strategy config's RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Resumes from a checkpoint instead of starting fresh. The
    /// checkpoint's strategy, aim, objective set, RNG state, archive,
    /// memo cache and history **replace** whatever the builder was
    /// configured with — the builder only contributes the evaluation
    /// backend and runtime knobs (workers, batch size, latency source).
    pub fn resume(mut self, checkpoint: SearchCheckpoint) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// Builds the session (and, for a fresh evolutionary or random
    /// session, consumes the RNG draws that initialise the population /
    /// draw list, so a snapshot taken before the first step already
    /// resumes exactly).
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::BadConfig`] for degenerate strategy
    /// hyperparameters or a supernet-backed builder without a validation
    /// split, and [`SearchError::Checkpoint`] for an inconsistent
    /// checkpoint.
    pub fn build(self) -> Result<SearchSession<'a>> {
        let SearchBuilder {
            source,
            strategy,
            aim,
            objectives,
            latency,
            val,
            ood,
            batch_size,
            workers,
            seed,
            checkpoint,
        } = self;
        // The base stream for the *default* OOD probe set. On resume it
        // must come from the checkpoint — not from whatever strategy the
        // builder happens to carry — or the resumed evaluations would
        // silently probe different noise and diverge from the
        // uninterrupted run.
        let ood_seed = match &checkpoint {
            Some(checkpoint) => checkpoint.ood_seed,
            None => seed.unwrap_or(match &strategy {
                Strategy::Evolution(c) => c.seed,
                Strategy::Random(c) => c.seed,
                Strategy::Exhaustive => 0,
            }),
        };
        let (evaluator, spec) = match source {
            Source::Supernet(supernet) => {
                let spec = supernet.spec().clone();
                let val = val.ok_or_else(|| {
                    SearchError::BadConfig(
                        "a supernet-backed search needs a validation split \
                         (SearchBuilder::validation)"
                            .to_string(),
                    )
                })?;
                let ood = match ood {
                    Some(ood) => ood,
                    None => {
                        // Deterministic default probe set: derived from
                        // the effective seed so the whole session stays
                        // a pure function of its configuration.
                        let mut rng = Rng64::new(ood_seed ^ 0x00D);
                        val.ood_noise(DEFAULT_OOD_PROBES, &mut rng)
                    }
                };
                let latency = latency.unwrap_or(LatencyProvider::Constant(0.0));
                (
                    SessionEvaluator::Supernet(Box::new(SupernetEvaluator::new(
                        supernet, val, ood, latency, batch_size,
                    ))),
                    spec,
                )
            }
            Source::Evaluator { evaluator, spec } => (SessionEvaluator::External(evaluator), spec),
        };
        match checkpoint {
            Some(checkpoint) => SearchSession::restore(evaluator, spec, workers, checkpoint),
            None => SearchSession::fresh(
                evaluator, spec, workers, strategy, aim, objectives, seed, ood_seed,
            ),
        }
    }
}

/// A running search: strategy state machine + archive + memo cache over
/// one evaluation backend. Create through [`SearchBuilder`].
pub struct SearchSession<'a> {
    spec: SupernetSpec,
    evaluator: SessionEvaluator<'a>,
    aim: SearchAim,
    workers: usize,
    rng: Rng64,
    state: StrategyState,
    memo: HashMap<String, Candidate>,
    archive: ParetoArchive,
    history: Vec<GenerationStats>,
    best: Option<(f64, Candidate)>,
    budget_spent: usize,
    /// Base stream of the builder's *default* OOD probe derivation —
    /// carried in checkpoints so a resumed session regenerates the
    /// identical probes.
    ood_seed: u64,
}

impl std::fmt::Debug for SearchSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchSession")
            .field("aim", &self.aim.name)
            .field("archive", &self.archive.len())
            .field("memo", &self.memo.len())
            .field("budget_spent", &self.budget_spent)
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl<'a> SearchSession<'a> {
    #[allow(clippy::too_many_arguments)]
    fn fresh(
        evaluator: SessionEvaluator<'a>,
        spec: SupernetSpec,
        workers: usize,
        strategy: Strategy,
        aim: SearchAim,
        objectives: ObjectiveSet,
        seed_override: Option<u64>,
        ood_seed: u64,
    ) -> Result<Self> {
        let (state, rng) = match strategy {
            Strategy::Evolution(mut config) => {
                if let Some(seed) = seed_override {
                    config.seed = seed;
                }
                if config.population == 0 || config.generations == 0 {
                    return Err(SearchError::BadConfig(
                        "population and generations must be positive".to_string(),
                    ));
                }
                if config.parents == 0 || config.parents > config.population {
                    return Err(SearchError::BadConfig(format!(
                        "parent pool {} must be in 1..={}",
                        config.parents, config.population
                    )));
                }
                let mut rng = Rng64::new(config.seed);
                // Initial population: distinct uniform draws, identical
                // RNG consumption to the historical `evolve`.
                let target = config.population.min(spec.space_size());
                let population = sample_distinct(&spec, &mut rng, target);
                (
                    StrategyState::Evolution {
                        config,
                        population,
                        generation: 0,
                    },
                    rng,
                )
            }
            Strategy::Random(mut config) => {
                if let Some(seed) = seed_override {
                    config.seed = seed;
                }
                if config.budget == 0 {
                    return Err(SearchError::BadConfig(
                        "random-search budget must be positive".to_string(),
                    ));
                }
                let mut rng = Rng64::new(config.seed);
                let target = config.budget.min(spec.space_size());
                let draws = sample_distinct(&spec, &mut rng, target);
                (
                    StrategyState::Random {
                        config,
                        draws,
                        cursor: 0,
                    },
                    rng,
                )
            }
            Strategy::Exhaustive => (
                StrategyState::Exhaustive {
                    // Enumerated once; only the cursor is serialised
                    // (enumeration order is deterministic).
                    configs: spec.enumerate(),
                    cursor: 0,
                },
                Rng64::new(seed_override.unwrap_or(0)),
            ),
        };
        Ok(SearchSession {
            spec,
            evaluator,
            aim,
            workers,
            rng,
            state,
            memo: HashMap::new(),
            archive: ParetoArchive::new(objectives),
            history: Vec::new(),
            best: None,
            budget_spent: 0,
            ood_seed,
        })
    }

    fn restore(
        evaluator: SessionEvaluator<'a>,
        spec: SupernetSpec,
        workers: usize,
        checkpoint: SearchCheckpoint,
    ) -> Result<Self> {
        // JSON-loaded checkpoints were validated at parse time, but a
        // hand-constructed one reaches here directly — re-assert the
        // invariants so a bad resume is a typed error, not a later panic.
        checkpoint.validate()?;
        let mut memo = HashMap::with_capacity(checkpoint.memo.len());
        for candidate in checkpoint.memo {
            memo.insert(candidate.config.compact(), candidate);
        }
        let mut archive = ParetoArchive::new(checkpoint.objectives);
        for key in &checkpoint.archive {
            let candidate = memo.get(key).ok_or_else(|| {
                SearchError::Checkpoint(format!(
                    "archive references `{key}` which is missing from the memo cache"
                ))
            })?;
            archive.insert(candidate);
        }
        let best = match checkpoint.best {
            Some((score, key)) => {
                let candidate = memo.get(&key).ok_or_else(|| {
                    SearchError::Checkpoint(format!(
                        "best candidate `{key}` is missing from the memo cache"
                    ))
                })?;
                Some((score, candidate.clone()))
            }
            None => None,
        };
        let state = match checkpoint.strategy {
            StrategyProgress::Evolution {
                config,
                population,
                generation,
            } => StrategyState::Evolution {
                config,
                population,
                generation,
            },
            StrategyProgress::Random {
                config,
                draws,
                cursor,
            } => StrategyState::Random {
                config,
                draws,
                cursor,
            },
            StrategyProgress::Exhaustive { cursor } => StrategyState::Exhaustive {
                configs: spec.enumerate(),
                cursor,
            },
        };
        Ok(SearchSession {
            spec,
            evaluator,
            aim: checkpoint.aim,
            workers,
            rng: Rng64::from_state(checkpoint.rng),
            state,
            memo,
            archive,
            history: checkpoint.history,
            best,
            budget_spent: checkpoint.budget_spent,
            ood_seed: checkpoint.ood_seed,
        })
    }

    /// The search space this session explores.
    pub fn spec(&self) -> &SupernetSpec {
        &self.spec
    }

    /// The scalarised aim candidates are ranked by.
    pub fn aim(&self) -> &SearchAim {
        &self.aim
    }

    /// Read access to the archive as it stands.
    pub fn archive(&self) -> &ParetoArchive {
        &self.archive
    }

    /// Adopts already-evaluated elites from a sibling island: each
    /// candidate enters the evaluation memo (so this island never
    /// re-spends budget on it) and the archive. Returns how many were
    /// new to the archive.
    ///
    /// Adoption is deliberately *RNG-neutral*: it consumes no random
    /// draws and no evaluation budget, and it never touches the
    /// session's incumbent best (which tracks this island's own
    /// trajectory), so a campaign's migration step cannot perturb the
    /// byte-exact determinism of the islands' own search streams.
    pub fn adopt_elites(&mut self, elites: &[Candidate]) -> usize {
        let mut adopted = 0;
        for elite in elites {
            self.memo
                .entry(elite.config.compact())
                .or_insert_with(|| elite.clone());
            if self.archive.insert(elite) {
                adopted += 1;
            }
        }
        adopted
    }

    /// Per-step progress so far.
    pub fn history(&self) -> &[GenerationStats] {
        &self.history
    }

    /// Fresh (memo-missing) evaluations spent so far.
    pub fn budget_spent(&self) -> usize {
        self.budget_spent
    }

    /// `true` once the strategy's budget is exhausted.
    pub fn is_finished(&self) -> bool {
        match &self.state {
            StrategyState::Evolution {
                config, generation, ..
            } => *generation >= config.generations,
            StrategyState::Random { draws, cursor, .. } => *cursor >= draws.len(),
            StrategyState::Exhaustive { configs, cursor } => *cursor >= configs.len(),
        }
    }

    /// Runs one step — a full generation for [`Strategy::Evolution`], a
    /// chunk of draws for the baselines — and reports progress.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; the session stays at the failed
    /// step and can be retried or snapshotted.
    pub fn step(&mut self) -> Result<SearchEvent> {
        if self.is_finished() {
            return Ok(SearchEvent::Finished);
        }
        let archive_before = self.archive.len();
        // Take the state out so strategy code can borrow `self` freely;
        // every exit path below reinstalls it.
        let state = std::mem::replace(
            &mut self.state,
            StrategyState::Exhaustive {
                configs: Vec::new(),
                cursor: 0,
            },
        );
        let outcome = match state {
            StrategyState::Evolution {
                config,
                population,
                generation,
            } => self.step_evolution(config, population, generation),
            StrategyState::Random {
                config,
                draws,
                cursor,
            } => match self.step_baseline_chunk(draws, cursor) {
                Ok((draws, cursor)) => Ok(StrategyState::Random {
                    config,
                    draws,
                    cursor,
                }),
                Err((draws, cursor, e)) => Err((
                    StrategyState::Random {
                        config,
                        draws,
                        cursor,
                    },
                    e,
                )),
            },
            StrategyState::Exhaustive { configs, cursor } => {
                match self.step_baseline_chunk(configs, cursor) {
                    Ok((configs, cursor)) => Ok(StrategyState::Exhaustive { configs, cursor }),
                    Err((configs, cursor, e)) => {
                        Err((StrategyState::Exhaustive { configs, cursor }, e))
                    }
                }
            }
        };
        match outcome {
            Ok(state) => {
                self.state = state;
                let stats = self
                    .history
                    .last()
                    .cloned()
                    .expect("a completed step records history");
                Ok(SearchEvent::Step(StepStats {
                    stats,
                    archive_added: self.archive.len() - archive_before,
                    archive_len: self.archive.len(),
                    front_len: self.archive.front_len(),
                    hypervolume: self.archive.hypervolume(),
                    budget_spent: self.budget_spent,
                }))
            }
            Err((state, e)) => {
                self.state = state;
                Err(e)
            }
        }
    }

    /// Runs the remaining steps to completion.
    ///
    /// # Errors
    ///
    /// Propagates the first step error, or [`SearchError::BadConfig`]
    /// when the strategy produced no candidate at all.
    pub fn run(&mut self) -> Result<SearchOutcome> {
        self.run_with(|_| {})
    }

    /// [`SearchSession::run`] with an observer invoked after every step
    /// — streaming progress for CLIs and long searches.
    ///
    /// # Errors
    ///
    /// See [`SearchSession::run`].
    pub fn run_with(&mut self, mut observer: impl FnMut(&SearchEvent)) -> Result<SearchOutcome> {
        loop {
            let event = self.step()?;
            let finished = matches!(event, SearchEvent::Finished);
            observer(&event);
            if finished {
                return self.outcome();
            }
        }
    }

    /// The session's current result: best candidate, archive and
    /// history. Callable mid-run (an anytime result) or after
    /// completion.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::BadConfig`] when nothing has been
    /// evaluated yet.
    pub fn outcome(&self) -> Result<SearchOutcome> {
        let (_, best) = self.best.as_ref().ok_or_else(|| {
            SearchError::BadConfig("the search has not evaluated any candidate yet".to_string())
        })?;
        Ok(SearchOutcome {
            best: best.clone(),
            archive: self.archive.clone(),
            history: self.history.clone(),
            budget_spent: self.budget_spent,
        })
    }

    /// Captures the complete session state as a versioned, serialisable
    /// [`SearchCheckpoint`]. Resuming from it (same spec, same trained
    /// weights, same evaluation backend) and running to completion
    /// reproduces the uninterrupted run byte for byte.
    pub fn snapshot(&self) -> SearchCheckpoint {
        let mut memo: Vec<Candidate> = self.memo.values().cloned().collect();
        memo.sort_by(|a, b| a.config.cmp(&b.config));
        let strategy = match &self.state {
            StrategyState::Evolution {
                config,
                population,
                generation,
            } => StrategyProgress::Evolution {
                config: *config,
                population: population.clone(),
                generation: *generation,
            },
            StrategyState::Random {
                config,
                draws,
                cursor,
            } => StrategyProgress::Random {
                config: *config,
                draws: draws.clone(),
                cursor: *cursor,
            },
            StrategyState::Exhaustive { cursor, .. } => {
                StrategyProgress::Exhaustive { cursor: *cursor }
            }
        };
        SearchCheckpoint {
            version: CHECKPOINT_VERSION,
            aim: self.aim.clone(),
            objectives: self.archive.objective_set(),
            rng: self.rng.state(),
            strategy,
            memo,
            archive: self
                .archive
                .candidates()
                .iter()
                .map(|c| c.config.compact())
                .collect(),
            history: self.history.clone(),
            best: self
                .best
                .as_ref()
                .map(|(score, c)| (*score, c.config.compact())),
            budget_spent: self.budget_spent,
            ood_seed: self.ood_seed,
        }
    }

    // -- internals ----------------------------------------------------

    /// Memoised batch evaluation: only configurations the session has
    /// never scored reach the evaluator (deduplicated, first-occurrence
    /// order), and results come back in input order.
    fn evaluate_batch(&mut self, configs: &[DropoutConfig]) -> Result<Vec<Candidate>> {
        let mut pending = Vec::new();
        let mut queued = std::collections::HashSet::new();
        for config in configs {
            let key = config.compact();
            if !self.memo.contains_key(&key) && queued.insert(key) {
                pending.push(config.clone());
            }
        }
        if !pending.is_empty() {
            let fresh = self.evaluator.evaluate_many(&pending, self.workers)?;
            self.budget_spent += fresh.len();
            for candidate in fresh {
                self.memo.insert(candidate.config.compact(), candidate);
            }
        }
        Ok(configs
            .iter()
            .map(|config| {
                self.memo
                    .get(&config.compact())
                    .expect("just evaluated")
                    .clone()
            })
            .collect())
    }

    /// One evolutionary generation, replicating the historical `evolve`
    /// loop exactly (same scoring, same RNG consumption for breeding).
    #[allow(clippy::type_complexity)]
    fn step_evolution(
        &mut self,
        config: EvolutionConfig,
        population: Vec<DropoutConfig>,
        generation: usize,
    ) -> std::result::Result<StrategyState, (StrategyState, SearchError)> {
        let candidates = match self.evaluate_batch(&population) {
            Ok(candidates) => candidates,
            Err(e) => {
                return Err((
                    StrategyState::Evolution {
                        config,
                        population,
                        generation,
                    },
                    e,
                ))
            }
        };
        let mut scored: Vec<(f64, Candidate)> = Vec::with_capacity(candidates.len());
        for candidate in candidates {
            let score = self.aim.score(&candidate);
            self.archive.insert(&candidate);
            if self.best.as_ref().map(|(s, _)| score > *s).unwrap_or(true) {
                self.best = Some((score, candidate.clone()));
            }
            scored.push((score, candidate));
        }
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let mean_score = scored.iter().map(|(s, _)| s).sum::<f64>() / scored.len().max(1) as f64;
        let (top_score, top) = &scored[0];
        self.history.push(GenerationStats {
            generation,
            best_score: *top_score,
            mean_score,
            best_config: top.config.clone(),
        });
        if generation + 1 == config.generations {
            // Last generation: no breeding, the RNG stays untouched —
            // exactly like the historical loop.
            return Ok(StrategyState::Evolution {
                config,
                population,
                generation: generation + 1,
            });
        }
        let parents: Vec<DropoutConfig> = scored
            .iter()
            .take(config.parents.min(scored.len()))
            .map(|(_, c)| c.config.clone())
            .collect();
        let population_target = config.population.min(self.spec.space_size());
        let next = breed_next_population(
            &self.spec,
            &parents,
            &config,
            population_target,
            &mut self.rng,
        );
        Ok(StrategyState::Evolution {
            config,
            population: next,
            generation: generation + 1,
        })
    }

    /// One chunk of a baseline (random / exhaustive) strategy: evaluates
    /// up to [`BASELINE_STEP_CHUNK`] draws, recording one history entry
    /// per candidate exactly like the historical `random_search`.
    #[allow(clippy::type_complexity)]
    fn step_baseline_chunk(
        &mut self,
        draws: Vec<DropoutConfig>,
        cursor: usize,
    ) -> std::result::Result<(Vec<DropoutConfig>, usize), (Vec<DropoutConfig>, usize, SearchError)>
    {
        let end = (cursor + BASELINE_STEP_CHUNK).min(draws.len());
        let chunk = draws[cursor..end].to_vec();
        let candidates = match self.evaluate_batch(&chunk) {
            Ok(candidates) => candidates,
            Err(e) => return Err((draws, cursor, e)),
        };
        for candidate in candidates {
            let score = self.aim.score(&candidate);
            if self.best.as_ref().map(|(s, _)| score > *s).unwrap_or(true) {
                self.best = Some((score, candidate.clone()));
            }
            let (best_score, best_candidate) = self.best.as_ref().expect("just set");
            self.history.push(GenerationStats {
                generation: self.archive.len(),
                best_score: *best_score,
                mean_score: score,
                best_config: best_candidate.config.clone(),
            });
            self.archive.insert(&candidate);
        }
        Ok((draws, end))
    }
}
