//! Pareto-dominance utilities for the Figure-4 analysis.
//!
//! The paper plots every configuration in (ECE, aPE, accuracy) space and
//! shows that the searched designs sit on the reference Pareto frontier.
//! [`pareto_front`] reproduces that filtering for arbitrary objective
//! sets, and [`ParetoArchive`] packages the filtering, deduplication and
//! the [`hypervolume`] quality indicator into the first-class archive the
//! [`crate::SearchSession`] maintains as it runs.

use crate::Candidate;
use std::collections::HashSet;

/// Whether an objective should be maximised or minimised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger values dominate.
    Maximize,
    /// Smaller values dominate.
    Minimize,
}

/// One objective: an extractor plus its direction.
pub struct Objective {
    /// Human-readable name (for reports).
    pub name: &'static str,
    /// Extracts the objective value from a candidate.
    pub value: fn(&Candidate) -> f64,
    /// Optimisation direction.
    pub direction: Direction,
}

impl std::fmt::Debug for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Objective({}, {:?})", self.name, self.direction)
    }
}

/// The paper's Figure-4 objective set: maximise accuracy and aPE, minimise
/// ECE.
pub fn figure4_objectives() -> Vec<Objective> {
    vec![
        Objective {
            name: "accuracy",
            value: |c| c.metrics.accuracy,
            direction: Direction::Maximize,
        },
        Objective {
            name: "ece",
            value: |c| c.metrics.ece,
            direction: Direction::Minimize,
        },
        Objective {
            name: "ape",
            value: |c| c.metrics.ape,
            direction: Direction::Maximize,
        },
    ]
}

/// The full four-objective set including latency.
pub fn full_objectives() -> Vec<Objective> {
    let mut objectives = figure4_objectives();
    objectives.push(Objective {
        name: "latency",
        value: |c| c.latency_ms,
        direction: Direction::Minimize,
    });
    objectives
}

fn oriented(objective: &Objective, candidate: &Candidate) -> f64 {
    let v = (objective.value)(candidate);
    match objective.direction {
        Direction::Maximize => v,
        Direction::Minimize => -v,
    }
}

/// `true` when `a` Pareto-dominates `b` under the objectives: at least as
/// good everywhere and strictly better somewhere.
pub fn dominates(a: &Candidate, b: &Candidate, objectives: &[Objective]) -> bool {
    let mut strictly_better = false;
    for objective in objectives {
        let va = oriented(objective, a);
        let vb = oriented(objective, b);
        if va < vb {
            return false;
        }
        if va > vb {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Extracts the non-dominated subset (the Pareto frontier), preserving
/// input order.
pub fn pareto_front<'a>(
    candidates: &'a [Candidate],
    objectives: &[Objective],
) -> Vec<&'a Candidate> {
    candidates
        .iter()
        .filter(|a| !candidates.iter().any(|b| dominates(b, a, objectives)))
        .collect()
}

/// `true` when `candidate` lies on the frontier of `reference` (i.e. no
/// reference point dominates it) — the Figure-4 claim checked for every
/// searched design.
pub fn on_frontier(
    candidate: &Candidate,
    reference: &[Candidate],
    objectives: &[Objective],
) -> bool {
    !reference
        .iter()
        .any(|b| dominates(b, candidate, objectives))
}

/// The hypervolume indicator: the volume of oriented objective space
/// dominated by `candidates`, measured from `reference` (a point that every
/// candidate must dominate, e.g. the worst value per objective).
///
/// Larger is better; it is the standard scalar quality measure for a
/// multi-objective search outcome and what the `ablation` bench uses to
/// compare the evolutionary search against random search.
///
/// Both values in `reference` and the candidate values are taken in the
/// *natural* direction of each objective (the orientation flip for
/// `Minimize` happens internally). Candidates that fail to dominate the
/// reference point contribute nothing.
///
/// Supports 1, 2 or 3 objectives — the dimensionalities the paper's metric
/// sets use (exact sweep in 2-D, slicing in 3-D).
///
/// # Panics
///
/// Panics if `objectives` is empty or has more than three entries, or if
/// `reference.len() != objectives.len()`.
pub fn hypervolume(candidates: &[Candidate], objectives: &[Objective], reference: &[f64]) -> f64 {
    assert!(
        (1..=3).contains(&objectives.len()),
        "hypervolume supports 1-3 objectives, got {}",
        objectives.len()
    );
    assert_eq!(
        reference.len(),
        objectives.len(),
        "reference/objective arity mismatch"
    );
    // Orient every point (and the reference) so that larger is better.
    let orient = |v: f64, o: &Objective| match o.direction {
        Direction::Maximize => v,
        Direction::Minimize => -v,
    };
    let reference: Vec<f64> = reference
        .iter()
        .zip(objectives)
        .map(|(&r, o)| orient(r, o))
        .collect();
    let mut points: Vec<Vec<f64>> = candidates
        .iter()
        .map(|c| {
            objectives
                .iter()
                .map(|o| orient((o.value)(c), o))
                .collect::<Vec<f64>>()
        })
        .filter(|p| p.iter().zip(&reference).all(|(v, r)| v > r))
        .collect();
    if points.is_empty() {
        return 0.0;
    }
    hv_oriented(&mut points, &reference)
}

/// Hypervolume of oriented (maximise-everything) points above `reference`.
fn hv_oriented(points: &mut [Vec<f64>], reference: &[f64]) -> f64 {
    match reference.len() {
        1 => {
            let best = points
                .iter()
                .map(|p| p[0])
                .fold(f64::NEG_INFINITY, f64::max);
            (best - reference[0]).max(0.0)
        }
        2 => {
            // Sweep: sort by first objective descending; each point adds a
            // rectangle strip above the best second-objective seen so far.
            points.sort_by(|a, b| b[0].total_cmp(&a[0]));
            let mut volume = 0.0;
            let mut best_y = reference[1];
            for p in points.iter() {
                if p[1] > best_y {
                    volume += (p[0] - reference[0]) * (p[1] - best_y);
                    best_y = p[1];
                }
            }
            volume
        }
        3 => {
            // Slice along the third objective: between consecutive cut
            // heights, the dominated area is the 2-D hypervolume of the
            // points reaching at least the slice ceiling.
            let mut cuts: Vec<f64> = points.iter().map(|p| p[2]).collect();
            cuts.push(reference[2]);
            cuts.sort_by(f64::total_cmp);
            cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-15);
            let mut volume = 0.0;
            for pair in cuts.windows(2) {
                let (lo, hi) = (pair[0], pair[1]);
                let mut slab: Vec<Vec<f64>> = points
                    .iter()
                    .filter(|p| p[2] >= hi)
                    .map(|p| vec![p[0], p[1]])
                    .collect();
                if slab.is_empty() {
                    continue;
                }
                volume += (hi - lo) * hv_oriented(&mut slab, &reference[..2]);
            }
            volume
        }
        _ => unreachable!("arity checked by hypervolume()"),
    }
}

/// A named, serialisable choice of objective set — what [`ParetoArchive`]
/// (and therefore the search checkpoints) store instead of the raw
/// function-pointer [`Objective`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObjectiveSet {
    /// The paper's Figure-4 set: maximise accuracy and aPE, minimise ECE.
    #[default]
    Figure4,
    /// Figure 4 plus minimise latency.
    Full,
}

impl ObjectiveSet {
    /// Materialises the actual objective list.
    pub fn objectives(self) -> Vec<Objective> {
        match self {
            ObjectiveSet::Figure4 => figure4_objectives(),
            ObjectiveSet::Full => full_objectives(),
        }
    }

    /// Stable code used by the checkpoint format.
    pub fn code(self) -> &'static str {
        match self {
            ObjectiveSet::Figure4 => "figure4",
            ObjectiveSet::Full => "full",
        }
    }

    /// Inverse of [`ObjectiveSet::code`].
    pub fn from_code(code: &str) -> Option<Self> {
        match code {
            "figure4" => Some(ObjectiveSet::Figure4),
            "full" => Some(ObjectiveSet::Full),
            _ => None,
        }
    }

    /// The default hypervolume reference point: the worst representable
    /// value of each objective (accuracy 0, ECE 1, aPE 0, latency capped
    /// at 10 s), so every plausible candidate dominates it.
    pub fn default_reference(self) -> Vec<f64> {
        match self {
            ObjectiveSet::Figure4 => vec![0.0, 1.0, 0.0],
            ObjectiveSet::Full => vec![0.0, 1.0, 0.0, 10_000.0],
        }
    }
}

/// The first-class search archive: every distinct candidate evaluated so
/// far (in first-evaluation order), with non-dominated filtering and
/// hypervolume tracking over a fixed [`ObjectiveSet`].
///
/// Replaces the ad-hoc `Vec<Candidate>` + `HashSet<String>` pairs the
/// free-function search loops used to carry: the [`crate::SearchSession`]
/// owns one, every strategy inserts into it, and checkpoints serialise it
/// so a resumed search continues with the identical archive.
#[derive(Debug, Default, Clone)]
pub struct ParetoArchive {
    objectives: ObjectiveSet,
    candidates: Vec<Candidate>,
    keys: HashSet<String>,
}

impl ParetoArchive {
    /// An empty archive over the given objective set.
    pub fn new(objectives: ObjectiveSet) -> Self {
        ParetoArchive {
            objectives,
            candidates: Vec::new(),
            keys: HashSet::new(),
        }
    }

    /// The objective set this archive filters and measures against.
    pub fn objective_set(&self) -> ObjectiveSet {
        self.objectives
    }

    /// Inserts a candidate, deduplicating by configuration; returns
    /// `true` when the candidate was new. The first evaluation of a
    /// configuration wins (evaluations are deterministic, so duplicates
    /// carry identical data anyway).
    pub fn insert(&mut self, candidate: &Candidate) -> bool {
        if self.keys.insert(candidate.config.compact()) {
            self.candidates.push(candidate.clone());
            true
        } else {
            false
        }
    }

    /// Number of distinct candidates archived.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// `true` when nothing has been archived yet.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// `true` when a configuration with this compact code is archived.
    pub fn contains(&self, compact: &str) -> bool {
        self.keys.contains(compact)
    }

    /// Every archived candidate, in first-evaluation order.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// The non-dominated subset under the archive's objectives,
    /// preserving first-evaluation order.
    pub fn front(&self) -> Vec<&Candidate> {
        pareto_front(&self.candidates, &self.objectives.objectives())
    }

    /// Size of the current non-dominated front.
    pub fn front_len(&self) -> usize {
        self.front().len()
    }

    /// `true` when `candidate` would sit on the archive's frontier.
    pub fn on_frontier(&self, candidate: &Candidate) -> bool {
        on_frontier(candidate, &self.candidates, &self.objectives.objectives())
    }

    /// The hypervolume dominated by the archive, measured from the
    /// objective set's [`ObjectiveSet::default_reference`] point.
    ///
    /// For [`ObjectiveSet::Full`] (four objectives) the indicator is
    /// computed over the three Figure-4 objectives — the exact sweep
    /// supports up to three dimensions — which keeps the number
    /// comparable across both sets.
    pub fn hypervolume(&self) -> f64 {
        let set = match self.objectives {
            ObjectiveSet::Figure4 | ObjectiveSet::Full => ObjectiveSet::Figure4,
        };
        hypervolume(
            &self.candidates,
            &set.objectives(),
            &set.default_reference(),
        )
    }

    /// The hypervolume from an explicit reference point over the
    /// Figure-4 objectives (see [`ParetoArchive::hypervolume`]).
    ///
    /// # Panics
    ///
    /// Panics when `reference.len() != 3` (propagated from
    /// [`hypervolume`]).
    pub fn hypervolume_from(&self, reference: &[f64]) -> f64 {
        hypervolume(&self.candidates, &figure4_objectives(), reference)
    }

    /// Consumes the archive into its candidate list (first-evaluation
    /// order) — the shape the legacy [`crate::EvolutionResult`] carries.
    pub fn into_candidates(self) -> Vec<Candidate> {
        self.candidates
    }

    /// Deterministically merges two archives over the same objective
    /// set: the union of both candidate lists, deduplicated by compact
    /// configuration code and **re-ordered canonically** (ascending
    /// configuration order, full bit-pattern tiebreak).
    ///
    /// The canonical re-ordering is the load-bearing property: it makes
    /// the operation commutative, associative and idempotent, so a
    /// distributed search campaign may fold island archives together in
    /// *any* completion order and obtain a byte-identical merged
    /// archive (pinned by the merge-law proptests in
    /// `tests/campaign.rs`). Duplicate configurations carry identical
    /// data in practice (evaluations are deterministic); if they ever
    /// disagreed, the candidate with the smallest metric bit pattern
    /// wins, keeping the result independent of argument order even
    /// then.
    ///
    /// Note the merged archive's iteration order is canonical, not
    /// first-evaluation order — callers that need trajectory order must
    /// keep the per-island archives.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SearchError::BadConfig`] when the two archives
    /// disagree on their objective set (their fronts and hypervolumes
    /// would not be comparable).
    pub fn merge(&self, other: &ParetoArchive) -> crate::Result<ParetoArchive> {
        if self.objectives != other.objectives {
            return Err(crate::SearchError::BadConfig(format!(
                "cannot merge archives over different objective sets ({} vs {})",
                self.objectives.code(),
                other.objectives.code()
            )));
        }
        let mut union: Vec<&Candidate> = self
            .candidates
            .iter()
            .chain(other.candidates.iter())
            .collect();
        union.sort_by(|a, b| {
            a.config
                .cmp(&b.config)
                .then_with(|| candidate_bits(a).cmp(&candidate_bits(b)))
        });
        let mut merged = ParetoArchive::new(self.objectives);
        for candidate in union {
            merged.insert(candidate);
        }
        Ok(merged)
    }
}

/// The metric payload of a candidate as raw IEEE-754 bit patterns — the
/// total, representation-exact order [`ParetoArchive::merge`] uses to
/// break ties between equal configurations.
fn candidate_bits(c: &Candidate) -> [u64; 4] {
    [
        c.metrics.accuracy.to_bits(),
        c.metrics.ece.to_bits(),
        c.metrics.ape.to_bits(),
        c.latency_ms.to_bits(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nds_dropout::DropoutKind;
    use nds_supernet::{CandidateMetrics, DropoutConfig};

    fn candidate(acc: f64, ece: f64, ape: f64, lat: f64) -> Candidate {
        Candidate {
            config: DropoutConfig::uniform(DropoutKind::Bernoulli, 1),
            metrics: CandidateMetrics {
                accuracy: acc,
                ece,
                ape,
            },
            latency_ms: lat,
        }
    }

    #[test]
    fn dominance_basics() {
        let objectives = figure4_objectives();
        let strong = candidate(0.9, 0.05, 0.8, 1.0);
        let weak = candidate(0.8, 0.10, 0.5, 1.0);
        assert!(dominates(&strong, &weak, &objectives));
        assert!(!dominates(&weak, &strong, &objectives));
        // Equal points do not dominate each other.
        assert!(!dominates(&strong, &strong.clone(), &objectives));
    }

    #[test]
    fn trade_offs_do_not_dominate() {
        let objectives = figure4_objectives();
        let calibrated = candidate(0.85, 0.03, 0.4, 1.0);
        let entropic = candidate(0.85, 0.08, 0.9, 1.0);
        assert!(!dominates(&calibrated, &entropic, &objectives));
        assert!(!dominates(&entropic, &calibrated, &objectives));
    }

    #[test]
    fn frontier_extraction() {
        let objectives = figure4_objectives();
        let points = vec![
            candidate(0.90, 0.05, 0.5, 1.0),  // frontier
            candidate(0.85, 0.03, 0.4, 1.0),  // frontier (best ECE)
            candidate(0.80, 0.10, 0.9, 1.0),  // frontier (best aPE)
            candidate(0.80, 0.10, 0.4, 1.0),  // dominated by #0 and #2
            candidate(0.84, 0.04, 0.39, 1.0), // dominated by #1
        ];
        let front = pareto_front(&points, &objectives);
        assert_eq!(front.len(), 3);
        assert!(on_frontier(&points[0], &points, &objectives));
        assert!(!on_frontier(&points[3], &points, &objectives));
    }

    #[test]
    fn latency_objective_changes_the_front() {
        let fig4 = figure4_objectives();
        let full = full_objectives();
        let points = vec![
            candidate(0.9, 0.05, 0.5, 10.0),
            candidate(0.9, 0.05, 0.5, 2.0), // same algo metrics, faster
        ];
        // Under Figure-4 objectives neither dominates (identical), both on
        // the front; with latency the fast one dominates.
        assert_eq!(pareto_front(&points, &fig4).len(), 2);
        let front = pareto_front(&points, &full);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].latency_ms, 2.0);
    }

    #[test]
    fn all_equal_points_are_all_on_front() {
        let objectives = figure4_objectives();
        let points = vec![candidate(0.5, 0.1, 0.3, 1.0); 3];
        assert_eq!(pareto_front(&points, &objectives).len(), 3);
    }

    fn acc_objective() -> Vec<Objective> {
        vec![Objective {
            name: "accuracy",
            value: |c| c.metrics.accuracy,
            direction: Direction::Maximize,
        }]
    }

    fn acc_ece_objectives() -> Vec<Objective> {
        vec![
            Objective {
                name: "accuracy",
                value: |c| c.metrics.accuracy,
                direction: Direction::Maximize,
            },
            Objective {
                name: "ece",
                value: |c| c.metrics.ece,
                direction: Direction::Minimize,
            },
        ]
    }

    #[test]
    fn hypervolume_1d_is_best_minus_reference() {
        let points = vec![candidate(0.6, 0.1, 0.3, 1.0), candidate(0.9, 0.2, 0.1, 1.0)];
        let hv = hypervolume(&points, &acc_objective(), &[0.5]);
        assert!((hv - 0.4).abs() < 1e-12, "hv {hv}");
    }

    #[test]
    fn hypervolume_2d_union_of_rectangles() {
        // Oriented: accuracy up, ECE down (reference ECE 0.5 → oriented -0.5).
        // Point A (acc .9, ece .4): rect (0.9-0.5)·(0.5-0.4) = 0.04.
        // Point B (acc .6, ece .1): rect (0.6-0.5)·(0.5-0.1) = 0.04.
        // Overlap (acc .6, ece .4): 0.1·0.1 = 0.01 → union 0.07.
        let points = vec![candidate(0.9, 0.4, 0.0, 1.0), candidate(0.6, 0.1, 0.0, 1.0)];
        let hv = hypervolume(&points, &acc_ece_objectives(), &[0.5, 0.5]);
        assert!((hv - 0.07).abs() < 1e-12, "hv {hv}");
    }

    #[test]
    fn hypervolume_3d_matches_inclusion_exclusion() {
        // Two boxes above reference (0,1,0):
        // A: acc .2, ece .9 (→.1 below ref), ape .1 → box .2 × .1 × .1 = 0.002
        // B: acc .1, ece .8 (→.2), ape .2 → 0.1·0.2·0.2 = 0.004
        // overlap: .1 × .1 × .1 = 0.001 → union 0.005.
        let points = vec![candidate(0.2, 0.9, 0.1, 1.0), candidate(0.1, 0.8, 0.2, 1.0)];
        let hv = hypervolume(&points, &figure4_objectives(), &[0.0, 1.0, 0.0]);
        assert!((hv - 0.005).abs() < 1e-12, "hv {hv}");
    }

    #[test]
    fn dominated_points_do_not_change_hypervolume() {
        let strong = candidate(0.9, 0.1, 0.8, 1.0);
        let dominated = candidate(0.7, 0.2, 0.5, 1.0);
        let objectives = figure4_objectives();
        let reference = [0.0, 1.0, 0.0];
        let alone = hypervolume(std::slice::from_ref(&strong), &objectives, &reference);
        let both = hypervolume(&[strong, dominated], &objectives, &reference);
        assert!((alone - both).abs() < 1e-12);
    }

    #[test]
    fn nondominated_point_strictly_increases_hypervolume() {
        let a = candidate(0.9, 0.1, 0.2, 1.0);
        let b = candidate(0.5, 0.05, 0.9, 1.0);
        let objectives = figure4_objectives();
        let reference = [0.0, 1.0, 0.0];
        let one = hypervolume(std::slice::from_ref(&a), &objectives, &reference);
        let two = hypervolume(&[a, b], &objectives, &reference);
        assert!(
            two > one,
            "adding a non-dominated point must grow HV: {one} -> {two}"
        );
    }

    #[test]
    fn points_below_reference_contribute_nothing() {
        let weak = candidate(0.1, 0.9, 0.1, 1.0);
        let hv = hypervolume(&[weak], &acc_objective(), &[0.5]);
        assert_eq!(hv, 0.0);
    }

    fn archive_candidate(code: &str, acc: f64, ece: f64, ape: f64, lat: f64) -> Candidate {
        Candidate {
            config: code.parse().unwrap(),
            metrics: CandidateMetrics {
                accuracy: acc,
                ece,
                ape,
            },
            latency_ms: lat,
        }
    }

    #[test]
    fn archive_deduplicates_and_preserves_order() {
        let mut archive = ParetoArchive::new(ObjectiveSet::Figure4);
        assert!(archive.is_empty());
        assert!(archive.insert(&archive_candidate("BBB", 0.9, 0.05, 0.5, 1.0)));
        assert!(archive.insert(&archive_candidate("RBM", 0.8, 0.03, 0.4, 1.0)));
        // Re-inserting the same config is a no-op (first evaluation wins).
        assert!(!archive.insert(&archive_candidate("BBB", 0.1, 0.99, 0.0, 9.0)));
        assert_eq!(archive.len(), 2);
        assert!(archive.contains("BBB"));
        assert!(!archive.contains("KKK"));
        assert_eq!(archive.candidates()[0].config.compact(), "BBB");
        assert_eq!(archive.candidates()[0].metrics.accuracy, 0.9);
        assert_eq!(
            archive.into_candidates().len(),
            2,
            "into_candidates keeps everything"
        );
    }

    #[test]
    fn archive_front_and_hypervolume_track_inserts() {
        let mut archive = ParetoArchive::new(ObjectiveSet::Figure4);
        archive.insert(&archive_candidate("BBB", 0.9, 0.05, 0.5, 1.0));
        let hv_one = archive.hypervolume();
        assert!(hv_one > 0.0);
        assert_eq!(archive.front_len(), 1);
        // A dominated point joins the archive but not the front, and
        // leaves the hypervolume untouched.
        archive.insert(&archive_candidate("RBM", 0.7, 0.20, 0.3, 1.0));
        assert_eq!(archive.len(), 2);
        assert_eq!(archive.front_len(), 1);
        assert!((archive.hypervolume() - hv_one).abs() < 1e-12);
        // A non-dominated point grows both.
        archive.insert(&archive_candidate("MMM", 0.5, 0.01, 0.9, 1.0));
        assert_eq!(archive.front_len(), 2);
        assert!(archive.hypervolume() > hv_one);
        assert!(archive.on_frontier(&archive_candidate("KKK", 0.95, 0.04, 0.6, 1.0)));
        assert!(!archive.on_frontier(&archive_candidate("KKK", 0.1, 0.9, 0.1, 1.0)));
    }

    #[test]
    fn full_objective_set_front_sees_latency() {
        let mut archive = ParetoArchive::new(ObjectiveSet::Full);
        archive.insert(&archive_candidate("BBB", 0.9, 0.05, 0.5, 10.0));
        archive.insert(&archive_candidate("RBM", 0.9, 0.05, 0.5, 2.0));
        // Same algorithmic metrics; only latency separates them.
        assert_eq!(archive.front_len(), 1);
        assert_eq!(archive.front()[0].config.compact(), "RBM");
        // Hypervolume stays the 3-objective indicator (comparable across
        // sets), so identical algo metrics mean identical HV.
        let fig4 = ParetoArchive::new(ObjectiveSet::Figure4);
        assert_eq!(fig4.hypervolume(), 0.0);
        assert!(archive.hypervolume() > 0.0);
    }

    #[test]
    fn merge_unions_deduplicates_and_canonicalises() {
        let mut a = ParetoArchive::new(ObjectiveSet::Figure4);
        a.insert(&archive_candidate("RBM", 0.8, 0.03, 0.4, 1.0));
        a.insert(&archive_candidate("BBB", 0.9, 0.05, 0.5, 1.0));
        let mut b = ParetoArchive::new(ObjectiveSet::Figure4);
        b.insert(&archive_candidate("MMM", 0.5, 0.01, 0.9, 1.0));
        b.insert(&archive_candidate("BBB", 0.9, 0.05, 0.5, 1.0));
        let ab = a.merge(&b).unwrap();
        let ba = b.merge(&a).unwrap();
        assert_eq!(ab.len(), 3, "union deduplicates the shared BBB");
        assert_eq!(ab.candidates(), ba.candidates(), "merge is commutative");
        assert!(
            ab.candidates()
                .windows(2)
                .all(|w| w[0].config < w[1].config),
            "merged order is canonical (ascending configuration order)"
        );
        // Idempotence on canonical archives.
        let again = ab.merge(&ab).unwrap();
        assert_eq!(again.candidates(), ab.candidates());
        // Merging with an empty archive canonicalises without loss.
        let empty = ParetoArchive::new(ObjectiveSet::Figure4);
        assert_eq!(a.merge(&empty).unwrap().len(), a.len());
    }

    #[test]
    fn merge_rejects_mismatched_objective_sets() {
        let a = ParetoArchive::new(ObjectiveSet::Figure4);
        let b = ParetoArchive::new(ObjectiveSet::Full);
        let err = a.merge(&b).unwrap_err();
        assert!(matches!(err, crate::SearchError::BadConfig(_)), "{err}");
    }

    #[test]
    fn objective_set_codes_round_trip() {
        for set in [ObjectiveSet::Figure4, ObjectiveSet::Full] {
            assert_eq!(ObjectiveSet::from_code(set.code()), Some(set));
            assert_eq!(set.default_reference().len(), set.objectives().len());
        }
        assert_eq!(ObjectiveSet::from_code("nope"), None);
    }
}
