//! Random-search baseline.
//!
//! The canonical sanity baseline for one-shot NAS: draw distinct
//! configurations uniformly from the space and keep the best by aim score.
//! The paper's evolutionary algorithm must beat this at an equal
//! evaluation budget for the search machinery to be worth its complexity;
//! the `ablation` bench measures exactly that comparison.

/// Hyperparameters of the random-search baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomSearchConfig {
    /// Number of *distinct* configurations to evaluate (capped by the size
    /// of the search space).
    pub budget: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomSearchConfig {
    fn default() -> Self {
        RandomSearchConfig {
            budget: 64,
            seed: 0x5EED,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        Candidate, Evaluator, EvolutionResult, Result, SearchAim, SearchBuilder, Strategy,
    };
    use nds_nn::zoo;
    use nds_supernet::{CandidateMetrics, DropoutConfig, SupernetSpec};
    use std::collections::HashMap;
    use std::collections::HashSet;

    /// The historical `random_search` entry point, expressed over the
    /// session. The result reuses [`EvolutionResult`] so downstream
    /// analysis works identically for both strategies; each "generation"
    /// in the history is one evaluation.
    fn random_search(
        spec: &SupernetSpec,
        evaluator: &mut dyn Evaluator,
        aim: &SearchAim,
        config: &RandomSearchConfig,
    ) -> Result<EvolutionResult> {
        let mut session = SearchBuilder::with_evaluator(evaluator, spec.clone())
            .strategy(Strategy::Random(*config))
            .aim(aim.clone())
            .build()?;
        session.run().map(EvolutionResult::from)
    }

    /// Scores configurations by similarity to a planted target.
    struct PlantedEvaluator {
        target: DropoutConfig,
        fresh: usize,
        cache: HashMap<String, Candidate>,
    }

    impl PlantedEvaluator {
        fn new(target: &str) -> Self {
            PlantedEvaluator {
                target: target.parse().unwrap(),
                fresh: 0,
                cache: HashMap::new(),
            }
        }
    }

    impl Evaluator for PlantedEvaluator {
        fn evaluate(&mut self, config: &DropoutConfig) -> Result<Candidate> {
            if let Some(hit) = self.cache.get(&config.compact()) {
                return Ok(hit.clone());
            }
            self.fresh += 1;
            let matches = config
                .kinds()
                .iter()
                .zip(self.target.kinds())
                .filter(|(a, b)| a == b)
                .count();
            let candidate = Candidate {
                config: config.clone(),
                metrics: CandidateMetrics {
                    accuracy: matches as f64 / config.len() as f64,
                    ece: 0.1,
                    ape: 0.5,
                },
                latency_ms: 1.0,
            };
            self.cache.insert(config.compact(), candidate.clone());
            Ok(candidate)
        }

        fn fresh_evaluations(&self) -> usize {
            self.fresh
        }
    }

    fn lenet_spec() -> SupernetSpec {
        SupernetSpec::paper_default(zoo::lenet(), 1).unwrap()
    }

    #[test]
    fn exhausting_the_space_finds_the_optimum() {
        let spec = lenet_spec();
        let mut evaluator = PlantedEvaluator::new("KRM");
        // Budget >= space size: every config visited, optimum guaranteed.
        let result = random_search(
            &spec,
            &mut evaluator,
            &SearchAim::accuracy_optimal(),
            &RandomSearchConfig {
                budget: 64,
                seed: 3,
            },
        )
        .unwrap();
        assert_eq!(result.best.config.compact(), "KRM");
        assert_eq!(result.archive.len(), spec.space_size());
    }

    #[test]
    fn draws_are_distinct_and_within_budget() {
        let spec = lenet_spec();
        let mut evaluator = PlantedEvaluator::new("BBB");
        let result = random_search(
            &spec,
            &mut evaluator,
            &SearchAim::accuracy_optimal(),
            &RandomSearchConfig {
                budget: 10,
                seed: 4,
            },
        )
        .unwrap();
        assert_eq!(result.archive.len(), 10);
        let distinct: HashSet<String> = result.archive.iter().map(|c| c.config.compact()).collect();
        assert_eq!(distinct.len(), 10);
        assert_eq!(evaluator.fresh_evaluations(), 10);
    }

    #[test]
    fn best_score_trajectory_is_monotone() {
        let spec = lenet_spec();
        let mut evaluator = PlantedEvaluator::new("MKB");
        let result = random_search(
            &spec,
            &mut evaluator,
            &SearchAim::accuracy_optimal(),
            &RandomSearchConfig {
                budget: 20,
                seed: 5,
            },
        )
        .unwrap();
        let mut last = f64::NEG_INFINITY;
        for step in &result.history {
            assert!(step.best_score >= last - 1e-12);
            last = step.best_score;
        }
    }

    #[test]
    fn rejects_zero_budget() {
        let spec = lenet_spec();
        let mut evaluator = PlantedEvaluator::new("BBB");
        assert!(random_search(
            &spec,
            &mut evaluator,
            &SearchAim::accuracy_optimal(),
            &RandomSearchConfig { budget: 0, seed: 1 },
        )
        .is_err());
    }
}
